//! Meta-crate for the wish-branches reproduction suite.
pub use wishbranch_core as core_api;
