//! Meta-crate for the wish-branches reproduction suite.
pub use wishbranch_core as core_api;

/// Everything most experiment drivers need, re-exported from
/// [`wishbranch_core::prelude`]: `use wishbranch_suite::prelude::*;` gives
/// you `SweepRunner`, `ExperimentConfig`, the `Experiment` catalog, the
/// `Report` model, `BinaryVariant`, `suite` and `InputSet`.
pub mod prelude {
    pub use wishbranch_core::prelude::*;
}
