//! `wishbranch-repro` — regenerate any table or figure of the paper from
//! the command line.
//!
//! ```text
//! USAGE: wishbranch-repro [--scale N] [--workers N] [--json] [--quick]
//!                         [--report-dir DIR] [--resume] [--strict]
//!                         [--oracle] [--fault-plan SPEC] <experiment>...
//!        wishbranch-repro validate [--scale N] [--quick] [--input A|B|C] [--hierarchy]
//!                                  [--fuzz N] [--seed S] [--repro-out FILE]
//!        wishbranch-repro trace <bench> <variant> [--cycles A..B] [--scale N]
//!        wishbranch-repro --list
//!
//! Experiments: fig1 fig2 fig10 fig11 fig12 fig13 fig14 fig15 fig16
//!              tab4 tab5 adaptive dhp predpred all
//! ```
//!
//! Every experiment runs through one shared [`SweepRunner`], so `all`
//! compiles each binary exactly once across every figure and fans the
//! simulations out over the worker pool (`--workers`, or the
//! `WISHBRANCH_WORKERS` environment variable, defaulting to the machine's
//! available parallelism).
//!
//! Output modes:
//!
//! * default — fixed-width text tables plus a cumulative sweep summary;
//! * `--json` — one `wishbranch.report/v1` JSON object per experiment on
//!   stdout (one per line);
//! * `--report-dir DIR` — write `DIR/<id>.json` and `DIR/<id>.csv` per
//!   experiment plus `DIR/summary.json` (engine + phase timing + failure
//!   table) and an incremental job journal `DIR/journal.jsonl`, while
//!   still printing the chosen stdout format.
//!
//! Failure handling: a job that panics, diverges, or blows its cycle
//! budget becomes an explicit gap in the affected figure, listed in the
//! failure table — it never takes the sweep down. `--resume` (requires
//! `--report-dir`) replays completed jobs from `DIR/journal.jsonl`
//! bit-identically instead of re-simulating them. `--strict` turns any
//! failed job into exit code 3. `--fault-plan SPEC` (or the
//! `WISHBRANCH_FAULT_PLAN` environment variable) injects deterministic
//! faults for testing, e.g. `panic@3,diverge@7,budget@2,abort@10` — job
//! indices are global submission order.
//!
//! Differential validation: `--oracle` replays every job's retired
//! instruction stream through the lockstep in-order reference oracle —
//! a divergence is that job's typed `verify_divergence` failure (a gap,
//! like any other). The `validate` subcommand runs the whole suite ×
//! every variant under the oracle, or (`--fuzz N`) seeded random
//! programs × random machine configurations with automatic shrinking of
//! the first divergence to a minimal reproducer.
//!
//! Exit codes: 0 success, 1 fatal error, 2 usage (including `--resume`
//! against a journal written by a different configuration or scale),
//! 3 `--strict` with failed jobs or `validate` with divergences, 4 sweep
//! aborted.
//!
//! `trace` compiles one benchmark into one variant (labels as printed in
//! the figures: `normal BASE-DEF BASE-MAX wish-jj wish-jjl wish-adaptive`)
//! and dumps the pipeview event stream, optionally windowed to a cycle
//! range with `--cycles A..B`.

use wishbranch_compiler::BinaryVariant;
use wishbranch_core::{
    failure_table, fuzz_lockstep, fuzz_lockstep_hierarchy, summary_json_with_failures,
    sweep_summary_table, trace_binary, validate_suite, validate_suite_hierarchy, Experiment,
    ExperimentConfig, FaultPlan, FuzzOutcome, JournalError, SweepRunner,
};
use wishbranch_uarch::render_trace;
use wishbranch_workloads::{suite, InputSet};

/// Environment variable consulted when `--fault-plan` is absent.
const FAULT_PLAN_ENV: &str = "WISHBRANCH_FAULT_PLAN";

fn usage() -> ! {
    let ids: Vec<&str> = Experiment::ALL.iter().map(|e| e.id()).collect();
    eprintln!(
        "USAGE: wishbranch-repro [--scale N] [--workers N] [--json] [--quick] [--report-dir DIR]\n\
                                 [--resume] [--strict] [--oracle] [--fault-plan SPEC] <experiment>...\n\
                wishbranch-repro validate [--scale N] [--quick] [--input A|B|C] [--hierarchy]\n\
                                          [--fuzz N] [--seed S] [--repro-out FILE]\n\
                wishbranch-repro trace <bench> <variant> [--cycles A..B] [--scale N]\n\
                wishbranch-repro --list\n\
         experiments: {} all\n\
         exit codes: 0 ok, 1 fatal, 2 usage (incl. stale journal), 3 strict/validate failures,\n\
                     4 aborted",
        ids.join(" ")
    );
    std::process::exit(2)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("trace") {
        trace_main(&args[1..]);
        return;
    }
    if args.first().map(String::as_str) == Some("validate") {
        validate_main(&args[1..]);
        return;
    }

    let mut scale = 4000;
    let mut json = false;
    let mut quick = false;
    let mut strict = false;
    let mut resume = false;
    let mut oracle = false;
    let mut workers: Option<usize> = None;
    let mut report_dir: Option<std::path::PathBuf> = None;
    let mut fault_spec: Option<String> = None;
    let mut wanted: Vec<Experiment> = Vec::new();
    let mut args = args.into_iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                scale = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--workers" => {
                workers = Some(
                    args.next()
                        .and_then(|s| s.parse().ok())
                        .filter(|&n| n > 0)
                        .unwrap_or_else(|| usage()),
                );
            }
            "--json" => json = true,
            "--quick" => quick = true,
            "--strict" => strict = true,
            "--resume" => resume = true,
            "--oracle" => oracle = true,
            "--report-dir" => {
                report_dir = Some(args.next().unwrap_or_else(|| usage()).into());
            }
            "--fault-plan" => {
                fault_spec = Some(args.next().unwrap_or_else(|| usage()));
            }
            "--list" => {
                let ids: Vec<&str> = Experiment::ALL.iter().map(|e| e.id()).collect();
                println!("{} all", ids.join(" "));
                return;
            }
            "all" => wanted.extend(Experiment::ALL),
            e => match Experiment::from_id(e) {
                Some(exp) => wanted.push(exp),
                None => usage(),
            },
        }
    }
    if wanted.is_empty() {
        usage();
    }
    if resume && report_dir.is_none() {
        eprintln!("wishbranch-repro: --resume requires --report-dir (the journal lives there)");
        std::process::exit(2);
    }
    let ec = if quick {
        ExperimentConfig::quick(scale.min(500))
    } else {
        ExperimentConfig::paper(scale)
    };
    // One runner for every requested experiment: figures share the profile
    // and compile caches, and `all` keeps the pool busy end to end.
    let mut runner = match workers {
        Some(n) => SweepRunner::with_workers(&ec, n),
        None => SweepRunner::new(&ec),
    };
    if oracle {
        runner.set_oracle(true);
    }
    if let Some(spec) = fault_spec.or_else(|| std::env::var(FAULT_PLAN_ENV).ok()) {
        match FaultPlan::parse(&spec) {
            Ok(plan) => runner.set_fault_plan(plan),
            Err(e) => fatal(&format!("bad fault plan {spec:?}: {e}")),
        }
    }

    if let Some(dir) = &report_dir {
        std::fs::create_dir_all(dir)
            .unwrap_or_else(|e| fatal(&format!("cannot create {}: {e}", dir.display())));
        let journal = dir.join("journal.jsonl");
        match runner.attach_journal(&journal, resume) {
            Ok(replayed) => {
                if resume && !json {
                    println!("resuming: {replayed} completed jobs loaded from journal");
                }
            }
            // A stale journal is an invocation problem (wrong flags for
            // this journal), not an internal failure: exit 2 like any
            // other usage error so scripts can distinguish it.
            Err(e @ JournalError::RunMismatch { .. }) => {
                eprintln!("wishbranch-repro: {}: {e}", journal.display());
                std::process::exit(2);
            }
            Err(e) => fatal(&format!("cannot open {}: {e}", journal.display())),
        }
    }

    for exp in wanted {
        let report = exp.run(&runner);
        if let Some(dir) = &report_dir {
            write_file(&dir.join(format!("{}.json", report.id)), &report.to_json());
            write_file(&dir.join(format!("{}.csv", report.id)), &report.to_csv());
        }
        if json {
            println!("{}", report.to_json());
        } else {
            println!("{}", report.render());
        }
        if runner.aborted() {
            break;
        }
    }
    let summary = runner.summary();
    let failures = runner.failures();
    if let Some(dir) = &report_dir {
        write_file(
            &dir.join("summary.json"),
            &summary_json_with_failures(&summary, &failures),
        );
    }
    if !json {
        println!("{}", sweep_summary_table(&summary));
        if !failures.is_empty() {
            println!("\n{}", failure_table(&failures));
        }
    }
    if runner.aborted() {
        eprintln!("wishbranch-repro: sweep aborted; reports are incomplete (resume with --resume)");
        std::process::exit(4);
    }
    if strict && !failures.is_empty() {
        eprintln!(
            "wishbranch-repro: --strict: {} job(s) failed",
            failures.len()
        );
        std::process::exit(3);
    }
}

fn write_file(path: &std::path::Path, contents: &str) {
    let mut data = contents.to_string();
    if !data.ends_with('\n') {
        data.push('\n');
    }
    std::fs::write(path, data)
        .unwrap_or_else(|e| fatal(&format!("cannot write {}: {e}", path.display())));
}

fn fatal(msg: &str) -> ! {
    eprintln!("wishbranch-repro: {msg}");
    std::process::exit(1)
}

/// `wishbranch-repro validate [--scale N] [--quick] [--input A|B|C]
/// [--fuzz N] [--seed S] [--repro-out FILE]`
///
/// Without `--fuzz`: runs every suite benchmark through every binary
/// variant with the lockstep retirement oracle attached — exit 0 when
/// every retirement matches the in-order reference, 3 on any divergence.
///
/// With `--fuzz N`: generates N seeded random programs × random machine
/// configurations, checks each in lockstep, and on the first divergence
/// shrinks it to a minimal reproducer (printed, and written to
/// `--repro-out FILE` when given) before exiting 3.
fn validate_main(args: &[String]) {
    let mut scale = 200;
    let mut quick = false;
    let mut input = InputSet::B;
    let mut fuzz: Option<usize> = None;
    let mut seed: u64 = 0x5EED;
    let mut repro_out: Option<std::path::PathBuf> = None;
    let mut hierarchy = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => {
                scale = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--quick" => quick = true,
            "--input" => {
                input = match it.next().map(String::as_str) {
                    Some("A") | Some("a") => InputSet::A,
                    Some("B") | Some("b") => InputSet::B,
                    Some("C") | Some("c") => InputSet::C,
                    _ => usage(),
                };
            }
            "--fuzz" => {
                fuzz = Some(
                    it.next()
                        .and_then(|s| s.parse().ok())
                        .filter(|&n| n > 0)
                        .unwrap_or_else(|| usage()),
                );
            }
            "--seed" => {
                seed = it
                    .next()
                    .and_then(|s| parse_seed(s))
                    .unwrap_or_else(|| usage());
            }
            "--repro-out" => {
                repro_out = Some(it.next().unwrap_or_else(|| usage()).into());
            }
            "--hierarchy" => hierarchy = true,
            _ => usage(),
        }
    }

    if let Some(count) = fuzz {
        let report = if hierarchy {
            fuzz_lockstep_hierarchy(seed, count)
        } else {
            fuzz_lockstep(seed, count)
        };
        println!(
            "fuzz: seed {seed:#x}{}, {} cases checked, {} skipped (compile-out or cycle budget)",
            if hierarchy { ", non-blocking hierarchy" } else { "" },
            report.cases,
            report.skipped
        );
        match report.outcome {
            FuzzOutcome::Clean => println!("fuzz: clean — no divergence"),
            FuzzOutcome::Diverged {
                case,
                minimized,
                detail,
            } => {
                eprintln!("fuzz: DIVERGENCE: {detail}");
                eprintln!("fuzz: minimized repro ({} instructions):", minimized.insn_count());
                eprintln!("{}", minimized.describe());
                if let Some(path) = &repro_out {
                    let body = format!(
                        "# wishbranch lockstep divergence (seed {seed:#x})\n# {detail}\n\n\
                         ## minimized ({} instructions)\n{}\n## original case\n{}",
                        minimized.insn_count(),
                        minimized.describe(),
                        case.describe()
                    );
                    write_file(path, &body);
                    eprintln!("fuzz: repro written to {}", path.display());
                }
                std::process::exit(3);
            }
        }
    } else {
        let ec = if quick {
            ExperimentConfig::quick(scale.min(500))
        } else {
            ExperimentConfig::paper(scale)
        };
        let report = if hierarchy {
            validate_suite_hierarchy(&ec, input)
        } else {
            validate_suite(&ec, input)
        };
        for (label, detail) in &report.failures {
            eprintln!("validate: FAIL {label}: {detail}");
        }
        println!(
            "validate: {} jobs (suite x every variant, input {input}{}), {} divergent",
            report.jobs,
            if hierarchy { ", non-blocking hierarchy" } else { "" },
            report.failures.len()
        );
        if !report.passed() {
            std::process::exit(3);
        }
    }
}

/// Parses a fuzz seed: decimal, or hex with an `0x` prefix.
fn parse_seed(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

/// `wishbranch-repro trace <bench> <variant> [--cycles A..B] [--scale N]`
fn trace_main(args: &[String]) {
    let mut scale = 200; // traces get long; default far below figure scale
    let mut cycles: Option<(u64, u64)> = None;
    let mut positional: Vec<&String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => {
                scale = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--cycles" => {
                let spec = it.next().unwrap_or_else(|| usage());
                let (a, b) = spec.split_once("..").unwrap_or_else(|| usage());
                let lo = a.parse().ok().unwrap_or_else(|| usage());
                let hi = b.parse().ok().unwrap_or_else(|| usage());
                cycles = Some((lo, hi));
            }
            _ => positional.push(arg),
        }
    }
    let [bench_name, variant_name] = positional[..] else {
        usage();
    };
    let benches = suite(scale);
    let bench = benches
        .iter()
        .find(|b| b.name == bench_name.as_str())
        .unwrap_or_else(|| {
            let names: Vec<&str> = benches.iter().map(|b| b.name).collect();
            fatal(&format!(
                "unknown benchmark {bench_name:?}; have: {}",
                names.join(" ")
            ))
        });
    let variant = BinaryVariant::ALL_WITH_EXTENSIONS
        .into_iter()
        .find(|v| v.label().eq_ignore_ascii_case(variant_name))
        .unwrap_or_else(|| {
            let labels: Vec<&str> = BinaryVariant::ALL_WITH_EXTENSIONS
                .iter()
                .map(|v| v.label())
                .collect();
            fatal(&format!(
                "unknown variant {variant_name:?}; have: {}",
                labels.join(" ")
            ))
        });
    let ec = ExperimentConfig::paper(scale);
    let (result, trace) = trace_binary(bench, variant, InputSet::B, &ec)
        .unwrap_or_else(|e| fatal(&format!("trace failed: {e}")));
    let events: Vec<_> = match cycles {
        Some((lo, hi)) => trace
            .into_iter()
            .filter(|e| e.cycle >= lo && e.cycle < hi)
            .collect(),
        None => trace,
    };
    print!("{}", render_trace(&events));
    eprintln!(
        "# {} {} scale={scale}: {} events, {} cycles, {} retired µops",
        bench.name,
        variant.label(),
        events.len(),
        result.stats.cycles,
        result.stats.retired_uops
    );
}
