//! `wishbranch-repro` — regenerate any table or figure of the paper from
//! the command line.
//!
//! ```text
//! USAGE: wishbranch-repro [--scale N] [--json] [--quick] <experiment>...
//!        wishbranch-repro --list
//!
//! Experiments: fig1 fig2 fig10 fig11 fig12 fig13 fig14 fig15 fig16
//!              tab4 tab5 adaptive dhp all
//! ```

use std::fmt::Write as _;
use wishbranch_core::{
    fig11_table, fig13_table, figure1, figure10, figure11, figure12, figure13, figure14,
    figure15, figure16, figure2, figure_adaptive, figure_dhp, figure_predicate_prediction,
    sweep_table, table4, table4_table, table5, table5_table, ExperimentConfig, FigureData,
    SweepRow, Table,
};

const EXPERIMENTS: &[&str] = &[
    "fig1", "fig2", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "tab4",
    "tab5", "adaptive", "dhp", "predpred",
];

fn usage() -> ! {
    eprintln!(
        "USAGE: wishbranch-repro [--scale N] [--json] [--quick] <experiment>...\n\
                wishbranch-repro --list\n\
         experiments: {} all",
        EXPERIMENTS.join(" ")
    );
    std::process::exit(2)
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn figure_json(fig: &FigureData) -> String {
    let mut out = String::new();
    let _ = write!(out, "{{\"title\":\"{}\",\"series\":[", json_escape(&fig.title));
    let series: Vec<String> = fig
        .series
        .iter()
        .map(|s| format!("\"{}\"", json_escape(s)))
        .collect();
    let _ = write!(out, "{}],\"rows\":[", series.join(","));
    let rows: Vec<String> = fig
        .rows
        .iter()
        .map(|r| {
            let vals: Vec<String> = r.values.iter().map(|v| format!("{v:.6}")).collect();
            format!(
                "{{\"name\":\"{}\",\"values\":[{}]}}",
                json_escape(&r.name),
                vals.join(",")
            )
        })
        .collect();
    let _ = write!(out, "{}]}}", rows.join(","));
    out
}

fn sweep_json(name: &str, rows: &[SweepRow]) -> String {
    let mut items = Vec::new();
    for r in rows {
        let series: Vec<String> = r
            .series
            .iter()
            .map(|s| format!("\"{}\"", json_escape(s)))
            .collect();
        let avg: Vec<String> = r.avg.iter().map(|v| format!("{v:.6}")).collect();
        let nomcf: Vec<String> = r.avg_nomcf.iter().map(|v| format!("{v:.6}")).collect();
        items.push(format!(
            "{{\"param\":{},\"series\":[{}],\"avg\":[{}],\"avg_nomcf\":[{}]}}",
            r.param,
            series.join(","),
            avg.join(","),
            nomcf.join(",")
        ));
    }
    format!("{{\"title\":\"{}\",\"points\":[{}]}}", json_escape(name), items.join(","))
}

fn table_json(t: &Table) -> String {
    let headers: Vec<String> = t
        .headers
        .iter()
        .map(|h| format!("\"{}\"", json_escape(h)))
        .collect();
    let rows: Vec<String> = t
        .rows
        .iter()
        .map(|r| {
            let cells: Vec<String> = r.iter().map(|c| format!("\"{}\"", json_escape(c))).collect();
            format!("[{}]", cells.join(","))
        })
        .collect();
    format!(
        "{{\"title\":\"{}\",\"headers\":[{}],\"rows\":[{}]}}",
        json_escape(&t.title),
        headers.join(","),
        rows.join(",")
    )
}

fn main() {
    let mut scale = 4000;
    let mut json = false;
    let mut quick = false;
    let mut wanted: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                scale = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--json" => json = true,
            "--quick" => quick = true,
            "--list" => {
                println!("{} all", EXPERIMENTS.join(" "));
                return;
            }
            "all" => wanted.extend(EXPERIMENTS.iter().map(|s| s.to_string())),
            e if EXPERIMENTS.contains(&e) => wanted.push(e.to_string()),
            _ => usage(),
        }
    }
    if wanted.is_empty() {
        usage();
    }
    let ec = if quick {
        ExperimentConfig::quick(scale.min(500))
    } else {
        ExperimentConfig::paper(scale)
    };

    for what in wanted {
        match what.as_str() {
            "fig1" => emit_figure(&figure1(&ec), json),
            "fig2" => emit_figure(&figure2(&ec), json),
            "fig10" => emit_figure(&figure10(&ec), json),
            "fig11" => emit_table(&fig11_table(&figure11(&ec)), json),
            "fig12" => emit_figure(&figure12(&ec), json),
            "fig13" => emit_table(&fig13_table(&figure13(&ec)), json),
            "fig14" => emit_sweep("Fig.14: instruction window sweep", "window", &figure14(&ec), json),
            "fig15" => emit_sweep("Fig.15: pipeline depth sweep", "depth", &figure15(&ec), json),
            "fig16" => emit_figure(&figure16(&ec), json),
            "tab4" => emit_table(&table4_table(&table4(&ec)), json),
            "tab5" => emit_table(&table5_table(&table5(&ec)), json),
            "adaptive" => emit_figure(&figure_adaptive(&ec), json),
            "dhp" => emit_figure(&figure_dhp(&ec), json),
            "predpred" => emit_figure(&figure_predicate_prediction(&ec), json),
            _ => unreachable!("validated above"),
        }
    }
}

fn emit_figure(fig: &FigureData, json: bool) {
    if json {
        println!("{}", figure_json(fig));
    } else {
        println!("{}", Table::from(fig));
    }
}

fn emit_table(t: &Table, json: bool) {
    if json {
        println!("{}", table_json(t));
    } else {
        println!("{t}");
    }
}

fn emit_sweep(title: &str, param: &str, rows: &[SweepRow], json: bool) {
    if json {
        println!("{}", sweep_json(title, rows));
    } else {
        println!("{}", sweep_table(title, param, rows));
    }
}
