//! `wishbranch-repro` — regenerate any table or figure of the paper from
//! the command line, locally or against a sweep server.
//!
//! ```text
//! USAGE: wishbranch-repro [--scale N] [--workers N] [--batch N] [--json]
//!                         [--quick] [--report-dir DIR] [--resume] [--strict]
//!                         [--oracle] [--fault-plan SPEC] [--tenant T]
//!                         [--train A|B|C] [--budget-cycles N]
//!                         [--budget-wall-ms N] <experiment>...
//!        wishbranch-repro serve [--addr HOST:PORT] [--state-dir DIR] [--store DIR]
//!                               [--max-procs N] [--max-respawns N]
//!                               [--tenant-budget TENANT=CYCLES]...
//!        wishbranch-repro client --addr HOST:PORT [sweep flags] <experiment>...
//!        wishbranch-repro validate [--scale N] [--quick] [--input A|B|C] [--hierarchy]
//!                                  [--fuzz N] [--seed S] [--repro-out FILE]
//!        wishbranch-repro trace <bench> <variant> [--cycles A..B] [--scale N]
//!        wishbranch-repro --list
//! ```
//!
//! Every invocation first builds a typed `wishbranch.request/v1`
//! [`SweepRequest`] — the same validation, env-precedence and
//! runner-construction path whether the sweep runs in-process (default),
//! is submitted to a server (`client`), or arrives over a socket
//! (`serve`). Worker count resolves explicit `--workers` →
//! `WISHBRANCH_WORKERS` → available parallelism; the fault plan resolves
//! explicit `--fault-plan` → `WISHBRANCH_FAULT_PLAN` → none; the lockstep
//! batch width resolves explicit `--batch` → `WISHBRANCH_BATCH` → 1
//! (batching off). Batched lanes are bit-identical to scalar runs — the
//! knob only changes throughput.
//!
//! Output modes:
//!
//! * default — fixed-width text tables plus a cumulative sweep summary;
//! * `--json` — one `wishbranch.report/v1` JSON object per experiment on
//!   stdout (one per line);
//! * `--report-dir DIR` — write `DIR/<id>.json` and `DIR/<id>.csv` per
//!   experiment plus `DIR/summary.json` (engine + phase timing + failure
//!   table) and an incremental job journal `DIR/journal.jsonl`, while
//!   still printing the chosen stdout format.
//!
//! Failure handling: a job that panics, diverges, or blows its cycle
//! budget becomes an explicit gap in the affected figure, listed in the
//! failure table — it never takes the sweep down. `--resume` (requires
//! `--report-dir`) replays completed jobs from `DIR/journal.jsonl`
//! bit-identically instead of re-simulating them. `--strict` turns any
//! failed job into exit code 3. `--fault-plan SPEC` (or the
//! `WISHBRANCH_FAULT_PLAN` environment variable) injects deterministic
//! faults for testing, e.g. `panic@3,diverge@7,budget@2,abort@10` — job
//! indices are global submission order.
//!
//! Serving: `serve` runs the multi-tenant sweep server (see
//! `wishbranch_core::serve`) — requests stream back as
//! `wishbranch.response/v1` JSONL, shards run in worker processes
//! (respawned from the journal if killed), finished outcomes land in the
//! shared content-addressed artifact store (`--store`), and tenants named
//! by `--tenant-budget` are admitted until their simulated-cycle budget
//! is spent. `client` submits one request and prints the stream;
//! `--report-dir` additionally writes each streamed report payload.
//! (`--worker` is the internal per-shard entry point the server forks.)
//!
//! Differential validation: `--oracle` replays every job's retired
//! instruction stream through the lockstep in-order reference oracle —
//! a divergence is that job's typed `verify_divergence` failure (a gap,
//! like any other). The `validate` subcommand runs the whole suite ×
//! every variant under the oracle, or (`--fuzz N`) seeded random
//! programs × random machine configurations with automatic shrinking of
//! the first divergence to a minimal reproducer.
//!
//! Exit codes: 0 success, 1 fatal error (including a rejected `client`
//! request), 2 usage (including `--resume` against a journal written by a
//! different configuration or scale), 3 `--strict` with failed jobs or
//! `validate` with divergences, 4 sweep aborted.
//!
//! `trace` compiles one benchmark into one variant (labels as printed in
//! the figures: `normal BASE-DEF BASE-MAX wish-jj wish-jjl wish-adaptive`)
//! and dumps the pipeview event stream, optionally windowed to a cycle
//! range with `--cycles A..B`.

use wishbranch_compiler::BinaryVariant;
use wishbranch_core::{
    client_stream, client_stream_resilient, failure_table, fuzz_lockstep,
    fuzz_lockstep_hierarchy, parse_input_set, summary_json_with_failures, sweep_summary_table,
    trace_binary, validate_suite, validate_suite_hierarchy, worker_main, ChaosPlan, Experiment,
    ExperimentConfig, FaultPlan, FuzzOutcome, JournalError, ResponseLine, ServeConfig, Server,
    SweepRequest,
};
use wishbranch_uarch::render_trace;
use wishbranch_workloads::{suite, InputSet};

fn usage() -> ! {
    let ids: Vec<&str> = Experiment::ALL.iter().map(|e| e.id()).collect();
    eprintln!(
        "USAGE: wishbranch-repro [--scale N] [--workers N] [--batch N] [--json] [--quick]\n\
                                 [--report-dir DIR] [--resume] [--strict] [--oracle]\n\
                                 [--fault-plan SPEC] [--tenant T] [--train A|B|C]\n\
                                 [--budget-cycles N] [--budget-wall-ms N] <experiment>...\n\
                wishbranch-repro serve [--addr HOST:PORT] [--state-dir DIR] [--store DIR]\n\
                                       [--max-procs N] [--max-respawns N]\n\
                                       [--tenant-budget TENANT=CYCLES]...\n\
                                       [--heartbeat-ms N] [--liveness-timeout-ms N]\n\
                                       [--read-timeout-ms N] [--write-timeout-ms N]\n\
                                       [--deadline-factor N] [--max-request-bytes N]\n\
                                       [--chaos-plan SPEC]\n\
                wishbranch-repro client --addr HOST:PORT [--reconnect N]\n\
                                        [sweep flags] <experiment>...\n\
                wishbranch-repro validate [--scale N] [--quick] [--input A|B|C] [--hierarchy]\n\
                                          [--fuzz N] [--seed S] [--repro-out FILE]\n\
                wishbranch-repro trace <bench> <variant> [--cycles A..B] [--scale N]\n\
                wishbranch-repro --list\n\
         experiments: {} all\n\
         exit codes: 0 ok, 1 fatal/rejected, 2 usage (incl. stale journal),\n\
                     3 strict/validate failures, 4 aborted",
        ids.join(" ")
    );
    std::process::exit(2)
}

/// Flags that stay on this side of the request boundary: how results are
/// presented and persisted locally, never part of the request itself.
#[derive(Default)]
struct LocalOpts {
    json: bool,
    strict: bool,
    resume: bool,
    report_dir: Option<std::path::PathBuf>,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("trace") => return trace_main(&args[1..]),
        Some("validate") => return validate_main(&args[1..]),
        Some("serve") => return serve_main(&args[1..]),
        Some("client") => return client_main(&args[1..]),
        // Internal: one server shard (spec arrives on stdin).
        Some("--worker") => std::process::exit(worker_main()),
        _ => {}
    }
    let (req, opts) = parse_sweep_args(args);
    run_local(&req, &opts);
}

/// Parses the shared sweep flags into the typed request (what to run)
/// plus the local presentation options (how to show/persist it). The CLI,
/// the `client` subcommand and — via [`SweepRequest::parse`] — the server
/// all funnel through the same request validation.
fn parse_sweep_args(args: Vec<String>) -> (SweepRequest, LocalOpts) {
    let mut req = SweepRequest::new(Vec::new());
    let mut opts = LocalOpts::default();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => {
                req.scale = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--workers" => {
                req.workers = Some(
                    it.next()
                        .and_then(|s| s.parse().ok())
                        .filter(|&n| n > 0)
                        .unwrap_or_else(|| usage()),
                );
            }
            "--batch" => {
                req.batch = Some(
                    it.next()
                        .and_then(|s| s.parse().ok())
                        .filter(|&n| n > 0)
                        .unwrap_or_else(|| usage()),
                );
            }
            "--json" => opts.json = true,
            "--quick" => req.quick = true,
            "--strict" => opts.strict = true,
            "--resume" => opts.resume = true,
            "--oracle" => req.oracle = true,
            "--report-dir" => {
                opts.report_dir = Some(it.next().unwrap_or_else(|| usage()).into());
            }
            "--fault-plan" => {
                let spec = it.next().unwrap_or_else(|| usage());
                match FaultPlan::parse(&spec) {
                    Ok(plan) => req.fault_plan = Some(plan),
                    Err(e) => fatal(&format!("bad fault plan {spec:?}: {e}")),
                }
            }
            "--tenant" => {
                req.tenant = it.next().unwrap_or_else(|| usage());
            }
            "--train" => {
                req.train = it
                    .next()
                    .and_then(|s| parse_input_set(&s))
                    .map(Some)
                    .unwrap_or_else(|| usage());
            }
            "--budget-cycles" => {
                req.budgets.cycles = Some(
                    it.next()
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage()),
                );
            }
            "--budget-wall-ms" => {
                req.budgets.wall_ms = Some(
                    it.next()
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage()),
                );
            }
            "--list" => {
                let ids: Vec<&str> = Experiment::ALL.iter().map(|e| e.id()).collect();
                println!("{} all", ids.join(" "));
                std::process::exit(0);
            }
            "all" => req.experiments.extend(Experiment::ALL),
            e => match Experiment::from_id(e) {
                Some(exp) => req.experiments.push(exp),
                None => usage(),
            },
        }
    }
    if req.experiments.is_empty() {
        usage();
    }
    (req, opts)
}

/// The in-process sweep path: one shared runner built from the request,
/// experiments in order, reports + journal + summary exactly as before.
fn run_local(req: &SweepRequest, opts: &LocalOpts) {
    if opts.resume && opts.report_dir.is_none() {
        eprintln!("wishbranch-repro: --resume requires --report-dir (the journal lives there)");
        std::process::exit(2);
    }
    // One runner for every requested experiment: figures share the profile
    // and compile caches, and `all` keeps the pool busy end to end.
    let runner = req
        .build_runner()
        .unwrap_or_else(|e| fatal(&e.to_string()));

    if let Some(dir) = &opts.report_dir {
        std::fs::create_dir_all(dir)
            .unwrap_or_else(|e| fatal(&format!("cannot create {}: {e}", dir.display())));
        let journal = dir.join("journal.jsonl");
        match runner.attach_journal(&journal, opts.resume) {
            Ok(replayed) => {
                if opts.resume && !opts.json {
                    println!("resuming: {replayed} completed jobs loaded from journal");
                }
            }
            // A stale journal is an invocation problem (wrong flags for
            // this journal), not an internal failure: exit 2 like any
            // other usage error so scripts can distinguish it.
            Err(e @ JournalError::RunMismatch { .. }) => {
                eprintln!("wishbranch-repro: {}: {e}", journal.display());
                std::process::exit(2);
            }
            Err(e) => fatal(&format!("cannot open {}: {e}", journal.display())),
        }
    }

    for exp in &req.experiments {
        let report = exp.run(&runner);
        if let Some(dir) = &opts.report_dir {
            write_file(&dir.join(format!("{}.json", report.id)), &report.to_json());
            write_file(&dir.join(format!("{}.csv", report.id)), &report.to_csv());
        }
        if opts.json {
            println!("{}", report.to_json());
        } else {
            println!("{}", report.render());
        }
        if runner.aborted() {
            break;
        }
    }
    let summary = runner.summary();
    let failures = runner.failures();
    if let Some(dir) = &opts.report_dir {
        write_file(
            &dir.join("summary.json"),
            &summary_json_with_failures(&summary, &failures),
        );
    }
    if !opts.json {
        println!("{}", sweep_summary_table(&summary));
        if !failures.is_empty() {
            println!("\n{}", failure_table(&failures));
        }
    }
    if runner.aborted() {
        eprintln!("wishbranch-repro: sweep aborted; reports are incomplete (resume with --resume)");
        std::process::exit(4);
    }
    if opts.strict && !failures.is_empty() {
        eprintln!(
            "wishbranch-repro: --strict: {} job(s) failed",
            failures.len()
        );
        std::process::exit(3);
    }
}

/// Set by the SIGTERM handler; a watcher thread turns it into a graceful
/// server drain (stop accepting, finish in-flight shards, exit 0).
static SIGTERM_RECEIVED: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

extern "C" fn on_sigterm(_sig: i32) {
    SIGTERM_RECEIVED.store(true, std::sync::atomic::Ordering::SeqCst);
}

#[cfg(unix)]
fn install_sigterm_handler() {
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGTERM, on_sigterm);
    }
}

#[cfg(not(unix))]
fn install_sigterm_handler() {}

/// `wishbranch-repro serve` — run the multi-tenant sweep server until
/// killed (SIGTERM drains gracefully: in-flight shards finish and their
/// journals flush before exit). Workers are forked from this same
/// executable.
fn serve_main(args: &[String]) {
    let mut addr = "127.0.0.1:7905".to_string();
    let mut state_dir = std::path::PathBuf::from("serve-state");
    let mut store_dir: Option<std::path::PathBuf> = None;
    let mut max_procs = 4usize;
    let mut max_respawns = 2u32;
    let mut tenant_budgets = std::collections::HashMap::new();
    let mut overrides: Vec<(&str, u64)> = Vec::new();
    let mut chaos_plan = ChaosPlan::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => addr = it.next().unwrap_or_else(|| usage()).clone(),
            "--state-dir" => state_dir = it.next().unwrap_or_else(|| usage()).into(),
            "--store" => store_dir = Some(it.next().unwrap_or_else(|| usage()).into()),
            "--max-procs" => {
                max_procs = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| usage());
            }
            "--max-respawns" => {
                max_respawns = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--tenant-budget" => {
                let spec = it.next().unwrap_or_else(|| usage());
                let Some((tenant, cycles)) = spec.split_once('=') else {
                    usage();
                };
                let Ok(cycles) = cycles.parse::<u64>() else {
                    usage();
                };
                tenant_budgets.insert(tenant.to_string(), cycles);
            }
            key @ ("--heartbeat-ms" | "--liveness-timeout-ms" | "--read-timeout-ms"
            | "--write-timeout-ms" | "--deadline-factor" | "--max-request-bytes") => {
                let value = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
                overrides.push((key, value));
            }
            "--chaos-plan" => {
                let spec = it.next().unwrap_or_else(|| usage());
                chaos_plan = ChaosPlan::parse(spec)
                    .unwrap_or_else(|e| fatal(&format!("--chaos-plan: {e}")));
            }
            _ => usage(),
        }
    }
    let worker_exe = std::env::current_exe()
        .unwrap_or_else(|e| fatal(&format!("cannot locate own executable: {e}")));
    let mut cfg = ServeConfig::new(worker_exe, state_dir);
    cfg.store_dir = store_dir;
    cfg.max_procs = max_procs;
    cfg.max_respawns = max_respawns;
    cfg.tenant_budgets = tenant_budgets;
    cfg.chaos_plan = chaos_plan;
    for (key, value) in overrides {
        match key {
            "--heartbeat-ms" => cfg.heartbeat_ms = value,
            "--liveness-timeout-ms" => cfg.liveness_timeout_ms = value,
            "--read-timeout-ms" => cfg.read_timeout_ms = value,
            "--write-timeout-ms" => cfg.write_timeout_ms = value,
            "--deadline-factor" => cfg.shard_deadline_factor = value,
            "--max-request-bytes" => cfg.max_request_bytes = value as usize,
            _ => unreachable!(),
        }
    }
    let server = std::sync::Arc::new(
        Server::bind(&addr, cfg).unwrap_or_else(|e| fatal(&format!("serve: {e}"))),
    );
    match server.local_addr() {
        Ok(local) => {
            use std::io::Write as _;
            println!("listening on {local}");
            let _ = std::io::stdout().flush();
        }
        Err(e) => fatal(&format!("serve: {e}")),
    }
    install_sigterm_handler();
    {
        let server = std::sync::Arc::clone(&server);
        std::thread::spawn(move || loop {
            if SIGTERM_RECEIVED.load(std::sync::atomic::Ordering::SeqCst) {
                let _ = server.shutdown();
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(100));
        });
    }
    if let Err(e) = server.run() {
        fatal(&format!("serve: {e}"));
    }
    // run() only returns after a drain: every in-flight shard finished
    // and flushed its journal.
    eprintln!("wishbranch-repro: serve: drained, exiting");
}

/// `wishbranch-repro client --addr HOST:PORT [--reconnect N]
/// [sweep flags] <experiment>...` — submit one request and print the
/// response stream; `--report-dir` additionally writes each streamed
/// `wishbranch.report/v1` payload to `DIR/<id>.json` plus a
/// `DIR/summary.json` combining the server's `stats` and `done` lines.
/// `--reconnect N` survives up to N dropped connections by re-submitting
/// the same fingerprinted request and merging the streams (gap-free,
/// duplicate-free).
fn client_main(args: &[String]) {
    let mut addr: Option<String> = None;
    let mut reconnects = 0u32;
    let mut rest: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--addr" {
            addr = Some(it.next().unwrap_or_else(|| usage()).clone());
        } else if arg == "--reconnect" {
            reconnects = it
                .next()
                .and_then(|s| s.parse().ok())
                .unwrap_or_else(|| usage());
        } else {
            rest.push(arg.clone());
        }
    }
    let Some(addr) = addr else {
        usage();
    };
    let (req, opts) = parse_sweep_args(rest);
    if let Some(dir) = &opts.report_dir {
        std::fs::create_dir_all(dir)
            .unwrap_or_else(|e| fatal(&format!("cannot create {}: {e}", dir.display())));
    }
    let stream: Box<dyn Iterator<Item = std::io::Result<(String, ResponseLine)>>> =
        if reconnects > 0 {
            Box::new(
                client_stream_resilient(&addr, &req, reconnects)
                    .unwrap_or_else(|e| fatal(&format!("connect {addr}: {e}"))),
            )
        } else {
            Box::new(
                client_stream(&addr, &req)
                    .unwrap_or_else(|e| fatal(&format!("connect {addr}: {e}"))),
            )
        };
    let mut rejected = false;
    let mut failed = 0u64;
    let mut stats_raw: Option<String> = None;
    let mut done_raw: Option<String> = None;
    for item in stream {
        let (raw, parsed) = item.unwrap_or_else(|e| fatal(&format!("stream: {e}")));
        println!("{raw}");
        match parsed {
            ResponseLine::Rejected { .. } => rejected = true,
            ResponseLine::Report { experiment, report } => {
                if let Some(dir) = &opts.report_dir {
                    write_file(&dir.join(format!("{experiment}.json")), &report);
                }
            }
            ResponseLine::Stats { .. } => stats_raw = Some(raw),
            ResponseLine::Done { failed: f, .. } => {
                failed = f;
                done_raw = Some(raw);
            }
            _ => {}
        }
    }
    if let (Some(dir), Some(done)) = (&opts.report_dir, &done_raw) {
        write_file(
            &dir.join("summary.json"),
            &format!(
                "{{\"schema\":\"wishbranch.served_summary/v1\",\"stats\":{},\"done\":{}}}",
                stats_raw.as_deref().unwrap_or("null"),
                done
            ),
        );
    }
    if rejected {
        std::process::exit(1);
    }
    if opts.strict && failed > 0 {
        eprintln!("wishbranch-repro: --strict: {failed} job(s) failed");
        std::process::exit(3);
    }
}

fn write_file(path: &std::path::Path, contents: &str) {
    let mut data = contents.to_string();
    if !data.ends_with('\n') {
        data.push('\n');
    }
    std::fs::write(path, data)
        .unwrap_or_else(|e| fatal(&format!("cannot write {}: {e}", path.display())));
}

fn fatal(msg: &str) -> ! {
    eprintln!("wishbranch-repro: {msg}");
    std::process::exit(1)
}

/// `wishbranch-repro validate [--scale N] [--quick] [--input A|B|C]
/// [--fuzz N] [--seed S] [--repro-out FILE]`
///
/// Without `--fuzz`: runs every suite benchmark through every binary
/// variant with the lockstep retirement oracle attached — exit 0 when
/// every retirement matches the in-order reference, 3 on any divergence.
///
/// With `--fuzz N`: generates N seeded random programs × random machine
/// configurations, checks each in lockstep, and on the first divergence
/// shrinks it to a minimal reproducer (printed, and written to
/// `--repro-out FILE` when given) before exiting 3.
fn validate_main(args: &[String]) {
    let mut scale = 200;
    let mut quick = false;
    let mut input = InputSet::B;
    let mut fuzz: Option<usize> = None;
    let mut seed: u64 = 0x5EED;
    let mut repro_out: Option<std::path::PathBuf> = None;
    let mut hierarchy = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => {
                scale = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--quick" => quick = true,
            "--input" => {
                input = it
                    .next()
                    .and_then(|s| parse_input_set(s))
                    .unwrap_or_else(|| usage());
            }
            "--fuzz" => {
                fuzz = Some(
                    it.next()
                        .and_then(|s| s.parse().ok())
                        .filter(|&n| n > 0)
                        .unwrap_or_else(|| usage()),
                );
            }
            "--seed" => {
                seed = it
                    .next()
                    .and_then(|s| parse_seed(s))
                    .unwrap_or_else(|| usage());
            }
            "--repro-out" => {
                repro_out = Some(it.next().unwrap_or_else(|| usage()).into());
            }
            "--hierarchy" => hierarchy = true,
            _ => usage(),
        }
    }

    if let Some(count) = fuzz {
        let report = if hierarchy {
            fuzz_lockstep_hierarchy(seed, count)
        } else {
            fuzz_lockstep(seed, count)
        };
        println!(
            "fuzz: seed {seed:#x}{}, {} cases checked, {} skipped (compile-out or cycle budget)",
            if hierarchy { ", non-blocking hierarchy" } else { "" },
            report.cases,
            report.skipped
        );
        match report.outcome {
            FuzzOutcome::Clean => println!("fuzz: clean — no divergence"),
            FuzzOutcome::Diverged {
                case,
                minimized,
                detail,
            } => {
                eprintln!("fuzz: DIVERGENCE: {detail}");
                eprintln!("fuzz: minimized repro ({} instructions):", minimized.insn_count());
                eprintln!("{}", minimized.describe());
                if let Some(path) = &repro_out {
                    let body = format!(
                        "# wishbranch lockstep divergence (seed {seed:#x})\n# {detail}\n\n\
                         ## minimized ({} instructions)\n{}\n## original case\n{}",
                        minimized.insn_count(),
                        minimized.describe(),
                        case.describe()
                    );
                    write_file(path, &body);
                    eprintln!("fuzz: repro written to {}", path.display());
                }
                std::process::exit(3);
            }
        }
    } else {
        let ec = if quick {
            ExperimentConfig::quick(scale.min(500))
        } else {
            ExperimentConfig::paper(scale)
        };
        let report = if hierarchy {
            validate_suite_hierarchy(&ec, input)
        } else {
            validate_suite(&ec, input)
        };
        for (label, detail) in &report.failures {
            eprintln!("validate: FAIL {label}: {detail}");
        }
        println!(
            "validate: {} jobs (suite x every variant, input {input}{}), {} divergent",
            report.jobs,
            if hierarchy { ", non-blocking hierarchy" } else { "" },
            report.failures.len()
        );
        if !report.passed() {
            std::process::exit(3);
        }
    }
}

/// Parses a fuzz seed: decimal, or hex with an `0x` prefix.
fn parse_seed(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

/// `wishbranch-repro trace <bench> <variant> [--cycles A..B] [--scale N]`
fn trace_main(args: &[String]) {
    let mut scale = 200; // traces get long; default far below figure scale
    let mut cycles: Option<(u64, u64)> = None;
    let mut positional: Vec<&String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => {
                scale = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--cycles" => {
                let spec = it.next().unwrap_or_else(|| usage());
                let (a, b) = spec.split_once("..").unwrap_or_else(|| usage());
                let lo = a.parse().ok().unwrap_or_else(|| usage());
                let hi = b.parse().ok().unwrap_or_else(|| usage());
                cycles = Some((lo, hi));
            }
            _ => positional.push(arg),
        }
    }
    let [bench_name, variant_name] = positional[..] else {
        usage();
    };
    let benches = suite(scale);
    let bench = benches
        .iter()
        .find(|b| b.name == bench_name.as_str())
        .unwrap_or_else(|| {
            let names: Vec<&str> = benches.iter().map(|b| b.name).collect();
            fatal(&format!(
                "unknown benchmark {bench_name:?}; have: {}",
                names.join(" ")
            ))
        });
    let variant = BinaryVariant::ALL_WITH_EXTENSIONS
        .into_iter()
        .find(|v| v.label().eq_ignore_ascii_case(variant_name))
        .unwrap_or_else(|| {
            let labels: Vec<&str> = BinaryVariant::ALL_WITH_EXTENSIONS
                .iter()
                .map(|v| v.label())
                .collect();
            fatal(&format!(
                "unknown variant {variant_name:?}; have: {}",
                labels.join(" ")
            ))
        });
    let ec = ExperimentConfig::paper(scale);
    let (result, trace) = trace_binary(bench, variant, InputSet::B, &ec)
        .unwrap_or_else(|e| fatal(&format!("trace failed: {e}")));
    let events: Vec<_> = match cycles {
        Some((lo, hi)) => trace
            .into_iter()
            .filter(|e| e.cycle >= lo && e.cycle < hi)
            .collect(),
        None => trace,
    };
    print!("{}", render_trace(&events));
    eprintln!(
        "# {} {} scale={scale}: {} events, {} cycles, {} retired µops",
        bench.name,
        variant.label(),
        events.len(),
        result.stats.cycles,
        result.stats.retired_uops
    );
}
