//! `wishbranch-repro` — regenerate any table or figure of the paper from
//! the command line.
//!
//! ```text
//! USAGE: wishbranch-repro [--scale N] [--workers N] [--json] [--quick] <experiment>...
//!        wishbranch-repro --list
//!
//! Experiments: fig1 fig2 fig10 fig11 fig12 fig13 fig14 fig15 fig16
//!              tab4 tab5 adaptive dhp all
//! ```
//!
//! Every experiment runs through one shared [`SweepRunner`], so `all`
//! compiles each binary exactly once across every figure and fans the
//! simulations out over the worker pool (`--workers`, or the
//! `WISHBRANCH_WORKERS` environment variable, defaulting to the machine's
//! available parallelism). Text mode prints a cumulative sweep summary at
//! the end.

use std::fmt::Write as _;
use wishbranch_core::{
    fig11_table, fig13_table, figure10_on, figure11_on, figure12_on, figure13_on, figure14_on,
    figure15_on, figure16_on, figure1_on, figure2_on, figure_adaptive_on, figure_dhp_on,
    figure_predicate_prediction_on, sweep_summary_table, sweep_table, table4_on, table4_table,
    table5_on, table5_table, ExperimentConfig, FigureData, SweepRow, SweepRunner, Table,
};

const EXPERIMENTS: &[&str] = &[
    "fig1", "fig2", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "tab4",
    "tab5", "adaptive", "dhp", "predpred",
];

fn usage() -> ! {
    eprintln!(
        "USAGE: wishbranch-repro [--scale N] [--workers N] [--json] [--quick] <experiment>...\n\
                wishbranch-repro --list\n\
         experiments: {} all",
        EXPERIMENTS.join(" ")
    );
    std::process::exit(2)
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn figure_json(fig: &FigureData) -> String {
    let mut out = String::new();
    let _ = write!(out, "{{\"title\":\"{}\",\"series\":[", json_escape(&fig.title));
    let series: Vec<String> = fig
        .series
        .iter()
        .map(|s| format!("\"{}\"", json_escape(s)))
        .collect();
    let _ = write!(out, "{}],\"rows\":[", series.join(","));
    let rows: Vec<String> = fig
        .rows
        .iter()
        .map(|r| {
            let vals: Vec<String> = r.values.iter().map(|v| format!("{v:.6}")).collect();
            format!(
                "{{\"name\":\"{}\",\"values\":[{}]}}",
                json_escape(&r.name),
                vals.join(",")
            )
        })
        .collect();
    let _ = write!(out, "{}]}}", rows.join(","));
    out
}

fn sweep_json(name: &str, rows: &[SweepRow]) -> String {
    let mut items = Vec::new();
    for r in rows {
        let series: Vec<String> = r
            .series
            .iter()
            .map(|s| format!("\"{}\"", json_escape(s)))
            .collect();
        let avg: Vec<String> = r.avg.iter().map(|v| format!("{v:.6}")).collect();
        let nomcf: Vec<String> = r.avg_nomcf.iter().map(|v| format!("{v:.6}")).collect();
        items.push(format!(
            "{{\"param\":{},\"series\":[{}],\"avg\":[{}],\"avg_nomcf\":[{}]}}",
            r.param,
            series.join(","),
            avg.join(","),
            nomcf.join(",")
        ));
    }
    format!("{{\"title\":\"{}\",\"points\":[{}]}}", json_escape(name), items.join(","))
}

fn table_json(t: &Table) -> String {
    let headers: Vec<String> = t
        .headers
        .iter()
        .map(|h| format!("\"{}\"", json_escape(h)))
        .collect();
    let rows: Vec<String> = t
        .rows
        .iter()
        .map(|r| {
            let cells: Vec<String> = r.iter().map(|c| format!("\"{}\"", json_escape(c))).collect();
            format!("[{}]", cells.join(","))
        })
        .collect();
    format!(
        "{{\"title\":\"{}\",\"headers\":[{}],\"rows\":[{}]}}",
        json_escape(&t.title),
        headers.join(","),
        rows.join(",")
    )
}

fn main() {
    let mut scale = 4000;
    let mut json = false;
    let mut quick = false;
    let mut workers: Option<usize> = None;
    let mut wanted: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                scale = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--workers" => {
                workers = Some(
                    args.next()
                        .and_then(|s| s.parse().ok())
                        .filter(|&n| n > 0)
                        .unwrap_or_else(|| usage()),
                );
            }
            "--json" => json = true,
            "--quick" => quick = true,
            "--list" => {
                println!("{} all", EXPERIMENTS.join(" "));
                return;
            }
            "all" => wanted.extend(EXPERIMENTS.iter().map(|s| s.to_string())),
            e if EXPERIMENTS.contains(&e) => wanted.push(e.to_string()),
            _ => usage(),
        }
    }
    if wanted.is_empty() {
        usage();
    }
    let ec = if quick {
        ExperimentConfig::quick(scale.min(500))
    } else {
        ExperimentConfig::paper(scale)
    };
    // One runner for every requested experiment: figures share the profile
    // and compile caches, and `all` keeps the pool busy end to end.
    let runner = match workers {
        Some(n) => SweepRunner::with_workers(&ec, n),
        None => SweepRunner::new(&ec),
    };

    for what in wanted {
        match what.as_str() {
            "fig1" => emit_figure(&figure1_on(&runner), json),
            "fig2" => emit_figure(&figure2_on(&runner), json),
            "fig10" => emit_figure(&figure10_on(&runner), json),
            "fig11" => emit_table(&fig11_table(&figure11_on(&runner)), json),
            "fig12" => emit_figure(&figure12_on(&runner), json),
            "fig13" => emit_table(&fig13_table(&figure13_on(&runner)), json),
            "fig14" => emit_sweep("Fig.14: instruction window sweep", "window", &figure14_on(&runner), json),
            "fig15" => emit_sweep("Fig.15: pipeline depth sweep", "depth", &figure15_on(&runner), json),
            "fig16" => emit_figure(&figure16_on(&runner), json),
            "tab4" => emit_table(&table4_table(&table4_on(&runner)), json),
            "tab5" => emit_table(&table5_table(&table5_on(&runner)), json),
            "adaptive" => emit_figure(&figure_adaptive_on(&runner), json),
            "dhp" => emit_figure(&figure_dhp_on(&runner), json),
            "predpred" => emit_figure(&figure_predicate_prediction_on(&runner), json),
            _ => unreachable!("validated above"),
        }
    }
    if !json {
        println!("{}", sweep_summary_table(&runner.summary()));
    }
}

fn emit_figure(fig: &FigureData, json: bool) {
    if json {
        println!("{}", figure_json(fig));
    } else {
        println!("{}", Table::from(fig));
    }
}

fn emit_table(t: &Table, json: bool) {
    if json {
        println!("{}", table_json(t));
    } else {
        println!("{t}");
    }
}

fn emit_sweep(title: &str, param: &str, rows: &[SweepRow], json: bool) {
    if json {
        println!("{}", sweep_json(title, rows));
    } else {
        println!("{}", sweep_table(title, param, rows));
    }
}
