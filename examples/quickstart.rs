//! Quickstart: compile one benchmark into all five binary variants of the
//! paper's Table 3, simulate each on the Table 2 machine, and print what
//! the wish-branch hardware did.
//!
//! Run with: `cargo run --release --example quickstart`

use wishbranch_core::prelude::*;
use wishbranch_workloads::twolf;

fn main() {
    let scale = 4000;
    let ec = ExperimentConfig::paper(scale);
    let bench = twolf(scale);
    println!("benchmark: {} — {}\n", bench.name, bench.behavior);
    println!(
        "{:<22} {:>10} {:>8} {:>9} {:>9} {:>10} {:>10}",
        "binary", "cycles", "µPC", "flushes", "avoided", "wish-dyn", "guard-F"
    );

    let mut normal_cycles = None;
    for variant in BinaryVariant::ALL {
        let out = run_binary(&bench, variant, InputSet::B, &ec).expect("verified run");
        let s = &out.sim.stats;
        if variant == BinaryVariant::NormalBranch {
            normal_cycles = Some(s.cycles);
        }
        println!(
            "{:<22} {:>10} {:>8.2} {:>9} {:>9} {:>10} {:>10}",
            variant.label(),
            s.cycles,
            s.upc(),
            s.flushes,
            s.flushes_avoided,
            s.wish_branches_total(),
            s.retired_guard_false,
        );
    }
    if let Some(base) = normal_cycles {
        let wish = run_binary(&bench, BinaryVariant::WishJumpJoinLoop, InputSet::B, &ec)
            .expect("verified run");
        println!(
            "\nwish jump/join/loop binary speedup over normal branches: {:.1}%",
            (base as f64 - wish.sim.stats.cycles as f64) * 100.0 / base as f64
        );
        let s = &wish.sim.stats;
        println!("\nwhere the wish-jjl cycles went (sums to 100%):");
        for (name, v) in s.cycle_accounting.rows() {
            println!(
                "  {name:<20} {v:>10}  {:>5.1}%",
                v as f64 * 100.0 / s.cycles as f64
            );
        }
        println!("\nhottest branch sites (flushes / avoided / guard-false µops):");
        for (pc, c) in s.top_sites(3) {
            println!(
                "  pc {pc:<6} {:>8} / {:>8} / {:>10}",
                c.flushes, c.flushes_avoided, c.guard_false_uops
            );
        }
    }
}
