//! The motivating experiment of the paper (Fig. 1): the same predicated
//! binary helps on one input and hurts on another, while the wish-branch
//! binary adapts at run time and tracks the better of the two worlds on
//! *every* input.
//!
//! Run with: `cargo run --release --example adaptive_predication`

use wishbranch_compiler::BinaryVariant;
use wishbranch_core::{compile_variant, simulate, ExperimentConfig};
use wishbranch_workloads::{bzip2, gap, mcf, InputSet};

fn main() {
    let scale = 4000;
    let ec = ExperimentConfig::paper(scale);

    println!(
        "Execution time normalized to the normal-branch binary (lower is better).\n\
         The compiler profiled on {} only.\n",
        ec.train_input
    );
    println!(
        "{:<10} {:>8}  {:>10} {:>10} {:>10}",
        "benchmark", "input", "BASE-MAX", "wish-jjl", "winner"
    );

    for bench in [gap(scale), bzip2(scale), mcf(scale / 2)] {
        let normal =
            compile_variant(&bench, BinaryVariant::NormalBranch, &ec).expect("compile");
        let pred = compile_variant(&bench, BinaryVariant::BaseMax, &ec).expect("compile");
        let wish =
            compile_variant(&bench, BinaryVariant::WishJumpJoinLoop, &ec).expect("compile");
        for input in InputSet::ALL {
            let cycles = |program| {
                simulate(program, &bench, input, &ec.machine).expect("simulate").stats.cycles
                    as f64
            };
            let base = cycles(&normal.program);
            let p = cycles(&pred.program) / base;
            let w = cycles(&wish.program) / base;
            let winner = if w <= p.min(1.0) {
                "wish"
            } else if p < 1.0 {
                "predication"
            } else {
                "branches"
            };
            println!(
                "{:<10} {:>8}  {:>10.3} {:>10.3} {:>10}",
                bench.name, input.label(), p, w, winner
            );
        }
        println!();
    }
    println!(
        "Note how BASE-MAX swings above and below 1.0 with the input while the\n\
         wish binary stays at (or below) the better side — the paper's core claim."
    );
}
