//! Dissects wish loops (§3.2): how mispredicted backward branches split
//! into early-exit (flush), late-exit (no flush — the winning case), and
//! no-exit (flush) on loops with unpredictable trip counts.
//!
//! Run with: `cargo run --release --example wish_loop_anatomy`

use wishbranch_compiler::BinaryVariant;
use wishbranch_core::{compile_variant, simulate, ExperimentConfig};
use wishbranch_workloads::{bzip2, parser, vpr, InputSet};

fn main() {
    let scale = 4000;
    let ec = ExperimentConfig::paper(scale);
    let input = InputSet::C; // high-entropy trip counts

    println!("Wish-loop outcome classes on {input} (per benchmark):\n");
    println!(
        "{:<10} {:>10} {:>11} {:>11} {:>9} {:>12} {:>12}",
        "benchmark", "early-exit", "late-exit", "no-exit", "flushes", "avoided", "Δcycles vs br"
    );

    for bench in [vpr(scale), parser(scale), bzip2(scale)] {
        let normal =
            compile_variant(&bench, BinaryVariant::NormalBranch, &ec).expect("compile");
        let base = simulate(&normal.program, &bench, input, &ec.machine)
            .expect("simulate")
            .stats
            .cycles;
        let wjl =
            compile_variant(&bench, BinaryVariant::WishJumpJoinLoop, &ec).expect("compile");
        let s = simulate(&wjl.program, &bench, input, &ec.machine)
            .expect("simulate")
            .stats;
        println!(
            "{:<10} {:>10} {:>11} {:>11} {:>9} {:>12} {:>11.1}%",
            bench.name,
            s.loop_early_exits,
            s.loop_late_exits,
            s.loop_no_exits,
            s.flushes,
            s.flushes_avoided,
            (base as f64 - s.cycles as f64) * 100.0 / base as f64,
        );
    }

    println!(
        "\nLate exits are loop-branch mispredictions that cost a handful of\n\
         guard-false NOP iterations instead of a ≥30-cycle pipeline flush —\n\
         the only way predication can help a backward branch (paper §3.2)."
    );
}
