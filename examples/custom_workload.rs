//! End-to-end library usage on a program you write yourself: build an IR
//! module, profile it, compile it into every Table 3 variant, run each on
//! the cycle simulator, and inspect the generated wish-branch assembly.
//!
//! Run with: `cargo run --release --example custom_workload`

use wishbranch_compiler::{compile, BinaryVariant, CompileOptions};
use wishbranch_ir::{FunctionBuilder, Interpreter, Module};
use wishbranch_isa::{AluOp, CmpOp, Gpr, Operand};
use wishbranch_uarch::{MachineConfig, Simulator};

fn r(i: u8) -> Gpr {
    Gpr::new(i)
}

/// A branchy saturating histogram: for each input word, clamp it into a
/// bucket (two data-dependent decisions) and count it.
fn build_module(n: i32) -> Module {
    let mut f = FunctionBuilder::new("histogram");
    let e = f.entry_block();
    let loop_b = f.new_block();
    let big = f.new_block();
    let small = f.new_block();
    let join = f.new_block();
    let exit = f.new_block();

    f.select(e);
    f.movi(r(19), 0x1000); // input base
    f.movi(r(20), 0); // index
    f.movi(r(8), 0); // count(big)
    f.movi(r(9), 0); // count(small)
    f.jump(loop_b);

    f.select(loop_b);
    f.alu(AluOp::And, r(2), r(20), Operand::imm(1023));
    f.alu(AluOp::Shl, r(2), r(2), Operand::imm(3));
    f.alu(AluOp::Add, r(2), r(2), Operand::Reg(r(19)));
    f.load(r(4), r(2), 0);
    f.branch(CmpOp::Ge, r(4), Operand::imm(0), big, small);

    f.select(small);
    f.alu(AluOp::Add, r(9), r(9), Operand::imm(1));
    f.alu(AluOp::Sub, r(10), r(10), Operand::Reg(r(4)));
    f.alu(AluOp::Xor, r(11), r(11), Operand::Reg(r(10)));
    f.alu(AluOp::Add, r(12), r(12), Operand::imm(3));
    f.alu(AluOp::Sub, r(13), r(13), Operand::imm(1));
    f.alu(AluOp::Add, r(10), r(10), Operand::Reg(r(12)));
    f.jump(join);

    f.select(big);
    f.alu(AluOp::Add, r(8), r(8), Operand::imm(1));
    f.alu(AluOp::Add, r(10), r(10), Operand::Reg(r(4)));
    f.alu(AluOp::Xor, r(12), r(12), Operand::Reg(r(10)));
    f.alu(AluOp::Sub, r(11), r(11), Operand::imm(2));
    f.alu(AluOp::Add, r(13), r(13), Operand::imm(1));
    f.alu(AluOp::Sub, r(12), r(12), Operand::Reg(r(11)));
    f.jump(join);

    f.select(join);
    f.alu(AluOp::Add, r(20), r(20), Operand::imm(1));
    f.branch(CmpOp::Lt, r(20), Operand::imm(n), loop_b, exit);

    f.select(exit);
    f.store(r(8), r(19), 16384);
    f.store(r(9), r(19), 16392);
    f.halt();
    Module::new(vec![f.build()], 0).expect("valid module")
}

fn main() {
    let n = 5000;
    let module = build_module(n);

    // Inputs: alternating-sign values make the branch a coin flip.
    let inputs: Vec<(u64, i64)> = (0..1024u64)
        .map(|i| {
            let h = (i.wrapping_mul(0x9e37_79b9_7f4a_7c15)).rotate_left(31) ^ i;
            (0x1000 + i * 8, if h & 0x10000 == 0 { 40 } else { -40 })
        })
        .collect();

    // 1. Profile with the IR interpreter (this is what the compiler sees).
    let mut interp = Interpreter::new();
    for &(a, v) in &inputs {
        interp.mem.insert(a, v);
    }
    let profile = interp.run(&module, 10_000_000).expect("halts").profile;

    // 2. Compile every variant and run it on the Table 2 machine.
    println!("{:<22} {:>10} {:>9} {:>9} {:>9}", "binary", "cycles", "flushes", "avoided", "µops");
    for variant in BinaryVariant::ALL {
        let bin = compile(&module, &profile, variant, &CompileOptions::default());
        let mut sim = Simulator::new(&bin.program, MachineConfig::default());
        for &(a, v) in &inputs {
            sim.preload_mem(a, v);
        }
        let res = sim.run().expect("halts");
        println!(
            "{:<22} {:>10} {:>9} {:>9} {:>9}",
            variant.label(),
            res.stats.cycles,
            res.stats.flushes,
            res.stats.flushes_avoided,
            res.stats.retired_uops,
        );
    }

    // 3. Show the wish-branch region the compiler generated (Fig. 3c shape).
    let wish = compile(
        &module,
        &profile,
        BinaryVariant::WishJumpJoin,
        &CompileOptions::default(),
    );
    println!("\nGenerated wish jump/join region:");
    for (i, insn) in wish.program.insns().iter().enumerate() {
        let line = insn.to_string();
        if line.contains("wish") || insn.guard.is_some() || line.starts_with("cmp") {
            println!("  {i:4}  {line}");
        }
    }
}
