//! # rand-shim
//!
//! A dependency-free, offline stand-in for the subset of the `rand` 0.8
//! API this workspace uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! and the [`Rng`] methods `gen`, `gen_range` and `gen_bool`.
//!
//! The build environment has no access to a crates.io registry, so the
//! workspace cannot download the real crate. Because every workload in
//! `wishbranch-workloads` derives its program shape and input data from a
//! seeded `StdRng`, this shim does not merely imitate the API — it
//! reimplements the exact `rand` 0.8 byte streams so previously recorded
//! experiment numbers remain valid:
//!
//! * `StdRng` is ChaCha12 (as in `rand` 0.8 via `rand_chacha`), with the
//!   same 4-block output buffering and `next_u64` word-pairing as
//!   `rand_core::block::BlockRng`;
//! * `seed_from_u64` uses `rand_core` 0.6's PCG32-based seed expansion;
//! * `gen_range` uses `rand` 0.8.5's widening-multiply rejection sampling
//!   (`UniformInt::sample_single_inclusive`);
//! * `gen_bool` uses `rand` 0.8's fixed-point `Bernoulli`.
//!
//! Everything is deterministic for a given seed, on every platform.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// The core trait: a source of random `u32`/`u64` words.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
}

/// Seedable RNGs. Only `seed_from_u64` is needed by this workspace.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed: AsMut<[u8]> + Default;

    /// Creates the RNG from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates the RNG from a `u64`, expanding it with the same PCG32
    /// stream `rand_core` 0.6 uses, so seeds produce identical state.
    fn seed_from_u64(mut state: u64) -> Self {
        fn pcg32(state: &mut u64) -> [u8; 4] {
            const MUL: u64 = 6_364_136_223_846_793_005;
            const INC: u64 = 11_634_580_027_462_260_723;
            *state = state.wrapping_mul(MUL).wrapping_add(INC);
            let s = *state;
            let xorshifted = (((s >> 18) ^ s) >> 27) as u32;
            let rot = (s >> 59) as u32;
            xorshifted.rotate_right(rot).to_le_bytes()
        }
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            let x = pcg32(&mut state);
            chunk.copy_from_slice(&x[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// User-facing convenience methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Returns a uniformly random value of a [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Returns a uniform value in `range` (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        // rand 0.8's Bernoulli: 64-bit fixed point, p == 1.0 special-cased.
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of range");
        if p == 1.0 {
            return true;
        }
        const SCALE: f64 = 2.0 * (1u64 << 63) as f64;
        let p_int = (p * SCALE) as u64;
        self.next_u64() < p_int
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable uniformly over their whole domain (rand's `Standard`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_via_u32 {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u32() as $t
            }
        }
    )*};
}
macro_rules! standard_via_u64 {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_via_u32!(u8, i8, u16, i16, u32, i32);
standard_via_u64!(u64, i64, usize, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // rand 0.8 compares a fresh u32 against its most significant bit.
        rng.next_u32() < 0x8000_0000
    }
}

/// Ranges that can produce a uniform sample (rand's `SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! uniform_int_impl {
    ($ty:ty, $unsigned:ty, $u_large:ty, $wide:ty) => {
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                sample_inclusive_helper!(self.start, self.end - 1, rng, $ty, $unsigned, $u_large, $wide)
            }
        }
        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                sample_inclusive_helper!(lo, hi, rng, $ty, $unsigned, $u_large, $wide)
            }
        }
    };
}

/// rand 0.8.5's `UniformInt::sample_single_inclusive`: widening multiply
/// with rejection of the biased low half-product zone.
macro_rules! sample_inclusive_helper {
    ($low:expr, $high:expr, $rng:expr, $ty:ty, $unsigned:ty, $u_large:ty, $wide:ty) => {{
        let low: $ty = $low;
        let high: $ty = $high;
        let range = (high as $unsigned).wrapping_sub(low as $unsigned).wrapping_add(1) as $u_large;
        if range == 0 {
            // The entire domain: one unrestricted draw.
            <$u_large as Standard>::sample($rng) as $ty
        } else {
            let zone = if (<$unsigned>::MAX as u64) <= u16::MAX as u64 {
                // Small types: compute the exact rejection zone.
                let unsigned_max = <$u_large>::MAX;
                let ints_to_reject = (unsigned_max - range + 1) % range;
                unsigned_max - ints_to_reject
            } else {
                (range << range.leading_zeros()).wrapping_sub(1)
            };
            loop {
                let v: $u_large = <$u_large as Standard>::sample($rng);
                let full = (v as $wide).wrapping_mul(range as $wide);
                let hi = (full >> (<$u_large>::BITS)) as $u_large;
                let lo = full as $u_large;
                if lo <= zone {
                    break low.wrapping_add(hi as $ty);
                }
            }
        }
    }};
}

uniform_int_impl!(i8, u8, u32, u64);
uniform_int_impl!(u8, u8, u32, u64);
uniform_int_impl!(i16, u16, u32, u64);
uniform_int_impl!(u16, u16, u32, u64);
uniform_int_impl!(i32, u32, u32, u64);
uniform_int_impl!(u32, u32, u32, u64);
uniform_int_impl!(i64, u64, u64, u128);
uniform_int_impl!(u64, u64, u64, u128);
uniform_int_impl!(isize, usize, usize, u128);
uniform_int_impl!(usize, usize, usize, u128);

/// Named RNGs, mirroring `rand::rngs`.
pub mod rngs {
    pub use super::StdRng;
}

const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];
/// Words buffered per refill: four 16-word ChaCha blocks, as in
/// `rand_chacha`'s `BlockRng` usage.
const BUF_WORDS: usize = 64;

/// The standard RNG: ChaCha12, bit-compatible with `rand` 0.8's `StdRng`.
#[derive(Clone, Debug)]
pub struct StdRng {
    key: [u32; 8],
    /// 64-bit block counter (state words 12–13).
    counter: u64,
    /// 64-bit stream id (state words 14–15); zero for `from_seed`.
    stream: u64,
    buf: [u32; BUF_WORDS],
    index: usize,
}

impl StdRng {
    fn chacha12_block(&self, counter: u64) -> [u32; 16] {
        let mut x = [0u32; 16];
        x[..4].copy_from_slice(&CONSTANTS);
        x[4..12].copy_from_slice(&self.key);
        x[12] = counter as u32;
        x[13] = (counter >> 32) as u32;
        x[14] = self.stream as u32;
        x[15] = (self.stream >> 32) as u32;
        let initial = x;

        macro_rules! qr {
            ($a:expr, $b:expr, $c:expr, $d:expr) => {
                x[$a] = x[$a].wrapping_add(x[$b]);
                x[$d] = (x[$d] ^ x[$a]).rotate_left(16);
                x[$c] = x[$c].wrapping_add(x[$d]);
                x[$b] = (x[$b] ^ x[$c]).rotate_left(12);
                x[$a] = x[$a].wrapping_add(x[$b]);
                x[$d] = (x[$d] ^ x[$a]).rotate_left(8);
                x[$c] = x[$c].wrapping_add(x[$d]);
                x[$b] = (x[$b] ^ x[$c]).rotate_left(7);
            };
        }
        for _ in 0..6 {
            // One double round = 2 of ChaCha12's 12 rounds.
            qr!(0, 4, 8, 12);
            qr!(1, 5, 9, 13);
            qr!(2, 6, 10, 14);
            qr!(3, 7, 11, 15);
            qr!(0, 5, 10, 15);
            qr!(1, 6, 11, 12);
            qr!(2, 7, 8, 13);
            qr!(3, 4, 9, 14);
        }
        for (o, i) in x.iter_mut().zip(initial) {
            *o = o.wrapping_add(i);
        }
        x
    }

    /// Refills the 4-block buffer and positions the cursor at `offset`.
    fn generate_and_set(&mut self, offset: usize) {
        for block in 0..BUF_WORDS / 16 {
            let words = self.chacha12_block(self.counter.wrapping_add(block as u64));
            self.buf[block * 16..(block + 1) * 16].copy_from_slice(&words);
        }
        self.counter = self.counter.wrapping_add((BUF_WORDS / 16) as u64);
        self.index = offset;
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> StdRng {
        let mut key = [0u32; 8];
        for (k, bytes) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes(bytes.try_into().expect("4-byte chunk"));
        }
        StdRng {
            key,
            counter: 0,
            stream: 0,
            buf: [0; BUF_WORDS],
            index: BUF_WORDS,
        }
    }
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= BUF_WORDS {
            self.generate_and_set(0);
        }
        let v = self.buf[self.index];
        self.index += 1;
        v
    }

    // `rand_core::block::BlockRng::next_u64`: pair consecutive u32 words,
    // low word first, straddling buffer refills exactly as upstream does.
    fn next_u64(&mut self) -> u64 {
        let i = self.index;
        if i < BUF_WORDS - 1 {
            self.index += 2;
            u64::from(self.buf[i + 1]) << 32 | u64::from(self.buf[i])
        } else if i >= BUF_WORDS {
            self.generate_and_set(2);
            u64::from(self.buf[1]) << 32 | u64::from(self.buf[0])
        } else {
            let lo = u64::from(self.buf[BUF_WORDS - 1]);
            self.generate_and_set(1);
            u64::from(self.buf[0]) << 32 | lo
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn gen_range_bounds_and_coverage() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.gen_range(0usize..10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
        for _ in 0..1000 {
            let v = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&v));
        }
        for _ in 0..1000 {
            let v = rng.gen_range(-7i32..8);
            assert!((-7..8).contains(&v));
        }
    }

    #[test]
    fn gen_bool_extremes_and_balance() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "p=0.5 balance: {heads}");
    }

    #[test]
    fn mixed_u32_u64_draws_stay_deterministic_across_refills() {
        // Exercise the BlockRng boundary cases (index == BUF_WORDS - 1).
        let mut a = StdRng::seed_from_u64(3);
        let mut b = StdRng::seed_from_u64(3);
        let mut out_a = Vec::new();
        let mut out_b = Vec::new();
        for k in 0..300 {
            if k % 3 == 0 {
                out_a.push(u64::from(a.next_u32()));
                out_b.push(u64::from(b.next_u32()));
            } else {
                out_a.push(a.next_u64());
                out_b.push(b.next_u64());
            }
        }
        assert_eq!(out_a, out_b);
    }

    #[test]
    fn seed_expansion_matches_rand_core_pcg32_shape() {
        // Different low-hamming-weight seeds must expand to unrelated keys.
        let a = StdRng::seed_from_u64(0);
        let b = StdRng::seed_from_u64(1);
        assert_ne!(a.key, b.key);
        assert_ne!(a.key, [0u32; 8], "seed 0 still expands to a real key");
    }
}
