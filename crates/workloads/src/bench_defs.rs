//! The nine benchmark programs. Each function documents which paper
//! behaviour it reproduces and how its input sets modulate that behaviour.

use crate::common::{
    count_array, emit_index, emit_prologue, emit_xorshift, input_rng, regs, signed_array,
    DATA_BASE,
};
use crate::{Benchmark, InputSet};
use wishbranch_ir::{FunctionBuilder, Module};
use wishbranch_isa::{AluOp, CmpOp, Gpr, Operand};

fn r(i: u8) -> Gpr {
    Gpr::new(i)
}

fn set_tag(set: InputSet) -> u64 {
    match set {
        InputSet::A => 0,
        InputSet::B => 1,
        InputSet::C => 2,
    }
}

/// Values that are large-positive with probability `1-q` and borderline
/// (±16, a coin flip once ±16 noise is added) with probability `q`: the
/// branch-entropy knob used by most benchmarks.
fn bias_array(bench: &str, set: InputSet, n: u64, q: f64) -> Vec<(u64, i64)> {
    let mut rng = input_rng(bench, set_tag(set));
    use rand::Rng;
    (0..n)
        .map(|i| {
            let v = if rng.gen_bool(q) {
                rng.gen_range(-16..=16)
            } else {
                1000
            };
            (DATA_BASE as u64 + i * 8, v)
        })
        .collect()
}

/// Emits `r7 = data[idx & mask] + (noise in -16..=15)` then branches on
/// `r7 >= 0` — an easy branch for large-positive data, a coin flip for
/// borderline data.
fn emit_noisy_branch(
    f: &mut FunctionBuilder,
    idx: Gpr,
    mask: i32,
    then_b: wishbranch_ir::BlockId,
    else_b: wishbranch_ir::BlockId,
) {
    emit_index(f, r(2), idx, mask, 0);
    f.load(r(6), r(2), 0);
    emit_xorshift(f, r(3));
    f.alu(AluOp::And, r(7), regs::PRNG, Operand::imm(31));
    f.alu(AluOp::Sub, r(7), r(7), Operand::imm(16));
    f.alu(AluOp::Add, r(7), r(7), Operand::Reg(r(6)));
    f.branch(CmpOp::Ge, r(7), Operand::imm(0), then_b, else_b);
}

/// Emits `count` dependent-ish ALU filler µops over `dsts`, reading `src`.
fn emit_arm(f: &mut FunctionBuilder, src: Gpr, dsts: &[Gpr], salt: i32) {
    for (k, &d) in dsts.iter().enumerate() {
        let op = [AluOp::Add, AluOp::Sub, AluOp::Xor][(k + salt as usize) % 3];
        let src2 = if k % 2 == 0 {
            Operand::Reg(src)
        } else {
            Operand::imm(salt + k as i32)
        };
        f.alu(op, d, d, src2);
    }
}

/// Standard epilogue: spill accumulators so architectural equivalence
/// checks observe the computation.
fn emit_epilogue(f: &mut FunctionBuilder) {
    for (slot, reg) in (8..14).enumerate() {
        f.store(r(reg), regs::OUT, slot as i32 * 8);
    }
    f.store(regs::PRNG, regs::OUT, 64);
}

/// **gzip** — LZ-style literal/match decision plus a short copy loop.
///
/// Paper evidence: gzip's wish binary gains 12.5% over normal branches
/// (Table 5); 61% of its dynamic wish branches are loops (Table 4). Input
/// sets vary compressibility: input-A is highly compressible (decision
/// branch predictable), input-C is near-random.
#[must_use]
pub fn gzip(scale: i32) -> Benchmark {
    let mut f = FunctionBuilder::new("gzip");
    let e = f.entry_block();
    let outer = f.new_block();
    let match_b = f.new_block();
    let lit_b = f.new_block();
    let join = f.new_block();
    let copy = f.new_block();
    let copy_exit = f.new_block();
    let exit = f.new_block();
    f.select(e);
    emit_prologue(&mut f);
    f.movi(r(20), 0);
    f.jump(outer);
    f.select(outer);
    emit_noisy_branch(&mut f, r(20), 4095, match_b, lit_b);
    f.select(lit_b);
    emit_arm(&mut f, r(6), &[r(8), r(9), r(10), r(8), r(9), r(10)], 3);
    f.jump(join);
    f.select(match_b);
    emit_arm(&mut f, r(6), &[r(11), r(12), r(13), r(11), r(12), r(13)], 5);
    f.jump(join);
    f.select(join);
    // Copy loop: trip = 1 + (match length from the data stream & 3).
    emit_index(&mut f, r(2), r(20), 4095, 4096);
    f.load(r(4), r(2), 0);
    f.alu(AluOp::And, r(4), r(4), Operand::imm(3));
    f.alu(AluOp::Add, r(4), r(4), Operand::imm(1));
    f.movi(r(21), 0);
    f.jump(copy);
    f.select(copy);
    f.alu(AluOp::Add, r(9), r(9), Operand::Reg(r(21)));
    f.alu(AluOp::Xor, r(10), r(10), Operand::Reg(r(9)));
    f.alu(AluOp::Add, r(21), r(21), Operand::imm(1));
    f.branch(CmpOp::Lt, r(21), Operand::Reg(r(4)), copy, copy_exit);
    f.select(copy_exit);
    f.alu(AluOp::Add, r(20), r(20), Operand::imm(1));
    f.branch(CmpOp::Lt, r(20), Operand::imm(scale), outer, exit);
    f.select(exit);
    emit_epilogue(&mut f);
    f.halt();
    Benchmark {
        name: "gzip",
        module: Module::new(vec![f.build()], 0).expect("valid module"),
        behavior: "LZ literal/match decision + short copy loops; hardness follows input entropy",
        input_fn: |set| {
            let q = match set {
                InputSet::A => 0.05,
                InputSet::B => 0.25,
                InputSet::C => 0.50,
            };
            let mut mem = bias_array("gzip", set, 4096, q);
            let mut rng = input_rng("gzip-len", set_tag(set));
            // Match lengths: constant for compressible input, random
            // otherwise (drives wish-loop late exits).
            if set == InputSet::A {
                mem.extend((0..4096u64).map(|i| (DATA_BASE as u64 + (4096 + i) * 8, 2)));
            } else {
                mem.extend(
                    count_array(&mut rng, 4096, 64)
                        .into_iter()
                        .map(|(a, v)| (a + 4096 * 8, v)),
                );
            }
            mem
        },
    }
}

/// **vpr** — simulated-annealing accept/reject hammock plus a variable
/// net-pin loop.
///
/// Paper evidence: vpr gains 36.3% with wish branches vs normal and 23.9%
/// vs the best predicated binary (Table 5); wish loops add >3% (Fig. 12).
#[must_use]
pub fn vpr(scale: i32) -> Benchmark {
    let mut f = FunctionBuilder::new("vpr");
    let e = f.entry_block();
    let outer = f.new_block();
    let accept = f.new_block();
    let reject = f.new_block();
    let join = f.new_block();
    let pins = f.new_block();
    let pins_exit = f.new_block();
    let exit = f.new_block();
    f.select(e);
    emit_prologue(&mut f);
    f.movi(r(20), 0);
    f.jump(outer);
    f.select(outer);
    emit_noisy_branch(&mut f, r(20), 2047, accept, reject);
    f.select(reject);
    emit_arm(&mut f, r(7), &[r(8), r(9), r(8), r(9), r(8), r(9), r(10)], 2);
    f.jump(join);
    f.select(accept);
    emit_arm(&mut f, r(7), &[r(11), r(12), r(11), r(12), r(11), r(12), r(13)], 4);
    f.jump(join);
    f.select(join);
    // Net-pin loop: trip 1..=4 from input data (hard to predict).
    emit_index(&mut f, r(2), r(20), 2047, 2048);
    f.load(r(4), r(2), 0);
    f.alu(AluOp::And, r(4), r(4), Operand::imm(3));
    f.alu(AluOp::Add, r(4), r(4), Operand::imm(1));
    f.movi(r(21), 0);
    f.jump(pins);
    f.select(pins);
    f.alu(AluOp::Add, r(10), r(10), Operand::Reg(r(4)));
    f.alu(AluOp::Sub, r(13), r(13), Operand::Reg(r(21)));
    f.alu(AluOp::Add, r(21), r(21), Operand::imm(1));
    f.branch(CmpOp::Lt, r(21), Operand::Reg(r(4)), pins, pins_exit);
    f.select(pins_exit);
    f.alu(AluOp::Add, r(20), r(20), Operand::imm(1));
    f.branch(CmpOp::Lt, r(20), Operand::imm(scale), outer, exit);
    f.select(exit);
    emit_epilogue(&mut f);
    f.halt();
    Benchmark {
        name: "vpr",
        module: Module::new(vec![f.build()], 0).expect("valid module"),
        behavior: "annealing accept/reject hammock + variable net-pin loops (wish-loop win)",
        input_fn: |set| {
            let q = match set {
                InputSet::A => 0.15,
                InputSet::B => 0.35,
                InputSet::C => 0.55,
            };
            let mut mem = bias_array("vpr", set, 2048, q);
            let mut rng = input_rng("vpr-pins", set_tag(set));
            mem.extend(
                count_array(&mut rng, 2048, 97)
                    .into_iter()
                    .map(|(a, v)| (a + 2048 * 8, v)),
            );
            mem
        },
    }
}

/// **mcf** — arc-array scan with a guarded dependent load per arc.
///
/// Paper evidence: aggressive predication slows mcf down by 102% because
/// "the execution of many critical load instructions … are delayed because
/// their source predicates are dependent on other critical loads", i.e.
/// predication serializes loads that branch prediction would service in
/// parallel (§5.1). Here each iteration loads an arc cost (large,
/// L2-resident array, parallel across iterations), compares it, and
/// *conditionally* loads a node word into an accumulator register. Under
/// C-style predication the guarded load's predicate and old-destination
/// dependences chain consecutive iterations — every node load waits for
/// the previous one plus the cost load's latency. Under branch prediction
/// (the branch is ≥95% taken and easy) the loads all overlap. Wish
/// branches detect the easy branch and predict the predicate, recovering
/// the parallelism (the paper's mcf headline).
#[must_use]
pub fn mcf(scale: i32) -> Benchmark {
    const TABLE: i32 = 1 << 14; // 128 KiB cost array + 128 KiB node table
    let mut f = FunctionBuilder::new("mcf");
    let e = f.entry_block();
    let outer = f.new_block();
    let then_b = f.new_block();
    let else_b = f.new_block();
    let join = f.new_block();
    let exit = f.new_block();
    f.select(e);
    emit_prologue(&mut f);
    f.movi(r(20), 0);
    f.jump(outer);
    f.select(outer);
    // Arc cost load: address from the induction variable → iterations
    // overlap freely in the window.
    emit_index(&mut f, r(2), r(20), TABLE - 1, 0);
    f.load(r(6), r(2), 0);
    emit_xorshift(&mut f, r(3));
    f.alu(AluOp::And, r(7), regs::PRNG, Operand::imm(31));
    f.alu(AluOp::Sub, r(7), r(7), Operand::imm(16));
    f.alu(AluOp::Add, r(7), r(7), Operand::Reg(r(6)));
    // Independent per-arc bookkeeping (keeps the normal binary busy).
    emit_arm(&mut f, r(6), &[r(9), r(10), r(11), r(12), r(9), r(10), r(11), r(12)], 3);
    f.branch(CmpOp::Ge, r(7), Operand::imm(0), then_b, else_b);
    f.select(else_b);
    emit_arm(&mut f, r(6), &[r(9), r(10), r(11), r(12), r(13), r(9)], 1);
    f.jump(join);
    f.select(then_b);
    // The critical guarded load: node word indexed by the arc cost. Its
    // address does NOT depend on r8, so only predication's old-destination
    // and guard dependences serialize it.
    f.alu(AluOp::Xor, r(5), r(6), Operand::Reg(r(20)));
    f.alu(AluOp::And, r(5), r(5), Operand::imm(TABLE - 1));
    f.alu(AluOp::Shl, r(5), r(5), Operand::imm(3));
    f.alu(AluOp::Add, r(5), r(5), Operand::Reg(regs::DATA));
    f.load(r(8), r(5), TABLE * 8);
    f.alu(AluOp::Add, r(13), r(13), Operand::Reg(r(8)));
    f.jump(join);
    f.select(join);
    f.alu(AluOp::Add, r(20), r(20), Operand::imm(1));
    f.branch(CmpOp::Lt, r(20), Operand::imm(scale), outer, exit);
    f.select(exit);
    emit_epilogue(&mut f);
    f.halt();
    Benchmark {
        name: "mcf",
        module: Module::new(vec![f.build()], 0).expect("valid module"),
        behavior: "guarded dependent loads: predication serializes what prediction overlaps",
        input_fn: |set| {
            let q = match set {
                InputSet::A => 0.001,
                InputSet::B => 0.01,
                InputSet::C => 0.05,
            };
            let n = 1u64 << 14;
            let mut mem = bias_array("mcf", set, n, q);
            let mut rng = input_rng("mcf-nodes", set_tag(set));
            mem.extend(
                count_array(&mut rng, n, 1 << 20)
                    .into_iter()
                    .map(|(a, v)| (a + n * 8, v)),
            );
            mem
        },
    }
}

/// **crafty** — search-engine integer code: one easy and one hard hammock
/// per position, plus a short occupancy-scan loop.
///
/// Paper evidence: crafty gains 16.8% vs normal branches, 0.4% vs BASE-MAX
/// (Table 5) — both predication and wish branches pay off on its
/// mixed-hardness branches.
#[must_use]
pub fn crafty(scale: i32) -> Benchmark {
    let mut f = FunctionBuilder::new("crafty");
    let e = f.entry_block();
    let outer = f.new_block();
    let t1 = f.new_block();
    let e1 = f.new_block();
    let j1 = f.new_block();
    let t2 = f.new_block();
    let e2 = f.new_block();
    let j2 = f.new_block();
    let scan = f.new_block();
    let scan_exit = f.new_block();
    let exit = f.new_block();
    f.select(e);
    emit_prologue(&mut f);
    f.movi(r(20), 0);
    f.jump(outer);
    f.select(outer);
    // Hard hammock (evaluation sign).
    emit_noisy_branch(&mut f, r(20), 1023, t1, e1);
    f.select(e1);
    emit_arm(&mut f, r(7), &[r(8), r(9), r(10), r(8), r(9), r(10)], 1);
    f.jump(j1);
    f.select(t1);
    emit_arm(&mut f, r(7), &[r(11), r(12), r(13), r(11), r(12), r(13)], 2);
    f.jump(j1);
    f.select(j1);
    // Easy hammock (in-check test, rarely true).
    emit_index(&mut f, r(2), r(20), 1023, 1024);
    f.load(r(6), r(2), 0);
    f.branch(CmpOp::Ge, r(6), Operand::imm(0), t2, e2);
    f.select(e2);
    emit_arm(&mut f, r(6), &[r(8), r(10), r(12), r(8), r(10), r(12)], 3);
    f.jump(j2);
    f.select(t2);
    emit_arm(&mut f, r(6), &[r(9), r(11), r(13), r(9), r(11), r(13)], 4);
    f.jump(j2);
    f.select(j2);
    // Occupancy scan: trip 1..=3, fairly predictable.
    f.alu(AluOp::And, r(4), r(6), Operand::imm(1));
    f.alu(AluOp::Add, r(4), r(4), Operand::imm(1));
    f.movi(r(21), 0);
    f.jump(scan);
    f.select(scan);
    f.alu(AluOp::Add, r(9), r(9), Operand::imm(1));
    f.alu(AluOp::Add, r(21), r(21), Operand::imm(1));
    f.branch(CmpOp::Lt, r(21), Operand::Reg(r(4)), scan, scan_exit);
    f.select(scan_exit);
    f.alu(AluOp::Add, r(20), r(20), Operand::imm(1));
    f.branch(CmpOp::Lt, r(20), Operand::imm(scale), outer, exit);
    f.select(exit);
    emit_epilogue(&mut f);
    f.halt();
    Benchmark {
        name: "crafty",
        module: Module::new(vec![f.build()], 0).expect("valid module"),
        behavior: "mixed-hardness hammocks (hard eval sign + easy in-check) and short scans",
        input_fn: |set| {
            let q = match set {
                InputSet::A => 0.25,
                InputSet::B => 0.40,
                InputSet::C => 0.50,
            };
            let mut mem = bias_array("crafty", set, 1024, q);
            // Second array: mostly positive (easy branch).
            let mut rng = input_rng("crafty-easy", set_tag(set));
            mem.extend(
                signed_array(&mut rng, 1024, 0.03, 100)
                    .into_iter()
                    .map(|(a, v)| (a + 1024 * 8, v)),
            );
            mem
        },
    }
}

/// **parser** — word-by-word scan: predictable dictionary hammock with
/// *small* arms (plainly predicated even in wish binaries) plus a
/// hard variable word-length loop.
///
/// Paper evidence: parser's overhead from predication is small (Fig. 2),
/// wish jumps/joins change little, but wish loops add >3% (Fig. 12).
#[must_use]
pub fn parser(scale: i32) -> Benchmark {
    let mut f = FunctionBuilder::new("parser");
    let e = f.entry_block();
    let outer = f.new_block();
    let t1 = f.new_block();
    let e1 = f.new_block();
    let j1 = f.new_block();
    let wloop = f.new_block();
    let wexit = f.new_block();
    let exit = f.new_block();
    f.select(e);
    emit_prologue(&mut f);
    f.movi(r(20), 0);
    f.jump(outer);
    f.select(outer);
    // Dictionary-hit hammock: predictable, tiny arms.
    emit_index(&mut f, r(2), r(20), 2047, 0);
    f.load(r(6), r(2), 0);
    f.branch(CmpOp::Ge, r(6), Operand::imm(0), t1, e1);
    f.select(e1);
    f.alu(AluOp::Sub, r(8), r(8), Operand::imm(1));
    f.jump(j1);
    f.select(t1);
    f.alu(AluOp::Add, r(8), r(8), Operand::imm(1));
    f.jump(j1);
    f.select(j1);
    // Word-length loop: trip 1..=5, data-dependent and unpredictable.
    emit_index(&mut f, r(2), r(20), 2047, 2048);
    f.load(r(4), r(2), 0);
    f.alu(AluOp::And, r(4), r(4), Operand::imm(3));
    f.alu(AluOp::Add, r(4), r(4), Operand::imm(1));
    f.movi(r(21), 0);
    f.jump(wloop);
    f.select(wloop);
    f.alu(AluOp::Add, r(9), r(9), Operand::Reg(r(8)));
    f.alu(AluOp::Xor, r(10), r(10), Operand::Reg(r(9)));
    f.alu(AluOp::Add, r(21), r(21), Operand::imm(1));
    f.branch(CmpOp::Lt, r(21), Operand::Reg(r(4)), wloop, wexit);
    f.select(wexit);
    f.alu(AluOp::Add, r(20), r(20), Operand::imm(1));
    f.branch(CmpOp::Lt, r(20), Operand::imm(scale), outer, exit);
    f.select(exit);
    emit_epilogue(&mut f);
    f.halt();
    Benchmark {
        name: "parser",
        module: Module::new(vec![f.build()], 0).expect("valid module"),
        behavior: "predictable dictionary hammock (tiny arms) + hard word-length loops",
        input_fn: |set| {
            let mut rng = input_rng("parser", set_tag(set));
            let mut mem = signed_array(&mut rng, 2048, 0.08, 100);
            let lens_q = match set {
                InputSet::A => 16, // lengths cluster (predictable-ish)
                InputSet::B => 64,
                InputSet::C => 997, // fully random lengths
            };
            let mut rng = input_rng("parser-len", set_tag(set));
            mem.extend(
                count_array(&mut rng, 2048, lens_q)
                    .into_iter()
                    .map(|(a, v)| (a + 2048 * 8, v)),
            );
            mem
        },
    }
}

/// **gap** — arithmetic over vectors with highly predictable guards and a
/// *large* rarely-used arm: predication is pure fetch overhead.
///
/// Paper evidence: gap's BASE-DEF loses vs normal branches; wish branches
/// recover the loss (Fig. 10, +4.9% vs normal in Table 5).
#[must_use]
pub fn gap(scale: i32) -> Benchmark {
    let mut f = FunctionBuilder::new("gap");
    let e = f.entry_block();
    let outer = f.new_block();
    let t1 = f.new_block();
    let e1 = f.new_block();
    let j1 = f.new_block();
    let exit = f.new_block();
    f.select(e);
    emit_prologue(&mut f);
    f.movi(r(20), 0);
    f.jump(outer);
    f.select(outer);
    emit_noisy_branch(&mut f, r(20), 4095, t1, e1);
    f.select(e1);
    // Rare big arm: multiprecision carry fix-up.
    emit_arm(
        &mut f,
        r(7),
        &[r(8), r(9), r(10), r(11), r(8), r(9), r(10), r(11), r(8), r(9), r(10), r(11)],
        6,
    );
    f.jump(j1);
    f.select(t1);
    // Common arm, also sizable.
    emit_arm(
        &mut f,
        r(7),
        &[r(12), r(13), r(12), r(13), r(12), r(13), r(12), r(13), r(12), r(13)],
        7,
    );
    f.jump(j1);
    f.select(j1);
    f.alu(AluOp::Add, r(20), r(20), Operand::imm(1));
    f.branch(CmpOp::Lt, r(20), Operand::imm(scale), outer, exit);
    f.select(exit);
    emit_epilogue(&mut f);
    f.halt();
    Benchmark {
        name: "gap",
        module: Module::new(vec![f.build()], 0).expect("valid module"),
        behavior: "predictable guard with large arms: predication = pure fetch overhead",
        input_fn: |set| {
            let q = match set {
                InputSet::A => 0.002,
                InputSet::B => 0.01,
                InputSet::C => 0.05,
            };
            bias_array("gap", set, 4096, q)
        },
    }
}

/// **vortex** — OO-database style code: many distinct, extremely
/// predictable small hammocks and a call-heavy structure.
///
/// Paper evidence: vortex has 0.8 mispredictions per 1K µops (Table 4);
/// wish branches gain nothing and lose slightly vs predicated binaries
/// (Table 5, −4.3%). Our compiler does not lose optimization scope across
/// wish branches, so the loss here is only the extra wish instructions.
#[must_use]
pub fn vortex(scale: i32) -> Benchmark {
    // A small helper function models vortex's dense call graph.
    let mut h = FunctionBuilder::new("vortex_helper");
    let he = h.entry_block();
    let ht = h.new_block();
    let hel = h.new_block();
    let hj = h.new_block();
    h.select(he);
    h.alu(AluOp::Add, r(9), r(9), Operand::Reg(r(6)));
    h.branch(CmpOp::Ge, r(9), Operand::imm(0), ht, hel);
    h.select(hel);
    h.alu(AluOp::Sub, r(10), r(10), Operand::imm(1));
    h.alu(AluOp::Xor, r(11), r(11), Operand::imm(2));
    h.jump(hj);
    h.select(ht);
    h.alu(AluOp::Add, r(10), r(10), Operand::imm(1));
    h.alu(AluOp::Xor, r(11), r(11), Operand::imm(4));
    h.jump(hj);
    h.select(hj);
    h.ret();

    let mut f = FunctionBuilder::new("vortex");
    let e = f.entry_block();
    let outer = f.new_block();
    // Three consecutive predictable hammocks with different sizes.
    let mut hblocks = Vec::new();
    for _ in 0..3 {
        hblocks.push((f.new_block(), f.new_block(), f.new_block()));
    }
    let call_site = f.new_block();
    let exit = f.new_block();
    f.select(e);
    emit_prologue(&mut f);
    f.movi(r(20), 0);
    f.jump(outer);
    f.select(outer);
    emit_index(&mut f, r(2), r(20), 1023, 0);
    f.load(r(6), r(2), 0);
    let (t0, e0, _j0) = hblocks[0];
    // Branch on the *rare* direction so the common path falls through —
    // the normal binary then fetches straight-line, which is what makes
    // extra wish instructions a (slight) net loss on vortex (Table 5).
    f.branch(CmpOp::Lt, r(6), Operand::imm(0), t0, e0);
    for (k, &(t, el, j)) in hblocks.iter().enumerate() {
        let arms = 2 + 2 * k; // 2, 4, 6 µops — around the N=5 threshold
        // Each hammock accumulates into its own registers so the per-move
        // dataflow stays parallel (as in real record-validation code).
        let er = r(8 + 2 * k as u8);
        let tr = r(9 + 2 * k as u8);
        f.select(el);
        emit_arm(&mut f, r(6), &vec![er; arms], k as i32);
        f.jump(j);
        f.select(t);
        emit_arm(&mut f, r(6), &vec![tr; arms], k as i32 + 1);
        f.jump(j);
        f.select(j);
        if k + 1 < hblocks.len() {
            let (nt, ne, _) = hblocks[k + 1];
            f.load(r(6), r(2), 1024 * 8 * (k as i32 + 1));
            f.branch(CmpOp::Lt, r(6), Operand::imm(0), nt, ne);
        } else {
            f.jump(call_site);
        }
    }
    f.select(call_site);
    f.call(wishbranch_ir::FuncId(1));
    f.alu(AluOp::Add, r(20), r(20), Operand::imm(1));
    f.branch(CmpOp::Lt, r(20), Operand::imm(scale), outer, exit);
    f.select(exit);
    emit_epilogue(&mut f);
    f.halt();
    Benchmark {
        name: "vortex",
        module: Module::new(vec![f.build(), h.build()], 0).expect("valid module"),
        behavior: "many distinct highly predictable hammocks + dense calls (RAS traffic)",
        input_fn: |set| {
            let mut rng = input_rng("vortex", set_tag(set));
            let p = match set {
                InputSet::A => 0.005,
                InputSet::B => 0.01,
                InputSet::C => 0.03,
            };
            let mut mem = signed_array(&mut rng, 1024, p, 100);
            for k in 1..3u64 {
                let mut rng = input_rng("vortex", set_tag(set) + 10 * k);
                mem.extend(
                    signed_array(&mut rng, 1024, p, 100)
                        .into_iter()
                        .map(|(a, v)| (a + 1024 * 8 * k, v)),
                );
            }
            mem
        },
    }
}

/// **bzip2** — run-counting loops over a data stream whose entropy is
/// strongly input-dependent.
///
/// Paper evidence: predication loses 16% on bzip2's input-A and wins 1% on
/// input-C on real hardware (Fig. 1); 90% of bzip2's dynamic wish branches
/// are wish loops (Table 4).
#[must_use]
pub fn bzip2(scale: i32) -> Benchmark {
    let mut f = FunctionBuilder::new("bzip2");
    let e = f.entry_block();
    let outer = f.new_block();
    let t1 = f.new_block();
    let e1 = f.new_block();
    let j1 = f.new_block();
    let run = f.new_block();
    let run_exit = f.new_block();
    let exit = f.new_block();
    f.select(e);
    emit_prologue(&mut f);
    f.movi(r(20), 0);
    f.jump(outer);
    f.select(outer);
    // Comparison hammock (sorting order check).
    emit_noisy_branch(&mut f, r(20), 4095, t1, e1);
    f.select(e1);
    emit_arm(&mut f, r(7), &[r(8), r(9), r(10), r(8), r(9), r(10)], 1);
    f.jump(j1);
    f.select(t1);
    emit_arm(&mut f, r(7), &[r(11), r(12), r(13), r(11), r(12), r(13)], 2);
    f.jump(j1);
    f.select(j1);
    // Run-length loop: trip = 1 + (stream byte & 7).
    emit_index(&mut f, r(2), r(20), 4095, 4096);
    f.load(r(4), r(2), 0);
    f.alu(AluOp::And, r(4), r(4), Operand::imm(7));
    f.alu(AluOp::Add, r(4), r(4), Operand::imm(1));
    f.movi(r(21), 0);
    f.jump(run);
    f.select(run);
    f.alu(AluOp::Add, r(9), r(9), Operand::imm(1));
    f.alu(AluOp::Xor, r(12), r(12), Operand::Reg(r(9)));
    f.alu(AluOp::Add, r(21), r(21), Operand::imm(1));
    f.branch(CmpOp::Lt, r(21), Operand::Reg(r(4)), run, run_exit);
    f.select(run_exit);
    f.alu(AluOp::Add, r(20), r(20), Operand::imm(1));
    f.branch(CmpOp::Lt, r(20), Operand::imm(scale), outer, exit);
    f.select(exit);
    emit_epilogue(&mut f);
    f.halt();
    Benchmark {
        name: "bzip2",
        module: Module::new(vec![f.build()], 0).expect("valid module"),
        behavior: "sort-order hammocks + run-length loops; entropy strongly input-dependent",
        input_fn: |set| {
            // input-A: structured text (easy branch, constant runs);
            // input-C: already-compressed data (coin flips, random runs).
            let q = match set {
                InputSet::A => 0.03,
                InputSet::B => 0.30,
                InputSet::C => 0.55,
            };
            let mut mem = bias_array("bzip2", set, 4096, q);
            if set == InputSet::A {
                mem.extend((0..4096u64).map(|i| (DATA_BASE as u64 + (4096 + i) * 8, 3)));
            } else {
                let mut rng = input_rng("bzip2-runs", set_tag(set));
                mem.extend(
                    count_array(&mut rng, 4096, 251)
                        .into_iter()
                        .map(|(a, v)| (a + 4096 * 8, v)),
                );
            }
            mem
        },
    }
}

/// **twolf** — placement cost comparisons: two hard hammocks with sizable
/// arms per move.
///
/// Paper evidence: twolf is the biggest wish-branch winner (29.8% vs
/// normal, 13.8% vs BASE-MAX, Table 5): its branches are hard, so both
/// predication and (better) adaptive predication pay off.
#[must_use]
pub fn twolf(scale: i32) -> Benchmark {
    let mut f = FunctionBuilder::new("twolf");
    let e = f.entry_block();
    let outer = f.new_block();
    let t1 = f.new_block();
    let e1 = f.new_block();
    let j1 = f.new_block();
    let t2 = f.new_block();
    let e2 = f.new_block();
    let j2 = f.new_block();
    let exit = f.new_block();
    f.select(e);
    emit_prologue(&mut f);
    f.movi(r(20), 0);
    f.jump(outer);
    f.select(outer);
    emit_noisy_branch(&mut f, r(20), 2047, t1, e1);
    f.select(e1);
    emit_arm(&mut f, r(7), &[r(8), r(9), r(10), r(8), r(9), r(10), r(8), r(9)], 1);
    f.jump(j1);
    f.select(t1);
    emit_arm(&mut f, r(7), &[r(11), r(12), r(13), r(11), r(12), r(13), r(11), r(12)], 2);
    f.jump(j1);
    f.select(j1);
    emit_noisy_branch(&mut f, r(9), 2047, t2, e2);
    f.select(e2);
    emit_arm(&mut f, r(7), &[r(8), r(10), r(12), r(8), r(10), r(12), r(8), r(10)], 3);
    f.jump(j2);
    f.select(t2);
    emit_arm(&mut f, r(7), &[r(9), r(11), r(13), r(9), r(11), r(13), r(9), r(11)], 4);
    f.jump(j2);
    f.select(j2);
    f.alu(AluOp::Add, r(20), r(20), Operand::imm(1));
    f.branch(CmpOp::Lt, r(20), Operand::imm(scale), outer, exit);
    f.select(exit);
    emit_epilogue(&mut f);
    f.halt();
    Benchmark {
        name: "twolf",
        module: Module::new(vec![f.build()], 0).expect("valid module"),
        behavior: "two hard cost hammocks with big arms per move: adaptive predication shines",
        input_fn: |set| {
            let q = match set {
                InputSet::A => 0.30,
                InputSet::B => 0.45,
                InputSet::C => 0.55,
            };
            bias_array("twolf", set, 2048, q)
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite;
    use wishbranch_ir::Interpreter;

    #[test]
    fn all_benchmarks_build_and_run() {
        for b in suite(20) {
            for set in InputSet::ALL {
                let mut interp = Interpreter::new();
                for (a, v) in (b.input_fn)(set) {
                    interp.mem.insert(a, v);
                }
                let res = interp
                    .run(&b.module, 10_000_000)
                    .unwrap_or_else(|e| panic!("{} {set}: {e}", b.name));
                assert!(res.steps > 100, "{} did too little work", b.name);
                assert!(
                    !res.profile.is_empty(),
                    "{} must exercise branches",
                    b.name
                );
            }
        }
    }

    #[test]
    fn inputs_are_deterministic() {
        let b = gzip(10);
        assert_eq!((b.input_fn)(InputSet::B), (b.input_fn)(InputSet::B));
        assert_ne!((b.input_fn)(InputSet::A), (b.input_fn)(InputSet::C));
    }

    #[test]
    fn entropy_ordering_a_below_c() {
        // The profiled misprediction estimate must rise from input A to C
        // for the entropy-knob benchmarks.
        for b in [gzip(400), bzip2(400), twolf(400)] {
            let mut rates = Vec::new();
            for set in [InputSet::A, InputSet::C] {
                let mut interp = Interpreter::new();
                for (a, v) in (b.input_fn)(set) {
                    interp.mem.insert(a, v);
                }
                let res = interp.run(&b.module, 10_000_000).unwrap();
                let (mut misp, mut total) = (0u64, 0u64);
                for p in res.profile.values() {
                    misp += p.est_mispredicts;
                    total += p.executions();
                }
                rates.push(misp as f64 / total as f64);
            }
            assert!(
                rates[1] > rates[0] * 1.5,
                "{}: input-C must be much harder than input-A ({:?})",
                b.name,
                rates
            );
        }
    }

    #[test]
    fn mcf_branch_is_mostly_taken() {
        let b = mcf(500);
        let mut interp = Interpreter::new();
        for (a, v) in (b.input_fn)(InputSet::A) {
            interp.mem.insert(a, v);
        }
        let res = interp.run(&b.module, 10_000_000).unwrap();
        let hot = res
            .profile
            .values()
            .max_by_key(|p| p.executions())
            .unwrap();
        let _ = crate::common::OUT_BASE;
        assert!(hot.p_taken() > 0.9 || hot.p_taken() < 0.1 || hot.executions() == 500);
    }
}
