//! Shared IR-emission helpers and memory-layout conventions for the
//! benchmark programs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wishbranch_ir::FunctionBuilder;
use wishbranch_isa::{AluOp, Gpr, Operand};

/// Base address of benchmark input data.
pub const DATA_BASE: i64 = 0x1_0000;
/// Base address of benchmark outputs (used by equivalence tests).
pub const OUT_BASE: i64 = 0x8_0000;

/// Register conventions shared by all benchmarks.
pub mod regs {
    use wishbranch_isa::Gpr;
    /// Input-data base pointer.
    pub const DATA: Gpr = Gpr::new(19);
    /// Output base pointer.
    pub const OUT: Gpr = Gpr::new(18);
    /// Secondary data pointer.
    pub const DATA2: Gpr = Gpr::new(17);
    /// xorshift PRNG state.
    pub const PRNG: Gpr = Gpr::new(16);
}

/// Emits the standard prologue: base pointers and PRNG seed.
pub fn emit_prologue(f: &mut FunctionBuilder) {
    f.movi(regs::DATA, DATA_BASE);
    f.movi(regs::OUT, OUT_BASE);
    f.movi(regs::PRNG, 0x2545_F491_4F6C_DD1D_u64 as i64 & 0x7ff_ffff_ffff);
}

/// Emits one xorshift step on [`regs::PRNG`], clobbering `tmp`.
/// Cheap (6 ALU µops) register-resident pseudo-randomness for branch
/// conditions that must be unpredictable to the hardware.
pub fn emit_xorshift(f: &mut FunctionBuilder, tmp: Gpr) {
    let s = regs::PRNG;
    f.alu(AluOp::Shl, tmp, s, Operand::imm(13));
    f.alu(AluOp::Xor, s, s, Operand::Reg(tmp));
    f.alu(AluOp::Shr, tmp, s, Operand::imm(7));
    f.alu(AluOp::Xor, s, s, Operand::Reg(tmp));
    f.alu(AluOp::Shl, tmp, s, Operand::imm(17));
    f.alu(AluOp::Xor, s, s, Operand::Reg(tmp));
}

/// Emits `addr = DATA + ((idx & mask) << 3) + word_offset*8` into `addr`.
pub fn emit_index(f: &mut FunctionBuilder, addr: Gpr, idx: Gpr, mask: i32, word_offset: i32) {
    f.alu(AluOp::And, addr, idx, Operand::imm(mask));
    f.alu(AluOp::Shl, addr, addr, Operand::imm(3));
    f.alu(AluOp::Add, addr, addr, Operand::Reg(regs::DATA));
    if word_offset != 0 {
        f.alu(AluOp::Add, addr, addr, Operand::imm(word_offset * 8));
    }
}

/// A seeded RNG for input generation, distinct per (benchmark, input set).
#[must_use]
pub fn input_rng(bench: &str, set_tag: u64) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ set_tag.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    for b in bench.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}

/// Generates an array of `n` words at [`DATA_BASE`] where each value is
/// drawn ±`spread` around zero with probability `p_negative` of being
/// negative — the knob that controls hammock-branch entropy.
#[must_use]
pub fn signed_array(rng: &mut StdRng, n: u64, p_negative: f64, spread: i64) -> Vec<(u64, i64)> {
    (0..n)
        .map(|i| {
            let v = if rng.gen_bool(p_negative) {
                -rng.gen_range(1..=spread)
            } else {
                rng.gen_range(1..=spread)
            };
            (DATA_BASE as u64 + i * 8, v)
        })
        .collect()
}

/// Generates an array of `n` small non-negative values in `0..limit`
/// (loop trip counts, match lengths, …).
#[must_use]
pub fn count_array(rng: &mut StdRng, n: u64, limit: i64) -> Vec<(u64, i64)> {
    (0..n)
        .map(|i| (DATA_BASE as u64 + i * 8, rng.gen_range(0..limit)))
        .collect()
}

/// Generates a random cycle permutation over `n` nodes, stored as
/// `next[i]` at `DATA_BASE + i*8` with a payload at `DATA_BASE + (n+i)*8` —
/// the mcf-style pointer-chasing substrate. The cycle guarantees the chase
/// visits all nodes without terminating early.
#[must_use]
pub fn pointer_cycle(rng: &mut StdRng, n: u64, payload_spread: i64) -> Vec<(u64, i64)> {
    let mut order: Vec<u64> = (0..n).collect();
    // Fisher–Yates.
    for i in (1..n as usize).rev() {
        let j = rng.gen_range(0..=i);
        order.swap(i, j);
    }
    let mut mem = Vec::with_capacity(2 * n as usize);
    for k in 0..n as usize {
        let from = order[k];
        let to = order[(k + 1) % n as usize];
        // next pointer: absolute address of the successor node.
        mem.push((
            DATA_BASE as u64 + from * 8,
            DATA_BASE + (to as i64) * 8,
        ));
        // payload for node `from`.
        mem.push((
            DATA_BASE as u64 + (n + from) * 8,
            rng.gen_range(-payload_spread..=payload_spread),
        ));
    }
    mem
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn input_rng_is_deterministic_and_distinct() {
        let a1: u64 = input_rng("gzip", 0).gen();
        let a2: u64 = input_rng("gzip", 0).gen();
        let b: u64 = input_rng("gzip", 1).gen();
        let c: u64 = input_rng("vpr", 0).gen();
        assert_eq!(a1, a2);
        assert_ne!(a1, b);
        assert_ne!(a1, c);
    }

    #[test]
    fn pointer_cycle_visits_all_nodes() {
        let mut rng = input_rng("t", 0);
        let mem = pointer_cycle(&mut rng, 64, 100);
        let next: std::collections::HashMap<u64, i64> = mem
            .iter()
            .filter(|(a, _)| *a < DATA_BASE as u64 + 64 * 8)
            .copied()
            .collect();
        let mut seen = std::collections::HashSet::new();
        let mut node = DATA_BASE as u64;
        for _ in 0..64 {
            assert!(seen.insert(node), "cycle revisited {node:#x} early");
            node = next[&node] as u64;
        }
        assert_eq!(node, DATA_BASE as u64, "must be a single cycle");
    }

    #[test]
    fn signed_array_respects_probability() {
        let mut rng = input_rng("t", 1);
        let mem = signed_array(&mut rng, 1000, 0.0, 50);
        assert!(mem.iter().all(|&(_, v)| v > 0));
        let mem = signed_array(&mut rng, 1000, 1.0, 50);
        assert!(mem.iter().all(|&(_, v)| v < 0));
    }
}
