//! # wishbranch-workloads
//!
//! Nine synthetic benchmarks standing in for the SPEC INT 2000 subset the
//! paper evaluates (Table 4). SPEC sources and MinneSPEC inputs are not
//! reproducible here; instead each program is *engineered to exhibit the
//! branch-behaviour class that drives that benchmark's result in the paper*
//! (see each module's documentation), which is what wish branches interact
//! with. Each benchmark has three input sets A/B/C that change branch
//! predictability at run time — the input-dependence of Fig. 1.
//!
//! | name | modeled behaviour (paper evidence) |
//! |---|---|
//! | `gzip`   | data-dependent literal/match decisions; hardness follows input entropy |
//! | `vpr`    | accept/reject cost hammocks + short variable-trip net loops (wish loops help, Fig. 12) |
//! | `mcf`    | pointer-chasing loads feeding predicates: predication serializes cache misses (BASE-MAX +102%, §5.1) |
//! | `crafty` | ALU-heavy search with mixed-hardness branches |
//! | `parser` | mostly predictable branches, low predication overhead, short variable word loops (wish loops help) |
//! | `gap`    | highly predictable branches: predication is pure overhead, high-confidence mode wins |
//! | `vortex` | extremely predictable branches (0.8 misp/1K µops in Table 4); wish branches gain nothing |
//! | `bzip2`  | sort/count loops whose hardness is strongly input-dependent (Fig. 1's ±16%); wish loops dominate (90% of its dynamic wish branches, Table 4) |
//! | `twolf`  | hard cost-comparison hammocks with sizable arms: predication and wish branches both win big |
//!
//! # Example
//!
//! ```
//! use wishbranch_workloads::{suite, InputSet};
//!
//! let benchmarks = suite(50); // tiny scale for doctests
//! assert_eq!(benchmarks.len(), 9);
//! let gzip = &benchmarks[0];
//! let input = (gzip.input_fn)(InputSet::A);
//! assert!(!input.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bench_defs;
pub mod common;

pub use bench_defs::{bzip2, crafty, gap, gzip, mcf, parser, twolf, vortex, vpr};

use wishbranch_ir::Module;

/// The three run-time input sets of Fig. 1.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum InputSet {
    /// Low-entropy input: branches are easy, predication tends to lose.
    A,
    /// Medium entropy.
    B,
    /// High-entropy input: branches are hard, predication tends to win.
    C,
}

impl InputSet {
    /// All input sets.
    pub const ALL: [InputSet; 3] = [InputSet::A, InputSet::B, InputSet::C];

    /// Label used in experiment output.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            InputSet::A => "input-A",
            InputSet::B => "input-B",
            InputSet::C => "input-C",
        }
    }
}

impl std::fmt::Display for InputSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A benchmark: an IR program plus its input generator.
pub struct Benchmark {
    /// Short name (matches the SPEC benchmark it models).
    pub name: &'static str,
    /// The IR program.
    pub module: Module,
    /// One-line description of the modeled behaviour.
    pub behavior: &'static str,
    /// Generates the initial data memory for an input set.
    pub input_fn: fn(InputSet) -> Vec<(u64, i64)>,
}

impl std::fmt::Debug for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Benchmark")
            .field("name", &self.name)
            .field("behavior", &self.behavior)
            .finish_non_exhaustive()
    }
}

/// Builds the full nine-benchmark suite at the given scale (outer-loop
/// iteration count; use ~50–500 for debug-build tests, several thousand for
/// release-mode experiments).
#[must_use]
pub fn suite(scale: i32) -> Vec<Benchmark> {
    vec![
        gzip(scale),
        vpr(scale),
        mcf(scale),
        crafty(scale),
        parser(scale),
        gap(scale),
        vortex(scale),
        bzip2(scale),
        twolf(scale),
    ]
}
