//! Compiler stress: deeply nested hammocks exhaust the predicate-pair
//! allocator; the compiler must degrade gracefully (keep the branch) and
//! stay architecturally exact.

use wishbranch_compiler::{compile, BinaryVariant, CompileOptions};
use wishbranch_ir::{FunctionBuilder, Interpreter, Module};
use wishbranch_isa::exec::Machine;
use wishbranch_isa::{AluOp, CmpOp, Gpr, Operand};

fn r(i: u8) -> Gpr {
    Gpr::new(i)
}

/// Builds `depth` nested if/else diamonds, each conditioning on a different
/// register bit.
fn nested(depth: u8) -> Module {
    let mut f = FunctionBuilder::new("main");
    let e = f.entry_block();
    f.select(e);
    f.movi(r(1), 0b1010_1010);
    f.movi(r(3), 0);
    fn emit(f: &mut FunctionBuilder, level: u8, depth: u8) {
        if level == depth {
            f.alu(AluOp::Add, r(3), r(3), Operand::imm(1));
            return;
        }
        let t = f.new_block();
        let el = f.new_block();
        let j = f.new_block();
        f.alu(AluOp::Shr, r(2), r(1), Operand::imm(i32::from(level)));
        f.alu(AluOp::And, r(2), r(2), Operand::imm(1));
        f.branch(CmpOp::Eq, r(2), Operand::imm(1), t, el);
        f.select(el);
        f.alu(AluOp::Add, r(3), r(3), Operand::imm(10));
        emit(f, level + 1, depth);
        f.jump(j);
        f.select(t);
        f.alu(AluOp::Sub, r(3), r(3), Operand::imm(3));
        emit(f, level + 1, depth);
        f.jump(j);
        f.select(j);
    }
    emit(&mut f, 0, depth);
    f.store(r(3), r(1), 0x1000);
    f.halt();
    Module::new(vec![f.build()], 0).unwrap()
}

#[test]
fn deep_nesting_compiles_and_stays_exact() {
    for depth in [2u8, 5, 8, 10] {
        let m = nested(depth);
        let mut interp = Interpreter::new();
        let reference = interp.run(&m, 10_000_000).unwrap();
        for variant in [BinaryVariant::BaseMax, BinaryVariant::WishJumpJoinLoop] {
            let bin = compile(&m, &reference.profile, variant, &CompileOptions::default());
            let mut machine = Machine::new();
            let res = machine.run(&bin.program, 50_000_000).unwrap();
            assert_eq!(
                res.mem, reference.mem,
                "depth {depth} {variant}: diverged\n{}",
                bin.program
            );
        }
    }
}

#[test]
fn pred_exhaustion_keeps_branches_instead_of_breaking() {
    // Depth 10 needs 20 predicate registers if fully merged — more than the
    // 14 available. The compiler must keep some branches.
    let m = nested(10);
    let profile = Interpreter::new().run(&m, 10_000_000).unwrap().profile;
    let bin = compile(&m, &profile, BinaryVariant::BaseMax, &CompileOptions::default());
    assert!(
        bin.report.regions_kept > 0 || bin.program.static_stats().cond_branches > 1,
        "deep nests must leave residual branches: {:?}",
        bin.report
    );
    assert!(bin.report.regions_predicated > 0, "but shallow levels convert");
}
