//! Architectural equivalence: every binary variant of Table 3 must compute
//! exactly what the IR program computes — predication, wish jumps/joins and
//! wish loops are pure microarchitectural hints.
//!
//! Checked on hand-written modules plus a seeded random-program generator
//! (nested hammocks, loops, data-dependent branches, guarded memory ops).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wishbranch_compiler::{compile, BinaryVariant, CompileOptions};
use wishbranch_ir::{FuncId, FunctionBuilder, Interpreter, Module};
use wishbranch_isa::exec::Machine;
use wishbranch_isa::{AluOp, CmpOp, Gpr, Operand};

const DATA_BASE: i64 = 0x1000;

fn r(i: u8) -> Gpr {
    Gpr::new(i)
}

/// Runs the module through the interpreter and all five compiled variants,
/// asserting identical final memory and identical r1..r9.
fn assert_all_variants_equivalent(module: &Module, init_mem: &[(u64, i64)], what: &str) {
    let mut interp = Interpreter::new();
    for &(a, v) in init_mem {
        interp.mem.insert(a, v);
    }
    let reference = interp
        .run(module, 10_000_000)
        .unwrap_or_else(|e| panic!("{what}: IR interpreter failed: {e}"));

    for variant in BinaryVariant::ALL_WITH_EXTENSIONS {
        let bin = compile(module, &reference.profile, variant, &CompileOptions::default());
        let mut m = Machine::new();
        for &(a, v) in init_mem {
            m.mem.insert(a, v);
        }
        let res = m
            .run(&bin.program, 50_000_000)
            .unwrap_or_else(|e| panic!("{what}/{variant}: µop machine failed: {e}\n{}", bin.program));
        assert_eq!(
            res.mem, reference.mem,
            "{what}/{variant}: memory diverged\n{}",
            bin.program
        );
        for reg in 1..10 {
            assert_eq!(
                res.regs[reg], reference.regs[reg],
                "{what}/{variant}: r{reg} diverged\n{}",
                bin.program
            );
        }
    }
}

/// Random structured program generator: nested ifs (hammock shapes) and
/// counted loops over r1..r8, with loads/stores against a small data area.
struct Gen<'a> {
    f: &'a mut FunctionBuilder,
    rng: StdRng,
    next_counter: u8, // loop counters r20, r21, …
}

impl Gen<'_> {
    fn work_reg(&mut self) -> Gpr {
        r(self.rng.gen_range(1..9))
    }

    fn emit_straight(&mut self) {
        match self.rng.gen_range(0..4) {
            0 => {
                let (d, s) = (self.work_reg(), self.work_reg());
                let op = [AluOp::Add, AluOp::Sub, AluOp::Xor, AluOp::Mul, AluOp::And]
                    [self.rng.gen_range(0..5usize)];
                let src2 = if self.rng.gen_bool(0.5) {
                    Operand::Reg(self.work_reg())
                } else {
                    Operand::Imm(self.rng.gen_range(-7..8))
                };
                self.f.alu(op, d, s, src2);
            }
            1 => {
                let d = self.work_reg();
                self.f.movi(d, self.rng.gen_range(-100..100));
            }
            2 => {
                // store: r19 = DATA_BASE, offset within 16 slots
                let s = self.work_reg();
                let off = self.rng.gen_range(0..16) * 8;
                self.f.store(s, r(19), off);
            }
            _ => {
                let d = self.work_reg();
                let off = self.rng.gen_range(0..16) * 8;
                self.f.load(d, r(19), off);
            }
        }
    }

    fn emit_region(&mut self, depth: u32) {
        let items = self.rng.gen_range(1..5);
        for _ in 0..items {
            let c = self.rng.gen_range(0..10);
            if depth > 0 && c < 3 {
                self.emit_if(depth - 1);
            } else if depth > 0 && c < 5 && self.next_counter < 28 {
                self.emit_loop(depth - 1);
            } else {
                self.emit_straight();
            }
        }
    }

    fn emit_if(&mut self, depth: u32) {
        let lhs = self.work_reg();
        let op = [CmpOp::Lt, CmpOp::Ge, CmpOp::Eq, CmpOp::Ne][self.rng.gen_range(0..4usize)];
        let rhs = Operand::Imm(self.rng.gen_range(-5..6));
        let then_b = self.f.new_block();
        let else_b = self.f.new_block();
        let join = self.f.new_block();
        self.f.branch(op, lhs, rhs, then_b, else_b);
        self.f.select(else_b);
        if self.rng.gen_bool(0.8) {
            self.emit_region(depth);
        }
        self.f.jump(join);
        self.f.select(then_b);
        if self.rng.gen_bool(0.8) {
            self.emit_region(depth);
        }
        self.f.jump(join);
        self.f.select(join);
    }

    fn emit_loop(&mut self, depth: u32) {
        let counter = r(20 + self.next_counter);
        self.next_counter += 1;
        let trip = self.rng.gen_range(1..8);
        let body = self.f.new_block();
        let exit = self.f.new_block();
        self.f.movi(counter, 0);
        self.f.jump(body);
        self.f.select(body);
        // Half the loops get straight bodies (wish-loop candidates), half
        // get nested control flow.
        if self.rng.gen_bool(0.5) || depth == 0 {
            for _ in 0..self.rng.gen_range(1..4) {
                self.emit_straight();
            }
        } else {
            self.emit_region(depth);
        }
        self.f.alu(AluOp::Add, counter, counter, Operand::imm(1));
        self.f.branch(CmpOp::Lt, counter, Operand::imm(trip), body, exit);
        self.f.select(exit);
    }
}

fn random_module(seed: u64) -> Module {
    let mut f = FunctionBuilder::new("main");
    let entry = f.entry_block();
    f.select(entry);
    f.movi(r(19), DATA_BASE);
    // Seed the working registers from memory so branch directions vary.
    for i in 1..9 {
        f.load(r(i), r(19), i32::from(i) * 8);
    }
    let mut g = Gen {
        f: &mut f,
        rng: StdRng::seed_from_u64(seed),
        next_counter: 0,
    };
    g.emit_region(3);
    // Write all work registers out so divergence is visible in memory.
    for i in 1..9 {
        f.store(r(i), r(19), 128 + i32::from(i) * 8);
    }
    f.halt();
    Module::new(vec![f.build()], 0).unwrap()
}

#[test]
fn random_programs_all_variants_equivalent() {
    for seed in 0..60 {
        let module = random_module(seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xdead_beef);
        let init: Vec<(u64, i64)> = (0..32)
            .map(|i| (DATA_BASE as u64 + i * 8, rng.gen_range(-50..50)))
            .collect();
        assert_all_variants_equivalent(&module, &init, &format!("seed {seed}"));
    }
}

#[test]
fn function_calls_survive_all_variants() {
    // callee: r1 = r1*2 + mem[base]; contains its own hammock.
    let mut callee = FunctionBuilder::new("scale");
    let e = callee.entry_block();
    let t = callee.new_block();
    let el = callee.new_block();
    let j = callee.new_block();
    callee.select(e);
    callee.alu(AluOp::Mul, r(1), r(1), Operand::imm(2));
    callee.branch(CmpOp::Gt, r(1), Operand::imm(10), t, el);
    callee.select(el);
    callee.load(r(2), r(19), 0);
    callee.alu(AluOp::Add, r(1), r(1), Operand::reg(2));
    callee.jump(j);
    callee.select(t);
    callee.alu(AluOp::Sub, r(1), r(1), Operand::imm(1));
    callee.jump(j);
    callee.select(j);
    callee.ret();

    let mut main = FunctionBuilder::new("main");
    let e = main.entry_block();
    let body = main.new_block();
    let exit = main.new_block();
    main.select(e);
    main.movi(r(19), DATA_BASE);
    main.movi(r(1), 1);
    main.movi(r(20), 0);
    main.jump(body);
    main.select(body);
    main.call(FuncId(1));
    main.alu(AluOp::Add, r(20), r(20), Operand::imm(1));
    main.branch(CmpOp::Lt, r(20), Operand::imm(5), body, exit);
    main.select(exit);
    main.store(r(1), r(19), 256);
    main.halt();

    let m = Module::new(vec![main.build(), callee.build()], 0).unwrap();
    assert_all_variants_equivalent(&m, &[(DATA_BASE as u64, 7)], "calls");
}

#[test]
fn wish_loop_binary_is_equivalent_on_zero_trip_reentry() {
    // A loop nested in an outer loop: the wish-loop predicate must be
    // re-initialized by the preheader on every outer iteration.
    let mut f = FunctionBuilder::new("main");
    let e = f.entry_block();
    let outer = f.new_block();
    let inner = f.new_block();
    let inner_exit = f.new_block();
    let outer_exit = f.new_block();
    f.select(e);
    f.movi(r(19), DATA_BASE);
    f.movi(r(1), 0); // outer counter
    f.movi(r(3), 0); // accumulator
    f.jump(outer);
    f.select(outer);
    f.movi(r(2), 0); // inner counter
    f.jump(inner);
    f.select(inner);
    f.alu(AluOp::Add, r(3), r(3), Operand::reg(1));
    f.alu(AluOp::Add, r(2), r(2), Operand::imm(1));
    f.branch(CmpOp::Lt, r(2), Operand::imm(3), inner, inner_exit);
    f.select(inner_exit);
    f.alu(AluOp::Add, r(1), r(1), Operand::imm(1));
    f.branch(CmpOp::Lt, r(1), Operand::imm(4), outer, outer_exit);
    f.select(outer_exit);
    f.store(r(3), r(19), 0);
    f.halt();
    let m = Module::new(vec![f.build()], 0).unwrap();

    // Confirm the wish-loop variant actually converted the inner loop.
    let prof = Interpreter::new().run(&m, 100_000).unwrap().profile;
    let bin = compile(
        &m,
        &prof,
        BinaryVariant::WishJumpJoinLoop,
        &CompileOptions::default(),
    );
    assert_eq!(bin.report.loops_wish, 1, "{}", bin.program);
    assert_all_variants_equivalent(&m, &[], "nested loops");
}

#[test]
fn reports_differ_across_variants() {
    let module = random_module(11);
    let prof = Interpreter::new().run(&module, 10_000_000).unwrap().profile;
    let opts = CompileOptions::default();
    let normal = compile(&module, &prof, BinaryVariant::NormalBranch, &opts);
    let max = compile(&module, &prof, BinaryVariant::BaseMax, &opts);
    let wjl = compile(&module, &prof, BinaryVariant::WishJumpJoinLoop, &opts);
    assert_eq!(normal.report.regions_predicated, 0);
    assert!(max.report.regions_predicated > 0);
    let s = wjl.program.static_stats();
    assert_eq!(
        s.wish_branches,
        s.wish_jumps + s.wish_joins + s.wish_loops
    );
    // Normal binaries carry no guarded code.
    assert_eq!(normal.program.static_stats().guarded_insns, 0);
}
