//! The §3.6 input-dependence-aware compiler: decisions must reflect
//! misprediction spread across training profiles, and the produced binary
//! must stay architecturally exact.

use wishbranch_compiler::{compile_adaptive, CompileOptions};
use wishbranch_ir::{FunctionBuilder, Interpreter, Module, Profile};
use wishbranch_isa::exec::Machine;
use wishbranch_isa::{AluOp, CmpOp, Gpr, Operand};

fn r(i: u8) -> Gpr {
    Gpr::new(i)
}

/// A loop over a hammock whose condition depends on memory: profiles with
/// different memory contents see different branch behaviour.
fn module() -> Module {
    let mut f = FunctionBuilder::new("main");
    let e = f.entry_block();
    let body = f.new_block();
    let t = f.new_block();
    let el = f.new_block();
    let j = f.new_block();
    let exit = f.new_block();
    f.select(e);
    f.movi(r(19), 0x1000);
    f.movi(r(20), 0);
    f.jump(body);
    f.select(body);
    f.alu(AluOp::And, r(2), r(20), Operand::imm(255));
    f.alu(AluOp::Shl, r(2), r(2), Operand::imm(3));
    f.alu(AluOp::Add, r(2), r(2), Operand::Reg(r(19)));
    f.load(r(6), r(2), 0);
    f.branch(CmpOp::Ge, r(6), Operand::imm(0), t, el);
    f.select(el);
    for _ in 0..4 {
        f.alu(AluOp::Sub, r(8), r(8), Operand::imm(1));
    }
    f.jump(j);
    f.select(t);
    for _ in 0..4 {
        f.alu(AluOp::Add, r(9), r(9), Operand::imm(1));
    }
    f.jump(j);
    f.select(j);
    f.alu(AluOp::Add, r(20), r(20), Operand::imm(1));
    f.branch(CmpOp::Lt, r(20), Operand::imm(2000), body, exit);
    f.select(exit);
    f.store(r(8), r(19), 8192);
    f.store(r(9), r(19), 8200);
    f.halt();
    Module::new(vec![f.build()], 0).unwrap()
}

fn profile_with(values: impl Fn(u64) -> i64) -> Profile {
    let mut i = Interpreter::new();
    for k in 0..256u64 {
        i.mem.insert(0x1000 + k * 8, values(k));
    }
    i.run(&module(), 10_000_000).unwrap().profile
}

#[test]
fn input_dependent_branch_becomes_wish() {
    // Profile 1: always taken; profile 2: coin flip → large spread.
    let easy = profile_with(|_| 100);
    let hard = profile_with(|k| {
        if k.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(29) & 0x800 == 0 { 100 } else { -100 }
    });
    let bin = compile_adaptive(&module(), &[easy, hard], &CompileOptions::default());
    assert_eq!(bin.report.regions_wish, 1, "{:?}", bin.report);
    assert!(bin.program.static_stats().wish_jumps >= 1);
}

#[test]
fn stably_easy_branch_stays_a_branch() {
    let easy1 = profile_with(|_| 100);
    let easy2 = profile_with(|_| 80);
    let bin = compile_adaptive(&module(), &[easy1, easy2], &CompileOptions::default());
    assert_eq!(bin.report.regions_wish, 0, "{:?}", bin.report);
    assert_eq!(bin.report.regions_predicated, 0, "{:?}", bin.report);
    assert!(bin.report.regions_kept >= 1);
    assert_eq!(bin.program.static_stats().wish_jumps, 0);
}

#[test]
fn stably_hard_large_region_becomes_wish_not_plain_predication() {
    let hash = |k: u64, seed: u64| k.wrapping_mul(0x9e37_79b9_7f4a_7c15 ^ seed).rotate_left(29) & 0x800;
    let hard1 = profile_with(move |k| if hash(k, 1) == 0 { 100 } else { -100 });
    let hard2 = profile_with(move |k| if hash(k, 99) == 0 { 100 } else { -100 });
    let bin = compile_adaptive(&module(), &[hard1, hard2], &CompileOptions::default());
    // Stable hardness + large arms: wish code (as good as predication,
    // safer off-profile).
    assert_eq!(bin.report.regions_wish, 1, "{:?}", bin.report);
}

#[test]
fn adaptive_binary_is_architecturally_exact() {
    let easy = profile_with(|_| 100);
    let hard = profile_with(|k| if k % 3 == 0 { 100 } else { -100 });
    let bin = compile_adaptive(&module(), &[easy, hard], &CompileOptions::default());
    // Run with a third, unseen input.
    let run = |prog: &wishbranch_isa::Program| {
        let mut m = Machine::new();
        for k in 0..256u64 {
            m.mem.insert(0x1000 + k * 8, (k as i64 % 7) - 3);
        }
        m.run(prog, 50_000_000).unwrap().mem
    };
    let normal = compile_adaptive(&module(), &[], &CompileOptions::default());
    assert_eq!(run(&bin.program), run(&normal.program));
}

#[test]
fn single_profile_adaptive_has_zero_spread() {
    let hard = profile_with(|k| {
        if k.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(29) & 0x800 == 0 { 100 } else { -100 }
    });
    // With one profile the spread is zero; the decision falls back to the
    // cost model (hard branch, large arms → wish).
    let bin = compile_adaptive(&module(), std::slice::from_ref(&hard), &CompileOptions::default());
    assert!(bin.report.regions_wish + bin.report.regions_predicated >= 1);
}
