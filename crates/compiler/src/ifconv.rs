//! If-conversion and wish jump/join generation (§3.1, §4.2).

use crate::mir::{alloc_pred_pair, guard_insns, preds_used, MBlock, MCondSrc, MFunc, MInsn, MTerm};
use crate::{BinaryVariant, CompileOptions, CompileReport};
use std::collections::HashSet;
use crate::mir::SiteStats;
use wishbranch_ir::BranchSiteProfile;
use wishbranch_isa::{Insn, WishType};

/// What to do with an if-convertible region.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Action {
    Keep,
    Predicate,
    Wish,
}

/// The shape of a convertible region rooted at block `a`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Shape {
    /// `if cond goto T else F; T→J; F→J` with distinct T, F.
    Diamond { taken: usize, fall: usize, join: usize },
    /// `if cond goto J else F; F→J` — the Fig. 3 hammock.
    TriangleSkip { fall: usize, join: usize },
    /// `if cond goto T else J; T→J`.
    TriangleTaken { taken: usize, join: usize },
}

fn classify(mf: &MFunc, a: usize, preds: &[Vec<usize>], opts: &CompileOptions) -> Option<Shape> {
    let MTerm::Cond {
        src: MCondSrc::IrCond(_),
        taken,
        fall,
        ..
    } = mf.blocks[a].term
    else {
        return None;
    };
    // Forward hammocks only: loop latches are never if-converted (§2.2 —
    // backward branches cannot be eliminated by predication).
    if taken <= a || fall <= a || taken == fall {
        return None;
    }
    let arm_ok = |b: usize| {
        let blk = &mf.blocks[b];
        !blk.dead
            && blk.is_straight()
            && preds[b] == [a]
            && blk.len() <= opts.max_predicated_side
    };
    let jump_target = |b: usize| match mf.blocks[b].term {
        MTerm::Jump(j) => Some(j),
        _ => None,
    };
    // Diamond.
    if arm_ok(taken) && arm_ok(fall) {
        if let (Some(j1), Some(j2)) = (jump_target(taken), jump_target(fall)) {
            if j1 == j2 && j1 != taken && j1 != fall && j1 != a {
                return Some(Shape::Diamond {
                    taken,
                    fall,
                    join: j1,
                });
            }
        }
    }
    // Triangle with the taken edge skipping the fall-through arm.
    if arm_ok(fall) && jump_target(fall) == Some(taken) {
        return Some(Shape::TriangleSkip { fall, join: taken });
    }
    // Triangle with the fall edge skipping the taken arm.
    if arm_ok(taken) && jump_target(taken) == Some(fall) {
        return Some(Shape::TriangleTaken { taken, join: fall });
    }
    None
}

fn decide(
    variant: BinaryVariant,
    prof: &SiteStats,
    taken_len: usize,
    fall_len: usize,
    guarded_len: usize,
    overhead: usize,
    opts: &CompileOptions,
) -> Action {
    match variant {
        BinaryVariant::NormalBranch => Action::Keep,
        BinaryVariant::BaseDef => {
            let cost =
                crate::cost::region_cost(&prof.combined, taken_len, fall_len, overhead, opts);
            if cost.favors_predication() {
                Action::Predicate
            } else {
                Action::Keep
            }
        }
        BinaryVariant::BaseMax => Action::Predicate,
        BinaryVariant::WishJumpJoin | BinaryVariant::WishJumpJoinLoop => {
            // §4.2.2: short regions are better off plainly predicated (the
            // wish branch itself costs at least one extra instruction);
            // larger ones become wish jumps/joins.
            if guarded_len > opts.wish_jump_threshold {
                Action::Wish
            } else {
                Action::Predicate
            }
        }
        BinaryVariant::WishAdaptive => {
            // §3.6: a wish branch is only worth its instruction overhead if
            // the branch is *ever* hard enough to want predication — i.e.
            // its worst-case profile misprediction estimate clears a floor.
            // Branches that stay easy across all training inputs keep their
            // normal-branch form and pay nothing; hard-or-input-dependent
            // large regions become wish branches (the hardware adapts per
            // input at run time); the rest fall back to the Eq. 4.3 cost
            // model.
            let hard_floor = 3.0 * opts.input_dependence_threshold;
            if guarded_len > opts.wish_jump_threshold && prof.misp_max > hard_floor {
                return Action::Wish;
            }
            let cost =
                crate::cost::region_cost(&prof.combined, taken_len, fall_len, overhead, opts);
            if cost.favors_predication() {
                Action::Predicate
            } else {
                Action::Keep
            }
        }
    }
}

/// Extra µops predication adds: the cmp→cmp2 upgrade plus two `pand`s per
/// nested predicate definition.
fn pred_overhead(arms: &[&MBlock]) -> usize {
    1 + arms
        .iter()
        .flat_map(|b| b.insns.iter())
        .filter(|m| m.as_op().is_some_and(|i| i.def_preds()[0].is_some()))
        .count()
        * 2
}

/// Runs if-conversion / wish jump-join conversion over one function until no
/// more regions convert.
pub(crate) fn run(
    mf: &mut MFunc,
    variant: BinaryVariant,
    opts: &CompileOptions,
    report: &mut CompileReport,
) {
    let mut kept: HashSet<usize> = HashSet::new();
    'outer: loop {
        crate::mir::thread_jumps(mf);
        let preds = mf.predecessors();
        for a in 0..mf.blocks.len() {
            if mf.blocks[a].dead || kept.contains(&a) {
                continue;
            }
            let Some(shape) = classify(mf, a, &preds, opts) else {
                continue;
            };
            let MTerm::Cond {
                src: MCondSrc::IrCond(cond),
                prof,
                ..
            } = mf.blocks[a].term
            else {
                continue;
            };
            let (tlen, flen, guarded_len, arm_ids): (usize, usize, usize, Vec<usize>) = match shape
            {
                Shape::Diamond { taken, fall, .. } => (
                    mf.blocks[taken].len(),
                    mf.blocks[fall].len(),
                    mf.blocks[taken].len() + mf.blocks[fall].len(),
                    vec![taken, fall],
                ),
                Shape::TriangleSkip { fall, .. } => {
                    (0, mf.blocks[fall].len(), mf.blocks[fall].len(), vec![fall])
                }
                Shape::TriangleTaken { taken, .. } => (
                    mf.blocks[taken].len(),
                    0,
                    mf.blocks[taken].len(),
                    vec![taken],
                ),
            };
            let arms: Vec<&MBlock> = arm_ids.iter().map(|&i| &mf.blocks[i]).collect();
            let overhead = pred_overhead(&arms);
            let action = decide(variant, &prof, tlen, flen, guarded_len, overhead, opts);
            if action == Action::Keep {
                kept.insert(a);
                report.regions_kept += 1;
                continue;
            }
            // Allocate the predicate pair, avoiding everything live in the
            // region.
            let mut used = preds_used(&mf.blocks[a].insns);
            for &arm in &arm_ids {
                used |= preds_used(&mf.blocks[arm].insns);
            }
            let Some((pt, pf)) = alloc_pred_pair(used) else {
                kept.insert(a);
                report.regions_kept += 1;
                continue;
            };
            let cmp2 = MInsn::Op(Insn::cmp2(cond.op, pt, pf, cond.lhs, cond.rhs));

            match action {
                Action::Predicate => {
                    report.regions_predicated += 1;
                    let (join, pieces): (usize, Vec<Vec<MInsn>>) = match shape {
                        Shape::Diamond { taken, fall, join } => (
                            join,
                            vec![
                                guard_insns(&mf.blocks[fall].insns, pf),
                                guard_insns(&mf.blocks[taken].insns, pt),
                            ],
                        ),
                        Shape::TriangleSkip { fall, join } => {
                            (join, vec![guard_insns(&mf.blocks[fall].insns, pf)])
                        }
                        Shape::TriangleTaken { taken, join } => {
                            (join, vec![guard_insns(&mf.blocks[taken].insns, pt)])
                        }
                    };
                    let a_blk = &mut mf.blocks[a];
                    a_blk.insns.push(cmp2);
                    for piece in pieces {
                        a_blk.insns.extend(piece);
                    }
                    a_blk.term = MTerm::Jump(join);
                    for arm in arm_ids {
                        mf.blocks[arm].dead = true;
                    }
                }
                Action::Wish => {
                    report.regions_wish += 1;
                    let join_prof = SiteStats {
                        combined: BranchSiteProfile {
                            taken: prof.combined.not_taken,
                            not_taken: prof.combined.taken,
                            est_mispredicts: prof.combined.est_mispredicts,
                        },
                        misp_spread: prof.misp_spread,
                        misp_max: prof.misp_max,
                    };
                    match shape {
                        Shape::Diamond { taken, fall, join } => {
                            mf.blocks[a].insns.push(cmp2);
                            mf.blocks[a].term = MTerm::Cond {
                                src: MCondSrc::Pred(pt),
                                taken,
                                fall,
                                wish: Some(WishType::Jump),
                                prof,
                            };
                            let guarded = guard_insns(&mf.blocks[fall].insns, pf);
                            mf.blocks[fall].insns = guarded;
                            mf.blocks[fall].term = MTerm::Cond {
                                src: MCondSrc::Pred(pf),
                                taken: join,
                                fall: taken,
                                wish: Some(WishType::Join),
                                prof: join_prof,
                            };
                            let guarded = guard_insns(&mf.blocks[taken].insns, pt);
                            mf.blocks[taken].insns = guarded;
                            // taken arm keeps its Jump(join) terminator.
                        }
                        Shape::TriangleSkip { fall, join } => {
                            mf.blocks[a].insns.push(cmp2);
                            mf.blocks[a].term = MTerm::Cond {
                                src: MCondSrc::Pred(pt),
                                taken: join,
                                fall,
                                wish: Some(WishType::Jump),
                                prof,
                            };
                            let guarded = guard_insns(&mf.blocks[fall].insns, pf);
                            mf.blocks[fall].insns = guarded;
                        }
                        Shape::TriangleTaken { taken, join } => {
                            // The wish jump must skip the guarded arm, so it
                            // branches on the *complement* predicate.
                            mf.blocks[a].insns.push(cmp2);
                            mf.blocks[a].term = MTerm::Cond {
                                src: MCondSrc::Pred(pf),
                                taken: join,
                                fall: taken,
                                wish: Some(WishType::Jump),
                                prof: join_prof,
                            };
                            let guarded = guard_insns(&mf.blocks[taken].insns, pt);
                            mf.blocks[taken].insns = guarded;
                        }
                    }
                    // Wish regions are terminal: their arms now end in wish
                    // joins / stay branch targets, so they can't be arms of
                    // an enclosing conversion. Nothing else to do.
                }
                Action::Keep => unreachable!(),
            }
            continue 'outer; // predecessors changed; restart the scan
        }
        break;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wishbranch_ir::{FuncId, FunctionBuilder, Interpreter, Module};
    use wishbranch_isa::{CmpOp, Gpr, Operand, PredReg};

    /// if (r1 < 5) r2 = 1 else r2 = 2; r3 = r2.
    fn diamond_module() -> Module {
        let (r1, r2, r3) = (Gpr::new(1), Gpr::new(2), Gpr::new(3));
        let mut f = FunctionBuilder::new("main");
        let e = f.entry_block();
        let el = f.new_block();
        let t = f.new_block();
        let j = f.new_block();
        f.select(e);
        f.movi(r1, 3);
        f.branch(CmpOp::Lt, r1, Operand::imm(5), t, el);
        f.select(el);
        f.movi(r2, 2);
        f.jump(j);
        f.select(t);
        f.movi(r2, 1);
        f.jump(j);
        f.select(j);
        f.mov(r3, r2);
        f.halt();
        Module::new(vec![f.build()], 0).unwrap()
    }

    fn lower(m: &Module) -> MFunc {
        let prof = Interpreter::new().run(m, 10_000).unwrap().profile;
        crate::mir::lower_function(FuncId(0), &m.funcs()[0], &crate::mir::bundle_profiles(std::slice::from_ref(&prof)))
    }

    #[test]
    fn base_max_predicates_diamond() {
        let m = diamond_module();
        let mut mf = lower(&m);
        let mut report = CompileReport::default();
        run(
            &mut mf,
            BinaryVariant::BaseMax,
            &CompileOptions::default(),
            &mut report,
        );
        assert_eq!(report.regions_predicated, 1);
        assert!(mf.blocks[1].dead && mf.blocks[2].dead);
        assert!(matches!(mf.blocks[0].term, MTerm::Jump(3)));
        // Entry block now holds: movi, cmp2, guarded else, guarded then.
        let ops: Vec<&Insn> = mf.blocks[0].insns.iter().filter_map(|m| m.as_op()).collect();
        assert_eq!(ops.len(), 4);
        assert!(ops[2].guard.is_some() && ops[3].guard.is_some());
        assert_ne!(ops[2].guard, ops[3].guard);
    }

    #[test]
    fn wish_variant_generates_jump_and_join() {
        // Make the arms big enough to clear the N=5 threshold.
        let (r1, r2) = (Gpr::new(1), Gpr::new(2));
        let mut f = FunctionBuilder::new("main");
        let e = f.entry_block();
        let el = f.new_block();
        let t = f.new_block();
        let j = f.new_block();
        f.select(e);
        f.movi(r1, 3);
        f.branch(CmpOp::Lt, r1, Operand::imm(5), t, el);
        f.select(el);
        for _ in 0..4 {
            f.movi(r2, 2);
        }
        f.jump(j);
        f.select(t);
        for _ in 0..4 {
            f.movi(r2, 1);
        }
        f.jump(j);
        f.select(j);
        f.halt();
        let m = Module::new(vec![f.build()], 0).unwrap();
        let mut mf = lower(&m);
        let mut report = CompileReport::default();
        run(
            &mut mf,
            BinaryVariant::WishJumpJoin,
            &CompileOptions::default(),
            &mut report,
        );
        assert_eq!(report.regions_wish, 1);
        assert!(matches!(
            mf.blocks[0].term,
            MTerm::Cond {
                wish: Some(WishType::Jump),
                ..
            }
        ));
        assert!(matches!(
            mf.blocks[1].term,
            MTerm::Cond {
                wish: Some(WishType::Join),
                taken: 3,
                fall: 2,
                ..
            }
        ));
        // Both arms fully guarded.
        assert!(mf.blocks[1]
            .insns
            .iter()
            .all(|m| m.as_op().unwrap().guard == Some(PredReg::new(2))));
        assert!(mf.blocks[2]
            .insns
            .iter()
            .all(|m| m.as_op().unwrap().guard == Some(PredReg::new(1))));
    }

    #[test]
    fn wish_variant_predicates_small_region() {
        let m = diamond_module(); // 1-µop arms, under the N=5 threshold
        let mut mf = lower(&m);
        let mut report = CompileReport::default();
        run(
            &mut mf,
            BinaryVariant::WishJumpJoin,
            &CompileOptions::default(),
            &mut report,
        );
        assert_eq!(report.regions_wish, 0);
        assert_eq!(report.regions_predicated, 1);
    }

    #[test]
    fn normal_variant_converts_nothing() {
        let m = diamond_module();
        let mut mf = lower(&m);
        let mut report = CompileReport::default();
        run(
            &mut mf,
            BinaryVariant::NormalBranch,
            &CompileOptions::default(),
            &mut report,
        );
        assert_eq!(report.regions_predicated + report.regions_wish, 0);
    }

    #[test]
    fn nested_diamonds_convert_inside_out() {
        // if (r1<5) { if (r2<3) r3=1 else r3=2 } else r3=4
        let (r1, r2, r3) = (Gpr::new(1), Gpr::new(2), Gpr::new(3));
        let mut f = FunctionBuilder::new("main");
        let e = f.entry_block();
        let outer_else = f.new_block();
        let inner = f.new_block();
        let inner_else = f.new_block();
        let inner_then = f.new_block();
        let inner_join = f.new_block();
        let j = f.new_block();
        f.select(e);
        f.movi(r1, 3);
        f.movi(r2, 1);
        f.branch(CmpOp::Lt, r1, Operand::imm(5), inner, outer_else);
        f.select(outer_else);
        f.movi(r3, 4);
        f.jump(j);
        f.select(inner);
        f.branch(CmpOp::Lt, r2, Operand::imm(3), inner_then, inner_else);
        f.select(inner_else);
        f.movi(r3, 2);
        f.jump(inner_join);
        f.select(inner_then);
        f.movi(r3, 1);
        f.jump(inner_join);
        f.select(inner_join);
        f.jump(j);
        f.select(j);
        f.halt();
        let m = Module::new(vec![f.build()], 0).unwrap();
        let mut mf = lower(&m);
        let mut report = CompileReport::default();
        run(
            &mut mf,
            BinaryVariant::BaseMax,
            &CompileOptions::default(),
            &mut report,
        );
        // Inner diamond first, then the outer triangle/diamond collapses too.
        assert_eq!(report.regions_predicated, 2);
        // Everything ends up in the entry block, which jumps to the join.
        assert!(matches!(mf.blocks[0].term, MTerm::Jump(6)));
    }

    #[test]
    fn loop_latch_is_never_converted() {
        let r1 = Gpr::new(1);
        let mut f = FunctionBuilder::new("main");
        let e = f.entry_block();
        let body = f.new_block();
        let exit = f.new_block();
        f.select(e);
        f.movi(r1, 0);
        f.jump(body);
        f.select(body);
        f.alu(wishbranch_isa::AluOp::Add, r1, r1, Operand::imm(1));
        f.branch(CmpOp::Lt, r1, Operand::imm(10), body, exit);
        f.select(exit);
        f.halt();
        let m = Module::new(vec![f.build()], 0).unwrap();
        let mut mf = lower(&m);
        let mut report = CompileReport::default();
        run(
            &mut mf,
            BinaryVariant::BaseMax,
            &CompileOptions::default(),
            &mut report,
        );
        assert_eq!(report.regions_predicated, 0);
        assert!(matches!(mf.blocks[1].term, MTerm::Cond { .. }));
    }
}
