//! Wish-loop conversion (§3.2, Fig. 4): predicating the bodies of small
//! innermost loops while keeping the backward branch as a `wish.loop`.

use crate::mir::{guard_insns, preds_used, MBlock, MCondSrc, MFunc, MInsn, MTerm};
use crate::{CompileOptions, CompileReport};
use wishbranch_isa::{Insn, PredReg, WishType};

/// The predicate register reserved for loop predication. If-conversion only
/// allocates from p1..p14, so p15 is always free for the (innermost,
/// non-nested — §3.5.4) wish loop.
pub(crate) const LOOP_PRED: PredReg = PredReg::new(15);

/// Converts eligible loops in `mf` to wish loops.
///
/// Eligibility (the compiler heuristics of §4.2.2, plus the structural
/// conditions implied by Fig. 4):
///
/// * the loop is a single-block self-loop (`bN: … ; if cond goto bN`),
///   which after if-conversion covers any innermost loop whose body was a
///   collapsible hammock; multi-block loops keep their normal backward
///   branch;
/// * the body contains no calls and does not touch the reserved loop
///   predicate;
/// * the body has fewer than L µops (`wish_loop_body_max`).
pub(crate) fn run(mf: &mut MFunc, opts: &CompileOptions, report: &mut CompileReport) {
    for b in 1..mf.blocks.len() {
        if mf.blocks[b].dead {
            continue;
        }
        let MTerm::Cond {
            src: MCondSrc::IrCond(cond),
            taken,
            fall,
            wish: None,
            prof,
        } = mf.blocks[b].term
        else {
            continue;
        };
        if taken != b || fall == b {
            continue; // not a self-loop latch
        }
        let blk = &mf.blocks[b];
        if !blk.insns.iter().all(|m| matches!(m, MInsn::Op(_))) {
            continue; // calls in the body
        }
        if blk.len() >= opts.wish_loop_body_max {
            continue;
        }
        if preds_used(&blk.insns) & (1 << LOOP_PRED.index()) != 0 {
            continue; // body already uses p15 (cannot happen today; defensive)
        }

        // Insert `pset p15 = 1` on every entry edge (Fig. 4b's loop-header
        // `mov p1, 1`).
        let preds = mf.predecessors();
        let pset = MInsn::Op(Insn::pred_set(LOOP_PRED, true));
        for &p in &preds[b] {
            if p == b {
                continue;
            }
            if matches!(mf.blocks[p].term, MTerm::Jump(_)) {
                mf.blocks[p].insns.push(pset);
            } else {
                // Conditional entry edge: interpose a preheader block.
                let h = mf.blocks.len();
                mf.blocks.push(MBlock {
                    insns: vec![pset],
                    term: MTerm::Jump(b),
                    dead: false,
                });
                match &mut mf.blocks[p].term {
                    MTerm::Cond { taken, fall, .. } => {
                        if *taken == b {
                            *taken = h;
                        }
                        if *fall == b {
                            *fall = h;
                        }
                    }
                    _ => unreachable!("terminator has no successors"),
                }
            }
        }

        // Predicate the body (Fig. 4b): every µop guarded by p15, nested
        // predicate definitions re-ANDed, and the loop condition computed
        // under the guard into the guard: `(p15) cmp p15 = cond`.
        let body = guard_insns(&mf.blocks[b].insns, LOOP_PRED);
        let blk = &mut mf.blocks[b];
        blk.insns = body;
        blk.insns.push(MInsn::Op(
            Insn::cmp(cond.op, LOOP_PRED, cond.lhs, cond.rhs).guarded(LOOP_PRED),
        ));
        blk.term = MTerm::Cond {
            src: MCondSrc::Pred(LOOP_PRED),
            taken: b,
            fall,
            wish: Some(WishType::Loop),
            prof,
        };
        report.loops_wish += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mir::lower_function;
    use wishbranch_ir::{FuncId, FunctionBuilder, Interpreter, Module};
    use wishbranch_isa::{AluOp, CmpOp, Gpr, Operand};

    fn loop_module(body_len: usize) -> Module {
        let r1 = Gpr::new(1);
        let r2 = Gpr::new(2);
        let mut f = FunctionBuilder::new("main");
        let e = f.entry_block();
        let body = f.new_block();
        let exit = f.new_block();
        f.select(e);
        f.movi(r1, 0);
        f.jump(body);
        f.select(body);
        for _ in 0..body_len {
            f.alu(AluOp::Add, r2, r2, Operand::imm(1));
        }
        f.alu(AluOp::Add, r1, r1, Operand::imm(1));
        f.branch(CmpOp::Lt, r1, Operand::imm(10), body, exit);
        f.select(exit);
        f.halt();
        Module::new(vec![f.build()], 0).unwrap()
    }

    fn convert(m: &Module) -> (MFunc, CompileReport) {
        let prof = Interpreter::new().run(m, 100_000).unwrap().profile;
        let mut mf = lower_function(FuncId(0), &m.funcs()[0], &crate::mir::bundle_profiles(std::slice::from_ref(&prof)));
        let mut report = CompileReport::default();
        run(&mut mf, &CompileOptions::default(), &mut report);
        (mf, report)
    }

    #[test]
    fn small_loop_becomes_wish_loop() {
        let (mf, report) = convert(&loop_module(3));
        assert_eq!(report.loops_wish, 1);
        let MTerm::Cond { src, wish, .. } = mf.blocks[1].term else {
            panic!("latch should stay conditional");
        };
        assert_eq!(wish, Some(WishType::Loop));
        assert_eq!(src, MCondSrc::Pred(LOOP_PRED));
        // All body µops guarded; last is the guarded cmp into p15.
        let last = mf.blocks[1].insns.last().unwrap().as_op().unwrap();
        assert_eq!(last.guard, Some(LOOP_PRED));
        assert_eq!(last.def_pred(), Some(LOOP_PRED));
        // Entry edge got the pset.
        let entry_last = mf.blocks[0].insns.last().unwrap().as_op().unwrap();
        assert_eq!(entry_last.def_pred(), Some(LOOP_PRED));
    }

    #[test]
    fn big_loop_body_is_left_alone() {
        let (mf, report) = convert(&loop_module(40));
        assert_eq!(report.loops_wish, 0);
        assert!(matches!(
            mf.blocks[1].term,
            MTerm::Cond { wish: None, .. }
        ));
    }

    #[test]
    fn conditional_entry_edge_gets_preheader() {
        // Entry branches directly into the loop: if (r3<1) goto body else exit.
        let r1 = Gpr::new(1);
        let mut f = FunctionBuilder::new("main");
        let e = f.entry_block();
        let body = f.new_block();
        let exit = f.new_block();
        f.select(e);
        f.branch(CmpOp::Lt, Gpr::new(3), Operand::imm(1), body, exit);
        f.select(body);
        f.alu(AluOp::Add, r1, r1, Operand::imm(1));
        f.branch(CmpOp::Lt, r1, Operand::imm(5), body, exit);
        f.select(exit);
        f.halt();
        let m = Module::new(vec![f.build()], 0).unwrap();
        let (mf, report) = convert(&m);
        assert_eq!(report.loops_wish, 1);
        // A preheader block was appended and entry's taken edge points at it.
        assert_eq!(mf.blocks.len(), 4);
        let MTerm::Cond { taken, .. } = mf.blocks[0].term else {
            panic!()
        };
        assert_eq!(taken, 3);
        assert!(matches!(mf.blocks[3].term, MTerm::Jump(1)));
    }
}
