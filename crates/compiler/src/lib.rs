//! # wishbranch-compiler
//!
//! Lowers [`wishbranch_ir`] modules to µop [`wishbranch_isa::Program`]s in
//! the five binary variants of the paper's Table 3:
//!
//! | Variant | forward branches | backward branches |
//! |---|---|---|
//! | [`BinaryVariant::NormalBranch`]    | stay branches | stay branches |
//! | [`BinaryVariant::BaseDef`]         | predicated when the cost model (Eq. 4.1–4.3) says so | stay branches |
//! | [`BinaryVariant::BaseMax`]         | predicated whenever if-convertible | stay branches |
//! | [`BinaryVariant::WishJumpJoin`]    | wish jumps/joins or predicated (§4.2.2, threshold N) | stay branches |
//! | [`BinaryVariant::WishJumpJoinLoop`]| as above | wish loops (§4.2.2, threshold L) or stay branches |
//! | [`BinaryVariant::WishAdaptive`] *(extension)* | wish branches only where some training profile is hard (§3.6 input dependence, see [`compile_adaptive`]) | wish loops or stay branches |
//!
//! The pipeline is: IR → MIR (a machine-level CFG whose instructions are
//! µops) → if-conversion / wish-branch conversion / wish-loop conversion on
//! the MIR → block layout → linearization to a flat program image.
//!
//! If-conversion uses IA-64-style two-destination compares
//! ([`wishbranch_isa::InsnKind::Cmp2`]): the taken side of a hammock is
//! guarded by `pT`, the fall-through side by the complement `pF`. Nested
//! regions compose by re-ANDing inner predicate definitions with the outer
//! guard, so arbitrarily nested hammocks stay architecturally exact.
//!
//! # Example
//!
//! ```
//! use wishbranch_compiler::{compile, BinaryVariant, CompileOptions};
//! use wishbranch_ir::{FunctionBuilder, Module, Interpreter};
//! use wishbranch_isa::{CmpOp, Gpr, Operand};
//!
//! // if (r1 < 5) r2 = 1; else r2 = 2;
//! let r1 = Gpr::new(1);
//! let r2 = Gpr::new(2);
//! let mut f = FunctionBuilder::new("main");
//! let (e, t, el, j) = (f.entry_block(), f.new_block(), f.new_block(), f.new_block());
//! f.select(e);
//! f.movi(r1, 3);
//! f.branch(CmpOp::Lt, r1, Operand::imm(5), t, el);
//! f.select(el);
//! f.movi(r2, 2);
//! f.jump(j);
//! f.select(t);
//! f.movi(r2, 1);
//! f.jump(j);
//! f.select(j);
//! f.halt();
//! let module = Module::new(vec![f.build()], 0).unwrap();
//!
//! let profile = Interpreter::new().run(&module, 1_000).unwrap().profile;
//! let bin = compile(&module, &profile, BinaryVariant::BaseMax, &CompileOptions::default());
//! assert!(bin.report.regions_predicated >= 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cost;
mod ifconv;
mod linearize;
mod mir;
mod wloop;

pub use cost::{region_cost, RegionCost};

use wishbranch_ir::{Module, Profile};
use wishbranch_isa::Program;

pub use mir::{ProfileBundle, SiteStats};

/// Which of the paper's Table 3 binaries to produce.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BinaryVariant {
    /// All branches stay normal conditional branches.
    NormalBranch,
    /// Predicated-code baseline with the compile-time cost-benefit analysis
    /// of §4.2.1 (the paper's BASE-DEF).
    BaseDef,
    /// Aggressively predicated baseline: every if-convertible region is
    /// predicated (the paper's BASE-MAX).
    BaseMax,
    /// Wish jumps and joins for large regions, predication for small ones;
    /// backward branches stay normal.
    WishJumpJoin,
    /// As [`BinaryVariant::WishJumpJoin`], plus wish loops for small
    /// innermost loop bodies.
    WishJumpJoinLoop,
    /// Our implementation of the paper's §3.6/§7 future work: the compiler
    /// additionally considers the *input-data-set dependence* of each
    /// branch, measured as the spread of its misprediction estimate across
    /// multiple training profiles (see [`compile_adaptive`]). Regions whose
    /// hardness is input-dependent become wish branches; stably hard ones
    /// are plainly predicated; stably easy ones stay normal branches and
    /// pay no wish overhead at all.
    WishAdaptive,
}

impl BinaryVariant {
    /// All five variants of the paper's Table 3.
    pub const ALL: [BinaryVariant; 5] = [
        BinaryVariant::NormalBranch,
        BinaryVariant::BaseDef,
        BinaryVariant::BaseMax,
        BinaryVariant::WishJumpJoin,
        BinaryVariant::WishJumpJoinLoop,
    ];

    /// Table 3's five plus this reproduction's extensions.
    pub const ALL_WITH_EXTENSIONS: [BinaryVariant; 6] = [
        BinaryVariant::NormalBranch,
        BinaryVariant::BaseDef,
        BinaryVariant::BaseMax,
        BinaryVariant::WishJumpJoin,
        BinaryVariant::WishJumpJoinLoop,
        BinaryVariant::WishAdaptive,
    ];

    /// Short label used in experiment output.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            BinaryVariant::NormalBranch => "normal",
            BinaryVariant::BaseDef => "BASE-DEF",
            BinaryVariant::BaseMax => "BASE-MAX",
            BinaryVariant::WishJumpJoin => "wish-jj",
            BinaryVariant::WishJumpJoinLoop => "wish-jjl",
            BinaryVariant::WishAdaptive => "wish-adaptive",
        }
    }

    /// Whether this variant may contain wish branches.
    #[must_use]
    pub fn has_wish_branches(self) -> bool {
        matches!(
            self,
            BinaryVariant::WishJumpJoin
                | BinaryVariant::WishJumpJoinLoop
                | BinaryVariant::WishAdaptive
        )
    }
}

impl std::fmt::Display for BinaryVariant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Compiler tuning knobs. Defaults follow §4.2.2 of the paper.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct CompileOptions {
    /// §4.2.2's N: a region whose predicated body exceeds this many µops
    /// becomes a wish jump/join instead of plain predicated code.
    pub wish_jump_threshold: usize,
    /// §4.2.2's L: a loop body must be smaller than this many µops to become
    /// a wish loop.
    pub wish_loop_body_max: usize,
    /// Branch misprediction penalty used by the cost model (cycles).
    pub mispredict_penalty: f64,
    /// Effective sustained µops/cycle assumed by the cost model when
    /// converting instruction counts to execution-time estimates.
    pub est_ipc: f64,
    /// Largest side (in µops) a region may have and still be if-converted.
    pub max_predicated_side: usize,
    /// [`BinaryVariant::WishAdaptive`] only: a region becomes a wish branch
    /// when its misprediction estimate varies by more than this across the
    /// training profiles (§3.6: "input data set dependence of the branch").
    pub input_dependence_threshold: f64,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            wish_jump_threshold: 5,
            wish_loop_body_max: 30,
            mispredict_penalty: 30.0,
            est_ipc: 3.0,
            max_predicated_side: 200,
            input_dependence_threshold: 0.02,
        }
    }
}

/// Static summary of what the compiler did.
#[derive(Clone, Copy, PartialEq, Eq, Default, Debug)]
pub struct CompileReport {
    /// Regions fully predicated (branch removed).
    pub regions_predicated: usize,
    /// Regions converted to wish jump/join form.
    pub regions_wish: usize,
    /// Convertible regions deliberately left as branches.
    pub regions_kept: usize,
    /// Loops converted to wish loops.
    pub loops_wish: usize,
}

/// A compiled binary: the program image plus the compile report.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CompiledBinary {
    /// The µop program.
    pub program: Program,
    /// What the compiler converted.
    pub report: CompileReport,
}

/// Compiles `module` into the requested binary variant, using `profile`
/// (from [`wishbranch_ir::Interpreter`] on a *training* input) for the cost
/// model — the compiler never sees run-time hardware state, exactly like the
/// paper's ORC-based flow.
///
/// For [`BinaryVariant::WishAdaptive`] with a single profile, all branches
/// look input-independent (zero spread); use [`compile_adaptive`] with
/// several training profiles to exercise the §3.6 heuristic.
#[must_use]
pub fn compile(
    module: &Module,
    profile: &Profile,
    variant: BinaryVariant,
    opts: &CompileOptions,
) -> CompiledBinary {
    let bundle = mir::bundle_profiles(std::slice::from_ref(profile));
    compile_with_bundle(module, &bundle, variant, opts)
}

/// Compiles the [`BinaryVariant::WishAdaptive`] binary from several training
/// profiles (one per input set the compiler gets to see): branches whose
/// estimated misprediction rate is *input-dependent* (spread across profiles
/// above [`CompileOptions::input_dependence_threshold`]) become wish
/// branches, stably hard ones are predicated, stably easy ones stay normal
/// branches — the compile-time consideration the paper lists in §3.6 but
/// leaves to future work (§7).
#[must_use]
pub fn compile_adaptive(
    module: &Module,
    profiles: &[Profile],
    opts: &CompileOptions,
) -> CompiledBinary {
    let bundle = mir::bundle_profiles(profiles);
    compile_with_bundle(module, &bundle, BinaryVariant::WishAdaptive, opts)
}

fn compile_with_bundle(
    module: &Module,
    bundle: &mir::ProfileBundle,
    variant: BinaryVariant,
    opts: &CompileOptions,
) -> CompiledBinary {
    let mut report = CompileReport::default();
    let mut mfuncs: Vec<mir::MFunc> = module
        .funcs()
        .iter()
        .enumerate()
        .map(|(fi, f)| mir::lower_function(wishbranch_ir::FuncId(fi as u32), f, bundle))
        .collect();

    for mf in &mut mfuncs {
        if variant != BinaryVariant::NormalBranch {
            ifconv::run(mf, variant, opts, &mut report);
        }
        if matches!(
            variant,
            BinaryVariant::WishJumpJoinLoop | BinaryVariant::WishAdaptive
        ) {
            wloop::run(mf, opts, &mut report);
        }
    }

    let program = linearize::linearize(&mfuncs, module.main());
    CompiledBinary { program, report }
}
