//! Block layout and emission of the final flat program image.

use crate::mir::{MCondSrc, MFunc, MInsn, MTerm};
use wishbranch_ir::FuncId;
use wishbranch_isa::{BranchKind, Insn, PredReg, Program, ProgramBuilder};

/// Scratch predicate used to materialize unconverted branch conditions.
/// Program-order correctness makes reuse safe (the out-of-order core renames
/// predicates like any other register).
const SCRATCH_PRED: PredReg = PredReg::new(1);

/// Chooses an emission order for the live blocks of `mf`: greedy
/// fall-through chains from the entry, so that a conditional branch's
/// not-taken successor is physically next whenever possible. Wish jumps and
/// joins *require* this (their low-confidence mode falls through into the
/// predicated arm), and the chains are always realizable for converted
/// regions because their arms are single-predecessor.
fn layout(mf: &MFunc) -> Vec<usize> {
    let n = mf.blocks.len();
    let mut visited = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut start = Some(0);
    while let Some(s) = start {
        let mut cur = Some(s);
        while let Some(c) = cur {
            if visited[c] || mf.blocks[c].dead {
                break;
            }
            visited[c] = true;
            order.push(c);
            cur = match mf.blocks[c].term {
                MTerm::Jump(t) if !visited[t] && !mf.blocks[t].dead => Some(t),
                MTerm::Cond { fall, .. } if !visited[fall] && !mf.blocks[fall].dead => Some(fall),
                MTerm::Cond { taken, .. } if !visited[taken] && !mf.blocks[taken].dead => {
                    Some(taken)
                }
                _ => None,
            };
        }
        start = (0..n).find(|&b| !visited[b] && !mf.blocks[b].dead);
    }
    order
}

/// Emits all functions (main first) into one flat [`Program`].
pub(crate) fn linearize(mfuncs: &[MFunc], main: FuncId) -> Program {
    let mut b = ProgramBuilder::new();

    // Emission order: main first, then the rest.
    let mut func_order: Vec<usize> = vec![main.0 as usize];
    func_order.extend((0..mfuncs.len()).filter(|&i| i != main.0 as usize));

    // One label per (function, block).
    let labels: Vec<Vec<_>> = mfuncs
        .iter()
        .map(|mf| {
            (0..mf.blocks.len())
                .map(|bi| b.label(format!("{}.bb{}", mf.name, bi)))
                .collect()
        })
        .collect();

    for &fi in &func_order {
        let mf = &mfuncs[fi];
        let order = layout(mf);
        for (pos, &blk_idx) in order.iter().enumerate() {
            b.bind(labels[fi][blk_idx]);
            let blk = &mf.blocks[blk_idx];
            for m in &blk.insns {
                match m {
                    MInsn::Op(insn) => b.push(*insn),
                    MInsn::CallFunc(callee) => {
                        // A function's entry block is its block 0, which the
                        // layout always emits first.
                        b.push_call(labels[callee.0 as usize][0]);
                    }
                }
            }
            let next = order.get(pos + 1).copied();
            match blk.term {
                MTerm::Jump(t) => {
                    if next != Some(t) {
                        b.push_jump(labels[fi][t]);
                    }
                }
                MTerm::Cond {
                    src,
                    taken,
                    fall,
                    wish,
                    ..
                } => {
                    let pred = match src {
                        MCondSrc::IrCond(c) => {
                            b.push(Insn::cmp(c.op, SCRATCH_PRED, c.lhs, c.rhs));
                            SCRATCH_PRED
                        }
                        MCondSrc::Pred(p) => p,
                    };
                    b.push_cond_branch(pred, true, labels[fi][taken], wish);
                    if next != Some(fall) {
                        // Wish jumps/joins rely on falling through into the
                        // predicated arm in low-confidence mode; the layout
                        // guarantees that because region arms have a single
                        // predecessor. Wish loops don't: their not-taken
                        // path may need an explicit jump to the exit block.
                        assert!(
                            !matches!(wish, Some(wishbranch_isa::WishType::Jump | wishbranch_isa::WishType::Join)),
                            "wish jump/join fall-through must be physically next"
                        );
                        b.push_jump(labels[fi][fall]);
                    }
                }
                MTerm::Ret => b.push(Insn::branch(BranchKind::Ret, 0)),
                MTerm::Halt => b.push(Insn::halt()),
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mir::lower_function;
    use wishbranch_ir::{FunctionBuilder, Interpreter, Module};
    use wishbranch_isa::{CmpOp, Gpr, InsnKind, Operand, WishType};

    #[test]
    fn straight_line_emits_no_redundant_jumps() {
        let mut f = FunctionBuilder::new("main");
        let e = f.entry_block();
        let x = f.new_block();
        f.select(e);
        f.movi(Gpr::new(1), 1);
        f.jump(x);
        f.select(x);
        f.halt();
        let m = Module::new(vec![f.build()], 0).unwrap();
        let prof = Interpreter::new().run(&m, 100).unwrap().profile;
        let mf = lower_function(FuncId(0), &m.funcs()[0], &crate::mir::bundle_profiles(std::slice::from_ref(&prof)));
        let p = linearize(&[mf], FuncId(0));
        // movi + halt only: the jump to the physically-next block vanishes.
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn branch_fallthrough_is_physically_next() {
        let mut f = FunctionBuilder::new("main");
        let e = f.entry_block();
        let t = f.new_block();
        let fall = f.new_block();
        f.select(e);
        f.branch(CmpOp::Eq, Gpr::new(1), Operand::imm(0), t, fall);
        f.select(fall);
        f.movi(Gpr::new(2), 1);
        f.halt();
        f.select(t);
        f.movi(Gpr::new(2), 2);
        f.halt();
        let m = Module::new(vec![f.build()], 0).unwrap();
        let prof = Interpreter::new().run(&m, 100).unwrap().profile;
        let mf = lower_function(FuncId(0), &m.funcs()[0], &crate::mir::bundle_profiles(std::slice::from_ref(&prof)));
        let p = linearize(&[mf], FuncId(0));
        // cmp, br → movi(fall) halt, movi(taken) halt. Branch target is the
        // taken block at index 4.
        assert_eq!(p.len(), 6);
        assert_eq!(p.insn(1).direct_target(), Some(4));
        assert!(matches!(p.insn(0).kind, InsnKind::Cmp { .. }));
    }

    #[test]
    fn calls_resolve_to_function_entries() {
        let mut callee = FunctionBuilder::new("callee");
        let e = callee.entry_block();
        callee.select(e);
        callee.movi(Gpr::new(5), 9);
        callee.ret();
        let mut main = FunctionBuilder::new("main");
        let e = main.entry_block();
        main.select(e);
        main.call(wishbranch_ir::FuncId(1));
        main.halt();
        let m = Module::new(vec![main.build(), callee.build()], 0).unwrap();
        let prof = Interpreter::new().run(&m, 100).unwrap().profile;
        let mfs: Vec<_> = m
            .funcs()
            .iter()
            .enumerate()
            .map(|(i, f)| lower_function(FuncId(i as u32), f, &crate::mir::bundle_profiles(std::slice::from_ref(&prof))))
            .collect();
        let p = linearize(&mfs, FuncId(0));
        // main: call, halt; callee: movi, ret.
        assert_eq!(p.len(), 4);
        assert_eq!(p.insn(0).direct_target(), Some(2));
        assert!(matches!(
            p.insn(3).kind,
            InsnKind::Branch {
                kind: BranchKind::Ret,
                ..
            }
        ));
    }

    #[test]
    fn wish_jump_join_layout_matches_fig3c() {
        // Build via the full pipeline to check physical ordering A,B,C,JOIN.
        let (r1, r2) = (Gpr::new(1), Gpr::new(2));
        let mut f = FunctionBuilder::new("main");
        let e = f.entry_block();
        let el = f.new_block();
        let t = f.new_block();
        let j = f.new_block();
        f.select(e);
        f.movi(r1, 3);
        f.branch(CmpOp::Lt, r1, Operand::imm(5), t, el);
        f.select(el);
        for _ in 0..4 {
            f.movi(r2, 2);
        }
        f.jump(j);
        f.select(t);
        for _ in 0..4 {
            f.movi(r2, 1);
        }
        f.jump(j);
        f.select(j);
        f.halt();
        let m = Module::new(vec![f.build()], 0).unwrap();
        let prof = Interpreter::new().run(&m, 100).unwrap().profile;
        let bin = crate::compile(
            &m,
            &prof,
            crate::BinaryVariant::WishJumpJoin,
            &crate::CompileOptions::default(),
        );
        let p = &bin.program;
        let wish_jump = p
            .insns()
            .iter()
            .position(|i| i.wish == Some(WishType::Jump))
            .expect("has a wish jump");
        let wish_join = p
            .insns()
            .iter()
            .position(|i| i.wish == Some(WishType::Join))
            .expect("has a wish join");
        assert!(wish_jump < wish_join);
        // The jump targets the taken arm, which starts right after the join.
        assert_eq!(
            p.insn(wish_jump as u32).direct_target(),
            Some(wish_join as u32 + 1)
        );
        // The join targets the final halt block.
        let join_target = p.insn(wish_join as u32).direct_target().unwrap();
        assert!(matches!(p.insn(join_target).kind, InsnKind::Halt));
    }
}
