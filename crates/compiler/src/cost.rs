//! The compile-time cost-benefit model of §4.2.1 (Equations 4.1–4.3).

use crate::CompileOptions;
use wishbranch_ir::BranchSiteProfile;

/// The two execution-time estimates compared by Equation 4.3.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct RegionCost {
    /// Eq. 4.1: estimated time of the normal-branch code,
    /// `exec_T·P(T) + exec_N·P(N) + penalty·P(misprediction)`.
    pub exec_normal: f64,
    /// Eq. 4.2: estimated time of the predicated code.
    pub exec_pred: f64,
}

impl RegionCost {
    /// Eq. 4.3: whether the predicated code is estimated faster.
    #[must_use]
    pub fn favors_predication(&self) -> bool {
        self.exec_pred < self.exec_normal
    }
}

/// Evaluates the cost model for an if-convertible region.
///
/// `taken_len` / `fall_len` are the µop counts of the taken-side and
/// fall-through-side arms; `pred_overhead` is the number of extra µops
/// predication adds (the `cmp2` upgrade plus any `pand`s). Execution times
/// are estimated as µop count divided by [`CompileOptions::est_ipc`] — the
/// paper's "dependency height and resource usage analysis" distilled to a
/// throughput model.
#[must_use]
pub fn region_cost(
    prof: &BranchSiteProfile,
    taken_len: usize,
    fall_len: usize,
    pred_overhead: usize,
    opts: &CompileOptions,
) -> RegionCost {
    let t = prof.p_taken();
    let n = 1.0 - t;
    let exec_t = taken_len as f64 / opts.est_ipc;
    let exec_n = fall_len as f64 / opts.est_ipc;
    let exec_normal =
        exec_t * t + exec_n * n + opts.mispredict_penalty * prof.p_mispredict();
    let exec_pred = (taken_len + fall_len + pred_overhead) as f64 / opts.est_ipc;
    RegionCost {
        exec_normal,
        exec_pred,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prof(taken: u64, not_taken: u64, misp: u64) -> BranchSiteProfile {
        BranchSiteProfile {
            taken,
            not_taken,
            est_mispredicts: misp,
        }
    }

    #[test]
    fn hard_to_predict_branch_favors_predication() {
        // 50/50 branch mispredicted 40% of the time, small arms.
        let c = region_cost(&prof(50, 50, 40), 6, 6, 2, &CompileOptions::default());
        assert!(c.favors_predication(), "{c:?}");
    }

    #[test]
    fn well_predicted_branch_keeps_branching() {
        // Easy branch: ~0% mispredictions, symmetric arms.
        let c = region_cost(&prof(99, 1, 1), 8, 8, 2, &CompileOptions::default());
        assert!(!c.favors_predication(), "{c:?}");
    }

    #[test]
    fn huge_arms_resist_predication_even_when_hard() {
        // 10% mispredict rate but predication doubles a 100-µop path.
        let c = region_cost(&prof(50, 50, 10), 100, 100, 2, &CompileOptions::default());
        assert!(!c.favors_predication(), "{c:?}");
    }

    #[test]
    fn never_executed_region_is_not_predicated() {
        let c = region_cost(&prof(0, 0, 0), 4, 4, 2, &CompileOptions::default());
        assert!(!c.favors_predication(), "{c:?}");
    }

    #[test]
    fn crossover_moves_with_penalty() {
        // Same branch, shallow vs deep pipeline: deep pipeline tips the
        // decision toward predication (the paper's Fig. 15 intuition).
        let p = prof(55, 45, 15);
        let shallow = region_cost(
            &p,
            8,
            8,
            2,
            &CompileOptions {
                mispredict_penalty: 5.0,
                ..CompileOptions::default()
            },
        );
        let deep = region_cost(
            &p,
            8,
            8,
            2,
            &CompileOptions {
                mispredict_penalty: 30.0,
                ..CompileOptions::default()
            },
        );
        assert!(!shallow.favors_predication());
        assert!(deep.favors_predication());
    }
}
