//! Machine IR: a CFG whose straight-line instructions are already µops, on
//! which if-conversion and wish-branch conversion operate.

use std::collections::HashMap;
use wishbranch_ir::{BlockId, BodyInsn, BranchSiteProfile, Cond, FuncId, Function, Profile, Terminator};
use wishbranch_isa::{Insn, PredReg, WishType};

/// Per-branch-site statistics combined across one or more training
/// profiles. `misp_spread` measures input dependence (§3.6): how much the
/// estimated misprediction rate varies between training inputs.
#[derive(Clone, Copy, PartialEq, Default, Debug)]
pub struct SiteStats {
    /// Counts summed over all training profiles.
    pub combined: BranchSiteProfile,
    /// max − min of the per-profile misprediction estimates.
    pub misp_spread: f64,
    /// Worst (largest) per-profile misprediction estimate.
    pub misp_max: f64,
}

/// All branch sites of a module, combined across training profiles.
pub type ProfileBundle = HashMap<(FuncId, BlockId), SiteStats>;

/// Combines training profiles into per-site statistics.
#[must_use]
pub fn bundle_profiles(profiles: &[Profile]) -> ProfileBundle {
    let mut out: ProfileBundle = HashMap::new();
    let mut rates: HashMap<(FuncId, BlockId), (f64, f64)> = HashMap::new();
    for p in profiles {
        for (&site, prof) in p {
            let s = out.entry(site).or_default();
            s.combined.taken += prof.taken;
            s.combined.not_taken += prof.not_taken;
            s.combined.est_mispredicts += prof.est_mispredicts;
            let r = prof.p_mispredict();
            let e = rates.entry(site).or_insert((r, r));
            e.0 = e.0.min(r);
            e.1 = e.1.max(r);
        }
    }
    for (site, (lo, hi)) in rates {
        if let Some(s) = out.get_mut(&site) {
            s.misp_spread = hi - lo;
            s.misp_max = hi;
        }
    }
    out
}

/// A straight-line MIR instruction: either a real µop or a call placeholder
/// (resolved to a `call` µop at linearization, when function addresses are
/// known).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum MInsn {
    /// An ordinary (non-control) µop; may be guarded.
    Op(Insn),
    /// Call to another function.
    CallFunc(FuncId),
}

impl MInsn {
    pub(crate) fn as_op(&self) -> Option<&Insn> {
        match self {
            MInsn::Op(i) => Some(i),
            MInsn::CallFunc(_) => None,
        }
    }
}

/// The source of a conditional branch's predicate.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum MCondSrc {
    /// Unmaterialized IR condition: the linearizer emits a scratch `cmp`.
    IrCond(Cond),
    /// A predicate register already computed inside the block (conversion
    /// emitted a `cmp2`).
    Pred(PredReg),
}

/// Block terminator.
#[derive(Clone, Copy, PartialEq, Debug)]
pub(crate) enum MTerm {
    Jump(usize),
    Cond {
        src: MCondSrc,
        taken: usize,
        fall: usize,
        wish: Option<WishType>,
        prof: SiteStats,
    },
    Ret,
    Halt,
}

/// A MIR basic block.
#[derive(Clone, Debug)]
pub(crate) struct MBlock {
    pub insns: Vec<MInsn>,
    pub term: MTerm,
    pub dead: bool,
}

impl MBlock {
    /// Whether the block is a plain straight-line block (ends in an
    /// unconditional jump and performs no calls) — the requirement for being
    /// a predicated-region arm.
    pub(crate) fn is_straight(&self) -> bool {
        matches!(self.term, MTerm::Jump(_))
            && self.insns.iter().all(|i| matches!(i, MInsn::Op(_)))
    }

    /// Number of µops in the block body.
    pub(crate) fn len(&self) -> usize {
        self.insns.len()
    }
}

/// A MIR function.
#[derive(Clone, Debug)]
pub(crate) struct MFunc {
    pub name: String,
    pub blocks: Vec<MBlock>,
}

impl MFunc {
    /// Predecessor lists over live blocks.
    pub(crate) fn predecessors(&self) -> Vec<Vec<usize>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for (i, b) in self.blocks.iter().enumerate() {
            if b.dead {
                continue;
            }
            match b.term {
                MTerm::Jump(t) => preds[t].push(i),
                MTerm::Cond { taken, fall, .. } => {
                    preds[taken].push(i);
                    preds[fall].push(i);
                }
                MTerm::Ret | MTerm::Halt => {}
            }
        }
        preds
    }
}

/// Lowers one IR function to MIR (1:1 blocks, branch conditions left
/// unmaterialized).
pub(crate) fn lower_function(fid: FuncId, func: &Function, bundle: &ProfileBundle) -> MFunc {
    let blocks = func
        .blocks
        .iter()
        .enumerate()
        .map(|(bi, block)| {
            let insns = block
                .insns
                .iter()
                .map(|insn| match *insn {
                    BodyInsn::Alu {
                        op,
                        dst,
                        src1,
                        src2,
                    } => MInsn::Op(Insn::alu(op, dst, src1, src2)),
                    BodyInsn::MovImm { dst, imm } => MInsn::Op(Insn::mov_imm(dst, imm)),
                    BodyInsn::Load { dst, base, offset } => {
                        MInsn::Op(Insn::load(dst, base, offset))
                    }
                    BodyInsn::Store { src, base, offset } => {
                        MInsn::Op(Insn::store(src, base, offset))
                    }
                    BodyInsn::Call { func } => MInsn::CallFunc(func),
                })
                .collect();
            let term = match block.term {
                Terminator::Jump(b) => MTerm::Jump(b.0 as usize),
                Terminator::Branch { cond, taken, fall } => MTerm::Cond {
                    src: MCondSrc::IrCond(cond),
                    taken: taken.0 as usize,
                    fall: fall.0 as usize,
                    wish: None,
                    prof: bundle
                        .get(&(fid, BlockId(bi as u32)))
                        .copied()
                        .unwrap_or_default(),
                },
                Terminator::Return => MTerm::Ret,
                Terminator::Halt => MTerm::Halt,
            };
            MBlock {
                insns,
                term,
                dead: false,
            }
        })
        .collect();
    MFunc {
        name: func.name.clone(),
        blocks,
    }
}

/// Redirects every CFG edge that targets an *empty forwarding block* (no
/// instructions, unconditional jump) to that block's final destination, so
/// that collapsed inner regions do not hide outer hammock shapes. Runs to
/// fixpoint; cycles of empty blocks are left untouched (hop limit).
pub(crate) fn thread_jumps(mf: &mut MFunc) {
    let resolve = |blocks: &[MBlock], mut t: usize| -> usize {
        let mut hops = 0;
        while hops < blocks.len() {
            let b = &blocks[t];
            if b.dead || !b.insns.is_empty() {
                break;
            }
            let MTerm::Jump(next) = b.term else { break };
            if next == t {
                break;
            }
            t = next;
            hops += 1;
        }
        t
    };
    for i in 0..mf.blocks.len() {
        if mf.blocks[i].dead {
            continue;
        }
        match mf.blocks[i].term {
            MTerm::Jump(t) => {
                let r = resolve(&mf.blocks, t);
                mf.blocks[i].term = MTerm::Jump(r);
            }
            MTerm::Cond {
                src,
                taken,
                fall,
                wish,
                prof,
            } => {
                let rt = resolve(&mf.blocks, taken);
                let rf = resolve(&mf.blocks, fall);
                mf.blocks[i].term = MTerm::Cond {
                    src,
                    taken: rt,
                    fall: rf,
                    wish,
                    prof,
                };
            }
            MTerm::Ret | MTerm::Halt => {}
        }
    }
    // Remove now-unreachable empty forwarders.
    let preds = mf.predecessors();
    for (block, block_preds) in mf.blocks.iter_mut().zip(&preds).skip(1) {
        if !block.dead
            && block.insns.is_empty()
            && block_preds.is_empty()
            && matches!(block.term, MTerm::Jump(_))
        {
            block.dead = true;
        }
    }
}

/// Guards a region arm with predicate `p`, following the nested-composition
/// rule:
///
/// * instructions that *define* predicates (inner `cmp2`s and the `pand`s
///   from deeper nesting) are left as-is, and each defined predicate `q` is
///   immediately re-ANDed with `p` (`pand q = q, p`), so every inner guard
///   becomes false whenever the enclosing guard is false;
/// * instructions that already carry a guard keep it (it has just been
///   corrected by the re-ANDing);
/// * plain instructions are guarded with `p` directly.
pub(crate) fn guard_insns(insns: &[MInsn], p: PredReg) -> Vec<MInsn> {
    let mut out = Vec::with_capacity(insns.len() + 4);
    for m in insns {
        let MInsn::Op(insn) = m else {
            unreachable!("regions with calls are never converted");
        };
        let defs = insn.def_preds();
        if defs[0].is_some() {
            out.push(MInsn::Op(*insn));
            for q in defs.into_iter().flatten() {
                out.push(MInsn::Op(Insn::new(wishbranch_isa::InsnKind::PredRR {
                    op: wishbranch_isa::PredOp::And,
                    dst: q,
                    src1: q,
                    src2: p,
                })));
            }
        } else if insn.guard.is_some() {
            out.push(MInsn::Op(*insn));
        } else {
            out.push(MInsn::Op(insn.guarded(p)));
        }
    }
    out
}

/// Collects every predicate register referenced (guard, source, or
/// destination) in the given instruction sequence.
pub(crate) fn preds_used(insns: &[MInsn]) -> u16 {
    let mut mask = 0u16;
    let mut add = |p: PredReg| mask |= 1 << p.index();
    for m in insns {
        if let MInsn::Op(i) = m {
            if let Some(g) = i.guard {
                add(g);
            }
            for p in i.def_preds().into_iter().flatten() {
                add(p);
            }
            for p in i.pred_srcs().into_iter().flatten() {
                add(p);
            }
        }
    }
    mask
}

/// Picks a free (pT, pF) pair among p1..p14 not present in `used_mask`
/// (p0 is hardwired, p15 is reserved for wish loops).
pub(crate) fn alloc_pred_pair(used_mask: u16) -> Option<(PredReg, PredReg)> {
    let mut free = (1u8..=14).filter(|i| used_mask & (1 << i) == 0);
    let t = free.next()?;
    let f = free.next()?;
    Some((PredReg::new(t), PredReg::new(f)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use wishbranch_isa::{AluOp, CmpOp, Gpr, Operand};

    fn op(i: Insn) -> MInsn {
        MInsn::Op(i)
    }

    #[test]
    fn guard_plain_insns() {
        let p1 = PredReg::new(1);
        let insns = vec![op(Insn::mov_imm(Gpr::new(2), 7))];
        let g = guard_insns(&insns, p1);
        assert_eq!(g.len(), 1);
        assert_eq!(g[0].as_op().unwrap().guard, Some(p1));
    }

    #[test]
    fn guard_nested_pred_defs_get_reanded() {
        let (p1, p2, p3) = (PredReg::new(1), PredReg::new(2), PredReg::new(3));
        // An inner converted region: cmp2 p1,p2 = r1<r2 ; (p1) r3 = 1 ; (p2) r3 = 2
        let insns = vec![
            op(Insn::cmp2(CmpOp::Lt, p1, p2, Gpr::new(1), Operand::reg(2))),
            op(Insn::mov_imm(Gpr::new(3), 1).guarded(p1)),
            op(Insn::mov_imm(Gpr::new(3), 2).guarded(p2)),
        ];
        let g = guard_insns(&insns, p3);
        // cmp2 + two pands + the two guarded movs unchanged.
        assert_eq!(g.len(), 5);
        assert!(g[0].as_op().unwrap().guard.is_none());
        let pand1 = g[1].as_op().unwrap();
        assert_eq!(pand1.def_pred(), Some(p1));
        assert_eq!(pand1.pred_srcs(), [Some(p1), Some(p3)]);
        assert_eq!(g[3].as_op().unwrap().guard, Some(p1));
        assert_eq!(g[4].as_op().unwrap().guard, Some(p2));
    }

    #[test]
    fn pred_allocation_avoids_used() {
        let used = preds_used(&[op(Insn::cmp2(
            CmpOp::Eq,
            PredReg::new(1),
            PredReg::new(2),
            Gpr::new(1),
            Operand::imm(0),
        ))]);
        let (t, f) = alloc_pred_pair(used).unwrap();
        assert_eq!(t, PredReg::new(3));
        assert_eq!(f, PredReg::new(4));
    }

    #[test]
    fn pred_allocation_exhaustion() {
        // All of p1..p14 used → no pair available.
        assert!(alloc_pred_pair(0b0111_1111_1111_1110).is_none());
    }

    #[test]
    fn straightness() {
        let b = MBlock {
            insns: vec![op(Insn::mov_imm(Gpr::new(1), 1))],
            term: MTerm::Jump(0),
            dead: false,
        };
        assert!(b.is_straight());
        let with_call = MBlock {
            insns: vec![MInsn::CallFunc(FuncId(0))],
            term: MTerm::Jump(0),
            dead: false,
        };
        assert!(!with_call.is_straight());
        let _ = AluOp::Add;
    }
}
