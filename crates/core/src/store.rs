//! Content-addressed on-disk store for finished job outcomes.
//!
//! The address of an outcome is the engine's 64-bit job-identity key
//! ([`SweepRunner::job_key`](crate::SweepRunner::job_key)): an FNV-1a-64
//! fingerprint over everything that determines a job's result —
//! benchmark, variant, input set, training spec, compile options,
//! machine configuration and scale. Two jobs with the same key produce
//! bit-identical outcomes (the engine's determinism contract), so a hit
//! can be returned without re-running profile, compile *or* simulation,
//! across runs and across tenants.
//!
//! ## Layout
//!
//! One file per outcome, fanned out by the top key byte to keep
//! directories small:
//!
//! ```text
//! store/
//!   ab/
//!     abcdef0123456789.json     # one journal-format entry line
//! ```
//!
//! Each file holds exactly one `wishbranch.journal/v1` entry line
//! ([`journal::encode_entry`](crate::journal::encode_entry)), so the
//! store and the journal share one codec and one versioning story.
//! Writes go through a same-directory temp file + atomic rename, so a
//! concurrent reader sees either nothing or a complete entry — never a
//! torn file. Unreadable or mismatched entries are treated as absent
//! (the store is a cache; the journal is the ledger).

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::experiment::RunOutcome;
use crate::journal::{decode_entry, encode_entry};

/// Monotonic discriminator so concurrent writers in one process never
/// collide on a temp-file name (the pid disambiguates across processes).
static TEMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// A content-addressed store of finished job outcomes rooted at one
/// directory. Cheap to clone-by-reference (`Arc<ArtifactStore>`); all
/// methods take `&self` and are safe to call from many threads and many
/// processes at once.
#[derive(Debug)]
pub struct ArtifactStore {
    root: PathBuf,
}

impl ArtifactStore {
    /// Opens (creating if necessary) a store rooted at `root`.
    ///
    /// # Errors
    ///
    /// I/O errors creating the root directory.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<ArtifactStore> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(ArtifactStore { root })
    }

    /// The store's root directory.
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The path an outcome with this key lives at.
    #[must_use]
    pub fn path_for(&self, key: u64) -> PathBuf {
        self.root
            .join(format!("{:02x}", (key >> 56) as u8))
            .join(format!("{key:016x}.json"))
    }

    /// Looks up the outcome stored under `key`. Missing, unreadable and
    /// key-mismatched files all read as `None` — corruption degrades to
    /// a cache miss, never an error.
    #[must_use]
    pub fn get(&self, key: u64) -> Option<RunOutcome> {
        let text = fs::read_to_string(self.path_for(key)).ok()?;
        let (stored_key, outcome) = decode_entry(text.trim_end())?;
        if stored_key != key {
            return None;
        }
        Some(outcome)
    }

    /// Stores `outcome` under `key`, atomically (temp file + rename in
    /// the destination directory). Last writer wins; since addresses are
    /// content-derived, racing writers are writing identical bytes.
    ///
    /// # Errors
    ///
    /// I/O errors creating the fan-out directory or writing the file.
    pub fn put(&self, key: u64, outcome: &RunOutcome) -> io::Result<()> {
        let dest = self.path_for(key);
        let dir = dest.parent().expect("store paths always have a parent");
        fs::create_dir_all(dir)?;
        let temp = dir.join(format!(
            ".{key:016x}.{}.{}.tmp",
            std::process::id(),
            TEMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let mut line = encode_entry(key, outcome);
        line.push('\n');
        fs::write(&temp, line)?;
        match fs::rename(&temp, &dest) {
            Ok(()) => Ok(()),
            Err(e) => {
                let _ = fs::remove_file(&temp);
                Err(e)
            }
        }
    }

    /// Counts the entries currently in the store (a full directory walk;
    /// intended for tests and status reporting, not hot paths).
    #[must_use]
    pub fn len(&self) -> usize {
        let mut n = 0;
        let Ok(buckets) = fs::read_dir(&self.root) else {
            return 0;
        };
        for bucket in buckets.flatten() {
            let Ok(files) = fs::read_dir(bucket.path()) else {
                continue;
            };
            n += files
                .flatten()
                .filter(|f| {
                    f.path()
                        .extension()
                        .is_some_and(|ext| ext == "json")
                })
                .count();
        }
        n
    }

    /// True when the store holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{SweepJob, SweepRunner};
    use crate::experiment::ExperimentConfig;
    use wishbranch_compiler::BinaryVariant;
    use wishbranch_workloads::InputSet;

    fn temp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "wishbranch-store-{tag}-{}-{}",
            std::process::id(),
            TEMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn one_outcome() -> (u64, RunOutcome) {
        let ec = ExperimentConfig::quick(20);
        let runner = SweepRunner::with_workers(&ec, 1);
        let job = SweepJob::standard(0, BinaryVariant::NormalBranch, InputSet::A, &ec);
        let key = runner.job_key(&job);
        let outcome = runner
            .try_run(vec![job])
            .pop()
            .unwrap()
            .expect("quick job runs")
            .outcome;
        (key, outcome)
    }

    #[test]
    fn put_get_round_trips_bit_identically() {
        let root = temp_root("roundtrip");
        let store = ArtifactStore::open(&root).unwrap();
        let (key, outcome) = one_outcome();
        assert!(store.get(key).is_none());
        store.put(key, &outcome).unwrap();
        let back = store.get(key).expect("stored outcome");
        assert_eq!(
            crate::journal::encode_outcome(&back),
            crate::journal::encode_outcome(&outcome),
            "store round trip must be bit-identical"
        );
        assert_eq!(store.len(), 1);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn corruption_reads_as_miss() {
        let root = temp_root("corrupt");
        let store = ArtifactStore::open(&root).unwrap();
        let (key, outcome) = one_outcome();
        store.put(key, &outcome).unwrap();
        fs::write(store.path_for(key), "{\"key\":not json").unwrap();
        assert!(store.get(key).is_none(), "torn file must read as a miss");
        // A file stored under the wrong address is also a miss.
        let other = key.wrapping_add(1);
        fs::create_dir_all(store.path_for(other).parent().unwrap()).unwrap();
        fs::write(store.path_for(other), encode_entry(key, &outcome)).unwrap();
        assert!(store.get(other).is_none(), "key mismatch must read as a miss");
        let _ = fs::remove_dir_all(&root);
    }
}
