//! Content-addressed on-disk store for finished job outcomes.
//!
//! The address of an outcome is the engine's 64-bit job-identity key
//! ([`SweepRunner::job_key`](crate::SweepRunner::job_key)): an FNV-1a-64
//! fingerprint over everything that determines a job's result —
//! benchmark, variant, input set, training spec, compile options,
//! machine configuration and scale. Two jobs with the same key produce
//! bit-identical outcomes (the engine's determinism contract), so a hit
//! can be returned without re-running profile, compile *or* simulation,
//! across runs and across tenants.
//!
//! ## Layout
//!
//! One file per outcome, fanned out by the top key byte to keep
//! directories small:
//!
//! ```text
//! store/
//!   ab/
//!     abcdef0123456789.json     # one journal-format entry line
//! ```
//!
//! Each file holds exactly one `wishbranch.journal/v1` entry line
//! ([`journal::encode_entry`](crate::journal::encode_entry)), so the
//! store and the journal share one codec and one versioning story.
//! Writes go through a same-directory temp file + atomic rename, so a
//! concurrent reader sees either nothing or a complete entry — never a
//! torn file. Unreadable or mismatched entries are treated as absent
//! (the store is a cache; the journal is the ledger).

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::experiment::RunOutcome;
use crate::journal::{decode_entry, encode_entry};

/// Monotonic discriminator so concurrent writers in one process never
/// collide on a temp-file name (the pid disambiguates across processes).
static TEMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// A content-addressed store of finished job outcomes rooted at one
/// directory. Cheap to clone-by-reference (`Arc<ArtifactStore>`); all
/// methods take `&self` and are safe to call from many threads and many
/// processes at once.
#[derive(Debug)]
pub struct ArtifactStore {
    root: PathBuf,
    /// Corrupt entries quarantined by this handle (renamed to
    /// `<key>.corrupt` on first detection, so they are never re-parsed).
    quarantined: AtomicU64,
}

impl ArtifactStore {
    /// Opens (creating if necessary) a store rooted at `root`.
    ///
    /// # Errors
    ///
    /// I/O errors creating the root directory.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<ArtifactStore> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(ArtifactStore {
            root,
            quarantined: AtomicU64::new(0),
        })
    }

    /// The store's root directory.
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The path an outcome with this key lives at.
    #[must_use]
    pub fn path_for(&self, key: u64) -> PathBuf {
        self.root
            .join(format!("{:02x}", (key >> 56) as u8))
            .join(format!("{key:016x}.json"))
    }

    /// Looks up the outcome stored under `key`. Missing, unreadable and
    /// key-mismatched files all read as `None` — corruption degrades to
    /// a cache miss, never an error. A corrupt or key-mismatched file is
    /// additionally *quarantined* on first detection: renamed to
    /// `<key>.corrupt` next to the original, so later lookups see a plain
    /// miss instead of re-parsing the same broken bytes, and the next
    /// fresh execution's [`put`](Self::put) writes a clean entry at the
    /// original address.
    #[must_use]
    pub fn get(&self, key: u64) -> Option<RunOutcome> {
        let path = self.path_for(key);
        let text = fs::read_to_string(&path).ok()?;
        match decode_entry(text.trim_end()) {
            Some((stored_key, outcome)) if stored_key == key => Some(outcome),
            _ => {
                self.quarantine(&path);
                None
            }
        }
    }

    /// Moves a corrupt entry aside (best effort — a racing writer may
    /// have already replaced or quarantined it) and counts it.
    fn quarantine(&self, path: &Path) {
        if fs::rename(path, path.with_extension("corrupt")).is_ok() {
            self.quarantined.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Corrupt entries this handle has quarantined (renamed to
    /// `<key>.corrupt`) so far.
    #[must_use]
    pub fn quarantined(&self) -> u64 {
        self.quarantined.load(Ordering::Relaxed)
    }

    /// Stores `outcome` under `key`, atomically (temp file + rename in
    /// the destination directory). Last writer wins; since addresses are
    /// content-derived, racing writers are writing identical bytes.
    ///
    /// # Errors
    ///
    /// I/O errors creating the fan-out directory or writing the file.
    pub fn put(&self, key: u64, outcome: &RunOutcome) -> io::Result<()> {
        let dest = self.path_for(key);
        let dir = dest.parent().expect("store paths always have a parent");
        fs::create_dir_all(dir)?;
        let temp = dir.join(format!(
            ".{key:016x}.{}.{}.tmp",
            std::process::id(),
            TEMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let mut line = encode_entry(key, outcome);
        line.push('\n');
        fs::write(&temp, line)?;
        match fs::rename(&temp, &dest) {
            Ok(()) => Ok(()),
            Err(e) => {
                let _ = fs::remove_file(&temp);
                Err(e)
            }
        }
    }

    /// Counts the entries currently in the store (a full directory walk;
    /// intended for tests and status reporting, not hot paths).
    #[must_use]
    pub fn len(&self) -> usize {
        let mut n = 0;
        let Ok(buckets) = fs::read_dir(&self.root) else {
            return 0;
        };
        for bucket in buckets.flatten() {
            let Ok(files) = fs::read_dir(bucket.path()) else {
                continue;
            };
            n += files
                .flatten()
                .filter(|f| {
                    f.path()
                        .extension()
                        .is_some_and(|ext| ext == "json")
                })
                .count();
        }
        n
    }

    /// True when the store holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{SweepJob, SweepRunner};
    use crate::experiment::ExperimentConfig;
    use wishbranch_compiler::BinaryVariant;
    use wishbranch_workloads::InputSet;

    fn temp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "wishbranch-store-{tag}-{}-{}",
            std::process::id(),
            TEMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn one_outcome() -> (u64, RunOutcome) {
        let ec = ExperimentConfig::quick(20);
        let runner = SweepRunner::with_workers(&ec, 1);
        let job = SweepJob::standard(0, BinaryVariant::NormalBranch, InputSet::A, &ec);
        let key = runner.job_key(&job);
        let outcome = runner
            .try_run(vec![job])
            .pop()
            .unwrap()
            .expect("quick job runs")
            .outcome;
        (key, outcome)
    }

    #[test]
    fn put_get_round_trips_bit_identically() {
        let root = temp_root("roundtrip");
        let store = ArtifactStore::open(&root).unwrap();
        let (key, outcome) = one_outcome();
        assert!(store.get(key).is_none());
        store.put(key, &outcome).unwrap();
        let back = store.get(key).expect("stored outcome");
        assert_eq!(
            crate::journal::encode_outcome(&back),
            crate::journal::encode_outcome(&outcome),
            "store round trip must be bit-identical"
        );
        assert_eq!(store.len(), 1);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn corruption_reads_as_miss_and_is_quarantined() {
        let root = temp_root("corrupt");
        let store = ArtifactStore::open(&root).unwrap();
        let (key, outcome) = one_outcome();
        store.put(key, &outcome).unwrap();
        fs::write(store.path_for(key), "{\"key\":not json").unwrap();
        assert!(store.get(key).is_none(), "torn file must read as a miss");
        // First detection quarantines: the broken file moves aside so the
        // next lookup is a plain miss, never a re-parse of the same bytes.
        assert_eq!(store.quarantined(), 1);
        assert!(!store.path_for(key).exists(), "corrupt file must move aside");
        let aside = store.path_for(key).with_extension("corrupt");
        assert!(aside.exists(), "quarantined file must be preserved");
        assert!(store.get(key).is_none(), "second lookup is a plain miss");
        assert_eq!(store.quarantined(), 1, "a plain miss quarantines nothing");
        // A file stored under the wrong address is quarantined the same way.
        let other = key.wrapping_add(1);
        fs::create_dir_all(store.path_for(other).parent().unwrap()).unwrap();
        fs::write(store.path_for(other), encode_entry(key, &outcome)).unwrap();
        assert!(store.get(other).is_none(), "key mismatch must read as a miss");
        assert_eq!(store.quarantined(), 2);
        // The next fresh execution rewrites the original address cleanly.
        store.put(key, &outcome).unwrap();
        let back = store.get(key).expect("rewritten entry");
        assert_eq!(
            crate::journal::encode_outcome(&back),
            crate::journal::encode_outcome(&outcome),
            "rewrite after quarantine must be bit-identical"
        );
        assert!(aside.exists(), "rewrite leaves the quarantined copy for forensics");
        let _ = fs::remove_dir_all(&root);
    }
}
