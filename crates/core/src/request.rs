//! The typed sweep-request API (`wishbranch.request/v1`): one validated
//! description of "which experiments, at what scale, on what machine,
//! under which budgets" that both the CLI and the serving surface build
//! their runners from.
//!
//! ## Schema
//!
//! One JSON object:
//!
//! ```json
//! {"schema":"wishbranch.request/v1","tenant":"alice",
//!  "experiments":["fig10","tab4"],"scale":60,"quick":true,
//!  "workers":4,"oracle":false,"fault_plan":"panic@3","train":"B",
//!  "machine":{"window":128,"depth":20},
//!  "compile":{"wish_jump_threshold":5,"wish_loop_body_max":20},
//!  "budgets":{"cycles":100000000,"wall_ms":60000}}
//! ```
//!
//! Only `experiments` is required. Everything else defaults exactly like
//! the CLI flags it mirrors (`scale` 4000, paper machine, no budgets).
//!
//! ## Override precedence
//!
//! A request resolves its worker count and fault plan through one
//! documented precedence chain, the same for local CLI runs and served
//! requests:
//!
//! 1. the explicit request field (`workers` / `fault_plan`), if present;
//! 2. the environment (`WISHBRANCH_WORKERS` / `WISHBRANCH_FAULT_PLAN`);
//! 3. the default (available parallelism / no injected faults).
//!
//! [`SweepRequest::build_runner`] applies the whole request — scale,
//! machine/compile/train overrides, oracle mode, budgets, resolved
//! workers and fault plan — so the engine-facing configuration comes from
//! exactly one place.

use std::time::Duration;

use crate::catalog::Experiment;
use crate::engine::{default_workers, SweepRunner, SweepSummary};
use crate::error::{FaultPlan, JobFailure};
use crate::experiment::ExperimentConfig;
use crate::journal::fnv1a64;
use crate::minijson::JsonValue;
use crate::report::{json_escape, Report};
use wishbranch_workloads::InputSet;

/// Schema tag on every request document.
pub const REQUEST_SCHEMA: &str = "wishbranch.request/v1";

/// Environment variable consulted when a request carries no `fault_plan`
/// (moved here from the CLI binary so served requests honor it too).
pub const FAULT_PLAN_ENV: &str = "WISHBRANCH_FAULT_PLAN";

/// Environment variable consulted when a request carries no `batch`
/// width. Same precedence chain as `workers` / `fault_plan`: explicit
/// field, then environment, then the default (1, batching off).
pub const BATCH_ENV: &str = "WISHBRANCH_BATCH";

/// Per-request execution budgets. Both reuse the engine's typed
/// budget machinery: an exhausted cycle budget surfaces as
/// [`JobError::CycleBudgetExceeded`](crate::JobError::CycleBudgetExceeded)
/// and an exhausted wall budget as
/// [`JobError::WallBudgetExceeded`](crate::JobError::WallBudgetExceeded) —
/// failed cells, never dead sweeps.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Budgets {
    /// Per-job simulated-cycle cap (`MachineConfig::max_cycles`).
    pub cycles: Option<u64>,
    /// Per-job wall-clock cap in milliseconds.
    pub wall_ms: Option<u64>,
}

/// One validated sweep request: the canonical input of both the CLI and
/// the `serve` surface. Construct with [`SweepRequest::new`], deserialize
/// with [`SweepRequest::parse`], serialize with [`SweepRequest::to_json`].
#[derive(Clone, PartialEq, Debug)]
pub struct SweepRequest {
    /// Who is asking (admission control and budget accounting key).
    pub tenant: String,
    /// The experiments to run, in order.
    pub experiments: Vec<Experiment>,
    /// Workload scale (outer iterations per benchmark).
    pub scale: i32,
    /// Use the scaled-down quick machine (clamps scale to 500).
    pub quick: bool,
    /// Explicit worker-thread count; `None` falls back to
    /// `WISHBRANCH_WORKERS`, then available parallelism.
    pub workers: Option<usize>,
    /// Replay every retired stream through the lockstep oracle.
    pub oracle: bool,
    /// Lockstep batch width: jobs sharing a compiled binary are simulated
    /// as lanes of one [`wishbranch_uarch::BatchSimulator`] group of up
    /// to this many lanes, bit-identically to the scalar path. `None`
    /// falls back to [`BATCH_ENV`], then 1 (batching off).
    pub batch: Option<usize>,
    /// Explicit deterministic fault plan; `None` falls back to
    /// [`FAULT_PLAN_ENV`], then no injected faults.
    pub fault_plan: Option<FaultPlan>,
    /// Training-input override (the input the compiler profiles on).
    pub train: Option<InputSet>,
    /// Instruction-window (ROB size) override.
    pub window: Option<usize>,
    /// Pipeline-depth override.
    pub depth: Option<u64>,
    /// Compiler wish-jump threshold N override (§4.2.2).
    pub wish_jump_threshold: Option<usize>,
    /// Compiler wish-loop body-size cap L override (§4.2.2).
    pub wish_loop_body_max: Option<usize>,
    /// Per-job cycle / wall budgets.
    pub budgets: Budgets,
}

/// Why a request was refused. Every variant carries a human-readable
/// message; [`RequestError::kind`] is the stable discriminator the
/// protocol's `rejected` messages carry.
#[derive(Clone, PartialEq, Debug)]
pub enum RequestError {
    /// The document is not valid JSON.
    BadJson(String),
    /// The document parses but is not a `wishbranch.request/v1` object.
    BadSchema(String),
    /// A field is present but malformed (bad type, bad range, bad spec).
    BadField {
        /// The offending field.
        field: String,
        /// What is wrong with it.
        message: String,
    },
    /// The experiment list is empty or names an unknown id.
    UnknownExperiment(String),
    /// The request names no experiments.
    NoExperiments,
}

impl RequestError {
    /// Short stable discriminator (mirrors [`JobError::kind`](crate::JobError::kind)).
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            RequestError::BadJson(_) => "bad_json",
            RequestError::BadSchema(_) => "bad_schema",
            RequestError::BadField { .. } => "bad_field",
            RequestError::UnknownExperiment(_) => "unknown_experiment",
            RequestError::NoExperiments => "no_experiments",
        }
    }
}

impl std::fmt::Display for RequestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RequestError::BadJson(msg) => write!(f, "request is not valid JSON: {msg}"),
            RequestError::BadSchema(msg) => write!(f, "not a {REQUEST_SCHEMA} document: {msg}"),
            RequestError::BadField { field, message } => {
                write!(f, "bad request field {field:?}: {message}")
            }
            RequestError::UnknownExperiment(id) => {
                let ids: Vec<&str> = Experiment::ALL.iter().map(|e| e.id()).collect();
                write!(f, "unknown experiment {id:?} (have: {})", ids.join(" "))
            }
            RequestError::NoExperiments => write!(f, "request names no experiments"),
        }
    }
}

impl std::error::Error for RequestError {}

fn bad_field(field: &str, message: impl Into<String>) -> RequestError {
    RequestError::BadField {
        field: field.to_string(),
        message: message.into(),
    }
}

impl SweepRequest {
    /// A request for the given experiments with every other field at its
    /// default (tenant `"local"`, scale 4000, paper machine, no budgets).
    #[must_use]
    pub fn new(experiments: Vec<Experiment>) -> SweepRequest {
        SweepRequest {
            tenant: "local".to_string(),
            experiments,
            scale: 4000,
            quick: false,
            workers: None,
            oracle: false,
            batch: None,
            fault_plan: None,
            train: None,
            window: None,
            depth: None,
            wish_jump_threshold: None,
            wish_loop_body_max: None,
            budgets: Budgets::default(),
        }
    }

    /// Validates the request's field ranges (non-empty experiment list,
    /// positive scale and workers).
    ///
    /// # Errors
    ///
    /// The first violated constraint, as a typed [`RequestError`].
    pub fn validate(&self) -> Result<(), RequestError> {
        if self.experiments.is_empty() {
            return Err(RequestError::NoExperiments);
        }
        if self.scale <= 0 {
            return Err(bad_field("scale", "must be a positive integer"));
        }
        if self.workers == Some(0) {
            return Err(bad_field("workers", "must be a positive integer"));
        }
        if self.batch == Some(0) {
            return Err(bad_field("batch", "must be a positive integer"));
        }
        Ok(())
    }

    /// The worker count this request resolves to: the explicit field,
    /// else `WISHBRANCH_WORKERS`, else available parallelism (see the
    /// module-level precedence contract).
    #[must_use]
    pub fn resolved_workers(&self) -> usize {
        self.workers.unwrap_or_else(default_workers)
    }

    /// The lockstep batch width this request resolves to: the explicit
    /// field, else a parsed [`BATCH_ENV`], else 1 (batching off).
    ///
    /// # Errors
    ///
    /// [`RequestError::BadField`] when the environment variable is set
    /// but not a positive integer (an explicit field never consults it).
    pub fn resolved_batch(&self) -> Result<usize, RequestError> {
        if let Some(width) = self.batch {
            return Ok(width);
        }
        match std::env::var(BATCH_ENV) {
            Ok(value) => match value.parse::<usize>() {
                Ok(width) if width > 0 => Ok(width),
                _ => Err(bad_field(
                    BATCH_ENV,
                    format!("bad batch width {value:?}: want a positive integer"),
                )),
            },
            Err(_) => Ok(1),
        }
    }

    /// The fault plan this request resolves to: the explicit field, else
    /// a parsed [`FAULT_PLAN_ENV`], else an empty plan.
    ///
    /// # Errors
    ///
    /// [`RequestError::BadField`] when the environment variable is set
    /// but unparseable (an explicit field never consults it).
    pub fn resolved_fault_plan(&self) -> Result<FaultPlan, RequestError> {
        if let Some(plan) = &self.fault_plan {
            return Ok(plan.clone());
        }
        match std::env::var(FAULT_PLAN_ENV) {
            Ok(spec) => FaultPlan::parse(&spec)
                .map_err(|e| bad_field(FAULT_PLAN_ENV, format!("bad fault plan {spec:?}: {e}"))),
            Err(_) => Ok(FaultPlan::new()),
        }
    }

    /// The [`ExperimentConfig`] this request describes: quick/paper base
    /// at the requested scale, with the train/machine/compile/budget
    /// overrides applied on top.
    #[must_use]
    pub fn experiment_config(&self) -> ExperimentConfig {
        let mut ec = if self.quick {
            ExperimentConfig::quick(self.scale.min(500))
        } else {
            ExperimentConfig::paper(self.scale)
        };
        if let Some(train) = self.train {
            ec.train_input = train;
        }
        if let Some(window) = self.window {
            ec.machine = ec.machine.with_window(window);
        }
        if let Some(depth) = self.depth {
            ec.machine = ec.machine.with_depth(depth);
        }
        if let Some(cycles) = self.budgets.cycles {
            ec.machine = ec.machine.with_max_cycles(cycles);
        }
        if let Some(n) = self.wish_jump_threshold {
            ec.compile.wish_jump_threshold = n;
        }
        if let Some(l) = self.wish_loop_body_max {
            ec.compile.wish_loop_body_max = l;
        }
        ec
    }

    /// Builds the fully configured [`SweepRunner`] for this request:
    /// validated fields, resolved worker count and fault plan, oracle
    /// mode, and the wall budget. This is the one code path that turns a
    /// request into an engine — the CLI and the server both call it.
    ///
    /// # Errors
    ///
    /// [`RequestError`] from [`validate`](Self::validate) or
    /// [`resolved_fault_plan`](Self::resolved_fault_plan).
    pub fn build_runner(&self) -> Result<SweepRunner, RequestError> {
        self.validate()?;
        let fault_plan = self.resolved_fault_plan()?;
        let ec = self.experiment_config();
        let mut runner = SweepRunner::with_workers(&ec, self.resolved_workers());
        runner.set_oracle(self.oracle);
        runner.set_batch(self.resolved_batch()?);
        runner.set_fault_plan(fault_plan);
        runner.set_wall_budget(self.budgets.wall_ms.map(Duration::from_millis));
        Ok(runner)
    }

    /// An FNV-1a-64 fingerprint over the canonical serialized request.
    /// Used to name per-request server state; the *job identity*
    /// fingerprint stays [`SweepRunner::run_fingerprint`].
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        fnv1a64(self.to_json().as_bytes())
    }

    /// Serializes to one canonical `wishbranch.request/v1` object.
    /// Optional fields are omitted when absent, so the output is stable
    /// under a parse → serialize round trip.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"schema\":\"{REQUEST_SCHEMA}\",\"tenant\":\"{}\"",
            json_escape(&self.tenant)
        );
        let ids: Vec<String> = self
            .experiments
            .iter()
            .map(|e| format!("\"{}\"", e.id()))
            .collect();
        out.push_str(&format!(",\"experiments\":[{}]", ids.join(",")));
        out.push_str(&format!(",\"scale\":{}", self.scale));
        out.push_str(&format!(",\"quick\":{}", self.quick));
        if let Some(w) = self.workers {
            out.push_str(&format!(",\"workers\":{w}"));
        }
        out.push_str(&format!(",\"oracle\":{}", self.oracle));
        if let Some(width) = self.batch {
            out.push_str(&format!(",\"batch\":{width}"));
        }
        if let Some(plan) = &self.fault_plan {
            let spec: Vec<String> = plan
                .iter()
                .map(|(i, k)| format!("{}@{i}", k.label()))
                .collect();
            out.push_str(&format!(",\"fault_plan\":\"{}\"", spec.join(",")));
        }
        if let Some(train) = self.train {
            let letter = match train {
                InputSet::A => "A",
                InputSet::B => "B",
                InputSet::C => "C",
            };
            out.push_str(&format!(",\"train\":\"{letter}\""));
        }
        if self.window.is_some() || self.depth.is_some() {
            let mut fields = Vec::new();
            if let Some(w) = self.window {
                fields.push(format!("\"window\":{w}"));
            }
            if let Some(d) = self.depth {
                fields.push(format!("\"depth\":{d}"));
            }
            out.push_str(&format!(",\"machine\":{{{}}}", fields.join(",")));
        }
        if self.wish_jump_threshold.is_some() || self.wish_loop_body_max.is_some() {
            let mut fields = Vec::new();
            if let Some(n) = self.wish_jump_threshold {
                fields.push(format!("\"wish_jump_threshold\":{n}"));
            }
            if let Some(l) = self.wish_loop_body_max {
                fields.push(format!("\"wish_loop_body_max\":{l}"));
            }
            out.push_str(&format!(",\"compile\":{{{}}}", fields.join(",")));
        }
        if self.budgets.cycles.is_some() || self.budgets.wall_ms.is_some() {
            let mut fields = Vec::new();
            if let Some(c) = self.budgets.cycles {
                fields.push(format!("\"cycles\":{c}"));
            }
            if let Some(w) = self.budgets.wall_ms {
                fields.push(format!("\"wall_ms\":{w}"));
            }
            out.push_str(&format!(",\"budgets\":{{{}}}", fields.join(",")));
        }
        out.push('}');
        out
    }

    /// Parses and validates one `wishbranch.request/v1` document.
    ///
    /// # Errors
    ///
    /// A typed [`RequestError`] naming the first problem: malformed JSON,
    /// wrong schema tag, an unknown field, a field of the wrong type or
    /// range, or an unknown experiment id.
    pub fn parse(text: &str) -> Result<SweepRequest, RequestError> {
        let doc = JsonValue::parse(text).map_err(|e| RequestError::BadJson(e.to_string()))?;
        let entries = doc
            .entries()
            .ok_or_else(|| RequestError::BadSchema("document is not an object".into()))?;
        match doc.get("schema").and_then(JsonValue::as_str) {
            Some(REQUEST_SCHEMA) => {}
            Some(other) => {
                return Err(RequestError::BadSchema(format!("schema is {other:?}")));
            }
            None => return Err(RequestError::BadSchema("missing \"schema\" field".into())),
        }
        let mut req = SweepRequest::new(Vec::new());
        for (key, value) in entries {
            match key.as_str() {
                "schema" => {}
                "tenant" => {
                    req.tenant = value
                        .as_str()
                        .ok_or_else(|| bad_field("tenant", "must be a string"))?
                        .to_string();
                }
                "experiments" => {
                    let items = value
                        .as_array()
                        .ok_or_else(|| bad_field("experiments", "must be an array of ids"))?;
                    for item in items {
                        let id = item
                            .as_str()
                            .ok_or_else(|| bad_field("experiments", "ids must be strings"))?;
                        let exp = Experiment::from_id(id)
                            .ok_or_else(|| RequestError::UnknownExperiment(id.to_string()))?;
                        req.experiments.push(exp);
                    }
                }
                "scale" => {
                    req.scale = value
                        .as_i64()
                        .and_then(|v| i32::try_from(v).ok())
                        .ok_or_else(|| bad_field("scale", "must be an integer"))?;
                }
                "quick" => {
                    req.quick = value
                        .as_bool()
                        .ok_or_else(|| bad_field("quick", "must be a boolean"))?;
                }
                "workers" => {
                    req.workers = Some(
                        value
                            .as_u64()
                            .and_then(|v| usize::try_from(v).ok())
                            .ok_or_else(|| bad_field("workers", "must be a non-negative integer"))?,
                    );
                }
                "oracle" => {
                    req.oracle = value
                        .as_bool()
                        .ok_or_else(|| bad_field("oracle", "must be a boolean"))?;
                }
                "batch" => {
                    req.batch = Some(
                        value
                            .as_u64()
                            .and_then(|v| usize::try_from(v).ok())
                            .ok_or_else(|| bad_field("batch", "must be a non-negative integer"))?,
                    );
                }
                "fault_plan" => {
                    let spec = value
                        .as_str()
                        .ok_or_else(|| bad_field("fault_plan", "must be a spec string"))?;
                    req.fault_plan =
                        Some(FaultPlan::parse(spec).map_err(|e| bad_field("fault_plan", e))?);
                }
                "train" => {
                    let label = value
                        .as_str()
                        .ok_or_else(|| bad_field("train", "must be \"A\", \"B\" or \"C\""))?;
                    req.train = Some(parse_input_set(label).ok_or_else(|| {
                        bad_field("train", format!("unknown input set {label:?}"))
                    })?);
                }
                "machine" => {
                    for (mkey, mval) in value
                        .entries()
                        .ok_or_else(|| bad_field("machine", "must be an object"))?
                    {
                        match mkey.as_str() {
                            "window" => {
                                req.window = Some(
                                    mval.as_u64()
                                        .and_then(|v| usize::try_from(v).ok())
                                        .filter(|&v| v > 0)
                                        .ok_or_else(|| {
                                            bad_field("machine.window", "must be a positive integer")
                                        })?,
                                );
                            }
                            "depth" => {
                                req.depth = Some(mval.as_u64().filter(|&v| v > 0).ok_or_else(
                                    || bad_field("machine.depth", "must be a positive integer"),
                                )?);
                            }
                            other => {
                                return Err(bad_field(
                                    &format!("machine.{other}"),
                                    "unknown machine override",
                                ));
                            }
                        }
                    }
                }
                "compile" => {
                    for (ckey, cval) in value
                        .entries()
                        .ok_or_else(|| bad_field("compile", "must be an object"))?
                    {
                        match ckey.as_str() {
                            "wish_jump_threshold" => {
                                req.wish_jump_threshold = Some(
                                    cval.as_u64()
                                        .and_then(|v| usize::try_from(v).ok())
                                        .ok_or_else(|| {
                                            bad_field(
                                                "compile.wish_jump_threshold",
                                                "must be a non-negative integer",
                                            )
                                        })?,
                                );
                            }
                            "wish_loop_body_max" => {
                                req.wish_loop_body_max = Some(
                                    cval.as_u64()
                                        .and_then(|v| usize::try_from(v).ok())
                                        .ok_or_else(|| {
                                            bad_field(
                                                "compile.wish_loop_body_max",
                                                "must be a non-negative integer",
                                            )
                                        })?,
                                );
                            }
                            other => {
                                return Err(bad_field(
                                    &format!("compile.{other}"),
                                    "unknown compile override",
                                ));
                            }
                        }
                    }
                }
                "budgets" => {
                    for (bkey, bval) in value
                        .entries()
                        .ok_or_else(|| bad_field("budgets", "must be an object"))?
                    {
                        match bkey.as_str() {
                            "cycles" => {
                                req.budgets.cycles = Some(bval.as_u64().ok_or_else(|| {
                                    bad_field("budgets.cycles", "must be a non-negative integer")
                                })?);
                            }
                            "wall_ms" => {
                                req.budgets.wall_ms = Some(bval.as_u64().ok_or_else(|| {
                                    bad_field("budgets.wall_ms", "must be a non-negative integer")
                                })?);
                            }
                            other => {
                                return Err(bad_field(
                                    &format!("budgets.{other}"),
                                    "unknown budget",
                                ));
                            }
                        }
                    }
                }
                other => {
                    return Err(bad_field(other, "unknown request field"));
                }
            }
        }
        req.validate()?;
        Ok(req)
    }
}

/// Parses an input-set label (`A`/`B`/`C`, case-insensitive).
#[must_use]
pub fn parse_input_set(label: &str) -> Option<InputSet> {
    match label {
        "A" | "a" => Some(InputSet::A),
        "B" | "b" => Some(InputSet::B),
        "C" | "c" => Some(InputSet::C),
        _ => None,
    }
}

/// The in-process result of a whole request: one [`Report`] per requested
/// experiment plus the engine summary and failure table. This is what the
/// `serve` protocol streams incrementally; [`run_request`] produces it in
/// one call for local use.
#[derive(Clone, Debug)]
pub struct SweepResponse {
    /// One report per experiment, in request order.
    pub reports: Vec<Report>,
    /// Aggregate engine statistics across all experiments.
    pub summary: SweepSummary,
    /// Every failed job, in the order failures were recorded.
    pub failures: Vec<JobFailure>,
    /// Whether the sweep aborted before finishing.
    pub aborted: bool,
}

/// Runs a whole request in-process on one shared runner: every experiment
/// in request order, profile/compile caches shared across them. The CLI's
/// default path, and the bit-identity reference for served runs.
///
/// # Errors
///
/// A typed [`RequestError`] when the request does not validate; job-level
/// failures are *not* errors — they land in
/// [`SweepResponse::failures`].
pub fn run_request(req: &SweepRequest) -> Result<SweepResponse, RequestError> {
    let runner = req.build_runner()?;
    let mut reports = Vec::new();
    for exp in &req.experiments {
        reports.push(exp.run(&runner));
        if runner.aborted() {
            break;
        }
    }
    Ok(SweepResponse {
        reports,
        summary: runner.summary(),
        failures: runner.failures(),
        aborted: runner.aborted(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::FaultKind;

    fn full_request() -> SweepRequest {
        SweepRequest {
            tenant: "alice \"quoted\"".into(),
            experiments: vec![Experiment::Fig10, Experiment::Tab4],
            scale: 60,
            quick: true,
            workers: Some(4),
            oracle: true,
            batch: Some(8),
            fault_plan: Some(
                FaultPlan::new()
                    .inject(3, FaultKind::Panic)
                    .inject(7, FaultKind::Diverge),
            ),
            train: Some(InputSet::C),
            window: Some(128),
            depth: Some(20),
            wish_jump_threshold: Some(9),
            wish_loop_body_max: Some(30),
            budgets: Budgets {
                cycles: Some(1_000_000),
                wall_ms: Some(60_000),
            },
        }
    }

    #[test]
    fn full_request_round_trips() {
        let req = full_request();
        let back = SweepRequest::parse(&req.to_json()).expect("round trip");
        assert_eq!(back, req);
        // Canonical form is a fixed point.
        assert_eq!(back.to_json(), req.to_json());
    }

    #[test]
    fn minimal_request_gets_defaults() {
        let req = SweepRequest::parse(
            "{\"schema\":\"wishbranch.request/v1\",\"experiments\":[\"fig10\"]}",
        )
        .unwrap();
        assert_eq!(req.tenant, "local");
        assert_eq!(req.experiments, vec![Experiment::Fig10]);
        assert_eq!(req.scale, 4000);
        assert!(!req.quick);
        assert_eq!(req.workers, None);
        assert_eq!(req.batch, None);
        assert_eq!(req.budgets, Budgets::default());
    }

    #[test]
    fn typed_errors_name_the_problem() {
        let cases: &[(&str, &str)] = &[
            ("{", "bad_json"),
            ("[1]", "bad_schema"),
            ("{\"schema\":\"wishbranch.report/v1\"}", "bad_schema"),
            (
                "{\"schema\":\"wishbranch.request/v1\",\"experiments\":[\"fig99\"]}",
                "unknown_experiment",
            ),
            ("{\"schema\":\"wishbranch.request/v1\",\"experiments\":[]}", "no_experiments"),
            (
                "{\"schema\":\"wishbranch.request/v1\",\"experiments\":[\"fig10\"],\"scale\":0}",
                "bad_field",
            ),
            (
                "{\"schema\":\"wishbranch.request/v1\",\"experiments\":[\"fig10\"],\"workers\":0}",
                "bad_field",
            ),
            (
                "{\"schema\":\"wishbranch.request/v1\",\"experiments\":[\"fig10\"],\"batch\":0}",
                "bad_field",
            ),
            (
                "{\"schema\":\"wishbranch.request/v1\",\"experiments\":[\"fig10\"],\"bogus\":1}",
                "bad_field",
            ),
            (
                "{\"schema\":\"wishbranch.request/v1\",\"experiments\":[\"fig10\"],\
                 \"fault_plan\":\"explode@1\"}",
                "bad_field",
            ),
        ];
        for (doc, kind) in cases {
            let err = SweepRequest::parse(doc).expect_err(doc);
            assert_eq!(err.kind(), *kind, "{doc}: {err}");
        }
    }

    #[test]
    fn config_applies_overrides() {
        let req = full_request();
        let ec = req.experiment_config();
        assert_eq!(ec.scale, 60);
        assert_eq!(ec.train_input, InputSet::C);
        assert_eq!(ec.machine.rob_size, 128);
        assert_eq!(ec.machine.pipeline_depth, 20);
        assert_eq!(ec.machine.max_cycles, 1_000_000);
        assert_eq!(ec.compile.wish_jump_threshold, 9);
        assert_eq!(ec.compile.wish_loop_body_max, 30);
    }

    #[test]
    fn quick_clamps_scale_like_the_cli() {
        let mut req = SweepRequest::new(vec![Experiment::Fig10]);
        req.quick = true;
        req.scale = 4000;
        assert_eq!(req.experiment_config().scale, 500);
    }

    #[test]
    fn fingerprint_tracks_content() {
        let a = full_request();
        let mut b = a.clone();
        assert_eq!(a.fingerprint(), b.fingerprint());
        b.scale += 1;
        assert_ne!(a.fingerprint(), b.fingerprint());
    }
}
