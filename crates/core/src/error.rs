//! The typed failure model of the experiment layer: every way a sweep job
//! can fail, as data instead of a panic.
//!
//! A job is a profile → compile → simulate → verify chain, and each stage
//! has a distinct failure mode: the IR interpreter can fault while
//! profiling, the cycle simulator can exhaust its cycle budget, the
//! retired state can diverge from the functional reference, and — the
//! catch-all — arbitrary code in a worker can panic. [`JobError`] names
//! them all; [`SweepRunner::try_run`](crate::SweepRunner::try_run) turns
//! each failed job into one [`JobFailure`] cell instead of a dead sweep.
//!
//! [`FaultPlan`] is the deterministic fault-injection hook the tests and
//! CI drive: it maps *global job submission indices* (a runner-lifetime
//! counter, independent of worker count and scheduling) to injected
//! faults, so a test can make job 7 panic, job 11 blow its cycle budget,
//! or the whole sweep abort at job 20 — reproducibly, with no wall-clock
//! dependence.

use std::collections::BTreeMap;
use std::fmt;

use crate::engine::SweepJob;

/// Why one sweep job failed. Every variant is a *typed outcome*: the
/// engine never panics on the job execution path.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum JobError {
    /// The IR profiling interpreter faulted (including step-budget
    /// exhaustion while gathering the training profile).
    ProfileFault(String),
    /// The cycle simulator faulted for a reason other than its budget
    /// (also covers a functional-reference machine fault during verify).
    SimFault(String),
    /// The cycle simulator exhausted its per-job cycle budget
    /// ([`MachineConfig::max_cycles`](wishbranch_uarch::MachineConfig)).
    CycleBudgetExceeded {
        /// The configured cycle limit.
        limit: u64,
    },
    /// The job exceeded its per-job wall-clock budget
    /// ([`SweepRunner::set_wall_budget`](crate::SweepRunner::set_wall_budget)).
    /// The budget is checked after each phase, so the simulation itself is
    /// never interrupted (determinism) — the completed result is discarded
    /// and the overrun reported as this typed outcome.
    WallBudgetExceeded {
        /// The configured budget in milliseconds.
        limit_ms: u64,
    },
    /// The cycle simulator retired a different architectural state than
    /// the functional reference machine — a simulator bug (or an injected
    /// divergence fault).
    VerifyDivergence {
        /// What diverged (benchmark, input, first differing address).
        detail: String,
    },
    /// The worker thread panicked while executing the job; the panic was
    /// caught and isolated to this one cell.
    WorkerPanic {
        /// The panic payload, stringified.
        payload: String,
    },
    /// The sweep was aborted (by a [`FaultKind::Abort`] fault or a prior
    /// abort on the same runner) before this job ran.
    Aborted,
}

impl JobError {
    /// Short stable discriminator, used in the failure table and
    /// `summary.json`.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            JobError::ProfileFault(_) => "profile_fault",
            JobError::SimFault(_) => "sim_fault",
            JobError::CycleBudgetExceeded { .. } => "cycle_budget_exceeded",
            JobError::WallBudgetExceeded { .. } => "wall_budget_exceeded",
            JobError::VerifyDivergence { .. } => "verify_divergence",
            JobError::WorkerPanic { .. } => "worker_panic",
            JobError::Aborted => "aborted",
        }
    }

    /// Whether the engine's bounded retry applies. Only worker panics and
    /// budget overruns are considered potentially transient; a profile
    /// fault or verify divergence is deterministic and retrying it would
    /// only burn time.
    #[must_use]
    pub fn retryable(&self) -> bool {
        matches!(
            self,
            JobError::WorkerPanic { .. }
                | JobError::CycleBudgetExceeded { .. }
                | JobError::WallBudgetExceeded { .. }
        )
    }
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobError::ProfileFault(msg) => write!(f, "profiling run failed: {msg}"),
            JobError::SimFault(msg) => write!(f, "simulation failed: {msg}"),
            JobError::CycleBudgetExceeded { limit } => {
                write!(f, "cycle budget exceeded (limit {limit})")
            }
            JobError::WallBudgetExceeded { limit_ms } => {
                write!(f, "wall-clock budget exceeded (limit {limit_ms} ms)")
            }
            JobError::VerifyDivergence { detail } => {
                write!(f, "retired state diverged from the functional reference: {detail}")
            }
            JobError::WorkerPanic { payload } => write!(f, "worker panicked: {payload}"),
            JobError::Aborted => write!(f, "sweep aborted before this job ran"),
        }
    }
}

impl std::error::Error for JobError {}

/// One failed sweep cell: which job failed, where in the submission
/// sequence, why, and after how many attempts.
#[derive(Clone, Debug)]
pub struct JobFailure {
    /// The job that failed.
    pub job: SweepJob,
    /// The job's global submission index on its runner.
    pub index: u64,
    /// The typed failure.
    pub error: JobError,
    /// Execution attempts made (1 = no retry; 0 = never started, e.g.
    /// aborted).
    pub attempts: u32,
}

impl fmt::Display for JobFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "job #{} (bench {} {} {}): {} (attempts: {})",
            self.index,
            self.job.bench,
            self.job.variant.label(),
            self.job.input.label(),
            self.error,
            self.attempts
        )
    }
}

/// A deterministic fault to inject into one job.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultKind {
    /// Panic inside the worker before the job executes (exercises
    /// `catch_unwind` isolation and poisoned-lock recovery).
    Panic,
    /// Run the job with a tiny cycle budget so the simulator genuinely
    /// returns a cycle-budget overrun.
    Budget,
    /// Corrupt the retired memory image before verification so the
    /// functional cross-check genuinely reports a divergence.
    Diverge,
    /// Abort the whole sweep at this job, as if the process had been
    /// killed mid-run; remaining jobs become [`JobError::Aborted`]. Used
    /// by the kill-then-`--resume` tests.
    Abort,
}

impl FaultKind {
    /// The spec keyword (`panic` / `budget` / `diverge` / `abort`).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::Panic => "panic",
            FaultKind::Budget => "budget",
            FaultKind::Diverge => "diverge",
            FaultKind::Abort => "abort",
        }
    }
}

/// A deterministic fault-injection plan: global job submission index →
/// fault. Seeded construction and spec parsing never consult the clock or
/// any ambient randomness, so a plan reproduces exactly across runs,
/// worker counts and platforms.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct FaultPlan {
    faults: BTreeMap<u64, FaultKind>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    #[must_use]
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Adds a fault at the given global job index (builder style).
    #[must_use]
    pub fn inject(mut self, index: u64, kind: FaultKind) -> FaultPlan {
        self.faults.insert(index, kind);
        self
    }

    /// `k` faults at pseudo-random indices in `0..njobs`, kinds cycling
    /// through panic/budget/diverge, from a splitmix64 stream seeded with
    /// `seed`. Deterministic for a given `(seed, k, njobs)`.
    #[must_use]
    pub fn seeded(seed: u64, k: usize, njobs: u64) -> FaultPlan {
        let mut plan = FaultPlan::new();
        if njobs == 0 {
            return plan;
        }
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let kinds = [FaultKind::Panic, FaultKind::Budget, FaultKind::Diverge];
        let mut placed = 0usize;
        // Bounded draw loop: k can exceed the number of distinct indices.
        for draw in 0..k.saturating_mul(16).max(16) {
            if placed >= k || plan.faults.len() as u64 >= njobs {
                break;
            }
            let idx = next() % njobs;
            if plan.faults.contains_key(&idx) {
                let _ = draw;
                continue;
            }
            plan.faults.insert(idx, kinds[placed % kinds.len()]);
            placed += 1;
        }
        plan
    }

    /// Parses a spec like `"panic@3,diverge@7,budget@2,abort@10"`.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending clause on malformed input.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::new();
        for clause in spec.split(',').filter(|c| !c.trim().is_empty()) {
            let clause = clause.trim();
            let (kind, index) = clause
                .split_once('@')
                .ok_or_else(|| format!("bad fault clause {clause:?} (want kind@index)"))?;
            let kind = match kind {
                "panic" => FaultKind::Panic,
                "budget" => FaultKind::Budget,
                "diverge" => FaultKind::Diverge,
                "abort" => FaultKind::Abort,
                other => {
                    return Err(format!(
                        "unknown fault kind {other:?} (want panic|budget|diverge|abort)"
                    ))
                }
            };
            let index: u64 = index
                .parse()
                .map_err(|_| format!("bad fault index {index:?} in {clause:?}"))?;
            plan.faults.insert(index, kind);
        }
        Ok(plan)
    }

    /// The fault injected at a global job index, if any.
    #[must_use]
    pub fn fault_at(&self, index: u64) -> Option<FaultKind> {
        self.faults.get(&index).copied()
    }

    /// Number of planned faults.
    #[must_use]
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Whether the plan injects nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The planned `(index, kind)` pairs in index order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, FaultKind)> + '_ {
        self.faults.iter().map(|(&i, &k)| (i, k))
    }
}

/// A deterministic serve-layer fault to inject at one global job index.
/// Where [`FaultKind`] models *job* failures inside the engine,
/// `ChaosKind` models *infrastructure* failures around it: hung worker
/// processes, torn protocol writes, stalled clients and corrupted store
/// artifacts. The resilience layer must absorb every one of them.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ChaosKind {
    /// The worker process hangs after announcing this job: heartbeats
    /// stop, output goes silent, and the process never exits. The server
    /// must detect the dead heartbeat, kill the worker, and respawn it in
    /// resume mode.
    Hang,
    /// The worker writes only a prefix of this job's protocol line (no
    /// newline) and then dies — a crash mid-write. The server must drop
    /// the torn line and recover the job from the respawned worker's
    /// journal replay.
    TornLine,
    /// The *client* stops reading the response stream after this many
    /// lines. Honored by chaos-test clients (a server cannot make a
    /// client stall); the server's write timeout must keep its handler
    /// thread from being pinned.
    StallClient,
    /// The worker corrupts this job's artifact-store entry after writing
    /// it. The next reader must quarantine the corrupt file, treat it as
    /// a miss, and re-execute.
    CorruptStore,
}

impl ChaosKind {
    /// The spec keyword (`hang` / `torn-line` / `stall-client` /
    /// `corrupt-store`).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ChaosKind::Hang => "hang",
            ChaosKind::TornLine => "torn-line",
            ChaosKind::StallClient => "stall-client",
            ChaosKind::CorruptStore => "corrupt-store",
        }
    }

    /// Whether this fault is injected inside the worker process (as
    /// opposed to [`ChaosKind::StallClient`], which only a client can
    /// enact).
    #[must_use]
    pub fn is_worker_side(self) -> bool {
        !matches!(self, ChaosKind::StallClient)
    }
}

/// [`FaultPlan`]'s serve-layer sibling: a deterministic map from global
/// job indices (worker-local completion order) to injected infrastructure
/// faults. Like `FaultPlan`, construction and parsing never consult the
/// clock or ambient randomness, so a chaos run reproduces exactly — the
/// *timing* of kills and respawns varies with the host, but the set of
/// injected faults, and therefore the final reports and journals, do not.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct ChaosPlan {
    faults: BTreeMap<u64, ChaosKind>,
}

impl ChaosPlan {
    /// An empty plan (injects nothing).
    #[must_use]
    pub fn new() -> ChaosPlan {
        ChaosPlan::default()
    }

    /// Adds a fault at the given job index (builder style).
    #[must_use]
    pub fn inject(mut self, index: u64, kind: ChaosKind) -> ChaosPlan {
        self.faults.insert(index, kind);
        self
    }

    /// Parses a spec like `"hang@3,torn-line@7,stall-client@2,corrupt-store@5"`.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending clause on malformed input.
    pub fn parse(spec: &str) -> Result<ChaosPlan, String> {
        let mut plan = ChaosPlan::new();
        for clause in spec.split(',').filter(|c| !c.trim().is_empty()) {
            let clause = clause.trim();
            let (kind, index) = clause
                .split_once('@')
                .ok_or_else(|| format!("bad chaos clause {clause:?} (want kind@index)"))?;
            let kind = match kind {
                "hang" => ChaosKind::Hang,
                "torn-line" => ChaosKind::TornLine,
                "stall-client" => ChaosKind::StallClient,
                "corrupt-store" => ChaosKind::CorruptStore,
                other => {
                    return Err(format!(
                        "unknown chaos kind {other:?} (want hang|torn-line|stall-client|corrupt-store)"
                    ))
                }
            };
            let index: u64 = index
                .parse()
                .map_err(|_| format!("bad chaos index {index:?} in {clause:?}"))?;
            plan.faults.insert(index, kind);
        }
        Ok(plan)
    }

    /// The canonical spec string (`parse` ∘ `to_spec` is the identity).
    #[must_use]
    pub fn to_spec(&self) -> String {
        let clauses: Vec<String> = self
            .iter()
            .map(|(i, k)| format!("{}@{i}", k.label()))
            .collect();
        clauses.join(",")
    }

    /// Only the worker-side clauses (everything but `stall-client`), as a
    /// spec string — what the server propagates into a worker spec.
    #[must_use]
    pub fn worker_spec(&self) -> String {
        let clauses: Vec<String> = self
            .iter()
            .filter(|(_, k)| k.is_worker_side())
            .map(|(i, k)| format!("{}@{i}", k.label()))
            .collect();
        clauses.join(",")
    }

    /// The first `stall-client` index, if the plan has one (the line
    /// count after which a chaos client stops reading).
    #[must_use]
    pub fn stall_after(&self) -> Option<u64> {
        self.iter()
            .find(|(_, k)| *k == ChaosKind::StallClient)
            .map(|(i, _)| i)
    }

    /// The fault injected at a job index, if any.
    #[must_use]
    pub fn fault_at(&self, index: u64) -> Option<ChaosKind> {
        self.faults.get(&index).copied()
    }

    /// Number of planned faults.
    #[must_use]
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Whether the plan injects nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The planned `(index, kind)` pairs in index order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, ChaosKind)> + '_ {
        self.faults.iter().map(|(&i, &k)| (i, k))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_and_rejects_garbage() {
        let plan = FaultPlan::parse("panic@3,diverge@7, budget@2 ,abort@10").unwrap();
        assert_eq!(plan.fault_at(3), Some(FaultKind::Panic));
        assert_eq!(plan.fault_at(7), Some(FaultKind::Diverge));
        assert_eq!(plan.fault_at(2), Some(FaultKind::Budget));
        assert_eq!(plan.fault_at(10), Some(FaultKind::Abort));
        assert_eq!(plan.fault_at(4), None);
        assert_eq!(plan.len(), 4);
        assert!(FaultPlan::parse("explode@1").is_err());
        assert!(FaultPlan::parse("panic@x").is_err());
        assert!(FaultPlan::parse("panic").is_err());
        assert!(FaultPlan::parse("").unwrap().is_empty());
    }

    #[test]
    fn seeded_plans_are_deterministic_and_bounded() {
        let a = FaultPlan::seeded(42, 5, 100);
        let b = FaultPlan::seeded(42, 5, 100);
        assert_eq!(a, b);
        assert_eq!(a.len(), 5);
        assert!(a.iter().all(|(i, _)| i < 100));
        assert!(FaultPlan::seeded(7, 10, 3).len() <= 3);
        assert!(FaultPlan::seeded(7, 0, 100).is_empty());
        assert!(FaultPlan::seeded(7, 2, 0).is_empty());
    }

    #[test]
    fn retryability_matches_policy() {
        assert!(JobError::WorkerPanic { payload: "x".into() }.retryable());
        assert!(JobError::CycleBudgetExceeded { limit: 64 }.retryable());
        assert!(JobError::WallBudgetExceeded { limit_ms: 5 }.retryable());
        assert!(!JobError::ProfileFault("x".into()).retryable());
        assert!(!JobError::VerifyDivergence { detail: "x".into() }.retryable());
        assert!(!JobError::Aborted.retryable());
    }

    #[test]
    fn chaos_plan_parses_splits_and_round_trips() {
        let plan =
            ChaosPlan::parse("hang@3, torn-line@7 ,stall-client@2,corrupt-store@5").unwrap();
        assert_eq!(plan.fault_at(3), Some(ChaosKind::Hang));
        assert_eq!(plan.fault_at(7), Some(ChaosKind::TornLine));
        assert_eq!(plan.fault_at(2), Some(ChaosKind::StallClient));
        assert_eq!(plan.fault_at(5), Some(ChaosKind::CorruptStore));
        assert_eq!(plan.fault_at(4), None);
        assert_eq!(plan.len(), 4);
        // Canonical spec round trip.
        assert_eq!(ChaosPlan::parse(&plan.to_spec()).unwrap(), plan);
        // The worker spec drops the client-side clause; stall_after keeps it.
        assert_eq!(plan.worker_spec(), "hang@3,corrupt-store@5,torn-line@7");
        assert_eq!(plan.stall_after(), Some(2));
        assert!(ChaosPlan::parse("explode@1").is_err());
        assert!(ChaosPlan::parse("hang@x").is_err());
        assert!(ChaosPlan::parse("hang").is_err());
        assert!(ChaosPlan::parse("").unwrap().is_empty());
        assert_eq!(ChaosPlan::new().stall_after(), None);
    }

    #[test]
    fn error_kinds_are_stable_strings() {
        assert_eq!(JobError::Aborted.kind(), "aborted");
        assert_eq!(
            JobError::VerifyDivergence { detail: String::new() }.kind(),
            "verify_divergence"
        );
        assert_eq!(JobError::SimFault(String::new()).kind(), "sim_fault");
    }
}
