//! The parallel experiment engine: a deterministic [`SweepRunner`] that
//! executes `(benchmark, variant, input, machine)` jobs on a scoped worker
//! pool, backed by memoized profile and compiled-binary caches.
//!
//! Every figure and table of the reproduction is a sweep over such jobs,
//! and the sweep shape is embarrassingly parallel: each job is an
//! independent profile → compile → simulate → verify chain. Three
//! properties make the engine safe to drop under every experiment:
//!
//! * **Determinism** — the IR interpreter, the compiler, and the cycle
//!   simulator are all deterministic, and the compiler consumes profiles
//!   only through keyed lookups (never iteration order), so a cached
//!   profile or binary is bit-identical to a freshly computed one and
//!   parallel results are bit-identical to serial results. The test suite
//!   enforces this (`tests/engine_equivalence.rs`).
//! * **Submission order** — results are returned in job-submission order
//!   regardless of completion order, so downstream figure assembly never
//!   observes scheduling.
//! * **Fault isolation** — a job that fails (typed [`JobError`], or an
//!   outright worker panic caught with `catch_unwind`) becomes one
//!   [`JobFailure`] cell; every other job still completes and stays
//!   bit-identical to a fault-free run (`tests/fault_tolerance.rs`).
//!   Poisoned locks are recovered via [`PoisonError::into_inner`] — the
//!   guarded data is plain results and counters, valid regardless of
//!   where a panic landed — so one panic can never cascade into a second.
//!
//! The caches are keyed on `(benchmark, train-inputs)` for profiles and
//! `(benchmark, variant, train-inputs, compile-options)` for binaries, so
//! a figure sweep compiles each distinct binary once instead of once per
//! (input, machine) point. Failures are cached exactly like successes:
//! both are deterministic, so re-requesting a failed compile returns the
//! same typed error without re-running it.
//!
//! When a journal is attached ([`SweepRunner::attach_journal`]), every
//! completed job is appended to a JSONL file as it finishes, and — on
//! resume — jobs whose key is already journaled are served from the
//! journal bit-identically instead of re-running (`--resume`).

use std::any::Any;
use std::collections::HashMap;
use std::num::NonZeroUsize;
use std::panic::AssertUnwindSafe;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::{Duration, Instant};

use crate::error::{FaultKind, FaultPlan, JobError, JobFailure};
use crate::experiment::{
    lockstep_check, profile_on, simulate_lockstep_pooled, simulate_unverified_pooled,
    verify_retired_state, ExperimentConfig, RunOutcome,
};
use crate::journal::{fnv1a64, JournalError, JournalWriter};
use crate::store::ArtifactStore;
use wishbranch_compiler::{compile, compile_adaptive, BinaryVariant, CompileOptions, CompiledBinary};
use wishbranch_ir::Profile;
use wishbranch_uarch::{BatchLaneSpec, BatchSimulator, MachineConfig, SimError, SimScratch};
use wishbranch_workloads::{suite, Benchmark, InputSet};

/// Environment variable overriding the worker count.
pub const WORKERS_ENV: &str = "WISHBRANCH_WORKERS";

/// Locks a mutex, recovering the guard from a poisoned lock. Everything
/// the engine guards (result slots, cache maps, counters, the journal) is
/// structurally valid no matter where a worker panic landed, so poisoning
/// carries no information here — and the whole point of panic isolation
/// is that one panic must not cascade into a second.
fn lock_unpoisoned<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Stringifies a caught panic payload for [`JobError::WorkerPanic`].
fn panic_payload_string(payload: Box<dyn Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Which training inputs the compiler profiles on for a job.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum TrainSpec {
    /// The paper's flow: one training profile (§4.2).
    Single(InputSet),
    /// The adaptive extension: several training profiles whose
    /// misprediction spread drives the §3.6 input-dependence heuristic.
    Multi(Vec<InputSet>),
}

/// One unit of sweep work: simulate `variant` of benchmark `bench` on
/// `input`, on `machine`, compiled with `compile` after training on
/// `train`.
#[derive(Clone, Debug)]
pub struct SweepJob {
    /// Index of the benchmark in the runner's suite.
    pub bench: usize,
    /// Which Table 3 binary to build.
    pub variant: BinaryVariant,
    /// The run-time input set.
    pub input: InputSet,
    /// The training input(s) the compiler profiles on.
    pub train: TrainSpec,
    /// Compiler heuristics for this job.
    pub compile: CompileOptions,
    /// The simulated machine for this job.
    pub machine: MachineConfig,
}

impl SweepJob {
    /// A job with the experiment's default machine, compile options and
    /// training input.
    #[must_use]
    pub fn standard(
        bench: usize,
        variant: BinaryVariant,
        input: InputSet,
        ec: &ExperimentConfig,
    ) -> SweepJob {
        SweepJob {
            bench,
            variant,
            input,
            train: TrainSpec::Single(ec.train_input),
            compile: ec.compile.clone(),
            machine: ec.machine.clone(),
        }
    }

    /// Replaces the simulated machine.
    #[must_use]
    pub fn with_machine(mut self, machine: MachineConfig) -> SweepJob {
        self.machine = machine;
        self
    }

    /// Replaces the training spec (e.g. [`TrainSpec::Multi`] for the
    /// adaptive compiler).
    #[must_use]
    pub fn with_train(mut self, train: TrainSpec) -> SweepJob {
        self.train = train;
        self
    }

    /// Replaces the compile options (ablation sweeps).
    #[must_use]
    pub fn with_compile(mut self, compile: CompileOptions) -> SweepJob {
        self.compile = compile;
        self
    }
}

/// Hashable image of [`CompileOptions`]: floats are keyed by bit pattern,
/// so any numeric difference — however small — is a distinct cache entry.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
struct OptionsKey {
    wish_jump_threshold: usize,
    wish_loop_body_max: usize,
    mispredict_penalty: u64,
    est_ipc: u64,
    max_predicated_side: usize,
    input_dependence_threshold: u64,
}

impl OptionsKey {
    fn new(o: &CompileOptions) -> OptionsKey {
        OptionsKey {
            wish_jump_threshold: o.wish_jump_threshold,
            wish_loop_body_max: o.wish_loop_body_max,
            mispredict_penalty: o.mispredict_penalty.to_bits(),
            est_ipc: o.est_ipc.to_bits(),
            max_predicated_side: o.max_predicated_side,
            input_dependence_threshold: o.input_dependence_threshold.to_bits(),
        }
    }
}

/// Cache key for compiled binaries.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
struct CompileKey {
    bench: usize,
    variant: BinaryVariant,
    train: TrainSpec,
    options: OptionsKey,
}

/// One unit of worker-pool scheduling: a scalar job, or a group of
/// compatible jobs (same compiled binary) simulated in lockstep by one
/// [`BatchSimulator`]. Values are positions into the `try_run` job slice.
enum WorkUnit {
    Single(usize),
    Batch(Vec<usize>),
}

/// The result of one job, in submission order.
#[derive(Clone, Debug)]
pub struct JobResult {
    /// The job that produced this result.
    pub job: SweepJob,
    /// Simulation outcome (stats + compile report + static stats).
    pub outcome: RunOutcome,
    /// Wall-clock time this job took on its worker (all phases); zero for
    /// a journal hit.
    pub wall: Duration,
    /// Where this job's wall time went, phase by phase.
    pub phases: JobPhases,
    /// Whether the compiled binary came from the cache (always `true` for
    /// a journal hit, which never touches the compiler).
    pub compile_cache_hit: bool,
    /// Whether the whole outcome was served from an attached sweep
    /// journal (`--resume`) instead of being executed.
    pub journal_hit: bool,
    /// Whether the whole outcome was served from an attached
    /// content-addressed [`ArtifactStore`] instead of being executed.
    pub store_hit: bool,
}

/// Per-phase wall-clock breakdown of one job. `acquire` covers the
/// binary-cache lookup, including any profiling and compilation it
/// triggered (zero-ish on a cache hit); `simulate` is the cycle
/// simulation; `verify` is the functional-reference cross-check.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct JobPhases {
    /// Binary acquisition: cache lookup + (on miss) profile + compile.
    pub acquire: Duration,
    /// Cycle simulation.
    pub simulate: Duration,
    /// Architectural verification against the functional reference.
    pub verify: Duration,
}

/// Aggregate statistics over everything a [`SweepRunner`] has executed.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct SweepSummary {
    /// Jobs completed successfully (including journal hits).
    pub jobs: u64,
    /// Worker threads the pool runs.
    pub workers: usize,
    /// Profile cache hits.
    pub profile_hits: u64,
    /// Profile cache misses (profiling runs actually executed).
    pub profile_misses: u64,
    /// Compiled-binary cache hits.
    pub compile_hits: u64,
    /// Compiled-binary cache misses (compiles actually executed).
    pub compile_misses: u64,
    /// Jobs that ended in a [`JobFailure`] after all retry attempts.
    pub failed: u64,
    /// Extra execution attempts spent retrying retryable failures.
    pub retries: u64,
    /// Jobs served bit-identically from an attached sweep journal.
    pub journal_hits: u64,
    /// Jobs served bit-identically from an attached content-addressed
    /// artifact store (identical work done earlier, possibly by another
    /// run or tenant).
    pub store_hits: u64,
    /// Jobs that consulted an attached artifact store and missed (and so
    /// were executed, then written back).
    pub store_misses: u64,
    /// Corrupt store entries quarantined (renamed to `<key>.corrupt`) by
    /// the attached store; each also counts as one store miss.
    pub store_quarantined: u64,
    /// Sum of per-job wall-clock times (the serial cost of the work).
    pub job_time: Duration,
    /// End-to-end wall-clock time spent inside [`SweepRunner::try_run`].
    pub wall_time: Duration,
    /// Time spent profiling (inside cache misses only).
    pub profile_time: Duration,
    /// Time spent compiling, excluding the profiling it triggered.
    pub compile_time: Duration,
    /// Time spent in the cycle simulator.
    pub simulate_time: Duration,
    /// Time spent verifying retired state against the reference machine.
    pub verify_time: Duration,
    /// Simulated cycles across all executed jobs (journal hits excluded —
    /// they spend no simulator time).
    pub sim_cycles: u64,
    /// Retired µops across all executed jobs (journal hits excluded).
    pub sim_uops: u64,
    /// Configured batch width (lanes per [`wishbranch_uarch::BatchSimulator`]
    /// group); `1` means every job takes the scalar path.
    pub batch_size: usize,
    /// Jobs executed as lanes of a lockstep batch (subset of `jobs`;
    /// singleton groups and fault-injected jobs fall back to the scalar
    /// path and are not counted here).
    pub batched_jobs: u64,
}

impl SweepSummary {
    /// Parallel speedup: total job time over end-to-end wall time. With
    /// one worker this hovers around 1.0; with N busy workers it
    /// approaches N.
    #[must_use]
    pub fn parallel_speedup(&self) -> f64 {
        if self.wall_time.is_zero() {
            return 1.0;
        }
        self.job_time.as_secs_f64() / self.wall_time.as_secs_f64()
    }

    /// Fraction of binary requests served from the cache.
    #[must_use]
    pub fn compile_hit_rate(&self) -> f64 {
        let total = self.compile_hits + self.compile_misses;
        if total == 0 {
            return 0.0;
        }
        self.compile_hits as f64 / total as f64
    }

    /// Simulator throughput: simulated cycles per host-second of
    /// simulate-phase time. Zero when nothing was simulated.
    #[must_use]
    pub fn cycles_per_sec(&self) -> f64 {
        if self.simulate_time.is_zero() {
            return 0.0;
        }
        self.sim_cycles as f64 / self.simulate_time.as_secs_f64()
    }

    /// Simulator throughput: retired µops per host-second of
    /// simulate-phase time. Zero when nothing was simulated.
    #[must_use]
    pub fn uops_per_sec(&self) -> f64 {
        if self.simulate_time.is_zero() {
            return 0.0;
        }
        self.sim_uops as f64 / self.simulate_time.as_secs_f64()
    }
}

// Failures are cached exactly like successes — both are deterministic
// (same inputs, same fault), so a cached `Err` is the same answer a rerun
// would produce, minus the rerun.
type ProfileCell = Arc<OnceLock<Result<Arc<Profile>, JobError>>>;
type BinaryCell = Arc<OnceLock<Result<Arc<CompiledBinary>, JobError>>>;

/// A job-completion hook (see [`SweepRunner::set_observer`]): called with
/// the job's stable key and its successful result, from worker threads,
/// in completion order.
pub type JobObserver = Arc<dyn Fn(u64, &JobResult) + Send + Sync>;

/// An attached sweep journal: the append handle plus the outcomes loaded
/// for `--resume` (empty when not resuming).
struct JournalState {
    writer: JournalWriter,
    resume: HashMap<u64, RunOutcome>,
}

/// The parallel sweep engine. See the module docs.
///
/// A runner owns its benchmark suite (built once at the experiment's
/// scale) and its caches; figures that share a runner share compiled
/// binaries — `wishbranch-repro all` compiles each binary exactly once
/// across every figure it regenerates.
pub struct SweepRunner {
    ec: ExperimentConfig,
    benches: Vec<Benchmark>,
    workers: usize,
    profiles: Mutex<HashMap<(usize, InputSet), ProfileCell>>,
    binaries: Mutex<HashMap<CompileKey, BinaryCell>>,
    /// Global submission index: every job submitted over the runner's
    /// lifetime gets the next index, independent of worker count and
    /// scheduling. [`FaultPlan`] indices and [`JobFailure::index`] refer
    /// to this counter.
    next_index: AtomicU64,
    fault_plan: FaultPlan,
    aborted: AtomicBool,
    retry_limit: u32,
    /// Lockstep-oracle mode (`--oracle`): every job's retired stream is
    /// replayed through [`wishbranch_isa::LockstepOracle`].
    oracle: bool,
    /// Batch width for lockstep simulation (`--batch`); `1` disables
    /// batching entirely.
    batch: usize,
    wall_budget: Option<Duration>,
    /// Recycled simulator buffers, one entry per idle worker: each worker
    /// checks one out for its whole tour and threads it through every
    /// scalar-path job it runs, so back-to-back jobs reuse the big
    /// allocations instead of reallocating them per job.
    scratch_pool: Mutex<Vec<SimScratch>>,
    journal: Mutex<Option<JournalState>>,
    /// Content-addressed outcome store shared across runs and tenants
    /// (`None` when not serving). Consulted after the journal, before
    /// execution; written back on every fresh success.
    store: Option<Arc<ArtifactStore>>,
    /// Completion hook: fires once per successful job with its key and
    /// result — on fresh executions, journal hits *and* store hits — so a
    /// streaming consumer sees every job exactly once even across a
    /// kill-and-resume cycle.
    observer: Option<JobObserver>,
    failures: Mutex<Vec<JobFailure>>,
    profile_hits: AtomicU64,
    profile_misses: AtomicU64,
    compile_hits: AtomicU64,
    compile_misses: AtomicU64,
    jobs_run: AtomicU64,
    failed: AtomicU64,
    retries: AtomicU64,
    journal_hits: AtomicU64,
    store_hits: AtomicU64,
    store_misses: AtomicU64,
    batched_jobs: AtomicU64,
    job_time_nanos: AtomicU64,
    wall_nanos: AtomicU64,
    profile_nanos: AtomicU64,
    compile_nanos: AtomicU64,
    simulate_nanos: AtomicU64,
    verify_nanos: AtomicU64,
    sim_cycles: AtomicU64,
    sim_uops: AtomicU64,
}

/// Worker count: `WISHBRANCH_WORKERS` if set and positive, else the
/// machine's available parallelism. An invalid override (unparseable, or
/// zero) is rejected with a one-line stderr warning naming the rejected
/// value and the fallback used.
#[must_use]
pub fn default_workers() -> usize {
    let available = || {
        std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    };
    match std::env::var(WORKERS_ENV) {
        Ok(value) => match value.parse::<usize>() {
            Ok(n) if n > 0 => n,
            _ => {
                let fallback = available();
                eprintln!(
                    "warning: ignoring invalid {WORKERS_ENV}={value:?} (want a positive integer); \
                     using {fallback} workers (available parallelism)"
                );
                fallback
            }
        },
        Err(_) => available(),
    }
}

impl SweepRunner {
    /// A runner over the full nine-benchmark suite at the experiment's
    /// scale, with [`default_workers`].
    #[must_use]
    pub fn new(ec: &ExperimentConfig) -> SweepRunner {
        SweepRunner::with_workers(ec, default_workers())
    }

    /// A runner with an explicit worker count (`0` is clamped to 1).
    #[must_use]
    pub fn with_workers(ec: &ExperimentConfig, workers: usize) -> SweepRunner {
        SweepRunner {
            ec: ec.clone(),
            benches: suite(ec.scale),
            workers: workers.max(1),
            profiles: Mutex::new(HashMap::new()),
            binaries: Mutex::new(HashMap::new()),
            next_index: AtomicU64::new(0),
            fault_plan: FaultPlan::new(),
            aborted: AtomicBool::new(false),
            retry_limit: 1,
            oracle: false,
            batch: 1,
            wall_budget: None,
            scratch_pool: Mutex::new(Vec::new()),
            journal: Mutex::new(None),
            store: None,
            observer: None,
            failures: Mutex::new(Vec::new()),
            profile_hits: AtomicU64::new(0),
            profile_misses: AtomicU64::new(0),
            compile_hits: AtomicU64::new(0),
            compile_misses: AtomicU64::new(0),
            jobs_run: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            journal_hits: AtomicU64::new(0),
            store_hits: AtomicU64::new(0),
            store_misses: AtomicU64::new(0),
            batched_jobs: AtomicU64::new(0),
            job_time_nanos: AtomicU64::new(0),
            wall_nanos: AtomicU64::new(0),
            profile_nanos: AtomicU64::new(0),
            compile_nanos: AtomicU64::new(0),
            simulate_nanos: AtomicU64::new(0),
            verify_nanos: AtomicU64::new(0),
            sim_cycles: AtomicU64::new(0),
            sim_uops: AtomicU64::new(0),
        }
    }

    /// The experiment configuration the runner was built with.
    #[must_use]
    pub fn config(&self) -> &ExperimentConfig {
        &self.ec
    }

    /// The benchmark suite jobs index into.
    #[must_use]
    pub fn benches(&self) -> &[Benchmark] {
        &self.benches
    }

    /// The worker-pool size.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Installs a deterministic fault-injection plan (tests and the
    /// `--fault-plan` CLI flag). Indices are global submission indices on
    /// this runner.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.fault_plan = plan;
    }

    /// Sets the bounded retry limit for retryable failures (worker panics
    /// and budget overruns). Default 1: one retry, two attempts total.
    pub fn set_retry_limit(&mut self, retries: u32) {
        self.retry_limit = retries;
    }

    /// Enables lockstep-oracle mode (`--oracle`): every job's simulation
    /// replays its retired-instruction stream through the in-order
    /// reference oracle ([`crate::simulate_lockstep`]); a divergence
    /// surfaces as that job's [`JobError::VerifyDivergence`] — a failed
    /// cell, gap-rendered like any other — instead of poisoning the sweep.
    pub fn set_oracle(&mut self, on: bool) {
        self.oracle = on;
    }

    /// Sets the lockstep batch width (`--batch N` / `WISHBRANCH_BATCH`).
    /// With a width above 1, [`try_run`](Self::try_run) groups jobs that
    /// share a compiled binary into [`BatchSimulator`] batches of up to
    /// `width` lanes; every lane's result is bit-identical to the scalar
    /// path. Singleton groups, fault-injected indices, and wall-budgeted
    /// runs (per-job wall time is not attributable inside a shared batch)
    /// keep the scalar path. `0` is clamped to 1 (batching off).
    pub fn set_batch(&mut self, width: usize) {
        self.batch = width.max(1);
    }

    /// Sets a per-job wall-clock budget. The budget is checked *between*
    /// phases and after completion — never mid-simulation, which would
    /// break determinism — so an overrunning job still finishes its work
    /// but reports [`JobError::WallBudgetExceeded`] instead of a result.
    pub fn set_wall_budget(&mut self, budget: Option<Duration>) {
        self.wall_budget = budget;
    }

    /// Attaches a content-addressed [`ArtifactStore`]: before executing a
    /// job (and after the journal lookup) the store is consulted under
    /// the job's [`job_key`](Self::job_key); a hit is returned
    /// bit-identically as a [`JobResult::store_hit`] and appended to the
    /// local journal so resume stays complete. Every fresh success is
    /// written back. Lookup order is journal → store → execute.
    pub fn attach_store(&mut self, store: Arc<ArtifactStore>) {
        self.store = Some(store);
    }

    /// Installs a completion observer: called once per successful job
    /// with `(job_key, &result)`, on every success path — fresh
    /// execution, journal hit, store hit — in completion order. Streaming
    /// consumers (the serve protocol) rely on journal hits re-firing
    /// after a resume so a client stream stays gap-free.
    pub fn set_observer(&mut self, observer: JobObserver) {
        self.observer = Some(observer);
    }

    /// The run-identity fingerprint stamped into this runner's journal
    /// header: an FNV-1a-64 hash over the experiment scale, machine
    /// configuration, compile options (floats by bit pattern) and
    /// training input. Deliberately *excludes* the fault plan, worker
    /// count and retry limit — none of those change what a job computes,
    /// and a kill-then-resume cycle legitimately resumes without
    /// re-injecting the fault that killed it.
    #[must_use]
    pub fn run_fingerprint(&self) -> u64 {
        let fingerprint = format!(
            "{}|{:?}|{:?}|{:?}",
            self.ec.scale,
            self.ec.machine,
            OptionsKey::new(&self.ec.compile),
            self.ec.train_input,
        );
        fnv1a64(fingerprint.as_bytes())
    }

    /// Attaches the sweep journal at `path`: every subsequently completed
    /// job is appended as it finishes. With `resume`, already-journaled
    /// outcomes are loaded first and served bit-identically as
    /// [`JobResult::journal_hit`]s instead of re-running. Returns how many
    /// journaled outcomes were loaded.
    ///
    /// # Errors
    ///
    /// [`JournalError::RunMismatch`] when the journal exists but was
    /// written under a different [`run_fingerprint`](Self::run_fingerprint)
    /// — resuming it would silently replay results from a different
    /// configuration or scale. [`JournalError::Io`] for real I/O failures
    /// opening or reading the file. Unparseable journal *content* is never
    /// an error — corrupt or torn lines are skipped and their jobs simply
    /// re-run.
    pub fn attach_journal(&self, path: &Path, resume: bool) -> Result<usize, JournalError> {
        // Open (and fingerprint-check) first: a stale journal must be
        // refused before a single outcome is loaded from it.
        let writer = JournalWriter::open(path, self.run_fingerprint())?;
        let resume_map = if resume {
            crate::journal::load(path)?
        } else {
            HashMap::new()
        };
        let loaded = resume_map.len();
        *lock_unpoisoned(&self.journal) = Some(JournalState {
            writer,
            resume: resume_map,
        });
        Ok(loaded)
    }

    /// Whether a [`FaultKind::Abort`] fault has fired on this runner.
    /// Once aborted, workers stop pulling jobs and every unstarted job
    /// (in this and any later batch) fails with [`JobError::Aborted`] —
    /// in-process, this models a sweep whose process was killed mid-run.
    #[must_use]
    pub fn aborted(&self) -> bool {
        self.aborted.load(Ordering::SeqCst)
    }

    /// Every [`JobFailure`] recorded over the runner's lifetime, in the
    /// order failures were recorded.
    #[must_use]
    pub fn failures(&self) -> Vec<JobFailure> {
        lock_unpoisoned(&self.failures).clone()
    }

    /// The stable journal/cache key of a job: an FNV-1a-64 fingerprint
    /// over the benchmark name, variant, run input, training spec,
    /// compile options (floats by bit pattern) and the full machine
    /// configuration.
    #[must_use]
    pub fn job_key(&self, job: &SweepJob) -> u64 {
        let fingerprint = format!(
            "{}|{:?}|{:?}|{:?}|{:?}|{:?}|{}",
            self.benches[job.bench].name,
            job.variant,
            job.input,
            job.train,
            OptionsKey::new(&job.compile),
            job.machine,
            self.ec.scale,
        );
        fnv1a64(fingerprint.as_bytes())
    }

    /// Executes `jobs` on the worker pool, returning one
    /// `Ok(`[`JobResult`]`)` or `Err(`[`JobFailure`]`)` per job, **in
    /// submission order** regardless of completion order. A failed job —
    /// typed error or caught worker panic — never prevents any other job
    /// from completing; non-failed results are bit-identical to a
    /// fault-free run.
    #[must_use]
    pub fn try_run(&self, jobs: Vec<SweepJob>) -> Vec<Result<JobResult, JobFailure>> {
        let t0 = Instant::now();
        let n = jobs.len();
        let base = self.next_index.fetch_add(n as u64, Ordering::SeqCst);
        let units = self.plan_units(&jobs, base);
        let jobs = &jobs;
        let units = &units;
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<Result<JobResult, JobFailure>>>> =
            (0..n).map(|_| Mutex::new(None)).collect();
        let workers = self.workers.min(units.len().max(1));
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let mut scratch = self.take_scratch();
                    loop {
                        if self.aborted.load(Ordering::SeqCst) {
                            break;
                        }
                        let u = next.fetch_add(1, Ordering::Relaxed);
                        if u >= units.len() {
                            break;
                        }
                        match &units[u] {
                            WorkUnit::Single(i) => {
                                let outcome =
                                    self.run_indexed(&jobs[*i], base + *i as u64, &mut scratch);
                                *lock_unpoisoned(&slots[*i]) = Some(outcome);
                            }
                            WorkUnit::Batch(idxs) => {
                                self.run_batch(jobs, idxs, base, &slots, &mut scratch);
                            }
                        }
                    }
                    self.return_scratch(scratch);
                });
            }
        });
        self.wall_nanos
            .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        slots
            .into_iter()
            .enumerate()
            .map(|(i, slot)| {
                let filled = slot.into_inner().unwrap_or_else(PoisonError::into_inner);
                // A slot is only left unfilled when an abort stopped the
                // workers before this job was claimed.
                filled.unwrap_or_else(|| {
                    Err(self.record_failure(&jobs[i], base + i as u64, JobError::Aborted, 0))
                })
            })
            .collect()
    }

    /// Executes `jobs` like [`try_run`](SweepRunner::try_run), but
    /// collapses the per-job results: all results in submission order on
    /// success, the first failure otherwise. (The remaining jobs still
    /// ran; their failures stay visible via
    /// [`failures`](SweepRunner::failures).)
    ///
    /// # Errors
    ///
    /// The first [`JobFailure`] in submission order, if any job failed.
    pub fn run(&self, jobs: Vec<SweepJob>) -> Result<Vec<JobResult>, JobFailure> {
        self.try_run(jobs).into_iter().collect()
    }

    /// Executes one job through the pool (used for one-off cached runs).
    ///
    /// # Errors
    ///
    /// The job's [`JobFailure`], if it failed.
    pub fn run_job(&self, job: &SweepJob) -> Result<JobResult, JobFailure> {
        self.try_run(vec![job.clone()])
            .into_iter()
            .next()
            .unwrap_or_else(|| {
                // Structurally unreachable (one job in, one result out),
                // but the job path must stay panic-free.
                Err(JobFailure {
                    job: job.clone(),
                    index: 0,
                    error: JobError::Aborted,
                    attempts: 0,
                })
            })
    }

    /// Records a failure in the runner's failure table and returns it.
    fn record_failure(
        &self,
        job: &SweepJob,
        index: u64,
        error: JobError,
        attempts: u32,
    ) -> JobFailure {
        let failure = JobFailure {
            job: job.clone(),
            index,
            error,
            attempts,
        };
        self.failed.fetch_add(1, Ordering::Relaxed);
        lock_unpoisoned(&self.failures).push(failure.clone());
        failure
    }

    /// Takes a recycled scratch from the pool (or a fresh one) for a
    /// worker's tour of duty.
    fn take_scratch(&self) -> SimScratch {
        lock_unpoisoned(&self.scratch_pool).pop().unwrap_or_default()
    }

    /// Returns a worker's scratch to the pool at the end of its tour.
    fn return_scratch(&self, scratch: SimScratch) {
        lock_unpoisoned(&self.scratch_pool).push(scratch);
    }

    /// Splits `jobs` into scheduling units. With batching off (width 1)
    /// or a wall budget set (per-job wall time is not attributable inside
    /// a shared batch) every job is a [`WorkUnit::Single`]. Otherwise
    /// jobs sharing a compile key — and therefore a compiled program —
    /// are grouped in first-seen order and chunked to the batch width.
    /// Fault-injected indices always keep the scalar path, so the
    /// injection machinery and its recovery behave exactly as tested.
    fn plan_units(&self, jobs: &[SweepJob], base: u64) -> Vec<WorkUnit> {
        if self.batch <= 1 || self.wall_budget.is_some() {
            return (0..jobs.len()).map(WorkUnit::Single).collect();
        }
        let mut units = Vec::new();
        let mut order: Vec<CompileKey> = Vec::new();
        let mut groups: HashMap<CompileKey, Vec<usize>> = HashMap::new();
        for (i, job) in jobs.iter().enumerate() {
            if self.fault_plan.fault_at(base + i as u64).is_some() {
                units.push(WorkUnit::Single(i));
                continue;
            }
            let key = CompileKey {
                bench: job.bench,
                variant: job.variant,
                train: job.train.clone(),
                options: OptionsKey::new(&job.compile),
            };
            match groups.get_mut(&key) {
                Some(members) => members.push(i),
                None => {
                    order.push(key.clone());
                    groups.insert(key, vec![i]);
                }
            }
        }
        for key in &order {
            for chunk in groups[key].chunks(self.batch) {
                if chunk.len() == 1 {
                    units.push(WorkUnit::Single(chunk[0]));
                } else {
                    units.push(WorkUnit::Batch(chunk.to_vec()));
                }
            }
        }
        units
    }

    /// Serves a job from the attached journal or artifact store, if
    /// present there, with all the counter/notify side effects of that
    /// path. A store consult that misses counts as a store miss.
    fn cached_lookup(&self, job: &SweepJob) -> Option<JobResult> {
        if let Some(outcome) = self.journal_lookup(job) {
            self.jobs_run.fetch_add(1, Ordering::Relaxed);
            self.journal_hits.fetch_add(1, Ordering::Relaxed);
            let done = JobResult {
                job: job.clone(),
                outcome,
                wall: Duration::ZERO,
                phases: JobPhases::default(),
                compile_cache_hit: true,
                journal_hit: true,
                store_hit: false,
            };
            self.notify(&done);
            return Some(done);
        }
        if let Some(store) = &self.store {
            let key = self.job_key(job);
            if let Some(outcome) = store.get(key) {
                self.jobs_run.fetch_add(1, Ordering::Relaxed);
                self.store_hits.fetch_add(1, Ordering::Relaxed);
                // Append to the local journal so a later resume of this
                // run is complete without consulting the store.
                self.journal_append(job, &outcome);
                let done = JobResult {
                    job: job.clone(),
                    outcome,
                    wall: Duration::ZERO,
                    phases: JobPhases::default(),
                    compile_cache_hit: true,
                    journal_hit: false,
                    store_hit: true,
                };
                self.notify(&done);
                return Some(done);
            }
            self.store_misses.fetch_add(1, Ordering::Relaxed);
        }
        None
    }

    /// One job at its global submission index: journal lookup, fault
    /// injection, panic isolation, bounded retry.
    fn run_indexed(
        &self,
        job: &SweepJob,
        index: u64,
        scratch: &mut SimScratch,
    ) -> Result<JobResult, JobFailure> {
        let fault = self.fault_plan.fault_at(index);
        if fault == Some(FaultKind::Abort) {
            self.aborted.store(true, Ordering::SeqCst);
            return Err(self.record_failure(job, index, JobError::Aborted, 0));
        }
        if let Some(done) = self.cached_lookup(job) {
            return Ok(done);
        }
        self.run_fresh(job, index, scratch)
    }

    /// The execution half of [`run_indexed`](Self::run_indexed) — after
    /// the journal/store lookups. Also the scalar fallback for batch
    /// lanes, which have already done (and must not repeat) the lookups.
    fn run_fresh(
        &self,
        job: &SweepJob,
        index: u64,
        scratch: &mut SimScratch,
    ) -> Result<JobResult, JobFailure> {
        let fault = self.fault_plan.fault_at(index);
        let mut attempts = 0u32;
        loop {
            attempts += 1;
            let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
                self.execute_job(job, fault, scratch)
            }));
            let result = match caught {
                Ok(result) => result,
                Err(payload) => Err(JobError::WorkerPanic {
                    payload: panic_payload_string(payload),
                }),
            };
            match result {
                Ok(done) => {
                    self.journal_append(job, &done.outcome);
                    if let Some(store) = &self.store {
                        if let Err(e) = store.put(self.job_key(job), &done.outcome) {
                            // Store write failure degrades the cache (warn),
                            // never the sweep — same contract as the journal.
                            eprintln!("warning: artifact-store write failed: {e}");
                        }
                    }
                    self.notify(&done);
                    return Ok(done);
                }
                Err(error) if error.retryable() && attempts <= self.retry_limit => {
                    self.retries.fetch_add(1, Ordering::Relaxed);
                }
                Err(error) => return Err(self.record_failure(job, index, error, attempts)),
            }
        }
    }

    /// One planned batch: every live lane simulated in lockstep by a
    /// single [`BatchSimulator`], preserving the scalar path's semantics
    /// per job — journal/store lookups first, per-job binary-cache
    /// accounting, lockstep-oracle replay, architectural verification,
    /// and [`JobError`] isolation (one faulting lane gaps only its own
    /// cell). The whole batch is wrapped in `catch_unwind`; on a panic
    /// every lane reruns on the scalar path, which isolates the panic to
    /// the one job that caused it.
    fn run_batch(
        &self,
        jobs: &[SweepJob],
        idxs: &[usize],
        base: u64,
        slots: &[Mutex<Option<Result<JobResult, JobFailure>>>],
        scratch: &mut SimScratch,
    ) {
        // Journal/store hits are served first; only the rest become lanes.
        let mut live: Vec<usize> = Vec::with_capacity(idxs.len());
        for &i in idxs {
            match self.cached_lookup(&jobs[i]) {
                Some(done) => *lock_unpoisoned(&slots[i]) = Some(Ok(done)),
                None => live.push(i),
            }
        }
        // Acquire the shared binary once per job, so the cache counters
        // match the scalar path exactly (first lane misses and compiles,
        // the rest hit). A compile-path failure sends that job down the
        // scalar path, which reports the memoized error with the usual
        // record semantics.
        struct LanePlan {
            idx: usize,
            bin: Arc<CompiledBinary>,
            cache_hit: bool,
            acquire: Duration,
        }
        let mut plans: Vec<LanePlan> = Vec::with_capacity(live.len());
        for &i in &live {
            let t0 = Instant::now();
            match self.binary(&jobs[i]) {
                Ok((bin, cache_hit)) => plans.push(LanePlan {
                    idx: i,
                    bin,
                    cache_hit,
                    acquire: t0.elapsed(),
                }),
                Err(_) => {
                    let outcome = self.run_fresh(&jobs[i], base + i as u64, scratch);
                    *lock_unpoisoned(&slots[i]) = Some(outcome);
                }
            }
        }
        if plans.len() <= 1 {
            // Nothing left to share: scalar path.
            for plan in &plans {
                let outcome = self.run_fresh(&jobs[plan.idx], base + plan.idx as u64, scratch);
                *lock_unpoisoned(&slots[plan.idx]) = Some(outcome);
            }
            return;
        }
        let specs: Vec<BatchLaneSpec<'_>> = plans
            .iter()
            .map(|plan| {
                let job = &jobs[plan.idx];
                BatchLaneSpec {
                    program: &plan.bin.program,
                    cfg: job.machine.clone(),
                    preload_mem: (self.benches[job.bench].input_fn)(job.input),
                    retire_log: self.oracle && !job.machine.oracles.no_false_predicate_fetch,
                }
            })
            .collect();
        let t_sim = Instant::now();
        let ran = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let mut batch = BatchSimulator::new(&specs);
            let results = batch.run();
            let logs: Vec<Vec<wishbranch_isa::RetireRecord>> =
                (0..results.len()).map(|lane| batch.take_retire_log(lane)).collect();
            (results, logs)
        }));
        let batch_wall = t_sim.elapsed();
        let (results, logs) = match ran {
            Ok(x) => x,
            Err(_) => {
                for plan in &plans {
                    let outcome =
                        self.run_fresh(&jobs[plan.idx], base + plan.idx as u64, scratch);
                    *lock_unpoisoned(&slots[plan.idx]) = Some(outcome);
                }
                return;
            }
        };
        // The simulate phase was genuinely shared: the summary records
        // the batch wall once; each job's phase breakdown gets an equal
        // share of it.
        self.simulate_nanos
            .fetch_add(batch_wall.as_nanos() as u64, Ordering::Relaxed);
        let share = batch_wall / plans.len() as u32;
        for ((plan, result), records) in plans.iter().zip(results).zip(&logs) {
            let i = plan.idx;
            let job = &jobs[i];
            let filled = match result {
                Err(SimError::CycleLimitExceeded { limit }) => Err(self.record_failure(
                    job,
                    base + i as u64,
                    JobError::CycleBudgetExceeded { limit },
                    1,
                )),
                Ok(sim) => {
                    let bench = &self.benches[job.bench];
                    let t2 = Instant::now();
                    let checked = if self.oracle && !job.machine.oracles.no_false_predicate_fetch
                    {
                        lockstep_check(&plan.bin.program, bench, job.input, &sim, records)
                    } else {
                        Ok(())
                    }
                    .and_then(|()| verify_retired_state(&plan.bin.program, bench, job.input, &sim));
                    let verify = t2.elapsed();
                    match checked {
                        Err(error) => Err(self.record_failure(job, base + i as u64, error, 1)),
                        Ok(()) => {
                            let wall = plan.acquire + share + verify;
                            self.jobs_run.fetch_add(1, Ordering::Relaxed);
                            self.batched_jobs.fetch_add(1, Ordering::Relaxed);
                            self.job_time_nanos
                                .fetch_add(wall.as_nanos() as u64, Ordering::Relaxed);
                            self.verify_nanos
                                .fetch_add(verify.as_nanos() as u64, Ordering::Relaxed);
                            self.sim_cycles.fetch_add(sim.stats.cycles, Ordering::Relaxed);
                            self.sim_uops
                                .fetch_add(sim.stats.retired_uops, Ordering::Relaxed);
                            let done = JobResult {
                                job: job.clone(),
                                outcome: RunOutcome {
                                    sim,
                                    report: plan.bin.report.clone(),
                                    static_stats: plan.bin.program.static_stats(),
                                },
                                wall,
                                phases: JobPhases {
                                    acquire: plan.acquire,
                                    simulate: share,
                                    verify,
                                },
                                compile_cache_hit: plan.cache_hit,
                                journal_hit: false,
                                store_hit: false,
                            };
                            self.journal_append(job, &done.outcome);
                            if let Some(store) = &self.store {
                                if let Err(e) = store.put(self.job_key(job), &done.outcome) {
                                    eprintln!("warning: artifact-store write failed: {e}");
                                }
                            }
                            self.notify(&done);
                            Ok(done)
                        }
                    }
                }
            };
            *lock_unpoisoned(&slots[i]) = Some(filled);
        }
    }

    /// One execution attempt: acquire → simulate → verify, with the
    /// injected fault (if any) applied. Injected faults produce *genuine*
    /// failures — a real panic, a real cycle-budget overrun (tiny
    /// `max_cycles`), a real verify divergence (corrupted retired memory)
    /// — so the whole recovery path is exercised, not a mock of it.
    fn execute_job(
        &self,
        job: &SweepJob,
        fault: Option<FaultKind>,
        scratch: &mut SimScratch,
    ) -> Result<JobResult, JobError> {
        if fault == Some(FaultKind::Panic) {
            panic!("injected fault: worker panic");
        }
        let t0 = Instant::now();
        let (binary, compile_cache_hit) = self.binary(job)?;
        let acquire = t0.elapsed();
        let bench = &self.benches[job.bench];
        let starved;
        let machine = if fault == Some(FaultKind::Budget) {
            starved = job.machine.clone().with_max_cycles(64);
            &starved
        } else {
            &job.machine
        };
        let t1 = Instant::now();
        let mut sim = if self.oracle {
            simulate_lockstep_pooled(&binary.program, bench, job.input, machine, scratch)?
        } else {
            simulate_unverified_pooled(&binary.program, bench, job.input, machine, scratch)?
        };
        let simulate = t1.elapsed();
        if fault == Some(FaultKind::Diverge) {
            sim.final_mem.insert(u64::MAX, i64::MIN);
        }
        let t2 = Instant::now();
        verify_retired_state(&binary.program, bench, job.input, &sim)?;
        let verify = t2.elapsed();
        let wall = t0.elapsed();
        if let Some(budget) = self.wall_budget {
            if wall > budget {
                return Err(JobError::WallBudgetExceeded {
                    limit_ms: budget.as_millis() as u64,
                });
            }
        }
        self.jobs_run.fetch_add(1, Ordering::Relaxed);
        self.job_time_nanos
            .fetch_add(wall.as_nanos() as u64, Ordering::Relaxed);
        self.simulate_nanos
            .fetch_add(simulate.as_nanos() as u64, Ordering::Relaxed);
        self.verify_nanos
            .fetch_add(verify.as_nanos() as u64, Ordering::Relaxed);
        // Throughput numerators: only genuinely simulated work counts
        // (journal hits return long before this point).
        self.sim_cycles.fetch_add(sim.stats.cycles, Ordering::Relaxed);
        self.sim_uops
            .fetch_add(sim.stats.retired_uops, Ordering::Relaxed);
        Ok(JobResult {
            job: job.clone(),
            outcome: RunOutcome {
                sim,
                report: binary.report,
                static_stats: binary.program.static_stats(),
            },
            wall,
            phases: JobPhases {
                acquire,
                simulate,
                verify,
            },
            compile_cache_hit,
            journal_hit: false,
            store_hit: false,
        })
    }

    /// Fires the completion observer, if one is installed.
    fn notify(&self, done: &JobResult) {
        if let Some(observer) = &self.observer {
            observer(self.job_key(&done.job), done);
        }
    }

    /// The journaled outcome for a job, if a journal is attached in
    /// resume mode and has this job's key.
    fn journal_lookup(&self, job: &SweepJob) -> Option<RunOutcome> {
        {
            let guard = lock_unpoisoned(&self.journal);
            let state = guard.as_ref()?;
            if state.resume.is_empty() {
                return None;
            }
        }
        // Fingerprinting is outside the lock; only the map read is inside.
        let key = self.job_key(job);
        lock_unpoisoned(&self.journal)
            .as_ref()
            .and_then(|state| state.resume.get(&key).cloned())
    }

    /// Appends a completed job to the attached journal, if any. A journal
    /// write failure degrades the journal (warn on stderr), never the
    /// sweep.
    fn journal_append(&self, job: &SweepJob, outcome: &RunOutcome) {
        if lock_unpoisoned(&self.journal).is_none() {
            return;
        }
        let key = self.job_key(job);
        if let Some(state) = lock_unpoisoned(&self.journal).as_mut() {
            if let Err(e) = state.writer.append(key, outcome) {
                eprintln!("warning: sweep journal write failed: {e}");
            }
        }
    }

    /// The memoized profile of benchmark `bench` on `input`.
    ///
    /// Exactly one profiling run per `(bench, input)` pair executes over
    /// the runner's lifetime; concurrent requesters block on the first.
    /// A profiling failure is memoized the same way (it is deterministic).
    ///
    /// # Errors
    ///
    /// The memoized [`JobError::ProfileFault`] if profiling failed.
    pub fn profile(&self, bench: usize, input: InputSet) -> Result<Arc<Profile>, JobError> {
        let cell: ProfileCell = {
            let mut map = lock_unpoisoned(&self.profiles);
            Arc::clone(map.entry((bench, input)).or_default())
        };
        let mut computed = false;
        let result = cell.get_or_init(|| {
            computed = true;
            self.profile_misses.fetch_add(1, Ordering::Relaxed);
            let t0 = Instant::now();
            let profile = profile_on(&self.benches[bench], input).map(Arc::new);
            self.profile_nanos
                .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
            profile
        });
        if !computed {
            self.profile_hits.fetch_add(1, Ordering::Relaxed);
        }
        result.clone()
    }

    /// The memoized compiled binary for a job's `(bench, variant, train,
    /// compile-options)` key. Returns the binary and whether it was a
    /// cache hit. A compile-path failure is memoized like a success.
    ///
    /// # Errors
    ///
    /// The memoized [`JobError`] if the profile/compile path failed.
    pub fn binary(&self, job: &SweepJob) -> Result<(Arc<CompiledBinary>, bool), JobError> {
        let key = CompileKey {
            bench: job.bench,
            variant: job.variant,
            train: job.train.clone(),
            options: OptionsKey::new(&job.compile),
        };
        let cell: BinaryCell = {
            let mut map = lock_unpoisoned(&self.binaries);
            Arc::clone(map.entry(key).or_default())
        };
        let mut computed = false;
        let result = cell.get_or_init(|| {
            computed = true;
            self.compile_misses.fetch_add(1, Ordering::Relaxed);
            self.compile_uncached(job).map(Arc::new)
        });
        if !computed {
            self.compile_hits.fetch_add(1, Ordering::Relaxed);
        }
        result.clone().map(|binary| (binary, !computed))
    }

    fn compile_uncached(&self, job: &SweepJob) -> Result<CompiledBinary, JobError> {
        let module = &self.benches[job.bench].module;
        // Profiles are acquired first so `compile_time` measures only the
        // compiler itself, never the profiling a cold cache triggers.
        match &job.train {
            TrainSpec::Single(input) => {
                let profile = self.profile(job.bench, *input)?;
                let t0 = Instant::now();
                let bin = compile(module, &profile, job.variant, &job.compile);
                self.compile_nanos
                    .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                Ok(bin)
            }
            TrainSpec::Multi(inputs) => {
                let profiles: Vec<Profile> = inputs
                    .iter()
                    .map(|&i| self.profile(job.bench, i).map(|p| (*p).clone()))
                    .collect::<Result<_, _>>()?;
                let t0 = Instant::now();
                let bin = compile_adaptive(module, &profiles, &job.compile);
                self.compile_nanos
                    .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                Ok(bin)
            }
        }
    }

    /// A snapshot of everything the runner has executed so far.
    #[must_use]
    pub fn summary(&self) -> SweepSummary {
        SweepSummary {
            jobs: self.jobs_run.load(Ordering::Relaxed),
            workers: self.workers,
            profile_hits: self.profile_hits.load(Ordering::Relaxed),
            profile_misses: self.profile_misses.load(Ordering::Relaxed),
            compile_hits: self.compile_hits.load(Ordering::Relaxed),
            compile_misses: self.compile_misses.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            journal_hits: self.journal_hits.load(Ordering::Relaxed),
            store_hits: self.store_hits.load(Ordering::Relaxed),
            store_misses: self.store_misses.load(Ordering::Relaxed),
            store_quarantined: self.store.as_ref().map_or(0, |s| s.quarantined()),
            job_time: Duration::from_nanos(self.job_time_nanos.load(Ordering::Relaxed)),
            wall_time: Duration::from_nanos(self.wall_nanos.load(Ordering::Relaxed)),
            profile_time: Duration::from_nanos(self.profile_nanos.load(Ordering::Relaxed)),
            compile_time: Duration::from_nanos(self.compile_nanos.load(Ordering::Relaxed)),
            simulate_time: Duration::from_nanos(self.simulate_nanos.load(Ordering::Relaxed)),
            verify_time: Duration::from_nanos(self.verify_nanos.load(Ordering::Relaxed)),
            sim_cycles: self.sim_cycles.load(Ordering::Relaxed),
            sim_uops: self.sim_uops.load(Ordering::Relaxed),
            batch_size: self.batch,
            batched_jobs: self.batched_jobs.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_submission_order() {
        let ec = ExperimentConfig::quick(20);
        let runner = SweepRunner::with_workers(&ec, 4);
        // Benchmarks differ wildly in runtime, so completion order will
        // not match submission order; the engine must reorder.
        let jobs: Vec<SweepJob> = (0..4)
            .flat_map(|b| {
                InputSet::ALL
                    .into_iter()
                    .map(move |i| (b, i))
            })
            .map(|(b, i)| SweepJob::standard(b, BinaryVariant::NormalBranch, i, &ec))
            .collect();
        let expect: Vec<(usize, InputSet)> = jobs.iter().map(|j| (j.bench, j.input)).collect();
        let results = runner.run(jobs).expect("fault-free sweep");
        let got: Vec<(usize, InputSet)> = results.iter().map(|r| (r.job.bench, r.job.input)).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn caches_hit_and_count() {
        let ec = ExperimentConfig::quick(20);
        let runner = SweepRunner::with_workers(&ec, 2);
        let jobs: Vec<SweepJob> = InputSet::ALL
            .into_iter()
            .map(|i| SweepJob::standard(0, BinaryVariant::BaseDef, i, &ec))
            .collect();
        let results = runner.run(jobs).expect("fault-free sweep");
        let summary = runner.summary();
        // One binary serves all three inputs.
        assert_eq!(summary.compile_misses, 1, "{summary:?}");
        assert_eq!(summary.compile_hits, 2, "{summary:?}");
        assert_eq!(results.iter().filter(|r| r.compile_cache_hit).count(), 2);
        // One training profile; the compile-cache hits never re-request it.
        assert_eq!(summary.profile_misses, 1, "{summary:?}");
        assert_eq!(summary.profile_hits, 0, "{summary:?}");
        // A second variant reuses the cached profile.
        let extra = SweepJob::standard(0, BinaryVariant::BaseMax, InputSet::A, &ec);
        let _ = runner.run_job(&extra).expect("extra job");
        let summary = runner.summary();
        assert_eq!(summary.profile_misses, 1, "{summary:?}");
        assert_eq!(summary.profile_hits, 1, "{summary:?}");
        assert_eq!(summary.jobs, 4);
        assert_eq!(summary.failed, 0);
        assert_eq!(summary.retries, 0);
        assert!(summary.job_time > Duration::ZERO);
        // Phase timing: the cycle sim always runs, and the per-job phase
        // breakdown can never exceed the job's own wall clock.
        assert!(summary.simulate_time > Duration::ZERO);
        for r in &results {
            assert!(r.phases.acquire + r.phases.simulate + r.phases.verify <= r.wall);
        }
    }

    #[test]
    fn distinct_options_and_train_inputs_do_not_alias() {
        let ec = ExperimentConfig::quick(20);
        let runner = SweepRunner::new(&ec);
        let base = SweepJob::standard(1, BinaryVariant::WishJumpJoin, InputSet::B, &ec);
        let mut tweaked_opts = ec.compile.clone();
        tweaked_opts.wish_jump_threshold += 1;
        let other_train = base.clone().with_train(TrainSpec::Single(InputSet::C));
        let _ = runner.binary(&base).expect("compile");
        let _ = runner.binary(&base.clone().with_compile(tweaked_opts)).expect("compile");
        let _ = runner.binary(&other_train).expect("compile");
        assert_eq!(runner.summary().compile_misses, 3, "three distinct keys");
    }

    #[test]
    fn job_keys_distinguish_jobs_and_are_stable() {
        let ec = ExperimentConfig::quick(20);
        let runner = SweepRunner::new(&ec);
        let a = SweepJob::standard(0, BinaryVariant::NormalBranch, InputSet::A, &ec);
        let b = SweepJob::standard(0, BinaryVariant::NormalBranch, InputSet::B, &ec);
        assert_eq!(runner.job_key(&a), runner.job_key(&a.clone()));
        assert_ne!(runner.job_key(&a), runner.job_key(&b));
        assert_ne!(
            runner.job_key(&a),
            runner.job_key(&a.clone().with_machine(ec.machine.clone().with_window(128)))
        );
    }
}
