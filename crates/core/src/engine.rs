//! The parallel experiment engine: a deterministic [`SweepRunner`] that
//! executes `(benchmark, variant, input, machine)` jobs on a scoped worker
//! pool, backed by memoized profile and compiled-binary caches.
//!
//! Every figure and table of the reproduction is a sweep over such jobs,
//! and the sweep shape is embarrassingly parallel: each job is an
//! independent profile → compile → simulate → verify chain. Two properties
//! make the engine safe to drop under every experiment:
//!
//! * **Determinism** — the IR interpreter, the compiler, and the cycle
//!   simulator are all deterministic, and the compiler consumes profiles
//!   only through keyed lookups (never iteration order), so a cached
//!   profile or binary is bit-identical to a freshly computed one and
//!   parallel results are bit-identical to serial results. The test suite
//!   enforces this (`tests/engine_equivalence.rs`).
//! * **Submission order** — results are returned in job-submission order
//!   regardless of completion order, so downstream figure assembly never
//!   observes scheduling.
//!
//! The caches are keyed on `(benchmark, train-inputs)` for profiles and
//! `(benchmark, variant, train-inputs, compile-options)` for binaries, so
//! a figure sweep compiles each distinct binary once instead of once per
//! (input, machine) point — the Fig. 14/15 sweeps alone previously
//! recompiled the same 54 binaries six times over.

use std::collections::HashMap;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use crate::experiment::{
    profile_on, simulate_unverified, verify_retired_state, ExperimentConfig, RunOutcome,
};
use wishbranch_compiler::{compile, compile_adaptive, BinaryVariant, CompileOptions, CompiledBinary};
use wishbranch_ir::Profile;
use wishbranch_uarch::MachineConfig;
use wishbranch_workloads::{suite, Benchmark, InputSet};

/// Environment variable overriding the worker count.
pub const WORKERS_ENV: &str = "WISHBRANCH_WORKERS";

/// Which training inputs the compiler profiles on for a job.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum TrainSpec {
    /// The paper's flow: one training profile (§4.2).
    Single(InputSet),
    /// The adaptive extension: several training profiles whose
    /// misprediction spread drives the §3.6 input-dependence heuristic.
    Multi(Vec<InputSet>),
}

/// One unit of sweep work: simulate `variant` of benchmark `bench` on
/// `input`, on `machine`, compiled with `compile` after training on
/// `train`.
#[derive(Clone, Debug)]
pub struct SweepJob {
    /// Index of the benchmark in the runner's suite.
    pub bench: usize,
    /// Which Table 3 binary to build.
    pub variant: BinaryVariant,
    /// The run-time input set.
    pub input: InputSet,
    /// The training input(s) the compiler profiles on.
    pub train: TrainSpec,
    /// Compiler heuristics for this job.
    pub compile: CompileOptions,
    /// The simulated machine for this job.
    pub machine: MachineConfig,
}

impl SweepJob {
    /// A job with the experiment's default machine, compile options and
    /// training input.
    #[must_use]
    pub fn standard(
        bench: usize,
        variant: BinaryVariant,
        input: InputSet,
        ec: &ExperimentConfig,
    ) -> SweepJob {
        SweepJob {
            bench,
            variant,
            input,
            train: TrainSpec::Single(ec.train_input),
            compile: ec.compile.clone(),
            machine: ec.machine.clone(),
        }
    }

    /// Replaces the simulated machine.
    #[must_use]
    pub fn with_machine(mut self, machine: MachineConfig) -> SweepJob {
        self.machine = machine;
        self
    }

    /// Replaces the training spec (e.g. [`TrainSpec::Multi`] for the
    /// adaptive compiler).
    #[must_use]
    pub fn with_train(mut self, train: TrainSpec) -> SweepJob {
        self.train = train;
        self
    }

    /// Replaces the compile options (ablation sweeps).
    #[must_use]
    pub fn with_compile(mut self, compile: CompileOptions) -> SweepJob {
        self.compile = compile;
        self
    }
}

/// Hashable image of [`CompileOptions`]: floats are keyed by bit pattern,
/// so any numeric difference — however small — is a distinct cache entry.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
struct OptionsKey {
    wish_jump_threshold: usize,
    wish_loop_body_max: usize,
    mispredict_penalty: u64,
    est_ipc: u64,
    max_predicated_side: usize,
    input_dependence_threshold: u64,
}

impl OptionsKey {
    fn new(o: &CompileOptions) -> OptionsKey {
        OptionsKey {
            wish_jump_threshold: o.wish_jump_threshold,
            wish_loop_body_max: o.wish_loop_body_max,
            mispredict_penalty: o.mispredict_penalty.to_bits(),
            est_ipc: o.est_ipc.to_bits(),
            max_predicated_side: o.max_predicated_side,
            input_dependence_threshold: o.input_dependence_threshold.to_bits(),
        }
    }
}

/// Cache key for compiled binaries.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
struct CompileKey {
    bench: usize,
    variant: BinaryVariant,
    train: TrainSpec,
    options: OptionsKey,
}

/// The result of one job, in submission order.
#[derive(Clone, Debug)]
pub struct JobResult {
    /// The job that produced this result.
    pub job: SweepJob,
    /// Simulation outcome (stats + compile report + static stats).
    pub outcome: RunOutcome,
    /// Wall-clock time this job took on its worker (all phases).
    pub wall: Duration,
    /// Where this job's wall time went, phase by phase.
    pub phases: JobPhases,
    /// Whether the compiled binary came from the cache.
    pub compile_cache_hit: bool,
}

/// Per-phase wall-clock breakdown of one job. `acquire` covers the
/// binary-cache lookup, including any profiling and compilation it
/// triggered (zero-ish on a cache hit); `simulate` is the cycle
/// simulation; `verify` is the functional-reference cross-check.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct JobPhases {
    /// Binary acquisition: cache lookup + (on miss) profile + compile.
    pub acquire: Duration,
    /// Cycle simulation.
    pub simulate: Duration,
    /// Architectural verification against the functional reference.
    pub verify: Duration,
}

/// Aggregate statistics over everything a [`SweepRunner`] has executed.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct SweepSummary {
    /// Jobs executed.
    pub jobs: u64,
    /// Worker threads the pool runs.
    pub workers: usize,
    /// Profile cache hits.
    pub profile_hits: u64,
    /// Profile cache misses (profiling runs actually executed).
    pub profile_misses: u64,
    /// Compiled-binary cache hits.
    pub compile_hits: u64,
    /// Compiled-binary cache misses (compiles actually executed).
    pub compile_misses: u64,
    /// Sum of per-job wall-clock times (the serial cost of the work).
    pub job_time: Duration,
    /// End-to-end wall-clock time spent inside [`SweepRunner::run`].
    pub wall_time: Duration,
    /// Time spent profiling (inside cache misses only).
    pub profile_time: Duration,
    /// Time spent compiling, excluding the profiling it triggered.
    pub compile_time: Duration,
    /// Time spent in the cycle simulator.
    pub simulate_time: Duration,
    /// Time spent verifying retired state against the reference machine.
    pub verify_time: Duration,
}

impl SweepSummary {
    /// Parallel speedup: total job time over end-to-end wall time. With
    /// one worker this hovers around 1.0; with N busy workers it
    /// approaches N.
    #[must_use]
    pub fn parallel_speedup(&self) -> f64 {
        if self.wall_time.is_zero() {
            return 1.0;
        }
        self.job_time.as_secs_f64() / self.wall_time.as_secs_f64()
    }

    /// Fraction of binary requests served from the cache.
    #[must_use]
    pub fn compile_hit_rate(&self) -> f64 {
        let total = self.compile_hits + self.compile_misses;
        if total == 0 {
            return 0.0;
        }
        self.compile_hits as f64 / total as f64
    }
}

type ProfileCell = Arc<OnceLock<Arc<Profile>>>;
type BinaryCell = Arc<OnceLock<Arc<CompiledBinary>>>;

/// The parallel sweep engine. See the module docs.
///
/// A runner owns its benchmark suite (built once at the experiment's
/// scale) and its caches; figures that share a runner share compiled
/// binaries — `wishbranch-repro all` compiles each binary exactly once
/// across every figure it regenerates.
pub struct SweepRunner {
    ec: ExperimentConfig,
    benches: Vec<Benchmark>,
    workers: usize,
    profiles: Mutex<HashMap<(usize, InputSet), ProfileCell>>,
    binaries: Mutex<HashMap<CompileKey, BinaryCell>>,
    profile_hits: AtomicU64,
    profile_misses: AtomicU64,
    compile_hits: AtomicU64,
    compile_misses: AtomicU64,
    jobs_run: AtomicU64,
    job_time_nanos: AtomicU64,
    wall_nanos: AtomicU64,
    profile_nanos: AtomicU64,
    compile_nanos: AtomicU64,
    simulate_nanos: AtomicU64,
    verify_nanos: AtomicU64,
}

/// Worker count: `WISHBRANCH_WORKERS` if set and positive, else the
/// machine's available parallelism.
#[must_use]
pub fn default_workers() -> usize {
    std::env::var(WORKERS_ENV)
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1)
        })
}

impl SweepRunner {
    /// A runner over the full nine-benchmark suite at the experiment's
    /// scale, with [`default_workers`].
    #[must_use]
    pub fn new(ec: &ExperimentConfig) -> SweepRunner {
        SweepRunner::with_workers(ec, default_workers())
    }

    /// A runner with an explicit worker count (`0` is clamped to 1).
    #[must_use]
    pub fn with_workers(ec: &ExperimentConfig, workers: usize) -> SweepRunner {
        SweepRunner {
            ec: ec.clone(),
            benches: suite(ec.scale),
            workers: workers.max(1),
            profiles: Mutex::new(HashMap::new()),
            binaries: Mutex::new(HashMap::new()),
            profile_hits: AtomicU64::new(0),
            profile_misses: AtomicU64::new(0),
            compile_hits: AtomicU64::new(0),
            compile_misses: AtomicU64::new(0),
            jobs_run: AtomicU64::new(0),
            job_time_nanos: AtomicU64::new(0),
            wall_nanos: AtomicU64::new(0),
            profile_nanos: AtomicU64::new(0),
            compile_nanos: AtomicU64::new(0),
            simulate_nanos: AtomicU64::new(0),
            verify_nanos: AtomicU64::new(0),
        }
    }

    /// The experiment configuration the runner was built with.
    #[must_use]
    pub fn config(&self) -> &ExperimentConfig {
        &self.ec
    }

    /// The benchmark suite jobs index into.
    #[must_use]
    pub fn benches(&self) -> &[Benchmark] {
        &self.benches
    }

    /// The worker-pool size.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Executes `jobs` on the worker pool and returns results **in
    /// submission order**, regardless of completion order.
    ///
    /// # Panics
    ///
    /// Panics (propagated from workers) if any simulation diverges from
    /// the functional reference or exceeds its cycle budget — the same
    /// conditions that panic the serial path.
    #[must_use]
    pub fn run(&self, jobs: Vec<SweepJob>) -> Vec<JobResult> {
        let t0 = Instant::now();
        let n = jobs.len();
        let jobs = &jobs;
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<JobResult>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let workers = self.workers.min(n.max(1));
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let result = self.run_job(&jobs[i]);
                    *slots[i].lock().expect("result slot poisoned") = Some(result);
                });
            }
        });
        self.wall_nanos
            .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot poisoned")
                    .expect("worker filled every slot")
            })
            .collect()
    }

    /// Executes one job on the calling thread (used by the pool, and
    /// directly useful for one-off cached runs).
    #[must_use]
    pub fn run_job(&self, job: &SweepJob) -> JobResult {
        let t0 = Instant::now();
        let (binary, compile_cache_hit) = self.binary(job);
        let acquire = t0.elapsed();
        let bench = &self.benches[job.bench];
        let t1 = Instant::now();
        let sim = simulate_unverified(&binary.program, bench, job.input, &job.machine);
        let simulate = t1.elapsed();
        let t2 = Instant::now();
        verify_retired_state(&binary.program, bench, job.input, &sim);
        let verify = t2.elapsed();
        let wall = t0.elapsed();
        self.jobs_run.fetch_add(1, Ordering::Relaxed);
        self.job_time_nanos
            .fetch_add(wall.as_nanos() as u64, Ordering::Relaxed);
        self.simulate_nanos
            .fetch_add(simulate.as_nanos() as u64, Ordering::Relaxed);
        self.verify_nanos
            .fetch_add(verify.as_nanos() as u64, Ordering::Relaxed);
        JobResult {
            job: job.clone(),
            outcome: RunOutcome {
                sim,
                report: binary.report,
                static_stats: binary.program.static_stats(),
            },
            wall,
            phases: JobPhases {
                acquire,
                simulate,
                verify,
            },
            compile_cache_hit,
        }
    }

    /// The memoized profile of benchmark `bench` on `input`.
    ///
    /// Exactly one profiling run per `(bench, input)` pair executes over
    /// the runner's lifetime; concurrent requesters block on the first.
    #[must_use]
    pub fn profile(&self, bench: usize, input: InputSet) -> Arc<Profile> {
        let cell: ProfileCell = {
            let mut map = self.profiles.lock().expect("profile cache poisoned");
            Arc::clone(map.entry((bench, input)).or_default())
        };
        let mut computed = false;
        let profile = cell.get_or_init(|| {
            computed = true;
            self.profile_misses.fetch_add(1, Ordering::Relaxed);
            let t0 = Instant::now();
            let profile = Arc::new(profile_on(&self.benches[bench], input));
            self.profile_nanos
                .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
            profile
        });
        if !computed {
            self.profile_hits.fetch_add(1, Ordering::Relaxed);
        }
        Arc::clone(profile)
    }

    /// The memoized compiled binary for a job's `(bench, variant, train,
    /// compile-options)` key. Returns the binary and whether it was a
    /// cache hit.
    #[must_use]
    pub fn binary(&self, job: &SweepJob) -> (Arc<CompiledBinary>, bool) {
        let key = CompileKey {
            bench: job.bench,
            variant: job.variant,
            train: job.train.clone(),
            options: OptionsKey::new(&job.compile),
        };
        let cell: BinaryCell = {
            let mut map = self.binaries.lock().expect("binary cache poisoned");
            Arc::clone(map.entry(key).or_default())
        };
        let mut computed = false;
        let binary = cell.get_or_init(|| {
            computed = true;
            self.compile_misses.fetch_add(1, Ordering::Relaxed);
            Arc::new(self.compile_uncached(job))
        });
        if !computed {
            self.compile_hits.fetch_add(1, Ordering::Relaxed);
        }
        (Arc::clone(binary), !computed)
    }

    fn compile_uncached(&self, job: &SweepJob) -> CompiledBinary {
        let module = &self.benches[job.bench].module;
        // Profiles are acquired first so `compile_time` measures only the
        // compiler itself, never the profiling a cold cache triggers.
        match &job.train {
            TrainSpec::Single(input) => {
                let profile = self.profile(job.bench, *input);
                let t0 = Instant::now();
                let bin = compile(module, &profile, job.variant, &job.compile);
                self.compile_nanos
                    .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                bin
            }
            TrainSpec::Multi(inputs) => {
                let profiles: Vec<Profile> = inputs
                    .iter()
                    .map(|&i| (*self.profile(job.bench, i)).clone())
                    .collect();
                let t0 = Instant::now();
                let bin = compile_adaptive(module, &profiles, &job.compile);
                self.compile_nanos
                    .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                bin
            }
        }
    }

    /// A snapshot of everything the runner has executed so far.
    #[must_use]
    pub fn summary(&self) -> SweepSummary {
        SweepSummary {
            jobs: self.jobs_run.load(Ordering::Relaxed),
            workers: self.workers,
            profile_hits: self.profile_hits.load(Ordering::Relaxed),
            profile_misses: self.profile_misses.load(Ordering::Relaxed),
            compile_hits: self.compile_hits.load(Ordering::Relaxed),
            compile_misses: self.compile_misses.load(Ordering::Relaxed),
            job_time: Duration::from_nanos(self.job_time_nanos.load(Ordering::Relaxed)),
            wall_time: Duration::from_nanos(self.wall_nanos.load(Ordering::Relaxed)),
            profile_time: Duration::from_nanos(self.profile_nanos.load(Ordering::Relaxed)),
            compile_time: Duration::from_nanos(self.compile_nanos.load(Ordering::Relaxed)),
            simulate_time: Duration::from_nanos(self.simulate_nanos.load(Ordering::Relaxed)),
            verify_time: Duration::from_nanos(self.verify_nanos.load(Ordering::Relaxed)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_submission_order() {
        let ec = ExperimentConfig::quick(20);
        let runner = SweepRunner::with_workers(&ec, 4);
        // Benchmarks differ wildly in runtime, so completion order will
        // not match submission order; the engine must reorder.
        let jobs: Vec<SweepJob> = (0..4)
            .flat_map(|b| {
                InputSet::ALL
                    .into_iter()
                    .map(move |i| (b, i))
            })
            .map(|(b, i)| SweepJob::standard(b, BinaryVariant::NormalBranch, i, &ec))
            .collect();
        let expect: Vec<(usize, InputSet)> = jobs.iter().map(|j| (j.bench, j.input)).collect();
        let results = runner.run(jobs);
        let got: Vec<(usize, InputSet)> = results.iter().map(|r| (r.job.bench, r.job.input)).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn caches_hit_and_count() {
        let ec = ExperimentConfig::quick(20);
        let runner = SweepRunner::with_workers(&ec, 2);
        let jobs: Vec<SweepJob> = InputSet::ALL
            .into_iter()
            .map(|i| SweepJob::standard(0, BinaryVariant::BaseDef, i, &ec))
            .collect();
        let results = runner.run(jobs);
        let summary = runner.summary();
        // One binary serves all three inputs.
        assert_eq!(summary.compile_misses, 1, "{summary:?}");
        assert_eq!(summary.compile_hits, 2, "{summary:?}");
        assert_eq!(results.iter().filter(|r| r.compile_cache_hit).count(), 2);
        // One training profile; the compile-cache hits never re-request it.
        assert_eq!(summary.profile_misses, 1, "{summary:?}");
        assert_eq!(summary.profile_hits, 0, "{summary:?}");
        // A second variant reuses the cached profile.
        let extra = SweepJob::standard(0, BinaryVariant::BaseMax, InputSet::A, &ec);
        let _ = runner.run_job(&extra);
        let summary = runner.summary();
        assert_eq!(summary.profile_misses, 1, "{summary:?}");
        assert_eq!(summary.profile_hits, 1, "{summary:?}");
        assert_eq!(summary.jobs, 4);
        assert!(summary.job_time > Duration::ZERO);
        // Phase timing: the cycle sim always runs, and the per-job phase
        // breakdown can never exceed the job's own wall clock.
        assert!(summary.simulate_time > Duration::ZERO);
        for r in &results {
            assert!(r.phases.acquire + r.phases.simulate + r.phases.verify <= r.wall);
        }
    }

    #[test]
    fn distinct_options_and_train_inputs_do_not_alias() {
        let ec = ExperimentConfig::quick(20);
        let runner = SweepRunner::new(&ec);
        let base = SweepJob::standard(1, BinaryVariant::WishJumpJoin, InputSet::B, &ec);
        let mut tweaked_opts = ec.compile.clone();
        tweaked_opts.wish_jump_threshold += 1;
        let other_train = base.clone().with_train(TrainSpec::Single(InputSet::C));
        let _ = runner.binary(&base);
        let _ = runner.binary(&base.clone().with_compile(tweaked_opts));
        let _ = runner.binary(&other_train);
        assert_eq!(runner.summary().compile_misses, 3, "three distinct keys");
    }
}
