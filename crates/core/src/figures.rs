//! Regeneration of every figure in the paper's evaluation (§5).
//!
//! Each function returns typed rows; the `wishbranch-bench` crate prints
//! them in the paper's format. Execution times are normalized to the
//! normal-branch binary on the same machine and input, exactly as in the
//! paper ("all execution time results are normalized to the execution time
//! of the normal branch binaries", §4.2).
//!
//! Every figure is a plain `fn figureN(&SweepRunner)` over a caller-owned
//! runner: the figure submits its whole job list in one batch, so figures
//! that share a runner share the profile/compile caches and keep every
//! worker busy — that is how `wishbranch-repro all` compiles each binary
//! exactly once across the entire reproduction. Results are deterministic
//! and identical for any worker count (the engine's determinism contract).

use crate::engine::{SweepJob, SweepRunner, TrainSpec};
use wishbranch_compiler::BinaryVariant;
use wishbranch_uarch::MachineConfig;
use wishbranch_workloads::InputSet;

/// One benchmark's normalized execution times across a figure's series.
#[derive(Clone, PartialEq, Debug)]
pub struct NormalizedRow {
    /// Benchmark name, or `AVG` / `AVGnomcf`.
    pub name: String,
    /// One normalized execution time per series.
    pub values: Vec<f64>,
}

/// A whole bar-chart figure: series labels plus per-benchmark rows, with
/// `AVG` and `AVGnomcf` appended (the paper reports both because mcf skews
/// the mean, §2.2 footnote 2).
#[derive(Clone, PartialEq, Debug)]
pub struct FigureData {
    /// Figure title.
    pub title: String,
    /// Series (bar) labels.
    pub series: Vec<String>,
    /// Per-benchmark rows plus the two average rows.
    pub rows: Vec<NormalizedRow>,
}

/// Fig. 1 rows: BASE-DEF execution time normalized to the normal binary,
/// per input set.
pub type Fig1Row = NormalizedRow;

/// Fig. 2 rows.
pub type Fig2Row = NormalizedRow;

/// Appends AVG and AVGnomcf rows. Averages are over *finite* values only,
/// per series column: a failed cell (NaN gap) drops out of the mean
/// instead of poisoning it. With no failures this is the plain mean.
fn append_averages(rows: &mut Vec<NormalizedRow>) {
    let series = rows.first().map_or(0, |r| r.values.len());
    let mut avg = Vec::with_capacity(series);
    let mut avg_nomcf = Vec::with_capacity(series);
    for k in 0..series {
        let mut sum = 0.0;
        let mut n = 0usize;
        let mut sum_nomcf = 0.0;
        let mut n_nomcf = 0usize;
        for row in rows.iter() {
            let v = row.values[k];
            if !v.is_finite() {
                continue;
            }
            sum += v;
            n += 1;
            if row.name != "mcf" {
                sum_nomcf += v;
                n_nomcf += 1;
            }
        }
        avg.push(if n > 0 { sum / n as f64 } else { f64::NAN });
        avg_nomcf.push(if n_nomcf > 0 {
            sum_nomcf / n_nomcf as f64
        } else {
            f64::NAN
        });
    }
    rows.push(NormalizedRow {
        name: "AVG".into(),
        values: avg,
    });
    rows.push(NormalizedRow {
        name: "AVGnomcf".into(),
        values: avg_nomcf,
    });
}

/// Runs `jobs` on the runner and returns the retired-cycle count of each,
/// in submission order — `None` for a failed job. The failure itself stays
/// recorded on the runner ([`SweepRunner::failures`]) for the summary's
/// failure table; here it only needs to become a gap.
fn run_cycles(runner: &SweepRunner, jobs: Vec<SweepJob>) -> Vec<Option<u64>> {
    runner
        .try_run(jobs)
        .into_iter()
        .map(|r| r.ok().map(|r| r.outcome.sim.stats.cycles))
        .collect()
}

/// A normalized execution time, or NaN — the explicit-gap marker — when
/// either side of the ratio comes from a failed job.
fn ratio(num: Option<u64>, den: Option<u64>) -> f64 {
    match (num, den) {
        (Some(n), Some(d)) => n as f64 / d as f64,
        _ => f64::NAN,
    }
}

/// **Fig. 1** — execution time of the BASE-DEF predicated binary normalized
/// to the normal-branch binary, per input set A/B/C. The compiler profiles
/// on the training input only; the spread across inputs is the paper's
/// motivation ("the performance of predicated execution is highly dependent
/// on the run-time input set").
#[deprecated(note = "run `Experiment::Fig1` through the Experiment catalog (or a typed SweepRequest via run_request) instead; this free-function entry point will be removed next release")]
#[must_use]
pub fn figure1(runner: &SweepRunner) -> FigureData {
    let ec = runner.config().clone();
    let mut jobs = Vec::new();
    for b in 0..runner.benches().len() {
        for input in InputSet::ALL {
            jobs.push(SweepJob::standard(b, BinaryVariant::NormalBranch, input, &ec));
            jobs.push(SweepJob::standard(b, BinaryVariant::BaseDef, input, &ec));
        }
    }
    let cycles = run_cycles(runner, jobs);
    let mut rows = Vec::new();
    for (b, chunk) in cycles.chunks_exact(2 * InputSet::ALL.len()).enumerate() {
        let values = chunk
            .chunks_exact(2)
            .map(|pair| ratio(pair[1], pair[0]))
            .collect();
        rows.push(NormalizedRow {
            name: runner.benches()[b].name.into(),
            values,
        });
    }
    append_averages(&mut rows);
    FigureData {
        title: "Fig.1: BASE-DEF exec time normalized to normal branches, per input".into(),
        series: InputSet::ALL.iter().map(|s| s.label().into()).collect(),
        rows,
    }
}

/// **Fig. 2** — where predication's overhead goes: BASE-MAX as-is, with
/// predicate dependencies ideally removed (NO-DEPEND), with useless
/// instructions also removed (NO-DEPEND + NO-FETCH), and the normal binary
/// under perfect conditional branch prediction (PERFECT-CBP).
#[deprecated(note = "run `Experiment::Fig2` through the Experiment catalog (or a typed SweepRequest via run_request) instead; this free-function entry point will be removed next release")]
#[must_use]
pub fn figure2(runner: &SweepRunner) -> FigureData {
    let ec = runner.config().clone();
    let input = ec.train_input;

    let mut no_dep = ec.machine.clone();
    no_dep.oracles.no_pred_dependencies = true;
    let mut no_dep_no_fetch = no_dep.clone();
    no_dep_no_fetch.oracles.no_false_predicate_fetch = true;
    let mut perfect_cbp = ec.machine.clone();
    perfect_cbp.oracles.perfect_branch_prediction = true;

    let mut jobs = Vec::new();
    for b in 0..runner.benches().len() {
        jobs.push(SweepJob::standard(b, BinaryVariant::NormalBranch, input, &ec));
        jobs.push(SweepJob::standard(b, BinaryVariant::BaseMax, input, &ec));
        jobs.push(
            SweepJob::standard(b, BinaryVariant::BaseMax, input, &ec)
                .with_machine(no_dep.clone()),
        );
        jobs.push(
            SweepJob::standard(b, BinaryVariant::BaseMax, input, &ec)
                .with_machine(no_dep_no_fetch.clone()),
        );
        jobs.push(
            SweepJob::standard(b, BinaryVariant::NormalBranch, input, &ec)
                .with_machine(perfect_cbp.clone()),
        );
    }
    let cycles = run_cycles(runner, jobs);
    let mut rows = Vec::new();
    for (b, chunk) in cycles.chunks_exact(5).enumerate() {
        let baseline = chunk[0];
        rows.push(NormalizedRow {
            name: runner.benches()[b].name.into(),
            values: chunk[1..]
                .iter()
                .map(|&c| ratio(c, baseline))
                .collect(),
        });
    }
    append_averages(&mut rows);
    FigureData {
        title: "Fig.2: predication overhead ideally eliminated (normalized exec time)".into(),
        series: vec![
            "BASE-MAX".into(),
            "NO-DEPEND".into(),
            "NO-DEPEND+NO-FETCH".into(),
            "PERFECT-CBP".into(),
        ],
        rows,
    }
}

fn comparison_figure(
    runner: &SweepRunner,
    title: &str,
    machine: &MachineConfig,
    variants: &[(&str, BinaryVariant, bool /* perfect confidence */)],
) -> FigureData {
    let ec = runner.config().clone();
    let input = ec.train_input;
    let mut jobs = Vec::new();
    for b in 0..runner.benches().len() {
        jobs.push(
            SweepJob::standard(b, BinaryVariant::NormalBranch, input, &ec)
                .with_machine(machine.clone()),
        );
        for &(_, variant, perfect_conf) in variants {
            let mut m = machine.clone();
            m.oracles.perfect_confidence = perfect_conf;
            jobs.push(SweepJob::standard(b, variant, input, &ec).with_machine(m));
        }
    }
    let cycles = run_cycles(runner, jobs);
    let mut rows = Vec::new();
    for (b, chunk) in cycles.chunks_exact(1 + variants.len()).enumerate() {
        let baseline = chunk[0];
        rows.push(NormalizedRow {
            name: runner.benches()[b].name.into(),
            values: chunk[1..]
                .iter()
                .map(|&c| ratio(c, baseline))
                .collect(),
        });
    }
    append_averages(&mut rows);
    FigureData {
        title: title.into(),
        series: variants.iter().map(|&(l, _, _)| l.into()).collect(),
        rows,
    }
}

/// **Fig. 10** — wish jump/join binaries vs the predicated baselines, with
/// the real and a perfect confidence estimator.
#[deprecated(note = "run `Experiment::Fig10` through the Experiment catalog (or a typed SweepRequest via run_request) instead; this free-function entry point will be removed next release")]
#[must_use]
pub fn figure10(runner: &SweepRunner) -> FigureData {
    comparison_figure(
        runner,
        "Fig.10: performance of wish jump/join binaries (normalized exec time)",
        &runner.config().machine.clone(),
        &[
            ("BASE-DEF", BinaryVariant::BaseDef, false),
            ("BASE-MAX", BinaryVariant::BaseMax, false),
            ("wish-jj (real-conf)", BinaryVariant::WishJumpJoin, false),
            ("wish-jj (perf-conf)", BinaryVariant::WishJumpJoin, true),
        ],
    )
}

/// **Fig. 12** — adds wish loops.
#[deprecated(note = "run `Experiment::Fig12` through the Experiment catalog (or a typed SweepRequest via run_request) instead; this free-function entry point will be removed next release")]
#[must_use]
pub fn figure12(runner: &SweepRunner) -> FigureData {
    comparison_figure(
        runner,
        "Fig.12: performance of wish jump/join/loop binaries (normalized exec time)",
        &runner.config().machine.clone(),
        &[
            ("BASE-DEF", BinaryVariant::BaseDef, false),
            ("BASE-MAX", BinaryVariant::BaseMax, false),
            ("wish-jj (real-conf)", BinaryVariant::WishJumpJoin, false),
            ("wish-jjl (real-conf)", BinaryVariant::WishJumpJoinLoop, false),
            ("wish-jjl (perf-conf)", BinaryVariant::WishJumpJoinLoop, true),
        ],
    )
}

/// **Fig. 16** — the Fig. 12 comparison on a machine using the select-µop
/// mechanism instead of C-style conditional expressions (§5.3.3).
#[deprecated(note = "run `Experiment::Fig16` through the Experiment catalog (or a typed SweepRequest via run_request) instead; this free-function entry point will be removed next release")]
#[must_use]
pub fn figure16(runner: &SweepRunner) -> FigureData {
    let mut machine = runner.config().machine.clone();
    machine.pred_mechanism = wishbranch_uarch::PredMechanism::SelectUop;
    comparison_figure(
        runner,
        "Fig.16: wish branches on a select-µop machine (normalized exec time)",
        &machine,
        &[
            ("BASE-DEF", BinaryVariant::BaseDef, false),
            ("BASE-MAX", BinaryVariant::BaseMax, false),
            ("wish-jj (real-conf)", BinaryVariant::WishJumpJoin, false),
            ("wish-jjl (real-conf)", BinaryVariant::WishJumpJoinLoop, false),
            ("wish-jjl (perf-conf)", BinaryVariant::WishJumpJoinLoop, true),
        ],
    )
}

/// One Fig. 11 bar pair: dynamic wish jumps/joins per 1M retired µops,
/// classified by confidence estimate × prediction correctness.
#[derive(Clone, PartialEq, Debug)]
pub struct Fig11Row {
    /// Benchmark name.
    pub name: String,
    /// Low-confidence, would have been mispredicted (flush avoided).
    pub low_mispredicted: f64,
    /// Low-confidence, would have been predicted correctly (pure overhead).
    pub low_correct: f64,
    /// High-confidence, mispredicted (flush).
    pub high_mispredicted: f64,
    /// High-confidence, correct (overhead avoided).
    pub high_correct: f64,
}

/// **Fig. 11** — the confidence-estimate breakdown for wish jumps + joins
/// in the wish jump/join binary.
#[deprecated(note = "run `Experiment::Fig11` through the Experiment catalog (or a typed SweepRequest via run_request) instead; this free-function entry point will be removed next release")]
#[must_use]
pub fn figure11(runner: &SweepRunner) -> Vec<Fig11Row> {
    let ec = runner.config().clone();
    let jobs = (0..runner.benches().len())
        .map(|b| SweepJob::standard(b, BinaryVariant::WishJumpJoin, ec.train_input, &ec))
        .collect();
    runner
        .try_run(jobs)
        .into_iter()
        .enumerate()
        .map(|(b, r)| {
            let name: String = runner.benches()[b].name.into();
            match r {
                Ok(r) => {
                    let stats = r.outcome.sim.stats;
                    let j = stats.wish_jumps;
                    let o = stats.wish_joins;
                    Fig11Row {
                        name,
                        low_mispredicted: stats
                            .per_million_uops(j.low_mispredicted + o.low_mispredicted),
                        low_correct: stats.per_million_uops(j.low_correct + o.low_correct),
                        high_mispredicted: stats
                            .per_million_uops(j.high_mispredicted + o.high_mispredicted),
                        high_correct: stats.per_million_uops(j.high_correct + o.high_correct),
                    }
                }
                // A failed benchmark keeps its row — as an explicit gap.
                Err(_) => Fig11Row {
                    name,
                    low_mispredicted: f64::NAN,
                    low_correct: f64::NAN,
                    high_mispredicted: f64::NAN,
                    high_correct: f64::NAN,
                },
            }
        })
        .collect()
}

/// One Fig. 13 bar pair: dynamic wish loops per 1M retired µops, with the
/// low-confidence mispredictions split into early/late/no-exit (§3.2).
#[derive(Clone, PartialEq, Debug)]
pub struct Fig13Row {
    /// Benchmark name.
    pub name: String,
    /// Low-confidence, no-exit mispredictions (flush).
    pub low_no_exit: f64,
    /// Low-confidence, late-exit mispredictions (the winning case).
    pub low_late_exit: f64,
    /// Low-confidence, early-exit mispredictions (flush).
    pub low_early_exit: f64,
    /// Low-confidence, correctly predicted.
    pub low_correct: f64,
    /// High-confidence, mispredicted.
    pub high_mispredicted: f64,
    /// High-confidence, correct.
    pub high_correct: f64,
}

/// **Fig. 13** — the wish-loop breakdown in the wish jump/join/loop binary.
#[deprecated(note = "run `Experiment::Fig13` through the Experiment catalog (or a typed SweepRequest via run_request) instead; this free-function entry point will be removed next release")]
#[must_use]
pub fn figure13(runner: &SweepRunner) -> Vec<Fig13Row> {
    let ec = runner.config().clone();
    let jobs = (0..runner.benches().len())
        .map(|b| SweepJob::standard(b, BinaryVariant::WishJumpJoinLoop, ec.train_input, &ec))
        .collect();
    runner
        .try_run(jobs)
        .into_iter()
        .enumerate()
        .map(|(b, r)| {
            let name: String = runner.benches()[b].name.into();
            match r {
                Ok(r) => {
                    let stats = r.outcome.sim.stats;
                    let l = stats.wish_loops;
                    Fig13Row {
                        name,
                        low_no_exit: stats.per_million_uops(stats.loop_no_exits),
                        low_late_exit: stats.per_million_uops(stats.loop_late_exits),
                        low_early_exit: stats.per_million_uops(stats.loop_early_exits),
                        low_correct: stats.per_million_uops(l.low_correct),
                        high_mispredicted: stats.per_million_uops(l.high_mispredicted),
                        high_correct: stats.per_million_uops(l.high_correct),
                    }
                }
                // A failed benchmark keeps its row — as an explicit gap.
                Err(_) => Fig13Row {
                    name,
                    low_no_exit: f64::NAN,
                    low_late_exit: f64::NAN,
                    low_early_exit: f64::NAN,
                    low_correct: f64::NAN,
                    high_mispredicted: f64::NAN,
                    high_correct: f64::NAN,
                },
            }
        })
        .collect()
}

/// One point of a machine-parameter sweep (Figs. 14/15): average normalized
/// execution times at one parameter value.
#[derive(Clone, PartialEq, Debug)]
pub struct SweepRow {
    /// The swept parameter value (window entries or pipeline depth).
    pub param: u64,
    /// Series labels.
    pub series: Vec<String>,
    /// Average over all benchmarks.
    pub avg: Vec<f64>,
    /// Average excluding mcf.
    pub avg_nomcf: Vec<f64>,
}

/// Runs the 4-variant comparison at every `(param, machine)` point as one
/// batch, so all parameter values' jobs interleave across workers and the
/// per-variant binaries compile once for the whole sweep.
fn sweep(runner: &SweepRunner, machines: Vec<(u64, MachineConfig)>) -> Vec<SweepRow> {
    let variants: [(&str, BinaryVariant, bool); 4] = [
        ("BASE-DEF", BinaryVariant::BaseDef, false),
        ("BASE-MAX", BinaryVariant::BaseMax, false),
        ("wish-jjl (real-conf)", BinaryVariant::WishJumpJoinLoop, false),
        ("wish-jjl (perf-conf)", BinaryVariant::WishJumpJoinLoop, true),
    ];
    let ec = runner.config().clone();
    let input = ec.train_input;
    let nbench = runner.benches().len();

    let mut jobs = Vec::new();
    for (_, machine) in &machines {
        for b in 0..nbench {
            jobs.push(
                SweepJob::standard(b, BinaryVariant::NormalBranch, input, &ec)
                    .with_machine(machine.clone()),
            );
            for &(_, variant, perfect_conf) in &variants {
                let mut m = machine.clone();
                m.oracles.perfect_confidence = perfect_conf;
                jobs.push(SweepJob::standard(b, variant, input, &ec).with_machine(m));
            }
        }
    }
    let cycles = run_cycles(runner, jobs);

    let jobs_per_point = nbench * (1 + variants.len());
    machines
        .iter()
        .zip(cycles.chunks_exact(jobs_per_point))
        .map(|(&(param, _), point)| {
            let mut rows = Vec::new();
            for (b, chunk) in point.chunks_exact(1 + variants.len()).enumerate() {
                let baseline = chunk[0];
                rows.push(NormalizedRow {
                    name: runner.benches()[b].name.into(),
                    values: chunk[1..]
                        .iter()
                        .map(|&c| ratio(c, baseline))
                        .collect(),
                });
            }
            append_averages(&mut rows);
            let avg = rows
                .iter()
                .find(|r| r.name == "AVG")
                .expect("averages appended")
                .values
                .clone();
            let avg_nomcf = rows
                .iter()
                .find(|r| r.name == "AVGnomcf")
                .expect("averages appended")
                .values
                .clone();
            SweepRow {
                param,
                series: variants.iter().map(|&(l, _, _)| l.into()).collect(),
                avg,
                avg_nomcf,
            }
        })
        .collect()
}

/// **Fig. 14** — instruction-window sweep (128/256/512 entries).
#[deprecated(note = "run `Experiment::Fig14` through the Experiment catalog (or a typed SweepRequest via run_request) instead; this free-function entry point will be removed next release")]
#[must_use]
pub fn figure14(runner: &SweepRunner) -> Vec<SweepRow> {
    let ec = runner.config();
    let machines = [128usize, 256, 512]
        .into_iter()
        .map(|w| (w as u64, ec.machine.clone().with_window(w)))
        .collect();
    sweep(runner, machines)
}

/// **Fig. 15** — pipeline-depth sweep (10/20/30 stages) at a 256-entry
/// window, as in the paper.
#[deprecated(note = "run `Experiment::Fig15` through the Experiment catalog (or a typed SweepRequest via run_request) instead; this free-function entry point will be removed next release")]
#[must_use]
pub fn figure15(runner: &SweepRunner) -> Vec<SweepRow> {
    let ec = runner.config();
    let machines = [10u64, 20, 30]
        .into_iter()
        .map(|d| (d, ec.machine.clone().with_window(256).with_depth(d)))
        .collect();
    sweep(runner, machines)
}

/// **Extension (Fig. 14-style)** — memory-latency sensitivity with the
/// non-blocking hierarchy enabled (finite MSHRs, future-cycle fills,
/// store-to-load forwarding). Sweeps the minimum main-memory latency and
/// compares predicated code (`BASE-MAX`), wish branches and a
/// perfect-branch-prediction ceiling (`PERFECT-CBP`), each normalized to
/// the normal-branch binary at the same latency.
///
/// The mechanism that makes the sweep interesting: predicated code
/// serializes every guarded µop behind its predicate, and predicates are
/// routinely computed from loads — so when a predicate misses, the whole
/// hammock waits out the full (growing) memory latency, while branch-based
/// code predicts past it and keeps the window full of misses that overlap
/// in the finite MSHR files. Wish branches fall back to the branch in
/// high-confidence regions, so their advantage over always-predicated
/// `BASE-MAX` widens as memory latency grows (the
/// `figure14_mem_latency_wish_advantage_grows_with_latency` shape test
/// pins this).
#[deprecated(note = "run `Experiment::Fig14Mem` through the Experiment catalog (or a typed SweepRequest via run_request) instead; this free-function entry point will be removed next release")]
#[must_use]
pub fn figure14_mem_latency(runner: &SweepRunner) -> Vec<SweepRow> {
    let ec = runner.config().clone();
    let input = ec.train_input;
    let nbench = runner.benches().len();
    let series = ["BASE-MAX", "wish-jjl (real-conf)", "PERFECT-CBP"];

    let points: Vec<(u64, MachineConfig)> = [50u64, 100, 200, 400]
        .into_iter()
        .map(|lat| {
            let mut m = ec.machine.clone();
            // The non-blocking preset (I-MSHRs, instruction prefetch,
            // write buffer, data ports) minus the data-side stride
            // prefetcher: the experiment isolates how raw latency
            // punishes serialized predicate loads, and a stride engine
            // that streams them in would measure the prefetcher instead.
            // Only the swept memory latency varies per point.
            m.mem = wishbranch_mem::MemConfig::realistic_preset();
            m.mem.prefetch_entries = 0;
            m.mem.memory_latency = lat;
            (lat, m)
        })
        .collect();

    let mut jobs = Vec::new();
    for (_, machine) in &points {
        for b in 0..nbench {
            // Baseline and the two contenders share the machine; the
            // PERFECT-CBP ceiling is the normal-branch binary with the
            // branch-prediction oracle on.
            jobs.push(
                SweepJob::standard(b, BinaryVariant::NormalBranch, input, &ec)
                    .with_machine(machine.clone()),
            );
            jobs.push(
                SweepJob::standard(b, BinaryVariant::BaseMax, input, &ec)
                    .with_machine(machine.clone()),
            );
            jobs.push(
                SweepJob::standard(b, BinaryVariant::WishJumpJoinLoop, input, &ec)
                    .with_machine(machine.clone()),
            );
            let mut perfect = machine.clone();
            perfect.oracles.perfect_branch_prediction = true;
            jobs.push(
                SweepJob::standard(b, BinaryVariant::NormalBranch, input, &ec)
                    .with_machine(perfect),
            );
        }
    }
    let cycles = run_cycles(runner, jobs);

    let jobs_per_point = nbench * 4;
    points
        .iter()
        .zip(cycles.chunks_exact(jobs_per_point))
        .map(|(&(param, _), point)| {
            let mut rows = Vec::new();
            for (b, chunk) in point.chunks_exact(4).enumerate() {
                let baseline = chunk[0];
                rows.push(NormalizedRow {
                    name: runner.benches()[b].name.into(),
                    values: chunk[1..].iter().map(|&c| ratio(c, baseline)).collect(),
                });
            }
            append_averages(&mut rows);
            let avg = rows
                .iter()
                .find(|r| r.name == "AVG")
                .expect("averages appended")
                .values
                .clone();
            let avg_nomcf = rows
                .iter()
                .find(|r| r.name == "AVGnomcf")
                .expect("averages appended")
                .values
                .clone();
            SweepRow {
                param,
                series: series.iter().map(|&l| l.into()).collect(),
                avg,
                avg_nomcf,
            }
        })
        .collect()
}

/// **Extension** — the §3.6/§7 input-dependence-aware compiler
/// ([`wishbranch_compiler::compile_adaptive`]) vs the paper's wish
/// jump/join/loop binary, evaluated across *all three* input sets. The
/// adaptive compiler trains on inputs A and C; the fixed heuristics train
/// on the experiment's training input as usual.
#[deprecated(note = "run `Experiment::Adaptive` through the Experiment catalog (or a typed SweepRequest via run_request) instead; this free-function entry point will be removed next release")]
#[must_use]
pub fn figure_adaptive(runner: &SweepRunner) -> FigureData {
    let ec = runner.config().clone();
    let adaptive_train = TrainSpec::Multi(vec![InputSet::A, InputSet::C]);
    let mut jobs = Vec::new();
    for b in 0..runner.benches().len() {
        for input in InputSet::ALL {
            jobs.push(SweepJob::standard(b, BinaryVariant::NormalBranch, input, &ec));
            jobs.push(SweepJob::standard(b, BinaryVariant::WishJumpJoinLoop, input, &ec));
            jobs.push(
                SweepJob::standard(b, BinaryVariant::WishAdaptive, input, &ec)
                    .with_train(adaptive_train.clone()),
            );
        }
    }
    let cycles = run_cycles(runner, jobs);
    let mut rows = Vec::new();
    for (b, per_bench) in cycles.chunks_exact(3 * InputSet::ALL.len()).enumerate() {
        let mut values = Vec::new();
        for triple in per_bench.chunks_exact(3) {
            values.push(ratio(triple[1], triple[0]));
            values.push(ratio(triple[2], triple[0]));
        }
        rows.push(NormalizedRow {
            name: runner.benches()[b].name.into(),
            values,
        });
    }
    append_averages(&mut rows);
    FigureData {
        title: "Extension: input-dependence-aware compiler (wish-jjl vs wish-adaptive, per input)"
            .into(),
        series: InputSet::ALL
            .iter()
            .flat_map(|i| {
                [
                    format!("wish-jjl @{}", i.label()),
                    format!("adaptive @{}", i.label()),
                ]
            })
            .collect(),
        rows,
    }
}

/// **Extension** — dynamic hammock predication (Klauser et al., §6.1 of the
/// paper) as a hardware-only baseline: the *normal-branch* binary on a DHP
/// machine, against the wish jump/join/loop binary on the wish machine.
/// The paper argues wish branches beat DHP because the compiler converts
/// complex regions and loops that fetch-time hardware cannot; the wish rows
/// should therefore win wherever loops or large regions matter.
#[deprecated(note = "run `Experiment::Dhp` through the Experiment catalog (or a typed SweepRequest via run_request) instead; this free-function entry point will be removed next release")]
#[must_use]
pub fn figure_dhp(runner: &SweepRunner) -> FigureData {
    let ec = runner.config().clone();
    let input = ec.train_input;
    let mut dhp_machine = ec.machine.clone();
    dhp_machine.dhp_enabled = true;

    let mut jobs = Vec::new();
    for b in 0..runner.benches().len() {
        jobs.push(SweepJob::standard(b, BinaryVariant::NormalBranch, input, &ec));
        jobs.push(
            SweepJob::standard(b, BinaryVariant::NormalBranch, input, &ec)
                .with_machine(dhp_machine.clone()),
        );
        jobs.push(SweepJob::standard(b, BinaryVariant::WishJumpJoinLoop, input, &ec));
    }
    let results = runner.try_run(jobs);
    let mut rows = Vec::new();
    for (b, chunk) in results.chunks_exact(3).enumerate() {
        let values = match (&chunk[0], &chunk[1], &chunk[2]) {
            (Ok(normal), Ok(dhp), Ok(wish)) => {
                let base = normal.outcome.sim.stats.cycles as f64;
                let dhp_stats = &dhp.outcome.sim.stats;
                vec![
                    dhp_stats.cycles as f64 / base,
                    wish.outcome.sim.stats.cycles as f64 / base,
                    dhp_stats.dhp_predications as f64,
                ]
            }
            // A failed job gaps the whole benchmark row.
            _ => vec![f64::NAN; 3],
        };
        rows.push(NormalizedRow {
            name: runner.benches()[b].name.into(),
            values,
        });
    }
    append_averages(&mut rows);
    FigureData {
        title: "Extension: dynamic hammock predication (normal binary + DHP HW) vs wish branches"
            .into(),
        series: vec![
            "DHP (exec time)".into(),
            "wish-jjl (exec time)".into(),
            "DHP predications (count)".into(),
        ],
        rows,
    }
}

/// **Extension** — predicate prediction (Chuang & Calder, §6.1 of the
/// paper) as a baseline: the BASE-MAX binary with every predicate value
/// predicted (and verified) in hardware, vs wish branches. Predicate
/// prediction removes predication's execution delay but still fetches the
/// useless instructions and flushes on hard predicates — the two costs
/// wish branches avoid.
#[deprecated(note = "run `Experiment::PredPred` through the Experiment catalog (or a typed SweepRequest via run_request) instead; this free-function entry point will be removed next release")]
#[must_use]
pub fn figure_predicate_prediction(runner: &SweepRunner) -> FigureData {
    let ec = runner.config().clone();
    let input = ec.train_input;
    let mut pp_machine = ec.machine.clone();
    pp_machine.predicate_prediction = true;

    let mut jobs = Vec::new();
    for b in 0..runner.benches().len() {
        jobs.push(SweepJob::standard(b, BinaryVariant::NormalBranch, input, &ec));
        jobs.push(SweepJob::standard(b, BinaryVariant::BaseMax, input, &ec));
        jobs.push(
            SweepJob::standard(b, BinaryVariant::BaseMax, input, &ec)
                .with_machine(pp_machine.clone()),
        );
        jobs.push(SweepJob::standard(b, BinaryVariant::WishJumpJoinLoop, input, &ec));
    }
    let cycles = run_cycles(runner, jobs);
    let mut rows = Vec::new();
    for (b, chunk) in cycles.chunks_exact(4).enumerate() {
        rows.push(NormalizedRow {
            name: runner.benches()[b].name.into(),
            values: vec![
                ratio(chunk[1], chunk[0]),
                ratio(chunk[2], chunk[0]),
                ratio(chunk[3], chunk[0]),
            ],
        });
    }
    append_averages(&mut rows);
    FigureData {
        title: "Extension: predicate prediction (BASE-MAX + pred-pred HW) vs wish branches".into(),
        series: vec![
            "BASE-MAX".into(),
            "BASE-MAX + pred-pred".into(),
            "wish-jjl".into(),
        ],
        rows,
    }
}
