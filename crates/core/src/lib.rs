//! # wishbranch-core
//!
//! The top-level experiment API of the wish-branches reproduction: profile
//! a workload, compile it into any of the paper's five binary variants,
//! simulate it on the configured machine, and regenerate every table and
//! figure of the paper's evaluation (§5).
//!
//! The crate ties together:
//!
//! * [`wishbranch_workloads`] — the nine SPEC-INT-2000-like benchmarks with
//!   input sets A/B/C;
//! * [`wishbranch_compiler`] — the Table 3 binary variants;
//! * [`wishbranch_uarch`] — the Table 2 out-of-order machine with
//!   wish-branch hardware.
//!
//! Every simulation is verified on the fly: the cycle simulator's retired
//! memory image must match the functional reference machine's, so a figure
//! can never silently come from a architecturally-broken run.
//!
//! # The experiment API
//!
//! All experiments run through one [`SweepRunner`], which owns the
//! memoized profile/compile caches and the worker pool. Build one, then
//! hand it to any figure/table/ablation function — or go through the
//! [`Experiment`] catalog, which wraps every paper experiment behind a
//! stable id and returns a serializable [`Report`]:
//!
//! ```
//! use wishbranch_core::{Experiment, ExperimentConfig, SweepRunner};
//!
//! let runner = SweepRunner::new(&ExperimentConfig::quick(60)); // tiny doctest scale
//! let report = Experiment::Fig10.run(&runner);
//! assert_eq!(report.id, "fig10");
//! assert!(report.to_json().starts_with("{\"schema\":\"wishbranch.report/v1\""));
//! ```
//!
//! Single-binary runs (no runner needed) go through [`run_binary`], and
//! pipeview traces through [`trace_binary`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ablation;
mod catalog;
mod engine;
mod error;
mod experiment;
mod figures;
pub mod journal;
pub mod minijson;
mod render;
mod report;
mod request;
mod serve;
mod store;
mod tables;
mod validate;

#[allow(deprecated)]
pub use ablation::{
    confidence_threshold_sweep, loop_predictor_comparison, mshr_sweep, wish_threshold_sweep,
    AblationPoint, LoopPredictorComparison,
};
pub use catalog::Experiment;
pub use engine::{
    default_workers, JobObserver, JobPhases, JobResult, SweepJob, SweepRunner, SweepSummary,
    TrainSpec, WORKERS_ENV,
};
pub use error::{ChaosKind, ChaosPlan, FaultKind, FaultPlan, JobError, JobFailure};
pub use journal::JournalError;
pub use experiment::{
    compile_adaptive_variant, compile_variant, profile_on, run_binary, simulate,
    simulate_lockstep, simulate_unverified, trace_binary, verify_retired_state, ExperimentConfig,
    RunOutcome, DEFAULT_STEP_BUDGET,
};
#[allow(deprecated)]
pub use figures::{
    figure1, figure10, figure11, figure12, figure13, figure14, figure14_mem_latency, figure15,
    figure16, figure2,
    figure_adaptive, figure_dhp, figure_predicate_prediction, Fig11Row, Fig13Row, Fig1Row,
    Fig2Row, FigureData, NormalizedRow, SweepRow,
};
pub use render::{
    bar_chart, failure_table, fig11_table, fig13_table, sweep_summary_table, sweep_table,
    table4_table, table5_table, Table,
};
pub use report::{
    json_escape, summary_json, summary_json_with_failures, throughput_json, Report, ReportData,
};
pub use request::{
    parse_input_set, run_request, Budgets, RequestError, SweepRequest, SweepResponse, BATCH_ENV,
    FAULT_PLAN_ENV, REQUEST_SCHEMA,
};
pub use serve::{
    client_stream, client_stream_resilient, respawn_backoff, serve_forever, worker_main,
    ResilientStream, ResponseLine, ResponseStream, ServeConfig, Server, DEFAULT_RECONNECTS,
    RESPONSE_SCHEMA, WORKER_SPEC_SCHEMA,
};
pub use store::ArtifactStore;
#[allow(deprecated)]
pub use tables::{table4, table5, Table4Row, Table5Row};
pub use validate::{
    fuzz_lockstep, fuzz_lockstep_hierarchy, shrink_case, validate_suite,
    validate_suite_hierarchy, FuzzCase, FuzzOutcome, FuzzReport, ValidateReport,
};

/// Everything most experiment drivers need, in one import:
/// `use wishbranch_core::prelude::*;`.
pub mod prelude {
    pub use crate::catalog::Experiment;
    pub use crate::engine::{SweepJob, SweepRunner, SweepSummary};
    pub use crate::error::{FaultKind, FaultPlan, JobError, JobFailure};
    pub use crate::experiment::{run_binary, trace_binary, ExperimentConfig};
    pub use crate::report::{summary_json, Report, ReportData};
    pub use crate::request::{run_request, SweepRequest, SweepResponse};
    pub use crate::store::ArtifactStore;
    pub use wishbranch_compiler::BinaryVariant;
    pub use wishbranch_workloads::{suite, InputSet};
}
