//! # wishbranch-core
//!
//! The top-level experiment API of the wish-branches reproduction: profile
//! a workload, compile it into any of the paper's five binary variants,
//! simulate it on the configured machine, and regenerate every table and
//! figure of the paper's evaluation (§5).
//!
//! The crate ties together:
//!
//! * [`wishbranch_workloads`] — the nine SPEC-INT-2000-like benchmarks with
//!   input sets A/B/C;
//! * [`wishbranch_compiler`] — the Table 3 binary variants;
//! * [`wishbranch_uarch`] — the Table 2 out-of-order machine with
//!   wish-branch hardware.
//!
//! Every simulation is verified on the fly: the cycle simulator's retired
//! memory image must match the functional reference machine's, so a figure
//! can never silently come from a architecturally-broken run.
//!
//! # Example
//!
//! ```
//! use wishbranch_core::{ExperimentConfig, run_binary};
//! use wishbranch_compiler::BinaryVariant;
//! use wishbranch_workloads::{gzip, InputSet};
//!
//! let ec = ExperimentConfig::quick(60); // tiny scale for doctests
//! let bench = gzip(60);
//! let normal = run_binary(&bench, BinaryVariant::NormalBranch, InputSet::B, &ec);
//! let wish = run_binary(&bench, BinaryVariant::WishJumpJoinLoop, InputSet::B, &ec);
//! assert!(normal.sim.stats.cycles > 0 && wish.sim.stats.cycles > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ablation;
mod engine;
mod experiment;
mod figures;
mod render;
mod tables;

pub use ablation::{
    confidence_threshold_sweep, confidence_threshold_sweep_on, loop_predictor_comparison,
    loop_predictor_comparison_on, mshr_sweep, mshr_sweep_on, wish_threshold_sweep,
    wish_threshold_sweep_on,
    AblationPoint,
    LoopPredictorComparison,
};
pub use engine::{
    default_workers, JobResult, SweepJob, SweepRunner, SweepSummary, TrainSpec, WORKERS_ENV,
};
pub use experiment::{
    compile_adaptive_variant, compile_variant, profile_on, run_binary, simulate,
    ExperimentConfig, RunOutcome,
};
pub use figures::{
    figure1, figure10, figure11, figure12, figure13, figure14, figure15, figure16, figure2,
    figure_adaptive, figure_dhp, figure_predicate_prediction,
    figure1_on, figure10_on, figure11_on, figure12_on, figure13_on, figure14_on, figure15_on,
    figure16_on, figure2_on, figure_adaptive_on, figure_dhp_on, figure_predicate_prediction_on,
    Fig11Row, Fig13Row, Fig1Row, Fig2Row, FigureData, NormalizedRow, SweepRow,
};
pub use render::{
    bar_chart, fig11_table, fig13_table, sweep_summary_table, sweep_table, table4_table,
    table5_table, Table,
};
pub use tables::{table4, table4_on, table5, table5_on, Table4Row, Table5Row};
