//! Ablation studies on the design choices DESIGN.md calls out: confidence
//! estimator threshold, and the compiler's wish-conversion thresholds
//! (§4.2.2's untuned N and L).

use crate::experiment::{compile_variant, simulate, ExperimentConfig};
use wishbranch_compiler::BinaryVariant;
use wishbranch_workloads::suite;

/// One ablation measurement: a parameter value and the resulting average
/// normalized execution time of the wish jump/join/loop binary.
#[derive(Clone, PartialEq, Debug)]
pub struct AblationPoint {
    /// The swept parameter value.
    pub param: u64,
    /// Average wish-jjl execution time normalized to the normal binary.
    pub avg_normalized: f64,
}

fn average_wjl_normalized(ec: &ExperimentConfig) -> f64 {
    let input = ec.train_input;
    let mut sum = 0.0;
    let mut n = 0usize;
    for bench in suite(ec.scale) {
        let normal = compile_variant(&bench, BinaryVariant::NormalBranch, ec);
        let base = simulate(&normal.program, &bench, input, &ec.machine).stats.cycles;
        let wjl = compile_variant(&bench, BinaryVariant::WishJumpJoinLoop, ec);
        let c = simulate(&wjl.program, &bench, input, &ec.machine).stats.cycles;
        sum += c as f64 / base as f64;
        n += 1;
    }
    sum / n as f64
}

/// Sweeps the JRS confidence threshold (§3.5.5: "an accurate confidence
/// estimator is essential"). Low thresholds trust the predictor too much
/// (high-confidence mispredictions flush); high thresholds predicate too
/// much (overhead without benefit).
#[must_use]
pub fn confidence_threshold_sweep(ec: &ExperimentConfig, thresholds: &[u8]) -> Vec<AblationPoint> {
    thresholds
        .iter()
        .map(|&th| {
            let mut ec = ec.clone();
            ec.machine.jrs.threshold = th;
            AblationPoint {
                param: u64::from(th),
                avg_normalized: average_wjl_normalized(&ec),
            }
        })
        .collect()
}

/// Sweeps the number of MSHRs (outstanding memory misses): bounding MLP
/// magnifies predication's serialization pathologies (mcf) and shrinks the
/// normal binary's ability to hide flush latency. `0` = unlimited.
#[must_use]
pub fn mshr_sweep(ec: &ExperimentConfig, mshrs: &[usize]) -> Vec<AblationPoint> {
    mshrs
        .iter()
        .map(|&m| {
            let mut ec = ec.clone();
            ec.machine.mem.max_outstanding_misses = m;
            AblationPoint {
                param: m as u64,
                avg_normalized: average_wjl_normalized(&ec),
            }
        })
        .collect()
}

/// Sweeps §4.2.2's N: the fall-through size above which a convertible
/// region becomes a wish jump/join instead of plain predicated code. The
/// paper uses N = 5 without tuning.
#[must_use]
pub fn wish_threshold_sweep(ec: &ExperimentConfig, ns: &[usize]) -> Vec<AblationPoint> {
    ns.iter()
        .map(|&n| {
            let mut ec = ec.clone();
            ec.compile.wish_jump_threshold = n;
            AblationPoint {
                param: n as u64,
                avg_normalized: average_wjl_normalized(&ec),
            }
        })
        .collect()
}

/// Compares wish-loop outcome classes with and without overestimation bias
/// in the trip predictor — the paper's §3.2 suggestion that a specialized
/// wish-loop predictor "can be biased to overestimate the iteration count
/// … to make the late-exit case more common than the early-exit case".
#[derive(Clone, PartialEq, Debug)]
pub struct LoopPredictorComparison {
    /// Early exits (flushes) without the specialized predictor.
    pub early_unbiased: u64,
    /// Late exits (no flush) without the specialized predictor.
    pub late_unbiased: u64,
    /// Early exits with the biased trip predictor.
    pub early_biased: u64,
    /// Late exits with the biased trip predictor.
    pub late_biased: u64,
    /// Total cycles without the specialized predictor.
    pub cycles_unbiased: u64,
    /// Total cycles with the biased trip predictor.
    pub cycles_biased: u64,
}

/// Runs the loop-heavy benchmarks with and without a biased specialized
/// wish-loop predictor and aggregates the early/late exit classes.
#[must_use]
pub fn loop_predictor_comparison(ec: &ExperimentConfig, bias: u32) -> LoopPredictorComparison {
    let input = ec.train_input;
    let mut out = LoopPredictorComparison {
        early_unbiased: 0,
        late_unbiased: 0,
        early_biased: 0,
        late_biased: 0,
        cycles_unbiased: 0,
        cycles_biased: 0,
    };
    for bench in suite(ec.scale) {
        let wjl = compile_variant(&bench, BinaryVariant::WishJumpJoinLoop, ec);
        let plain = simulate(&wjl.program, &bench, input, &ec.machine).stats;
        let mut machine = ec.machine.clone();
        machine.wish_loop_predictor = Some(wishbranch_bpred::LoopPredConfig {
            bias,
            ..wishbranch_bpred::LoopPredConfig::default()
        });
        let biased = simulate(&wjl.program, &bench, input, &machine).stats;
        out.early_unbiased += plain.loop_early_exits;
        out.late_unbiased += plain.loop_late_exits;
        out.early_biased += biased.loop_early_exits;
        out.late_biased += biased.loop_late_exits;
        out.cycles_unbiased += plain.cycles;
        out.cycles_biased += biased.cycles;
    }
    out
}
