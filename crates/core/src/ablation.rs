//! Ablation studies on the design choices DESIGN.md calls out: confidence
//! estimator threshold, and the compiler's wish-conversion thresholds
//! (§4.2.2's untuned N and L).
//!
//! Each sweep batches *every* parameter value's jobs into one
//! [`SweepRunner::run`] call, so the shared binaries (machine-parameter
//! sweeps reuse the same compiled binaries at every point) come out of the
//! cache and all points execute concurrently.

use crate::engine::{SweepJob, SweepRunner};
use wishbranch_compiler::{BinaryVariant, CompileOptions};
use wishbranch_uarch::MachineConfig;

/// One ablation measurement: a parameter value and the resulting average
/// normalized execution time of the wish jump/join/loop binary.
#[derive(Clone, PartialEq, Debug)]
pub struct AblationPoint {
    /// The swept parameter value.
    pub param: u64,
    /// Average wish-jjl execution time normalized to the normal binary.
    pub avg_normalized: f64,
}

/// Runs `(normal, wish-jjl)` over the whole suite at every configuration
/// point in one batch and averages the normalized execution times.
fn wjl_points(
    runner: &SweepRunner,
    points: Vec<(u64, MachineConfig, CompileOptions)>,
) -> Vec<AblationPoint> {
    let ec = runner.config().clone();
    let input = ec.train_input;
    let nbench = runner.benches().len();
    let mut jobs = Vec::new();
    for (_, machine, compile) in &points {
        for b in 0..nbench {
            for variant in [BinaryVariant::NormalBranch, BinaryVariant::WishJumpJoinLoop] {
                jobs.push(
                    SweepJob::standard(b, variant, input, &ec)
                        .with_machine(machine.clone())
                        .with_compile(compile.clone()),
                );
            }
        }
    }
    let cycles: Vec<Option<u64>> = runner
        .try_run(jobs)
        .into_iter()
        .map(|r| r.ok().map(|r| r.outcome.sim.stats.cycles))
        .collect();
    points
        .iter()
        .zip(cycles.chunks_exact(2 * nbench))
        .map(|(&(param, _, _), chunk)| {
            // Average over the benchmarks whose (normal, wish) pair both
            // completed; NaN (an explicit gap) if every pair failed.
            let mut sum = 0.0;
            let mut n = 0usize;
            for pair in chunk.chunks_exact(2) {
                if let (Some(normal), Some(wish)) = (pair[0], pair[1]) {
                    sum += wish as f64 / normal as f64;
                    n += 1;
                }
            }
            AblationPoint {
                param,
                avg_normalized: if n > 0 { sum / n as f64 } else { f64::NAN },
            }
        })
        .collect()
}

/// Sweeps the JRS confidence threshold (§3.5.5: "an accurate confidence
/// estimator is essential"). Low thresholds trust the predictor too much
/// (high-confidence mispredictions flush); high thresholds predicate too
/// much (overhead without benefit).
#[deprecated(note = "run `Experiment::AblConfidence` through the Experiment catalog (or a typed SweepRequest via run_request) instead; this free-function entry point will be removed next release")]
#[must_use]
pub fn confidence_threshold_sweep(
    runner: &SweepRunner,
    thresholds: &[u8],
) -> Vec<AblationPoint> {
    let ec = runner.config();
    let points = thresholds
        .iter()
        .map(|&th| {
            let mut machine = ec.machine.clone();
            machine.jrs.threshold = th;
            (u64::from(th), machine, ec.compile.clone())
        })
        .collect();
    wjl_points(runner, points)
}

/// Sweeps the number of MSHRs (outstanding memory misses): bounding MLP
/// magnifies predication's serialization pathologies (mcf) and shrinks the
/// normal binary's ability to hide flush latency. `0` = unlimited.
#[deprecated(note = "run `Experiment::AblMshr` through the Experiment catalog (or a typed SweepRequest via run_request) instead; this free-function entry point will be removed next release")]
#[must_use]
pub fn mshr_sweep(runner: &SweepRunner, mshrs: &[usize]) -> Vec<AblationPoint> {
    let ec = runner.config();
    let points = mshrs
        .iter()
        .map(|&m| {
            let mut machine = ec.machine.clone();
            machine.mem.max_outstanding_misses = m;
            (m as u64, machine, ec.compile.clone())
        })
        .collect();
    wjl_points(runner, points)
}

/// Sweeps §4.2.2's N: the fall-through size above which a convertible
/// region becomes a wish jump/join instead of plain predicated code. The
/// paper uses N = 5 without tuning.
/// Each N is a distinct compile-cache key, so the sweep deliberately
/// compiles fresh binaries per point (the engine's cache keys on the full
/// compile options).
#[deprecated(note = "run `Experiment::AblThresholds` through the Experiment catalog (or a typed SweepRequest via run_request) instead; this free-function entry point will be removed next release")]
#[must_use]
pub fn wish_threshold_sweep(runner: &SweepRunner, ns: &[usize]) -> Vec<AblationPoint> {
    let ec = runner.config();
    let points = ns
        .iter()
        .map(|&n| {
            let mut compile = ec.compile.clone();
            compile.wish_jump_threshold = n;
            (n as u64, ec.machine.clone(), compile)
        })
        .collect();
    wjl_points(runner, points)
}

/// Compares wish-loop outcome classes with and without overestimation bias
/// in the trip predictor — the paper's §3.2 suggestion that a specialized
/// wish-loop predictor "can be biased to overestimate the iteration count
/// … to make the late-exit case more common than the early-exit case".
#[derive(Clone, PartialEq, Debug)]
pub struct LoopPredictorComparison {
    /// Early exits (flushes) without the specialized predictor.
    pub early_unbiased: u64,
    /// Late exits (no flush) without the specialized predictor.
    pub late_unbiased: u64,
    /// Early exits with the biased trip predictor.
    pub early_biased: u64,
    /// Late exits with the biased trip predictor.
    pub late_biased: u64,
    /// Total cycles without the specialized predictor.
    pub cycles_unbiased: u64,
    /// Total cycles with the biased trip predictor.
    pub cycles_biased: u64,
}

/// Runs the loop-heavy benchmarks with and without a biased specialized
/// wish-loop predictor and aggregates the early/late exit classes.
#[must_use]
pub fn loop_predictor_comparison(runner: &SweepRunner, bias: u32) -> LoopPredictorComparison {
    let ec = runner.config().clone();
    let input = ec.train_input;
    let mut biased_machine = ec.machine.clone();
    biased_machine.wish_loop_predictor = Some(wishbranch_bpred::LoopPredConfig {
        bias,
        ..wishbranch_bpred::LoopPredConfig::default()
    });
    let mut jobs = Vec::new();
    for b in 0..runner.benches().len() {
        jobs.push(SweepJob::standard(b, BinaryVariant::WishJumpJoinLoop, input, &ec));
        jobs.push(
            SweepJob::standard(b, BinaryVariant::WishJumpJoinLoop, input, &ec)
                .with_machine(biased_machine.clone()),
        );
    }
    let results = runner.try_run(jobs);
    let mut out = LoopPredictorComparison {
        early_unbiased: 0,
        late_unbiased: 0,
        early_biased: 0,
        late_biased: 0,
        cycles_unbiased: 0,
        cycles_biased: 0,
    };
    for pair in results.chunks_exact(2) {
        // A benchmark with a failed half is skipped: the comparison is
        // only meaningful when both machines ran the same work.
        let (plain, biased) = match (&pair[0], &pair[1]) {
            (Ok(p), Ok(b)) => (&p.outcome.sim.stats, &b.outcome.sim.stats),
            _ => continue,
        };
        out.early_unbiased += plain.loop_early_exits;
        out.late_unbiased += plain.loop_late_exits;
        out.early_biased += biased.loop_early_exits;
        out.late_biased += biased.loop_late_exits;
        out.cycles_unbiased += plain.cycles;
        out.cycles_biased += biased.cycles;
    }
    out
}
