//! Plain-text rendering of figures and tables for the bench harness.

use crate::engine::SweepSummary;
use crate::error::JobFailure;
use crate::figures::{Fig11Row, Fig13Row, FigureData, SweepRow};
use crate::tables::{Table4Row, Table5Row};
use std::fmt;

/// A generic fixed-width text table.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Table {
    /// Optional title printed above the table.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Row cells (first column is usually the benchmark name).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Builds a table with the given title and headers.
    #[must_use]
    pub fn new(title: impl Into<String>, headers: Vec<String>) -> Table {
        Table {
            title: title.into(),
            headers,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn push_row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i >= widths.len() {
                    widths.push(cell.len());
                } else {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        if !self.title.is_empty() {
            writeln!(f, "{}", self.title)?;
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i == 0 {
                    line.push_str(&format!("{cell:<width$}", width = widths[i]));
                } else {
                    line.push_str(&format!("  {cell:>width$}", width = widths[i]));
                }
            }
            writeln!(f, "{line}")
        };
        write_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

// Non-finite values are failed cells; they render as an explicit "-" gap.
fn f2(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "-".to_string()
    }
}

fn f1(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.1}")
    } else {
        "-".to_string()
    }
}

impl From<&FigureData> for Table {
    fn from(fig: &FigureData) -> Table {
        let mut headers = vec!["benchmark".to_string()];
        headers.extend(fig.series.iter().cloned());
        let mut t = Table::new(fig.title.clone(), headers);
        for row in &fig.rows {
            let mut cells = vec![row.name.clone()];
            cells.extend(row.values.iter().map(|&v| f2(v)));
            t.push_row(cells);
        }
        t
    }
}

/// Renders Fig. 11 rows (counts per 1M retired µops).
#[must_use]
pub fn fig11_table(rows: &[Fig11Row]) -> Table {
    let mut t = Table::new(
        "Fig.11: dynamic wish jumps/joins per 1M retired µops by class",
        ["benchmark", "low-conf (mispred)", "low-conf (correct)", "high-conf (mispred)", "high-conf (correct)"]
            .map(String::from)
            .to_vec(),
    );
    for r in rows {
        t.push_row(vec![
            r.name.clone(),
            f1(r.low_mispredicted),
            f1(r.low_correct),
            f1(r.high_mispredicted),
            f1(r.high_correct),
        ]);
    }
    t
}

/// Renders Fig. 13 rows.
#[must_use]
pub fn fig13_table(rows: &[Fig13Row]) -> Table {
    let mut t = Table::new(
        "Fig.13: dynamic wish loops per 1M retired µops by class",
        ["benchmark", "no-exit", "late-exit", "early-exit", "low-conf correct", "high mispred", "high correct"]
            .map(String::from)
            .to_vec(),
    );
    for r in rows {
        t.push_row(vec![
            r.name.clone(),
            f1(r.low_no_exit),
            f1(r.low_late_exit),
            f1(r.low_early_exit),
            f1(r.low_correct),
            f1(r.high_mispredicted),
            f1(r.high_correct),
        ]);
    }
    t
}

/// Renders a Fig. 14/15 sweep.
#[must_use]
pub fn sweep_table(title: &str, param_name: &str, rows: &[SweepRow]) -> Table {
    let mut headers = vec![param_name.to_string()];
    if let Some(first) = rows.first() {
        for s in &first.series {
            headers.push(format!("{s} AVG"));
        }
        for s in &first.series {
            headers.push(format!("{s} AVGnomcf"));
        }
    }
    let mut t = Table::new(title, headers);
    for r in rows {
        let mut cells = vec![r.param.to_string()];
        cells.extend(r.avg.iter().map(|&v| f2(v)));
        cells.extend(r.avg_nomcf.iter().map(|&v| f2(v)));
        t.push_row(cells);
    }
    t
}

/// Renders Table 4.
#[must_use]
pub fn table4_table(rows: &[Table4Row]) -> Table {
    let mut t = Table::new(
        "Table 4: simulated benchmarks",
        ["benchmark", "dyn µops", "static br", "dyn br", "misp/Kµop", "µPC", "static wish (%loop)", "dyn wish (%loop)"]
            .map(String::from)
            .to_vec(),
    );
    for r in rows {
        t.push_row(vec![
            r.name.clone(),
            r.dynamic_uops.to_string(),
            r.static_branches.to_string(),
            r.dynamic_branches.to_string(),
            f1(r.mispredicts_per_kuop),
            f2(r.upc),
            format!("{} ({:.0}%)", r.static_wish, r.static_wish_loop_pct),
            format!("{} ({:.0}%)", r.dynamic_wish, r.dynamic_wish_loop_pct),
        ]);
    }
    t
}

/// Renders Table 5.
#[must_use]
pub fn table5_table(rows: &[Table5Row]) -> Table {
    let mut t = Table::new(
        "Table 5: exec-time reduction of wish-jjl binary over best binaries",
        ["benchmark", "vs normal %", "vs best predicated %", "(which)", "vs best non-wish %", "(which)"]
            .map(String::from)
            .to_vec(),
    );
    for r in rows {
        t.push_row(vec![
            r.name.clone(),
            f1(r.vs_normal_pct),
            f1(r.vs_best_predicated_pct),
            r.best_predicated.to_string(),
            f1(r.vs_best_pct),
            r.best.to_string(),
        ]);
    }
    t
}

/// Renders a [`SweepSummary`]: job counts, cache effectiveness, and the
/// serial-equivalent vs wall-clock time (their ratio is the parallel
/// speedup the worker pool achieved).
#[must_use]
pub fn sweep_summary_table(summary: &SweepSummary) -> Table {
    let mut t = Table::new(
        "Sweep summary",
        ["metric", "value"].map(String::from).to_vec(),
    );
    t.push_row(vec!["jobs".into(), summary.jobs.to_string()]);
    t.push_row(vec!["workers".into(), summary.workers.to_string()]);
    t.push_row(vec!["failed".into(), summary.failed.to_string()]);
    t.push_row(vec!["retries".into(), summary.retries.to_string()]);
    t.push_row(vec![
        "journal hits".into(),
        summary.journal_hits.to_string(),
    ]);
    t.push_row(vec![
        "profile cache".into(),
        format!(
            "{} hits / {} misses",
            summary.profile_hits, summary.profile_misses
        ),
    ]);
    t.push_row(vec![
        "compile cache".into(),
        format!(
            "{} hits / {} misses ({:.0}% hit rate)",
            summary.compile_hits,
            summary.compile_misses,
            summary.compile_hit_rate() * 100.0
        ),
    ]);
    t.push_row(vec![
        "job time (serial equivalent)".into(),
        format!("{:.2}s", summary.job_time.as_secs_f64()),
    ]);
    t.push_row(vec![
        "wall time".into(),
        format!("{:.2}s", summary.wall_time.as_secs_f64()),
    ]);
    t.push_row(vec![
        "parallel speedup".into(),
        format!("{:.2}x", summary.parallel_speedup()),
    ]);
    t.push_row(vec![
        "phase: profile".into(),
        format!("{:.2}s", summary.profile_time.as_secs_f64()),
    ]);
    t.push_row(vec![
        "phase: compile".into(),
        format!("{:.2}s", summary.compile_time.as_secs_f64()),
    ]);
    t.push_row(vec![
        "phase: simulate".into(),
        format!("{:.2}s", summary.simulate_time.as_secs_f64()),
    ]);
    t.push_row(vec![
        "phase: verify".into(),
        format!("{:.2}s", summary.verify_time.as_secs_f64()),
    ]);
    t.push_row(vec![
        "sim throughput (cycles/s)".into(),
        format!("{:.0}", summary.cycles_per_sec()),
    ]);
    t.push_row(vec![
        "sim throughput (uops/s)".into(),
        format!("{:.0}", summary.uops_per_sec()),
    ]);
    t
}

/// Renders the failure table: one row per [`JobFailure`], in the order
/// they were recorded (see [`SweepRunner::failures`]).
///
/// [`SweepRunner::failures`]: crate::SweepRunner::failures
#[must_use]
pub fn failure_table(failures: &[JobFailure]) -> Table {
    let mut t = Table::new(
        "Failed jobs",
        ["job#", "bench", "variant", "input", "kind", "attempts", "error"]
            .map(String::from)
            .to_vec(),
    );
    for f in failures {
        t.push_row(vec![
            f.index.to_string(),
            f.job.bench.to_string(),
            f.job.variant.label().to_string(),
            f.job.input.label().to_string(),
            f.error.kind().to_string(),
            f.attempts.to_string(),
            f.error.to_string(),
        ]);
    }
    t
}

/// Renders one series of a figure as a horizontal ASCII bar chart
/// (normalized execution times; a `|` marks 1.0 — the normal-branch
/// baseline — so wins and losses are visible at a glance).
#[must_use]
pub fn bar_chart(fig: &FigureData, series_idx: usize, width: usize) -> String {
    let mut out = String::new();
    let series = fig.series.get(series_idx).cloned().unwrap_or_default();
    out.push_str(&format!("{} — {}\n", fig.title, series));
    let max = fig
        .rows
        .iter()
        .filter_map(|r| r.values.get(series_idx))
        .fold(1.0f64, |m, &v| m.max(v));
    let name_w = fig.rows.iter().map(|r| r.name.len()).max().unwrap_or(4);
    for row in &fig.rows {
        let Some(&v) = row.values.get(series_idx) else { continue };
        if !v.is_finite() {
            out.push_str(&format!("{:<name_w$} (failed)\n", row.name));
            continue;
        }
        let bar_len = ((v / max) * width as f64).round() as usize;
        let one_pos = ((1.0 / max) * width as f64).round() as usize;
        let mut bar = String::new();
        for i in 0..width.max(one_pos) + 1 {
            if i == one_pos {
                bar.push('|');
            } else if i < bar_len {
                bar.push('#');
            } else {
                bar.push(' ');
            }
        }
        out.push_str(&format!("{:<name_w$} {bar} {v:.3}\n", row.name));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("T", vec!["a".into(), "value".into()]);
        t.push_row(vec!["gzip".into(), "1.000".into()]);
        t.push_row(vec!["longername".into(), "0.5".into()]);
        let s = t.to_string();
        assert!(s.contains("T\n"));
        assert!(s.lines().count() >= 4);
        // Header and rows align: every line has the same visual width or less.
        assert!(s.contains("longername"));
    }

    #[test]
    fn bar_chart_marks_the_baseline() {
        let fig = FigureData {
            title: "t".into(),
            series: vec!["s".into()],
            rows: vec![
                crate::figures::NormalizedRow {
                    name: "fast".into(),
                    values: vec![0.5],
                },
                crate::figures::NormalizedRow {
                    name: "slow".into(),
                    values: vec![2.0],
                },
            ],
        };
        let chart = bar_chart(&fig, 0, 40);
        assert!(chart.contains('|'), "baseline marker present");
        assert!(chart.contains("0.500") && chart.contains("2.000"));
        let fast_line = chart.lines().find(|l| l.starts_with("fast")).unwrap();
        let slow_line = chart.lines().find(|l| l.starts_with("slow")).unwrap();
        assert!(
            slow_line.matches('#').count() > fast_line.matches('#').count(),
            "longer bar for larger value"
        );
    }

    #[test]
    fn gaps_render_as_dashes_and_failure_table_lists_kinds() {
        assert_eq!(f2(f64::NAN), "-");
        assert_eq!(f1(f64::NAN), "-");
        assert_eq!(f2(0.5), "0.500");

        use crate::engine::SweepJob;
        use crate::error::{JobError, JobFailure};
        use crate::experiment::ExperimentConfig;
        let ec = ExperimentConfig::quick(20);
        let t = failure_table(&[JobFailure {
            job: SweepJob::standard(1, wishbranch_compiler::BinaryVariant::BaseMax,
                wishbranch_workloads::InputSet::C, &ec),
            index: 3,
            error: JobError::VerifyDivergence { detail: "addr 0x0".into() },
            attempts: 1,
        }]);
        let s = t.to_string();
        assert!(s.contains("verify_divergence"));
        assert!(s.contains("addr 0x0"));
    }

    #[test]
    fn figure_data_to_table() {
        let fig = FigureData {
            title: "f".into(),
            series: vec!["s1".into()],
            rows: vec![crate::figures::NormalizedRow {
                name: "x".into(),
                values: vec![0.5],
            }],
        };
        let t = Table::from(&fig);
        assert_eq!(t.rows.len(), 1);
        assert_eq!(t.rows[0][1], "0.500");
    }
}
