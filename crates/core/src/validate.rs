//! Differential validation: suite-wide lockstep runs, the seeded
//! random-program × random-config fuzz harness, and the divergence
//! shrinker.
//!
//! The fuzzer generates small structured IR programs (straight-line code,
//! input-dependent diamonds, bounded counted loops — including zero-trip
//! loops), pushes each through the *real* profile → compile pipeline into
//! one of the five Table 3 binary variants, simulates it on a randomized
//! machine, and replays the retired stream through the lockstep oracle
//! ([`wishbranch_isa::LockstepOracle`]). The first divergence is then
//! minimized by [`shrink_case`]: delta-debugging over whole regions, then
//! individual instructions, then structural simplifications (diamond →
//! straight line, loop trip counts), then configuration fields — yielding
//! a near-minimal program + config repro.

use crate::error::JobError;
use crate::experiment::{simulate_lockstep, ExperimentConfig, DEFAULT_STEP_BUDGET};
use wishbranch_compiler::{compile, BinaryVariant, CompileOptions};
use wishbranch_ir::{FunctionBuilder, Interpreter, Module};
use wishbranch_isa::exec::Machine;
use wishbranch_isa::{AluOp, CmpOp, Gpr, LockstepOracle, Operand, Program, RetireRecord};
use wishbranch_uarch::{MachineConfig, PredMechanism, SimError, Simulator};
use wishbranch_workloads::{suite, InputSet};

/// Base address of the fuzz program's data area (inputs and stores).
const BASE: u64 = 4096;
/// Register holding [`BASE`] (outside the scratch set).
const BASE_REG: u8 = 12;
/// Loop counter register (outside the scratch set).
const CTR_REG: u8 = 15;
/// Scratch registers the generated ops read and write: `r1..=r8`.
const SCRATCH: u8 = 8;

fn r(i: u8) -> Gpr {
    Gpr::new(i)
}

/// splitmix64: the deterministic PRNG behind case generation (no external
/// randomness anywhere — a seed fully determines a fuzz run).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn pick(state: &mut u64, n: u64) -> u64 {
    splitmix64(state) % n.max(1)
}

/// One generated instruction (maps 1:1 to an IR body instruction).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FuzzOp {
    /// `dst = imm`.
    Movi {
        /// Destination scratch register.
        dst: u8,
        /// Immediate value.
        imm: i64,
    },
    /// `dst = src1 <op> (src2 | imm)`.
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination scratch register.
        dst: u8,
        /// First source.
        src1: u8,
        /// Second source register; `None` uses `imm`.
        src2: Option<u8>,
        /// Immediate second source.
        imm: i32,
    },
    /// `dst = mem[BASE + off]`.
    Load {
        /// Destination scratch register.
        dst: u8,
        /// Word offset into the data area.
        off: i32,
    },
    /// `mem[BASE + off] = src`.
    Store {
        /// Source scratch register.
        src: u8,
        /// Word offset into the data area.
        off: i32,
    },
}

/// One structured region of a generated program; regions run sequentially.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum FuzzRegion {
    /// Straight-line ops.
    Straight(
        /// The ops.
        Vec<FuzzOp>,
    ),
    /// `if (lhs <cmp> rhs) { then_ops } else { else_ops }` — the hammock
    /// shape if-conversion and wish jumps/joins act on.
    Diamond {
        /// Comparison.
        cmp: CmpOp,
        /// Left-hand scratch register (input-dependent, so the branch's
        /// hardness varies by input).
        lhs: u8,
        /// Right-hand immediate.
        rhs: i32,
        /// Taken-side ops.
        then_ops: Vec<FuzzOp>,
        /// Fall-through-side ops.
        else_ops: Vec<FuzzOp>,
    },
    /// A counted loop running `trips` iterations (possibly zero with
    /// `top_test`) — the shape wish-loop conversion acts on.
    Loop {
        /// Iteration count (`top_test` loops may run zero times).
        trips: i64,
        /// Test before the body (while-shape) instead of after (do-shape).
        top_test: bool,
        /// Body ops.
        body: Vec<FuzzOp>,
    },
}

impl FuzzRegion {
    /// Number of op lists in this region (for the shrinker's walk).
    fn op_lists(&self) -> usize {
        match self {
            FuzzRegion::Straight(_) | FuzzRegion::Loop { .. } => 1,
            FuzzRegion::Diamond { .. } => 2,
        }
    }

    fn ops_mut(&mut self, which: usize) -> &mut Vec<FuzzOp> {
        match self {
            FuzzRegion::Straight(ops) => ops,
            FuzzRegion::Loop { body, .. } => body,
            FuzzRegion::Diamond {
                then_ops, else_ops, ..
            } => {
                if which == 0 {
                    then_ops
                } else {
                    else_ops
                }
            }
        }
    }
}

/// A self-contained fuzz case: everything needed to rebuild and re-run it.
#[derive(Clone, Debug)]
pub struct FuzzCase {
    /// Seed this case was generated from (repro bookkeeping).
    pub seed: u64,
    /// The generated program, region by region.
    pub regions: Vec<FuzzRegion>,
    /// Preloaded input words at `BASE + i`.
    pub inputs: Vec<i64>,
    /// Binary variant the program is compiled into.
    pub variant: BinaryVariant,
    /// Compiler heuristics.
    pub compile: CompileOptions,
    /// The simulated machine.
    pub machine: MachineConfig,
}

impl FuzzCase {
    /// Rebuilds the IR module for this case. The fixed preamble
    /// materializes the data-area base and loads each input word into a
    /// scratch register, so diamond conditions are input-dependent.
    #[must_use]
    pub fn build_module(&self) -> Module {
        let mut f = FunctionBuilder::new("fuzz");
        f.select(f.entry_block());
        f.movi(r(BASE_REG), BASE as i64);
        for (i, _) in self.inputs.iter().take(4).enumerate() {
            f.load(r(1 + i as u8), r(BASE_REG), i as i32);
        }
        let emit = |f: &mut FunctionBuilder, ops: &[FuzzOp]| {
            for &op in ops {
                match op {
                    FuzzOp::Movi { dst, imm } => f.movi(r(dst), imm),
                    FuzzOp::Alu {
                        op,
                        dst,
                        src1,
                        src2,
                        imm,
                    } => {
                        let rhs = src2.map_or(Operand::imm(imm), |s| Operand::reg(s));
                        f.alu(op, r(dst), r(src1), rhs);
                    }
                    FuzzOp::Load { dst, off } => f.load(r(dst), r(BASE_REG), off),
                    FuzzOp::Store { src, off } => f.store(r(src), r(BASE_REG), off),
                }
            }
        };
        for region in &self.regions {
            match region {
                FuzzRegion::Straight(ops) => emit(&mut f, ops),
                FuzzRegion::Diamond {
                    cmp,
                    lhs,
                    rhs,
                    then_ops,
                    else_ops,
                } => {
                    let t = f.new_block();
                    let e = f.new_block();
                    let join = f.new_block();
                    f.branch(*cmp, r(*lhs), Operand::imm(*rhs), t, e);
                    f.select(t);
                    emit(&mut f, then_ops);
                    f.jump(join);
                    f.select(e);
                    emit(&mut f, else_ops);
                    f.jump(join);
                    f.select(join);
                }
                FuzzRegion::Loop {
                    trips,
                    top_test,
                    body,
                } => {
                    f.movi(r(CTR_REG), 0);
                    if *top_test {
                        let header = f.new_block();
                        let b = f.new_block();
                        let exit = f.new_block();
                        f.jump(header);
                        f.select(header);
                        f.branch(CmpOp::Lt, r(CTR_REG), Operand::imm(*trips as i32), b, exit);
                        f.select(b);
                        emit(&mut f, body);
                        f.alu(AluOp::Add, r(CTR_REG), r(CTR_REG), Operand::imm(1));
                        f.jump(header);
                        f.select(exit);
                    } else {
                        let b = f.new_block();
                        let exit = f.new_block();
                        f.jump(b);
                        f.select(b);
                        emit(&mut f, body);
                        f.alu(AluOp::Add, r(CTR_REG), r(CTR_REG), Operand::imm(1));
                        f.branch(CmpOp::Lt, r(CTR_REG), Operand::imm(*trips as i32), b, exit);
                        f.select(exit);
                    }
                }
            }
        }
        f.halt();
        Module::new(vec![f.build()], 0).expect("generated module is well-formed")
    }

    /// The case's preloaded memory image.
    #[must_use]
    pub fn input_mem(&self) -> Vec<(u64, i64)> {
        self.inputs
            .iter()
            .enumerate()
            .map(|(i, &v)| (BASE + i as u64, v))
            .collect()
    }

    /// Total IR instructions (bodies plus terminators) of the rebuilt
    /// module — the size metric the shrinker minimizes.
    #[must_use]
    pub fn insn_count(&self) -> usize {
        let module = self.build_module();
        module
            .funcs()
            .iter()
            .flat_map(|f| f.blocks.iter())
            .map(|b| b.insns.len() + 1)
            .sum()
    }

    /// A deterministic multi-line description: the repro the CI gate
    /// uploads as an artifact and `validate --fuzz` writes on failure.
    #[must_use]
    pub fn describe(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!("seed: {:#x}\n", self.seed));
        s.push_str(&format!("variant: {:?}\n", self.variant));
        s.push_str(&format!("inputs: {:?}\n", self.inputs));
        s.push_str(&format!("compile: {:?}\n", self.compile));
        s.push_str(&format!("machine: {:?}\n", self.machine));
        s.push_str(&format!("ir instructions: {}\n", self.insn_count()));
        for (i, region) in self.regions.iter().enumerate() {
            s.push_str(&format!("region {i}: {region:?}\n"));
        }
        s
    }
}

fn gen_ops(state: &mut u64, max: u64) -> Vec<FuzzOp> {
    let n = pick(state, max + 1);
    (0..n)
        .map(|_| {
            let dst = 1 + pick(state, u64::from(SCRATCH)) as u8;
            let src1 = 1 + pick(state, u64::from(SCRATCH)) as u8;
            match pick(state, 8) {
                0 => FuzzOp::Movi {
                    dst,
                    imm: pick(state, 64) as i64 - 16,
                },
                1 => FuzzOp::Load {
                    dst,
                    off: pick(state, 16) as i32,
                },
                2 => FuzzOp::Store {
                    src: src1,
                    off: 16 + pick(state, 16) as i32,
                },
                _ => {
                    const OPS: [AluOp; 9] = [
                        AluOp::Add,
                        AluOp::Sub,
                        AluOp::And,
                        AluOp::Or,
                        AluOp::Xor,
                        AluOp::Shl,
                        AluOp::Shr,
                        AluOp::Mul,
                        AluOp::Div,
                    ];
                    let op = OPS[pick(state, OPS.len() as u64) as usize];
                    let src2 = (pick(state, 2) == 0)
                        .then(|| 1 + pick(state, u64::from(SCRATCH)) as u8);
                    FuzzOp::Alu {
                        op,
                        dst,
                        src1,
                        src2,
                        imm: pick(state, 32) as i32 - 8,
                    }
                }
            }
        })
        .collect()
}

const CMPS: [CmpOp; 6] = [
    CmpOp::Eq,
    CmpOp::Ne,
    CmpOp::Lt,
    CmpOp::Le,
    CmpOp::Gt,
    CmpOp::Ge,
];

/// Generates the `index`-th case of a fuzz run seeded with `seed`.
#[must_use]
pub fn gen_case(seed: u64, index: u64) -> FuzzCase {
    let mut st = seed ^ (index.wrapping_mul(0xA076_1D64_78BD_642F));
    let _ = splitmix64(&mut st);
    let n_regions = 1 + pick(&mut st, 4);
    let regions = (0..n_regions)
        .map(|_| match pick(&mut st, 4) {
            0 => FuzzRegion::Straight(gen_ops(&mut st, 6)),
            1 | 2 => FuzzRegion::Diamond {
                cmp: CMPS[pick(&mut st, 6) as usize],
                lhs: 1 + pick(&mut st, 4) as u8,
                rhs: pick(&mut st, 32) as i32,
                then_ops: gen_ops(&mut st, 5),
                else_ops: gen_ops(&mut st, 5),
            },
            _ => FuzzRegion::Loop {
                trips: pick(&mut st, 8) as i64, // 0 = zero-trip
                top_test: pick(&mut st, 2) == 0,
                body: gen_ops(&mut st, 4),
            },
        })
        .collect();
    let inputs = (0..4).map(|_| pick(&mut st, 64) as i64).collect();
    let variant = BinaryVariant::ALL[(index % 5) as usize];
    let compile = CompileOptions {
        wish_jump_threshold: 1 + pick(&mut st, 8) as usize,
        wish_loop_body_max: 4 + pick(&mut st, 36) as usize,
        max_predicated_side: 4 + pick(&mut st, 196) as usize,
        ..CompileOptions::default()
    };
    let machine = MachineConfig {
        pipeline_depth: [5, 10, 30][pick(&mut st, 3) as usize],
        rob_size: [16, 32, 64, 128][pick(&mut st, 4) as usize],
        fetch_width: [2, 4, 8][pick(&mut st, 3) as usize],
        pred_mechanism: if pick(&mut st, 2) == 0 {
            PredMechanism::CStyle
        } else {
            PredMechanism::SelectUop
        },
        wish_enabled: pick(&mut st, 4) != 0,
        dhp_enabled: pick(&mut st, 4) == 0,
        predicate_prediction: pick(&mut st, 4) == 0,
        wish_loop_predictor: (pick(&mut st, 4) == 0)
            .then(wishbranch_bpred::LoopPredConfig::default),
        max_cycles: 2_000_000,
        ..MachineConfig::default()
    };
    FuzzCase {
        seed,
        regions,
        inputs,
        variant,
        compile,
        machine,
    }
}

/// Compiles a fuzz case through the real pipeline. `None` when the
/// profiling interpreter faults (a generator bug, not a simulator one).
fn compile_case(case: &FuzzCase) -> Option<Program> {
    let module = case.build_module();
    let mut interp = Interpreter::new();
    for (a, v) in case.input_mem() {
        interp.mem.insert(a, v);
    }
    let profile = interp.run(&module, 1 << 24).ok()?.profile;
    Some(compile(&module, &profile, case.variant, &case.compile).program)
}

/// Lockstep-checks one compiled case. `corrupt_records` is the test hook
/// for injected commit-path mutations (applied to the retired stream
/// before replay). `Ok(None)` = clean, `Ok(Some(detail))` = divergence,
/// `Err(())` = the case could not be judged (cycle budget).
fn lockstep_program(
    program: &Program,
    case: &FuzzCase,
    corrupt_records: Option<&dyn Fn(&mut Vec<RetireRecord>)>,
) -> Result<Option<String>, ()> {
    let inputs = case.input_mem();
    let mut sim = Simulator::new(program, case.machine.clone());
    for &(a, v) in &inputs {
        sim.preload_mem(a, v);
    }
    sim.enable_retire_log();
    let result = match sim.run() {
        Ok(result) => result,
        Err(SimError::CycleLimitExceeded { .. }) => return Err(()),
    };
    let mut records = sim.take_retire_log();
    if let Some(corrupt) = corrupt_records {
        corrupt(&mut records);
    }
    let mut oracle = LockstepOracle::new(program);
    for &(a, v) in &inputs {
        oracle.preload_mem(a, v);
    }
    for record in &records {
        if let Err(d) = oracle.step(record) {
            return Ok(Some(format!("lockstep {d}")));
        }
    }
    if let Err(d) = oracle.finish(&result.final_regs, &result.final_preds, &result.final_mem) {
        return Ok(Some(format!("lockstep {d}")));
    }
    // Independent anchor: the functional reference machine must agree on
    // retired memory (it walks the architectural path itself, so it also
    // cross-checks the oracle).
    let mut reference = Machine::new();
    for &(a, v) in &inputs {
        reference.mem.insert(a, v);
    }
    match reference.run(program, DEFAULT_STEP_BUDGET) {
        Ok(end) => {
            if end.mem != result.final_mem {
                return Ok(Some(
                    "reference machine retired a different memory image".to_string(),
                ));
            }
        }
        Err(e) => return Ok(Some(format!("reference machine faulted: {e}"))),
    }
    Ok(None)
}

/// Runs one fuzz case end to end. `None` = clean (or unjudgeable),
/// `Some(detail)` = divergence.
#[must_use]
pub fn check_case(case: &FuzzCase) -> Option<String> {
    let program = compile_case(case)?;
    lockstep_program(&program, case, None).ok().flatten()
}

/// Outcome of a fuzz run.
#[derive(Clone, Debug)]
pub enum FuzzOutcome {
    /// Every generated case replayed clean.
    Clean,
    /// A case diverged; the run stopped and minimized it.
    Diverged {
        /// The original failing case.
        case: Box<FuzzCase>,
        /// The shrinker's minimized repro.
        minimized: Box<FuzzCase>,
        /// The divergence detail of the original case.
        detail: String,
    },
}

/// Summary of one seeded fuzz run.
#[derive(Clone, Debug)]
pub struct FuzzReport {
    /// Cases generated and checked.
    pub cases: usize,
    /// Cases skipped (cycle budget or profiling fault — generator noise,
    /// not simulator verdicts).
    pub skipped: usize,
    /// The verdict.
    pub outcome: FuzzOutcome,
}

impl FuzzReport {
    /// Whether the run found no divergence.
    #[must_use]
    pub fn clean(&self) -> bool {
        matches!(self.outcome, FuzzOutcome::Clean)
    }
}

/// Runs `count` seeded random cases (cycling through the five binary
/// variants) through the lockstep oracle; stops at the first divergence
/// and minimizes it with [`shrink_case`].
#[must_use]
pub fn fuzz_lockstep(seed: u64, count: usize) -> FuzzReport {
    let mut skipped = 0usize;
    for index in 0..count {
        let case = gen_case(seed, index as u64);
        let Some(program) = compile_case(&case) else {
            skipped += 1;
            continue;
        };
        match lockstep_program(&program, &case, None) {
            Err(()) => skipped += 1,
            Ok(None) => {}
            Ok(Some(detail)) => {
                let minimized = shrink_case(&case, &mut check_case);
                return FuzzReport {
                    cases: index + 1,
                    skipped,
                    outcome: FuzzOutcome::Diverged {
                        case: Box::new(case),
                        minimized: Box::new(minimized),
                        detail,
                    },
                };
            }
        }
    }
    FuzzReport {
        cases: count,
        skipped,
        outcome: FuzzOutcome::Clean,
    }
}

/// Switches a machine onto the full non-blocking memory hierarchy — the
/// realistic preset: modest MSHR files on both sides (data and
/// instruction), store-to-load forwarding, stride and next-line
/// instruction prefetch, a finite write buffer and limited data ports —
/// the configuration the hierarchy validation lanes run under. Tight caps
/// on purpose: contention paths (coalescing, `MshrFull` / `PortBusy` /
/// `WriteBufFull` retries, replays, wrong-path fill cancellation) are
/// exactly what the oracle should exercise.
fn enable_hierarchy(machine: &mut MachineConfig) {
    machine.mem = wishbranch_mem::MemConfig::realistic_preset();
}

/// [`fuzz_lockstep`] with the non-blocking hierarchy enabled on every
/// generated machine. The override happens *after* [`gen_case`] so the
/// seeded draw stream — and therefore the flat-model fuzz corpus — is
/// untouched: case `i` here runs the same program, inputs and variant as
/// case `i` of the flat run, only the memory model differs. Timing-only
/// mechanisms must never change architectural results, so any divergence
/// is a hierarchy bug.
#[must_use]
pub fn fuzz_lockstep_hierarchy(seed: u64, count: usize) -> FuzzReport {
    let mut skipped = 0usize;
    for index in 0..count {
        let mut case = gen_case(seed, index as u64);
        enable_hierarchy(&mut case.machine);
        // Future-cycle fills stretch runtimes; keep the budget generous so
        // long-latency cases stay judgeable rather than skipped.
        case.machine.max_cycles = 8_000_000;
        let Some(program) = compile_case(&case) else {
            skipped += 1;
            continue;
        };
        match lockstep_program(&program, &case, None) {
            Err(()) => skipped += 1,
            Ok(None) => {}
            Ok(Some(detail)) => {
                // The case carries its (hierarchy-enabled) machine, so the
                // shrinker reproduces under the same memory model.
                let minimized = shrink_case(&case, &mut check_case);
                return FuzzReport {
                    cases: index + 1,
                    skipped,
                    outcome: FuzzOutcome::Diverged {
                        case: Box::new(case),
                        minimized: Box::new(minimized),
                        detail,
                    },
                };
            }
        }
    }
    FuzzReport {
        cases: count,
        skipped,
        outcome: FuzzOutcome::Clean,
    }
}

/// Minimizes a diverging case by delta-debugging: whole regions, then
/// individual ops, then structural simplifications (diamond → straight
/// line, loop-trip reduction), then configuration fields (variant,
/// machine knobs, inputs). `still_diverges` must return `Some(detail)`
/// while the candidate still reproduces the divergence; the given case is
/// assumed to reproduce it.
pub fn shrink_case(
    case: &FuzzCase,
    still_diverges: &mut dyn FnMut(&FuzzCase) -> Option<String>,
) -> FuzzCase {
    let mut best = case.clone();
    loop {
        let mut improved = false;
        let accept = |best: &mut FuzzCase,
                          cand: FuzzCase,
                          still: &mut dyn FnMut(&FuzzCase) -> Option<String>|
         -> bool {
            if still(&cand).is_some() {
                *best = cand;
                true
            } else {
                false
            }
        };

        // Whole regions.
        let mut i = 0;
        while i < best.regions.len() {
            let mut cand = best.clone();
            cand.regions.remove(i);
            if accept(&mut best, cand, still_diverges) {
                improved = true;
            } else {
                i += 1;
            }
        }
        // Individual ops.
        for ri in 0..best.regions.len() {
            for list in 0..best.regions[ri].op_lists() {
                let mut oi = 0;
                while oi < best.regions[ri].ops_mut(list).len() {
                    let mut cand = best.clone();
                    cand.regions[ri].ops_mut(list).remove(oi);
                    if accept(&mut best, cand, still_diverges) {
                        improved = true;
                    } else {
                        oi += 1;
                    }
                }
            }
        }
        // Structural simplification.
        for ri in 0..best.regions.len() {
            let simpler: Vec<FuzzRegion> = match &best.regions[ri] {
                FuzzRegion::Diamond {
                    then_ops, else_ops, ..
                } => {
                    let mut flat = then_ops.clone();
                    flat.extend(else_ops.iter().copied());
                    vec![FuzzRegion::Straight(flat)]
                }
                FuzzRegion::Loop {
                    trips,
                    top_test,
                    body,
                } if *trips > 0 => vec![
                    FuzzRegion::Straight(body.clone()),
                    FuzzRegion::Loop {
                        trips: trips - 1,
                        top_test: *top_test,
                        body: body.clone(),
                    },
                ],
                _ => Vec::new(),
            };
            for replacement in simpler {
                let mut cand = best.clone();
                cand.regions[ri] = replacement;
                if accept(&mut best, cand, still_diverges) {
                    improved = true;
                    break;
                }
            }
        }
        // Inputs.
        if !best.inputs.is_empty() {
            let mut cand = best.clone();
            cand.inputs.clear();
            if accept(&mut best, cand, still_diverges) {
                improved = true;
            }
        }
        // Configuration: variant, then machine knobs toward the default.
        if best.variant != BinaryVariant::NormalBranch {
            let mut cand = best.clone();
            cand.variant = BinaryVariant::NormalBranch;
            if accept(&mut best, cand, still_diverges) {
                improved = true;
            }
        }
        let default = MachineConfig::default();
        let knobs: [&dyn Fn(&mut MachineConfig); 6] = [
            &|m| m.dhp_enabled = false,
            &|m| m.predicate_prediction = false,
            &|m| m.wish_loop_predictor = None,
            &|m| m.pred_mechanism = PredMechanism::CStyle,
            &|m| m.pipeline_depth = 30,
            &|m| m.rob_size = 512,
        ];
        for knob in knobs {
            let mut probe = best.machine.clone();
            knob(&mut probe);
            if format!("{probe:?}") == format!("{:?}", best.machine) {
                continue; // knob already at its simpler setting
            }
            let mut cand = best.clone();
            knob(&mut cand.machine);
            if accept(&mut best, cand, still_diverges) {
                improved = true;
            }
        }
        let _ = default;
        if !improved {
            return best;
        }
    }
}

/// One job of a suite validation run.
#[derive(Clone, Debug)]
pub struct ValidateReport {
    /// Jobs run (benchmark × variant).
    pub jobs: usize,
    /// Failures: `(job label, divergence detail)`.
    pub failures: Vec<(String, String)>,
}

impl ValidateReport {
    /// Whether every job replayed clean.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Lockstep-validates the full retirement stream of every Table 3 binary
/// variant across all nine suite workloads at the experiment's scale.
#[must_use]
pub fn validate_suite(ec: &ExperimentConfig, input: InputSet) -> ValidateReport {
    let mut jobs = 0usize;
    let mut failures = Vec::new();
    for bench in suite(ec.scale) {
        for variant in BinaryVariant::ALL {
            jobs += 1;
            let label = format!("{} {}", bench.name, variant.label());
            let outcome = crate::experiment::compile_variant(&bench, variant, ec)
                .and_then(|bin| simulate_lockstep(&bin.program, &bench, input, &ec.machine));
            match outcome {
                Ok(_) => {}
                Err(JobError::VerifyDivergence { detail }) => failures.push((label, detail)),
                Err(other) => failures.push((label, other.to_string())),
            }
        }
    }
    ValidateReport { jobs, failures }
}

/// [`validate_suite`] with the non-blocking hierarchy enabled: the same
/// 9 workloads × 5 variants, lockstep-checked under finite MSHRs,
/// future-cycle fills, store-to-load forwarding and stride prefetch. The
/// memory model only moves timing, so the oracle must still report zero
/// divergences.
#[must_use]
pub fn validate_suite_hierarchy(ec: &ExperimentConfig, input: InputSet) -> ValidateReport {
    let mut ec = ec.clone();
    enable_hierarchy(&mut ec.machine);
    validate_suite(&ec, input)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_fuzz_run_is_clean() {
        // A slice of the CI gate's run: deterministic, so any divergence
        // here is reproducible with the same seed.
        let report = fuzz_lockstep(0x5EED, 40);
        match &report.outcome {
            FuzzOutcome::Clean => {}
            FuzzOutcome::Diverged {
                minimized, detail, ..
            } => panic!("fuzz diverged: {detail}\n{}", minimized.describe()),
        }
        assert!(
            report.skipped < report.cases / 2,
            "most cases must be judgeable ({}/{} skipped)",
            report.skipped,
            report.cases
        );
    }

    #[test]
    fn generated_cases_are_deterministic() {
        let a = gen_case(42, 7);
        let b = gen_case(42, 7);
        assert_eq!(a.regions, b.regions);
        assert_eq!(a.inputs, b.inputs);
        assert_eq!(format!("{:?}", a.machine), format!("{:?}", b.machine));
    }

    #[test]
    fn injected_commit_path_mutation_shrinks_to_a_tiny_repro() {
        // The injected bug: the first retired register write's value is
        // off by one — a seeded commit-path mutation the oracle must
        // catch. The shrinker must reduce the repro to ≤ 20 instructions.
        let corrupt = |records: &mut Vec<RetireRecord>| {
            if let Some(rec) = records.iter_mut().find(|r| r.reg_write.is_some()) {
                let (reg, v) = rec.reg_write.unwrap();
                rec.reg_write = Some((reg, v.wrapping_add(1)));
            }
        };
        let mut check = |case: &FuzzCase| -> Option<String> {
            let program = compile_case(case)?;
            lockstep_program(&program, case, Some(&corrupt)).ok().flatten()
        };
        // Find a seeded case that exercises the mutation (any case with a
        // register write does).
        let mut found = None;
        for index in 0..50 {
            let case = gen_case(0xDEAD_BEEF, index);
            if check(&case).is_some() {
                found = Some(case);
                break;
            }
        }
        let case = found.expect("a case with a register write exists");
        let minimized = shrink_case(&case, &mut check);
        let detail = check(&minimized).expect("minimized case still reproduces");
        assert!(detail.contains("lockstep"), "{detail}");
        assert!(
            minimized.insn_count() <= 20,
            "repro must be ≤ 20 instructions, got {} \n{}",
            minimized.insn_count(),
            minimized.describe()
        );
    }

    #[test]
    fn validate_suite_is_clean_at_tiny_scale() {
        let report = validate_suite(&ExperimentConfig::quick(20), InputSet::B);
        assert_eq!(report.jobs, 45);
        assert!(report.passed(), "failures: {:?}", report.failures);
    }
}
