//! The incremental sweep journal (`wishbranch.journal/v1`): a JSONL file
//! under `--report-dir` that records every *successfully completed* job as
//! it finishes, so an interrupted sweep can `--resume` without redoing
//! work.
//!
//! ## Format
//!
//! One JSON object per line. The first line is a header:
//!
//! ```json
//! {"schema":"wishbranch.journal/v1","run":1234567890123456789}
//! ```
//!
//! `run` is the sweep's **run-identity fingerprint**: an FNV-1a-64 hash
//! over the experiment scale, machine configuration, compile options and
//! training input (but *not* the fault plan — a kill-then-resume cycle
//! legitimately resumes without re-injecting the faults that killed it).
//! Attaching a journal whose header fingerprint differs from the current
//! run's — e.g. `--resume` after editing `--scale` — is refused with a
//! typed [`JournalError::RunMismatch`] instead of silently replaying
//! results that no longer describe the requested experiment.
//!
//! Every other line is one completed job:
//!
//! ```json
//! {"key":1234567890123456789,"v":1,"data":[0,1,2, ...]}
//! ```
//!
//! * `key` — the job's cache-key fingerprint: an FNV-1a-64 hash over the
//!   benchmark name, binary variant, run input, training spec, compile
//!   options (float fields by bit pattern, exactly like the engine's
//!   compile cache key) and the full machine configuration. Two jobs
//!   collide only if they would also share every cache key, in which case
//!   their results are bit-identical by the engine's determinism contract.
//! * `v` — the payload layout version (this file documents version 3,
//!   which added the I-side/write-buffer/port counters and the
//!   `imiss-pending`/`writebuf-full` accounting causes; version-1 and -2
//!   journals — written before those counters existed — are treated as
//!   absent and their jobs re-run).
//! * `data` — the whole [`RunOutcome`] flattened into one integer array
//!   (every journaled quantity is an integer: counters, registers,
//!   predicate bits, memory words). The layout is fixed by
//!   [`encode_outcome`]; [`decode_outcome`] validates section lengths and
//!   rejects anything malformed.
//!
//! Failed jobs are deliberately **not** journaled: on resume they re-run
//! (a transient fault heals; a deterministic one re-reports).
//!
//! ## Robustness
//!
//! The reader ignores any line it cannot parse — including the header, a
//! half-written trailing line from a killed process, or a record whose
//! version or section lengths do not match. A corrupt journal therefore
//! degrades to re-running jobs, never to a failed resume.

use std::collections::HashMap;
use std::io::{BufRead, Write as _};
use std::path::Path;

use crate::experiment::RunOutcome;
use wishbranch_compiler::CompileReport;
use wishbranch_isa::{StaticStats, NUM_GPRS, NUM_PREDS};
use wishbranch_mem::CacheStats;
use wishbranch_uarch::{CycleAccounting, HotSiteCounts, SimResult, SimStats, WishClassCounts};

/// Schema tag written on the journal's header line.
pub const JOURNAL_SCHEMA: &str = "wishbranch.journal/v1";

/// Payload layout version of the `data` array.
const LAYOUT_VERSION: u64 = 3;

/// FNV-1a 64-bit over a byte string — the journal's job-key hash.
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn push_wish(out: &mut Vec<i128>, w: &WishClassCounts) {
    out.extend([
        i128::from(w.high_correct),
        i128::from(w.high_mispredicted),
        i128::from(w.low_correct),
        i128::from(w.low_mispredicted),
    ]);
}

fn push_cache(out: &mut Vec<i128>, c: &CacheStats) {
    out.extend([i128::from(c.hits), i128::from(c.misses), i128::from(c.probes)]);
}

/// Flattens a [`RunOutcome`] into the version-3 integer layout.
#[must_use]
pub fn encode_outcome(o: &RunOutcome) -> Vec<i128> {
    let s = &o.sim.stats;
    let mut out: Vec<i128> = Vec::with_capacity(192 + 4 * s.hot_sites.len() + 2 * o.sim.final_mem.len());
    for v in [
        s.cycles,
        s.retired_uops,
        s.retired_guard_false,
        s.retired_select_uops,
        s.retired_cond_branches,
        s.flushes,
        s.retired_mispredicted,
        s.flushes_avoided,
        s.fetched_uops,
        s.fetch_idle_cycles,
        s.fetch_idle_imiss,
        s.fetch_idle_redirect,
        s.fetch_idle_queue_full,
        s.fetch_idle_blocked,
        s.dispatch_idle_cycles,
        s.retire_idle_cycles,
        s.squashed_uops,
        s.dhp_predications,
        s.dhp_flushes_avoided,
        s.pred_value_predictions,
        s.pred_value_mispredictions,
        s.store_forwards,
        s.load_replays,
        s.mshr_full_stalls,
        s.port_conflict_stalls,
        s.writebuf_full_stalls,
        s.wrong_path_fills,
    ] {
        out.push(i128::from(v));
    }
    push_wish(&mut out, &s.wish_jumps);
    push_wish(&mut out, &s.wish_joins);
    push_wish(&mut out, &s.wish_loops);
    out.extend([
        i128::from(s.loop_early_exits),
        i128::from(s.loop_late_exits),
        i128::from(s.loop_no_exits),
    ]);
    let a = &s.cycle_accounting;
    for v in [
        a.useful_retire,
        a.guard_false_retire,
        a.select_uop_retire,
        a.exec_wait,
        a.rob_stall,
        a.flush_recovery,
        a.fetch_imiss,
        a.fetch_redirect,
        a.frontend_fill,
        a.mshr_full,
        a.miss_pending,
        a.imiss_pending,
        a.writebuf_full,
    ] {
        out.push(i128::from(v));
    }
    out.push(s.hot_sites.len() as i128);
    for (&pc, h) in &s.hot_sites {
        out.extend([
            i128::from(pc),
            i128::from(h.flushes),
            i128::from(h.flushes_avoided),
            i128::from(h.guard_false_uops),
        ]);
    }
    push_cache(&mut out, &s.icache);
    push_cache(&mut out, &s.l1d);
    push_cache(&mut out, &s.l2);
    out.extend(o.sim.final_regs.iter().map(|&r| i128::from(r)));
    out.extend(o.sim.final_preds.iter().map(|&p| i128::from(p)));
    out.push(o.sim.final_mem.len() as i128);
    for (&addr, &val) in &o.sim.final_mem {
        out.extend([i128::from(addr), i128::from(val)]);
    }
    out.extend([
        o.report.regions_predicated as i128,
        o.report.regions_wish as i128,
        o.report.regions_kept as i128,
        o.report.loops_wish as i128,
    ]);
    out.extend([
        o.static_stats.insns as i128,
        o.static_stats.cond_branches as i128,
        o.static_stats.wish_branches as i128,
        o.static_stats.wish_jumps as i128,
        o.static_stats.wish_joins as i128,
        o.static_stats.wish_loops as i128,
        o.static_stats.guarded_insns as i128,
    ]);
    out
}

/// A validating cursor over the flat integer layout.
struct Cursor<'a> {
    data: &'a [i128],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn u64(&mut self) -> Option<u64> {
        let v = *self.data.get(self.pos)?;
        self.pos += 1;
        u64::try_from(v).ok()
    }

    fn i64(&mut self) -> Option<i64> {
        let v = *self.data.get(self.pos)?;
        self.pos += 1;
        i64::try_from(v).ok()
    }

    fn usize(&mut self) -> Option<usize> {
        usize::try_from(self.u64()?).ok()
    }

    fn wish(&mut self) -> Option<WishClassCounts> {
        Some(WishClassCounts {
            high_correct: self.u64()?,
            high_mispredicted: self.u64()?,
            low_correct: self.u64()?,
            low_mispredicted: self.u64()?,
        })
    }

    fn cache(&mut self) -> Option<CacheStats> {
        Some(CacheStats {
            hits: self.u64()?,
            misses: self.u64()?,
            probes: self.u64()?,
        })
    }
}

/// Rebuilds a [`RunOutcome`] from the version-3 integer layout. Returns
/// `None` on any length or range mismatch (the caller treats the entry as
/// absent and re-runs the job).
#[must_use]
pub fn decode_outcome(data: &[i128]) -> Option<RunOutcome> {
    let mut c = Cursor { data, pos: 0 };
    let mut s = SimStats::default();
    s.cycles = c.u64()?;
    s.retired_uops = c.u64()?;
    s.retired_guard_false = c.u64()?;
    s.retired_select_uops = c.u64()?;
    s.retired_cond_branches = c.u64()?;
    s.flushes = c.u64()?;
    s.retired_mispredicted = c.u64()?;
    s.flushes_avoided = c.u64()?;
    s.fetched_uops = c.u64()?;
    s.fetch_idle_cycles = c.u64()?;
    s.fetch_idle_imiss = c.u64()?;
    s.fetch_idle_redirect = c.u64()?;
    s.fetch_idle_queue_full = c.u64()?;
    s.fetch_idle_blocked = c.u64()?;
    s.dispatch_idle_cycles = c.u64()?;
    s.retire_idle_cycles = c.u64()?;
    s.squashed_uops = c.u64()?;
    s.dhp_predications = c.u64()?;
    s.dhp_flushes_avoided = c.u64()?;
    s.pred_value_predictions = c.u64()?;
    s.pred_value_mispredictions = c.u64()?;
    s.store_forwards = c.u64()?;
    s.load_replays = c.u64()?;
    s.mshr_full_stalls = c.u64()?;
    s.port_conflict_stalls = c.u64()?;
    s.writebuf_full_stalls = c.u64()?;
    s.wrong_path_fills = c.u64()?;
    s.wish_jumps = c.wish()?;
    s.wish_joins = c.wish()?;
    s.wish_loops = c.wish()?;
    s.loop_early_exits = c.u64()?;
    s.loop_late_exits = c.u64()?;
    s.loop_no_exits = c.u64()?;
    s.cycle_accounting = CycleAccounting {
        useful_retire: c.u64()?,
        guard_false_retire: c.u64()?,
        select_uop_retire: c.u64()?,
        exec_wait: c.u64()?,
        rob_stall: c.u64()?,
        flush_recovery: c.u64()?,
        fetch_imiss: c.u64()?,
        fetch_redirect: c.u64()?,
        frontend_fill: c.u64()?,
        mshr_full: c.u64()?,
        miss_pending: c.u64()?,
        imiss_pending: c.u64()?,
        writebuf_full: c.u64()?,
    };
    let hot = c.usize()?;
    for _ in 0..hot {
        let pc = u32::try_from(c.u64()?).ok()?;
        s.hot_sites.insert(
            pc,
            HotSiteCounts {
                flushes: c.u64()?,
                flushes_avoided: c.u64()?,
                guard_false_uops: c.u64()?,
            },
        );
    }
    s.icache = c.cache()?;
    s.l1d = c.cache()?;
    s.l2 = c.cache()?;
    let mut final_regs = [0i64; NUM_GPRS];
    for r in &mut final_regs {
        *r = c.i64()?;
    }
    let mut final_preds = [false; NUM_PREDS];
    for p in &mut final_preds {
        *p = match c.u64()? {
            0 => false,
            1 => true,
            _ => return None,
        };
    }
    let nmem = c.usize()?;
    let mut final_mem = std::collections::BTreeMap::new();
    for _ in 0..nmem {
        let addr = c.u64()?;
        let val = c.i64()?;
        final_mem.insert(addr, val);
    }
    let report = CompileReport {
        regions_predicated: c.usize()?,
        regions_wish: c.usize()?,
        regions_kept: c.usize()?,
        loops_wish: c.usize()?,
    };
    let static_stats = StaticStats {
        insns: c.usize()?,
        cond_branches: c.usize()?,
        wish_branches: c.usize()?,
        wish_jumps: c.usize()?,
        wish_joins: c.usize()?,
        wish_loops: c.usize()?,
        guarded_insns: c.usize()?,
    };
    if c.pos != data.len() {
        return None; // trailing garbage: not a record this layout wrote
    }
    Some(RunOutcome {
        sim: SimResult {
            stats: s,
            final_regs,
            final_preds,
            final_mem,
        },
        report,
        static_stats,
    })
}

/// Serializes one journal record line (no trailing newline).
#[must_use]
pub fn encode_entry(key: u64, outcome: &RunOutcome) -> String {
    let data: Vec<String> = encode_outcome(outcome).iter().map(i128::to_string).collect();
    format!(
        "{{\"key\":{key},\"v\":{LAYOUT_VERSION},\"data\":[{}]}}",
        data.join(",")
    )
}

/// Parses one journal line. Returns `None` for the header, malformed or
/// truncated lines, and unknown layout versions.
#[must_use]
pub fn decode_entry(line: &str) -> Option<(u64, RunOutcome)> {
    let rest = line.trim().strip_prefix("{\"key\":")?;
    let comma = rest.find(',')?;
    let key: u64 = rest[..comma].parse().ok()?;
    let rest = rest[comma + 1..].strip_prefix("\"v\":")?;
    let comma = rest.find(',')?;
    let version: u64 = rest[..comma].parse().ok()?;
    if version != LAYOUT_VERSION {
        return None;
    }
    let rest = rest[comma + 1..].strip_prefix("\"data\":[")?;
    let rest = rest.strip_suffix("]}")?;
    let mut data = Vec::new();
    if !rest.is_empty() {
        for item in rest.split(',') {
            data.push(item.parse::<i128>().ok()?);
        }
    }
    let outcome = decode_outcome(&data)?;
    Some((key, outcome))
}

/// The journal's header line (no trailing newline). `run` is the
/// run-identity fingerprint of the sweep that owns this journal: a
/// journal is only replayable into the exact configuration that wrote
/// it, and the header is what lets a resume check that before serving a
/// single stale outcome.
#[must_use]
pub fn header_line(run: u64) -> String {
    format!("{{\"schema\":\"{JOURNAL_SCHEMA}\",\"run\":{run}}}")
}

/// Parses the run-identity fingerprint out of a journal header line.
/// Returns `None` for record lines, malformed headers, and headers from
/// before fingerprints existed (which carry no `run` field).
#[must_use]
pub fn decode_header_run(line: &str) -> Option<u64> {
    let rest = line
        .trim()
        .strip_prefix("{\"schema\":\"")?
        .strip_prefix(JOURNAL_SCHEMA)?;
    let rest = rest.strip_prefix("\",\"run\":")?;
    rest.strip_suffix('}')?.parse().ok()
}

/// Why a journal could not be attached.
#[derive(Debug)]
pub enum JournalError {
    /// The file exists but was written by a different run configuration
    /// (or predates run fingerprints), so replaying it would silently
    /// serve stale results. `found` is `None` for pre-fingerprint or
    /// unreadable headers.
    RunMismatch {
        /// The fingerprint of the attaching run.
        expected: u64,
        /// The fingerprint stamped in the journal header, if any.
        found: Option<u64>,
    },
    /// A genuine I/O failure opening, reading, or creating the file.
    Io(std::io::Error),
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::RunMismatch { expected, found } => {
                match found {
                    Some(found) => write!(
                        f,
                        "journal was written by a different run configuration \
                         (fingerprint {found:#018x}, this run is {expected:#018x})"
                    )?,
                    None => write!(
                        f,
                        "journal has no run fingerprint (pre-fingerprint format); \
                         this run is {expected:#018x}"
                    )?,
                }
                write!(
                    f,
                    "; refusing to reuse it — rerun with the original \
                     --scale/--quick flags, or delete the journal to start fresh"
                )
            }
            JournalError::Io(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for JournalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JournalError::Io(e) => Some(e),
            JournalError::RunMismatch { .. } => None,
        }
    }
}

impl From<std::io::Error> for JournalError {
    fn from(e: std::io::Error) -> JournalError {
        JournalError::Io(e)
    }
}

/// Loads every parseable record from a journal file. A later record for
/// the same key wins (duplicates can arise when a shared job ran in a
/// previous, partially journaled sweep). A missing file is an empty map.
///
/// # Errors
///
/// Only genuine I/O failures (permission, disk) error; unparseable
/// content is skipped, per the robustness contract above.
pub fn load(path: &Path) -> std::io::Result<HashMap<u64, RunOutcome>> {
    let mut map = HashMap::new();
    let file = match std::fs::File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(map),
        Err(e) => return Err(e),
    };
    for line in std::io::BufReader::new(file).lines() {
        let line = line?;
        if let Some((key, outcome)) = decode_entry(&line) {
            map.insert(key, outcome);
        }
    }
    Ok(map)
}

/// An append handle on a journal file; creates the file (with its header
/// line) if absent. Each append is flushed immediately so a killed
/// process loses at most the line being written — which the reader then
/// skips.
#[derive(Debug)]
pub struct JournalWriter {
    file: std::fs::File,
}

impl JournalWriter {
    /// Opens (or creates) the journal at `path` for appending. A new
    /// file is stamped with `run` in its header; an existing file must
    /// carry the *same* fingerprint — appending a second run's records
    /// under the first run's header is exactly the stale-journal bug the
    /// fingerprint exists to prevent.
    ///
    /// # Errors
    ///
    /// [`JournalError::RunMismatch`] when the existing header's
    /// fingerprint differs from `run` (or is absent/unreadable);
    /// [`JournalError::Io`] for real I/O failures.
    pub fn open(path: &Path, run: u64) -> Result<JournalWriter, JournalError> {
        let is_new = !path.exists();
        if !is_new {
            let file = std::fs::File::open(path)?;
            let mut first = String::new();
            std::io::BufReader::new(file).read_line(&mut first)?;
            let found = decode_header_run(&first);
            if found != Some(run) {
                return Err(JournalError::RunMismatch {
                    expected: run,
                    found,
                });
            }
        }
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        if is_new {
            writeln!(file, "{}", header_line(run))?;
            file.flush()?;
        }
        Ok(JournalWriter { file })
    }

    /// Appends one completed job and flushes.
    ///
    /// # Errors
    ///
    /// I/O errors writing the line.
    pub fn append(&mut self, key: u64, outcome: &RunOutcome) -> std::io::Result<()> {
        writeln!(self.file, "{}", encode_entry(key, outcome))?;
        self.file.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_outcome() -> RunOutcome {
        let mut stats = SimStats::default();
        stats.cycles = 12345;
        stats.retired_uops = 678;
        stats.wish_loops.low_mispredicted = 9;
        stats.cycle_accounting.useful_retire = 11;
        stats.hot_sites.insert(
            42,
            HotSiteCounts {
                flushes: 1,
                flushes_avoided: 2,
                guard_false_uops: 3,
            },
        );
        stats.l2 = CacheStats {
            hits: 5,
            misses: 6,
            probes: 7,
        };
        let mut final_regs = [0i64; NUM_GPRS];
        final_regs[3] = -77;
        let mut final_preds = [false; NUM_PREDS];
        final_preds[1] = true;
        let mut final_mem = std::collections::BTreeMap::new();
        final_mem.insert(0x1000, -1);
        final_mem.insert(0x1008, 99);
        RunOutcome {
            sim: SimResult {
                stats,
                final_regs,
                final_preds,
                final_mem,
            },
            report: CompileReport {
                regions_predicated: 1,
                regions_wish: 2,
                regions_kept: 3,
                loops_wish: 4,
            },
            static_stats: StaticStats {
                insns: 100,
                cond_branches: 10,
                wish_branches: 5,
                wish_jumps: 2,
                wish_joins: 2,
                wish_loops: 1,
                guarded_insns: 20,
            },
        }
    }

    #[test]
    fn entry_round_trips_bit_identically() {
        let outcome = sample_outcome();
        let line = encode_entry(0xDEAD_BEEF, &outcome);
        let (key, back) = decode_entry(&line).expect("round trip");
        assert_eq!(key, 0xDEAD_BEEF);
        assert_eq!(back, outcome);
    }

    #[test]
    fn corrupt_and_foreign_lines_are_skipped() {
        assert!(decode_entry(&header_line(42)).is_none());
        assert!(decode_entry("").is_none());
        assert!(decode_entry("{\"key\":12,\"v\":1,\"data\":[1,2,3").is_none());
        assert!(decode_entry("{\"key\":12,\"v\":99,\"data\":[]}").is_none());
        assert!(decode_entry("not json at all").is_none());
        // Truncated data array: lengths no longer validate.
        let line = encode_entry(7, &sample_outcome());
        let cut = &line[..line.len() - 20];
        assert!(decode_entry(cut).is_none());
    }

    #[test]
    fn writer_appends_and_loader_takes_last_duplicate() {
        let dir = std::env::temp_dir().join(format!("wb-journal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("journal.jsonl");
        let _ = std::fs::remove_file(&path);

        let mut outcome = sample_outcome();
        {
            let mut w = JournalWriter::open(&path, 42).unwrap();
            w.append(1, &outcome).unwrap();
            outcome.sim.stats.cycles = 999;
            w.append(1, &outcome).unwrap();
            w.append(2, &sample_outcome()).unwrap();
        }
        // Simulate a kill mid-write: a torn trailing line.
        {
            use std::io::Write as _;
            let mut f = std::fs::OpenOptions::new().append(true).open(&path).unwrap();
            write!(f, "{{\"key\":3,\"v\":1,\"data\":[1,2").unwrap();
        }
        let map = load(&path).unwrap();
        assert_eq!(map.len(), 2);
        assert_eq!(map[&1].sim.stats.cycles, 999, "last duplicate wins");
        assert!(map.get(&3).is_none(), "torn line skipped");
        let first = std::fs::read_to_string(&path).unwrap();
        assert!(first.starts_with(&header_line(42)));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn header_run_fingerprint_round_trips() {
        assert_eq!(decode_header_run(&header_line(0)), Some(0));
        assert_eq!(decode_header_run(&header_line(u64::MAX)), Some(u64::MAX));
        // Record lines and pre-fingerprint headers carry no run.
        assert_eq!(decode_header_run(&encode_entry(1, &sample_outcome())), None);
        assert_eq!(
            decode_header_run("{\"schema\":\"wishbranch.journal/v1\"}"),
            None
        );
        assert_eq!(decode_header_run("garbage"), None);
    }

    #[test]
    fn reopening_with_a_different_run_fingerprint_is_refused() {
        let dir = std::env::temp_dir().join(format!("wb-journal-run-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("journal.jsonl");
        let _ = std::fs::remove_file(&path);

        drop(JournalWriter::open(&path, 7).unwrap());
        // Same fingerprint reopens fine (the kill-then-resume path).
        drop(JournalWriter::open(&path, 7).unwrap());
        // A different fingerprint is a typed refusal, not an I/O error.
        let err = JournalWriter::open(&path, 8).unwrap_err();
        match err {
            JournalError::RunMismatch { expected, found } => {
                assert_eq!(expected, 8);
                assert_eq!(found, Some(7));
            }
            JournalError::Io(e) => panic!("expected RunMismatch, got Io: {e}"),
        }

        // A legacy header without a fingerprint is also refused.
        std::fs::write(&path, "{\"schema\":\"wishbranch.journal/v1\"}\n").unwrap();
        let err = JournalWriter::open(&path, 7).unwrap_err();
        assert!(
            matches!(err, JournalError::RunMismatch { found: None, .. }),
            "legacy header must refuse with found=None: {err}"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_journal_is_empty() {
        let map = load(Path::new("/nonexistent/journal.jsonl")).unwrap();
        assert!(map.is_empty());
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
