//! Profile → compile → simulate → verify, the spine of every experiment.
//!
//! Every stage returns a typed [`Result`]: a profiling fault, a cycle- or
//! step-budget overrun, or an architectural divergence is a [`JobError`]
//! value, never a panic, so the sweep engine can isolate one bad job to
//! one failed cell.

use crate::error::JobError;
use wishbranch_compiler::{compile, BinaryVariant, CompileOptions, CompiledBinary};
use wishbranch_ir::{Interpreter, Profile};
use wishbranch_isa::exec::Machine;
use wishbranch_isa::Program;
use wishbranch_uarch::{MachineConfig, SimError, SimResult, SimScratch, Simulator};
use wishbranch_workloads::{Benchmark, InputSet};

/// Step budget for the IR profiling interpreter and the functional
/// reference machine. Generous (every suite benchmark finishes in a tiny
/// fraction of this at any scale we run) but finite, so a non-terminating
/// workload surfaces as a typed fault instead of a hang.
pub const DEFAULT_STEP_BUDGET: u64 = 1 << 40;

/// Everything an experiment needs to know.
#[derive(Clone, Debug)]
pub struct ExperimentConfig {
    /// Workload scale (outer iterations) used when the caller builds the
    /// suite; kept here for reporting.
    pub scale: i32,
    /// The simulated machine (Table 2 defaults).
    pub machine: MachineConfig,
    /// Compiler heuristics (§4.2 defaults).
    pub compile: CompileOptions,
    /// Input set the compiler profiles on. The paper's compiler sees only
    /// a training profile; running other inputs exposes the compile-time /
    /// run-time mismatch that motivates wish branches (Fig. 1).
    pub train_input: InputSet,
}

impl ExperimentConfig {
    /// Paper-fidelity configuration at the given workload scale.
    #[must_use]
    pub fn paper(scale: i32) -> ExperimentConfig {
        ExperimentConfig {
            scale,
            machine: MachineConfig::default(),
            compile: CompileOptions::default(),
            train_input: InputSet::B,
        }
    }

    /// A scaled-down machine (shallower pipeline, smaller window) for fast
    /// debug-build tests and doctests. Keeps all mechanisms active.
    #[must_use]
    pub fn quick(scale: i32) -> ExperimentConfig {
        let machine = MachineConfig {
            pipeline_depth: 10,
            rob_size: 64,
            ..MachineConfig::default()
        };
        ExperimentConfig {
            scale,
            machine,
            compile: CompileOptions::default(),
            train_input: InputSet::B,
        }
    }

    /// Replaces the simulated machine
    /// (`ExperimentConfig::paper(scale).with_machine(...)`).
    #[must_use]
    pub fn with_machine(mut self, machine: MachineConfig) -> ExperimentConfig {
        self.machine = machine;
        self
    }

    /// Replaces the compiler heuristics.
    #[must_use]
    pub fn with_compile(mut self, compile: CompileOptions) -> ExperimentConfig {
        self.compile = compile;
        self
    }

    /// Replaces the training input the compiler profiles on.
    #[must_use]
    pub fn with_train(mut self, train_input: InputSet) -> ExperimentConfig {
        self.train_input = train_input;
        self
    }
}

/// One simulated binary run, with everything needed for the figures.
#[derive(Clone, PartialEq, Debug)]
pub struct RunOutcome {
    /// The simulation result (stats + final architectural state).
    pub sim: SimResult,
    /// The compiler's report for this binary.
    pub report: wishbranch_compiler::CompileReport,
    /// Static program statistics (sizes, wish-branch counts).
    pub static_stats: wishbranch_isa::StaticStats,
}

/// Profiles `bench` on the given input with the IR interpreter.
///
/// # Errors
///
/// [`JobError::ProfileFault`] if the interpreter faults or exhausts
/// [`DEFAULT_STEP_BUDGET`].
pub fn profile_on(bench: &Benchmark, input: InputSet) -> Result<Profile, JobError> {
    let mut interp = Interpreter::new();
    for (a, v) in (bench.input_fn)(input) {
        interp.mem.insert(a, v);
    }
    interp
        .run(&bench.module, DEFAULT_STEP_BUDGET)
        .map(|r| r.profile)
        .map_err(|e| JobError::ProfileFault(format!("{}: {e}", bench.name)))
}

/// Compiles `bench` into the requested Table 3 variant, profiling on the
/// experiment's training input.
///
/// # Errors
///
/// Propagates the [`JobError::ProfileFault`] of a failed training run.
pub fn compile_variant(
    bench: &Benchmark,
    variant: BinaryVariant,
    ec: &ExperimentConfig,
) -> Result<CompiledBinary, JobError> {
    let profile = profile_on(bench, ec.train_input)?;
    Ok(compile(&bench.module, &profile, variant, &ec.compile))
}

/// Compiles the input-dependence-aware extension binary
/// ([`BinaryVariant::WishAdaptive`]): the compiler profiles on *several*
/// training inputs and uses the misprediction spread across them as the
/// §3.6 "input data set dependence" signal.
///
/// # Errors
///
/// Propagates the [`JobError::ProfileFault`] of any failed training run.
pub fn compile_adaptive_variant(
    bench: &Benchmark,
    train_inputs: &[InputSet],
    ec: &ExperimentConfig,
) -> Result<CompiledBinary, JobError> {
    let profiles: Vec<_> = train_inputs
        .iter()
        .map(|&i| profile_on(bench, i))
        .collect::<Result<_, _>>()?;
    Ok(wishbranch_compiler::compile_adaptive(&bench.module, &profiles, &ec.compile))
}

/// Simulates `program` on `machine` with the benchmark's input set, and
/// verifies the retired state against the functional reference machine.
///
/// # Errors
///
/// [`JobError::CycleBudgetExceeded`] if the simulation exhausts the
/// machine's cycle budget, [`JobError::VerifyDivergence`] if it retires a
/// different architectural state than the functional reference (which
/// would be a simulator bug).
pub fn simulate(
    program: &Program,
    bench: &Benchmark,
    input: InputSet,
    machine: &MachineConfig,
) -> Result<SimResult, JobError> {
    let result = simulate_unverified(program, bench, input, machine)?;
    verify_retired_state(program, bench, input, &result)?;
    Ok(result)
}

/// The cycle simulation alone, without the architectural cross-check —
/// the [`crate::SweepRunner`] uses this to time the simulate and verify
/// phases separately. Prefer [`simulate`] unless you verify yourself.
///
/// # Errors
///
/// [`JobError::CycleBudgetExceeded`] if the simulation exhausts the
/// machine's cycle budget.
pub fn simulate_unverified(
    program: &Program,
    bench: &Benchmark,
    input: InputSet,
    machine: &MachineConfig,
) -> Result<SimResult, JobError> {
    simulate_unverified_pooled(program, bench, input, machine, &mut SimScratch::default())
}

/// [`simulate_unverified`] with caller-owned scratch buffers: the
/// simulator is built with [`Simulator::with_scratch`] and recycled back
/// into `scratch` afterwards, so a worker running many jobs back to back
/// reuses its large allocations (decoded µops, ROB, queues) instead of
/// reallocating them per job. Bit-identical to the unpooled path.
///
/// # Errors
///
/// [`JobError::CycleBudgetExceeded`] if the simulation exhausts the
/// machine's cycle budget.
pub fn simulate_unverified_pooled(
    program: &Program,
    bench: &Benchmark,
    input: InputSet,
    machine: &MachineConfig,
    scratch: &mut SimScratch,
) -> Result<SimResult, JobError> {
    let inputs = (bench.input_fn)(input);
    let mut sim = Simulator::with_scratch(program, machine.clone(), scratch);
    for &(a, v) in &inputs {
        sim.preload_mem(a, v);
    }
    let run = sim.run().map_err(|e| match e {
        SimError::CycleLimitExceeded { limit } => JobError::CycleBudgetExceeded { limit },
    });
    sim.recycle(scratch);
    run
}

/// Simulates `program` with the retired-instruction stream enabled and
/// replays every retirement through the lockstep reference oracle
/// ([`wishbranch_isa::LockstepOracle`]): the committed PC chain, guard
/// values, every register/predicate/memory write, and the legality of
/// forced (non-architectural) wish/DHP directions are checked µop by µop,
/// and the first divergent retirement is reported with full context. The
/// run is then anchored twice: the oracle's final state must match the
/// simulator's retired state, and the independent functional reference
/// machine must agree on retired memory.
///
/// The NO-FETCH limit study (`no_false_predicate_fetch`) omits guard-false
/// µops from the pipeline entirely, so its retired stream is not a
/// contiguous architectural walk; lockstep replay is skipped for that
/// oracle machine (the final-state verification still runs).
///
/// # Errors
///
/// [`JobError::CycleBudgetExceeded`] on budget exhaustion,
/// [`JobError::VerifyDivergence`] naming the first divergent retirement
/// (or final-state mismatch).
pub fn simulate_lockstep(
    program: &Program,
    bench: &Benchmark,
    input: InputSet,
    machine: &MachineConfig,
) -> Result<SimResult, JobError> {
    simulate_lockstep_pooled(program, bench, input, machine, &mut SimScratch::default())
}

/// [`simulate_lockstep`] with caller-owned scratch buffers (see
/// [`simulate_unverified_pooled`]). Bit-identical to the unpooled path.
///
/// # Errors
///
/// As [`simulate_lockstep`].
pub fn simulate_lockstep_pooled(
    program: &Program,
    bench: &Benchmark,
    input: InputSet,
    machine: &MachineConfig,
    scratch: &mut SimScratch,
) -> Result<SimResult, JobError> {
    let inputs = (bench.input_fn)(input);
    let mut sim = Simulator::with_scratch(program, machine.clone(), scratch);
    for &(a, v) in &inputs {
        sim.preload_mem(a, v);
    }
    let lockstep = !machine.oracles.no_false_predicate_fetch;
    if lockstep {
        sim.enable_retire_log();
    }
    let run = sim.run().map_err(|e| match e {
        SimError::CycleLimitExceeded { limit } => JobError::CycleBudgetExceeded { limit },
    });
    let records = if lockstep { sim.take_retire_log() } else { Vec::new() };
    sim.recycle(scratch);
    let result = run?;
    if lockstep {
        lockstep_check(program, bench, input, &result, &records)?;
    }
    verify_retired_state(program, bench, input, &result)?;
    Ok(result)
}

/// Replays a retired-instruction stream through the lockstep reference
/// oracle and anchors the oracle's final state against the simulator's
/// retired state. This is the oracle half of [`simulate_lockstep`],
/// factored out so the batched engine path can run it against a retire
/// log collected by a [`wishbranch_uarch::BatchSimulator`] lane. Callers
/// are responsible for skipping it for the NO-FETCH limit machine
/// (`no_false_predicate_fetch`), whose retired stream is not a contiguous
/// architectural walk.
///
/// # Errors
///
/// [`JobError::VerifyDivergence`] naming the first divergent retirement
/// or final-state mismatch.
pub fn lockstep_check(
    program: &Program,
    bench: &Benchmark,
    input: InputSet,
    result: &SimResult,
    records: &[wishbranch_isa::RetireRecord],
) -> Result<(), JobError> {
    let inputs = (bench.input_fn)(input);
    let mut oracle = wishbranch_isa::LockstepOracle::new(program);
    for &(a, v) in &inputs {
        oracle.preload_mem(a, v);
    }
    let label = format!("{} {input}", bench.name);
    for record in records {
        oracle.step(record).map_err(|d| JobError::VerifyDivergence {
            detail: format!("{label}: lockstep {d}"),
        })?;
    }
    oracle
        .finish(&result.final_regs, &result.final_preds, &result.final_mem)
        .map_err(|d| JobError::VerifyDivergence {
            detail: format!("{label}: lockstep {d}"),
        })
}

/// Checks a simulation's retired memory state against the functional
/// reference machine (always-on architectural verification — cheap next
/// to the cycle sim).
///
/// # Errors
///
/// [`JobError::SimFault`] if the reference run itself fails,
/// [`JobError::VerifyDivergence`] if the simulator retired a different
/// architectural state — naming the first differing address.
pub fn verify_retired_state(
    program: &Program,
    bench: &Benchmark,
    input: InputSet,
    result: &SimResult,
) -> Result<(), JobError> {
    let inputs = (bench.input_fn)(input);
    let mut reference = Machine::new();
    for &(a, v) in &inputs {
        reference.mem.insert(a, v);
    }
    let expect = reference
        .run(program, DEFAULT_STEP_BUDGET)
        .map_err(|e| JobError::SimFault(format!("{} {input}: reference run failed: {e}", bench.name)))?;
    if result.final_mem == expect.mem {
        return Ok(());
    }
    // Name the first differing address so the failure table is actionable.
    let detail = result
        .final_mem
        .iter()
        .map(|(&a, &v)| (a, Some(v), expect.mem.get(&a).copied()))
        .chain(
            expect
                .mem
                .iter()
                .filter(|(a, _)| !result.final_mem.contains_key(a))
                .map(|(&a, &v)| (a, None, Some(v))),
        )
        .find(|&(_, got, want)| got != want)
        .map_or_else(
            || "memory images differ".to_string(),
            |(a, got, want)| format!("addr {a:#x}: simulator {got:?}, reference {want:?}"),
        );
    Err(JobError::VerifyDivergence {
        detail: format!("{} {input}: {detail}", bench.name),
    })
}

/// Profile (on the training input), compile, simulate (on `input`), verify.
///
/// # Errors
///
/// Any [`JobError`] from the profile, simulate or verify stages.
pub fn run_binary(
    bench: &Benchmark,
    variant: BinaryVariant,
    input: InputSet,
    ec: &ExperimentConfig,
) -> Result<RunOutcome, JobError> {
    let bin = compile_variant(bench, variant, ec)?;
    let sim = simulate(&bin.program, bench, input, &ec.machine)?;
    Ok(RunOutcome {
        sim,
        report: bin.report,
        static_stats: bin.program.static_stats(),
    })
}

/// Compiles `bench` into `variant` and simulates it on `input` with the
/// pipeview tracer enabled, returning the verified result and the typed
/// event stream ([`wishbranch_uarch::TraceEvent`]). Tracing does not
/// change timing, so the result matches an untraced run bit for bit.
///
/// [`BinaryVariant::WishAdaptive`] trains on inputs A and C (the same
/// convention as the adaptive figure); every other variant trains on the
/// experiment's single training input.
///
/// # Errors
///
/// Fails under the same conditions as [`simulate`].
pub fn trace_binary(
    bench: &Benchmark,
    variant: BinaryVariant,
    input: InputSet,
    ec: &ExperimentConfig,
) -> Result<(SimResult, Vec<wishbranch_uarch::TraceEvent>), JobError> {
    let bin = if variant == BinaryVariant::WishAdaptive {
        compile_adaptive_variant(bench, &[InputSet::A, InputSet::C], ec)?
    } else {
        compile_variant(bench, variant, ec)?
    };
    let inputs = (bench.input_fn)(input);
    let mut sim = Simulator::new(&bin.program, ec.machine.clone());
    for &(a, v) in &inputs {
        sim.preload_mem(a, v);
    }
    sim.enable_trace();
    let result = sim.run().map_err(|e| match e {
        SimError::CycleLimitExceeded { limit } => JobError::CycleBudgetExceeded { limit },
    })?;
    let trace = sim.take_trace();
    verify_retired_state(&bin.program, bench, input, &result)?;
    Ok((result, trace))
}

#[cfg(test)]
mod tests {
    use super::*;
    use wishbranch_workloads::suite;

    #[test]
    fn every_benchmark_compiles_to_every_variant_and_verifies() {
        let ec = ExperimentConfig::quick(30);
        for bench in suite(30) {
            for variant in BinaryVariant::ALL {
                let out = run_binary(&bench, variant, InputSet::B, &ec)
                    .expect("quick-scale suite run must succeed");
                assert!(
                    out.sim.stats.retired_uops > 100,
                    "{} {variant}: did too little work",
                    bench.name
                );
            }
        }
    }

    #[test]
    fn lockstep_oracle_validates_every_variant() {
        let ec = ExperimentConfig::quick(30);
        for bench in suite(30) {
            for variant in BinaryVariant::ALL {
                let bin = compile_variant(&bench, variant, &ec).expect("compile");
                simulate_lockstep(&bin.program, &bench, InputSet::B, &ec.machine)
                    .unwrap_or_else(|e| {
                        panic!("{} {variant}: lockstep diverged: {e}", bench.name)
                    });
            }
        }
    }

    #[test]
    fn wish_binaries_contain_wish_branches() {
        let ec = ExperimentConfig::quick(30);
        for bench in suite(30) {
            let jj = compile_variant(&bench, BinaryVariant::WishJumpJoin, &ec).expect("compile");
            let jjl =
                compile_variant(&bench, BinaryVariant::WishJumpJoinLoop, &ec).expect("compile");
            let s_jj = jj.program.static_stats();
            let s_jjl = jjl.program.static_stats();
            assert!(
                s_jjl.wish_branches >= s_jj.wish_branches,
                "{}: adding loops can only add wish branches",
                bench.name
            );
            assert_eq!(s_jj.wish_loops, 0, "{}: jj binary has no wish loops", bench.name);
            let normal =
                compile_variant(&bench, BinaryVariant::NormalBranch, &ec).expect("compile");
            assert_eq!(normal.program.static_stats().wish_branches, 0);
        }
    }

    #[test]
    fn suite_has_wish_loops_somewhere() {
        let ec = ExperimentConfig::quick(30);
        let total: usize = suite(30)
            .iter()
            .map(|b| {
                compile_variant(b, BinaryVariant::WishJumpJoinLoop, &ec)
                    .expect("compile")
                    .program
                    .static_stats()
                    .wish_loops
            })
            .sum();
        assert!(total >= 4, "suite must exercise wish loops, got {total}");
    }

    #[test]
    fn tiny_cycle_budget_is_a_typed_outcome_not_a_panic() {
        let ec = ExperimentConfig::quick(30);
        let bench = &suite(30)[0];
        let bin = compile_variant(bench, BinaryVariant::NormalBranch, &ec).expect("compile");
        let starved = ec.machine.clone().with_max_cycles(8);
        match simulate_unverified(&bin.program, bench, InputSet::B, &starved) {
            Err(JobError::CycleBudgetExceeded { limit: 8 }) => {}
            other => panic!("expected CycleBudgetExceeded, got {other:?}"),
        }
    }

    #[test]
    fn corrupted_retired_memory_is_a_verify_divergence() {
        let ec = ExperimentConfig::quick(30);
        let bench = &suite(30)[0];
        let bin = compile_variant(bench, BinaryVariant::NormalBranch, &ec).expect("compile");
        let mut sim =
            simulate_unverified(&bin.program, bench, InputSet::B, &ec.machine).expect("sim");
        sim.final_mem.insert(u64::MAX, i64::MIN);
        match verify_retired_state(&bin.program, bench, InputSet::B, &sim) {
            Err(JobError::VerifyDivergence { detail }) => {
                assert!(detail.contains("addr"), "detail names the address: {detail}");
            }
            other => panic!("expected VerifyDivergence, got {other:?}"),
        }
    }
}
