//! The experiment catalog: every figure and table of the reproduction
//! behind one stable id, runnable on a shared [`SweepRunner`] and returning
//! a serializable [`Report`].
//!
//! The CLI (`wishbranch-repro`) dispatches entirely through this enum, so
//! the set of experiment names, their titles and their payload kinds live
//! in exactly one place.

use crate::ablation;
use crate::engine::SweepRunner;
use crate::figures;
use crate::report::{Report, ReportData};
use crate::tables;

/// One of the paper's (or the reproduction's extension) experiments.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Experiment {
    /// Fig. 1 — the motivation: predicated code vs branches across inputs.
    Fig1,
    /// Fig. 2 — predication overhead breakdown.
    Fig2,
    /// Fig. 10 — main result, trained input.
    Fig10,
    /// Fig. 11 — wish jump/join dynamic class breakdown.
    Fig11,
    /// Fig. 12 — main result, unseen input.
    Fig12,
    /// Fig. 13 — wish loop dynamic class breakdown.
    Fig13,
    /// Fig. 14 — instruction-window sweep.
    Fig14,
    /// Extension — Fig. 14-style memory-latency sweep on the non-blocking
    /// hierarchy (finite MSHRs, store-to-load forwarding).
    Fig14Mem,
    /// Fig. 15 — pipeline-depth sweep.
    Fig15,
    /// Fig. 16 — less-accurate branch predictor.
    Fig16,
    /// Table 4 — simulated benchmark characteristics.
    Tab4,
    /// Table 5 — wish-jjl vs per-benchmark best binaries.
    Tab5,
    /// Extension — §3.6 input-dependence-aware adaptive binary.
    Adaptive,
    /// Extension — dynamic hammock predication comparison (§6 related work).
    Dhp,
    /// Extension — predicate prediction comparison.
    PredPred,
    /// Ablation — JRS confidence-threshold sweep.
    AblConfidence,
    /// Ablation — MSHR-count sweep on the non-blocking hierarchy.
    AblMshr,
    /// Ablation — compiler wish-jump threshold N sweep.
    AblThresholds,
}

impl Experiment {
    /// Every experiment, in presentation order.
    pub const ALL: [Experiment; 18] = [
        Experiment::Fig1,
        Experiment::Fig2,
        Experiment::Fig10,
        Experiment::Fig11,
        Experiment::Fig12,
        Experiment::Fig13,
        Experiment::Fig14,
        Experiment::Fig14Mem,
        Experiment::Fig15,
        Experiment::Fig16,
        Experiment::Tab4,
        Experiment::Tab5,
        Experiment::Adaptive,
        Experiment::Dhp,
        Experiment::PredPred,
        Experiment::AblConfidence,
        Experiment::AblMshr,
        Experiment::AblThresholds,
    ];

    /// The stable id used by the CLI and as the `--report-dir` file stem.
    #[must_use]
    pub fn id(self) -> &'static str {
        match self {
            Experiment::Fig1 => "fig1",
            Experiment::Fig2 => "fig2",
            Experiment::Fig10 => "fig10",
            Experiment::Fig11 => "fig11",
            Experiment::Fig12 => "fig12",
            Experiment::Fig13 => "fig13",
            Experiment::Fig14 => "fig14",
            Experiment::Fig14Mem => "fig14_mem_latency",
            Experiment::Fig15 => "fig15",
            Experiment::Fig16 => "fig16",
            Experiment::Tab4 => "tab4",
            Experiment::Tab5 => "tab5",
            Experiment::Adaptive => "adaptive",
            Experiment::Dhp => "dhp",
            Experiment::PredPred => "predpred",
            Experiment::AblConfidence => "abl_confidence",
            Experiment::AblMshr => "abl_mshr",
            Experiment::AblThresholds => "abl_thresholds",
        }
    }

    /// Looks an experiment up by its [`Experiment::id`].
    #[must_use]
    pub fn from_id(id: &str) -> Option<Experiment> {
        Experiment::ALL.into_iter().find(|e| e.id() == id)
    }

    /// Runs the experiment on `runner` and wraps the result as a
    /// [`Report`]. Figure titles come from the figure itself; the other
    /// kinds carry fixed titles.
    #[must_use]
    #[allow(deprecated)] // the catalog is the blessed caller of the old entry points
    pub fn run(self, runner: &SweepRunner) -> Report {
        match self {
            Experiment::Fig1 => Report::figure("fig1", figures::figure1(runner)),
            Experiment::Fig2 => Report::figure("fig2", figures::figure2(runner)),
            Experiment::Fig10 => Report::figure("fig10", figures::figure10(runner)),
            Experiment::Fig11 => Report {
                id: "fig11".into(),
                title: "Fig.11: dynamic wish jumps/joins per 1M retired µops by class".into(),
                data: ReportData::Confidence(figures::figure11(runner)),
            },
            Experiment::Fig12 => Report::figure("fig12", figures::figure12(runner)),
            Experiment::Fig13 => Report {
                id: "fig13".into(),
                title: "Fig.13: dynamic wish loops per 1M retired µops by class".into(),
                data: ReportData::LoopBreakdown(figures::figure13(runner)),
            },
            Experiment::Fig14 => Report {
                id: "fig14".into(),
                title: "Fig.14: instruction window sweep".into(),
                data: ReportData::ParamSweep {
                    param: "window".into(),
                    rows: figures::figure14(runner),
                },
            },
            Experiment::Fig14Mem => Report {
                id: "fig14_mem_latency".into(),
                title: "Fig.14-mem: memory-latency sweep, non-blocking hierarchy".into(),
                data: ReportData::ParamSweep {
                    param: "mem_latency".into(),
                    rows: figures::figure14_mem_latency(runner),
                },
            },
            Experiment::Fig15 => Report {
                id: "fig15".into(),
                title: "Fig.15: pipeline depth sweep".into(),
                data: ReportData::ParamSweep {
                    param: "depth".into(),
                    rows: figures::figure15(runner),
                },
            },
            Experiment::Fig16 => Report::figure("fig16", figures::figure16(runner)),
            Experiment::Tab4 => Report {
                id: "tab4".into(),
                title: "Table 4: simulated benchmarks".into(),
                data: ReportData::Benchmarks(tables::table4(runner)),
            },
            Experiment::Tab5 => Report {
                id: "tab5".into(),
                title: "Table 5: exec-time reduction of wish-jjl binary over best binaries"
                    .into(),
                data: ReportData::BestBinary(tables::table5(runner)),
            },
            Experiment::Adaptive => Report::figure("adaptive", figures::figure_adaptive(runner)),
            Experiment::Dhp => Report::figure("dhp", figures::figure_dhp(runner)),
            Experiment::PredPred => {
                Report::figure("predpred", figures::figure_predicate_prediction(runner))
            }
            Experiment::AblConfidence => Report::ablation(
                "abl_confidence",
                "Ablation: JRS threshold vs avg wish-jjl exec time (normalized to normal)",
                "threshold",
                ablation::confidence_threshold_sweep(runner, &[2, 5, 9, 13, 15]),
            ),
            Experiment::AblMshr => Report::ablation(
                "abl_mshr",
                "Ablation: MSHRs vs avg wish-jjl exec time (normalized; 0 = unlimited)",
                "mshrs",
                ablation::mshr_sweep(runner, &[0, 32, 8, 2]),
            ),
            Experiment::AblThresholds => Report::ablation(
                "abl_thresholds",
                "Ablation: wish-jump threshold N vs avg wish-jjl exec time (normalized)",
                "N",
                ablation::wish_threshold_sweep(runner, &[0, 3, 5, 9, 15]),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_round_trip_and_are_unique() {
        for e in Experiment::ALL {
            assert_eq!(Experiment::from_id(e.id()), Some(e));
        }
        let mut ids: Vec<&str> = Experiment::ALL.iter().map(|e| e.id()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), Experiment::ALL.len());
    }

    #[test]
    fn unknown_id_is_none() {
        assert_eq!(Experiment::from_id("fig99"), None);
    }
}
