//! Regeneration of Tables 4 and 5.
//!
//! As with the figures, each table batches its jobs onto a caller-owned
//! [`SweepRunner`].

use crate::engine::{SweepJob, SweepRunner};
use wishbranch_compiler::BinaryVariant;

/// One row of Table 4: benchmark characteristics for the normal-branch and
/// wish jump/join/loop binaries.
#[derive(Clone, PartialEq, Debug)]
pub struct Table4Row {
    /// Benchmark name.
    pub name: String,
    /// Dynamic retired µops (normal binary).
    pub dynamic_uops: u64,
    /// Static conditional branches (normal binary).
    pub static_branches: usize,
    /// Dynamic retired conditional branches (normal binary).
    pub dynamic_branches: u64,
    /// Mispredicted branches per 1000 retired µops (normal binary).
    pub mispredicts_per_kuop: f64,
    /// Retired µops per cycle (normal binary).
    pub upc: f64,
    /// Static wish branches in the wish jump/join/loop binary.
    pub static_wish: usize,
    /// … of which wish loops (%).
    pub static_wish_loop_pct: f64,
    /// Dynamic retired wish branches in the wish jump/join/loop binary.
    pub dynamic_wish: u64,
    /// … of which wish loops (%).
    pub dynamic_wish_loop_pct: f64,
}

/// **Table 4** — simulated benchmark characteristics.
#[deprecated(note = "run `Experiment::Tab4` through the Experiment catalog (or a typed SweepRequest via run_request) instead; this free-function entry point will be removed next release")]
#[must_use]
pub fn table4(runner: &SweepRunner) -> Vec<Table4Row> {
    let ec = runner.config().clone();
    let input = ec.train_input;
    let mut jobs = Vec::new();
    for b in 0..runner.benches().len() {
        jobs.push(SweepJob::standard(b, BinaryVariant::NormalBranch, input, &ec));
        jobs.push(SweepJob::standard(b, BinaryVariant::WishJumpJoinLoop, input, &ec));
    }
    runner
        .try_run(jobs)
        .chunks_exact(2)
        .enumerate()
        // A benchmark with a failed job is dropped from the table (the
        // failure stays in the runner's failure table); its row is all
        // measured quantities, so there is no meaningful partial row.
        .filter_map(|(b, pair)| {
            let (normal, wish) = match (&pair[0], &pair[1]) {
                (Ok(n), Ok(w)) => (n, w),
                _ => return None,
            };
            let nstats = &normal.outcome.sim.stats;
            let nstatic = normal.outcome.static_stats;
            let wstats = &wish.outcome.sim.stats;
            let wstatic = wish.outcome.static_stats;
            let dyn_wish = wstats.wish_branches_total();
            Some(Table4Row {
                name: runner.benches()[b].name.into(),
                dynamic_uops: nstats.retired_uops,
                static_branches: nstatic.cond_branches,
                dynamic_branches: nstats.retired_cond_branches,
                mispredicts_per_kuop: nstats.mispredicts_per_kuop(),
                upc: nstats.upc(),
                static_wish: wstatic.wish_branches,
                static_wish_loop_pct: if wstatic.wish_branches == 0 {
                    0.0
                } else {
                    wstatic.wish_loops as f64 * 100.0 / wstatic.wish_branches as f64
                },
                dynamic_wish: dyn_wish,
                dynamic_wish_loop_pct: if dyn_wish == 0 {
                    0.0
                } else {
                    wstats.wish_loops.total() as f64 * 100.0 / dyn_wish as f64
                },
            })
        })
        .collect()
}

/// One row of Table 5: execution-time reduction of the wish
/// jump/join/loop binary over the best competing binaries.
#[derive(Clone, PartialEq, Debug)]
pub struct Table5Row {
    /// Benchmark name.
    pub name: String,
    /// % reduction vs the normal-branch binary.
    pub vs_normal_pct: f64,
    /// % reduction vs the best predicated binary for this benchmark.
    pub vs_best_predicated_pct: f64,
    /// Which predicated binary was best (`DEF`/`MAX`).
    pub best_predicated: &'static str,
    /// % reduction vs the best non-wish binary for this benchmark.
    pub vs_best_pct: f64,
    /// Which non-wish binary was best (`DEF`/`MAX`/`BR`).
    pub best: &'static str,
}

/// **Table 5** — wish jump/join/loop binary vs per-benchmark best binaries.
/// The paper stresses this comparison is *unrealistically generous to the
/// baseline*: it assumes the compiler could know at compile time which
/// binary wins at run time.
#[deprecated(note = "run `Experiment::Tab5` through the Experiment catalog (or a typed SweepRequest via run_request) instead; this free-function entry point will be removed next release")]
#[must_use]
pub fn table5(runner: &SweepRunner) -> Vec<Table5Row> {
    let ec = runner.config().clone();
    let input = ec.train_input;
    let variants = [
        BinaryVariant::NormalBranch,
        BinaryVariant::BaseDef,
        BinaryVariant::BaseMax,
        BinaryVariant::WishJumpJoinLoop,
    ];
    let mut jobs = Vec::new();
    for b in 0..runner.benches().len() {
        for v in variants {
            jobs.push(SweepJob::standard(b, v, input, &ec));
        }
    }
    let cycles: Vec<Option<u64>> = runner
        .try_run(jobs)
        .into_iter()
        .map(|r| r.ok().map(|r| r.outcome.sim.stats.cycles))
        .collect();
    let mut rows: Vec<Table5Row> = cycles
        .chunks_exact(variants.len())
        .enumerate()
        // A benchmark with any failed variant is dropped: every column of
        // its row is a cross-variant comparison.
        .filter_map(|(b, chunk)| {
            let [normal, def, max, wjl] = [chunk[0]?, chunk[1]?, chunk[2]?, chunk[3]?];
            let (best_pred, best_pred_label) = if def <= max { (def, "DEF") } else { (max, "MAX") };
            let (best, best_label) = if normal < best_pred {
                (normal, "BR")
            } else {
                (best_pred, best_pred_label)
            };
            let pct = |base: u64| (base as f64 - wjl as f64) * 100.0 / base as f64;
            Some(Table5Row {
                name: runner.benches()[b].name.into(),
                vs_normal_pct: pct(normal),
                vs_best_predicated_pct: pct(best_pred),
                best_predicated: best_pred_label,
                vs_best_pct: pct(best),
                best: best_label,
            })
        })
        .collect();
    // AVG row (arithmetic mean of the reductions, as in the paper) — over
    // the surviving benchmarks; omitted if every benchmark failed.
    let n = rows.len() as f64;
    if !rows.is_empty() {
        rows.push(Table5Row {
            name: "AVG".into(),
            vs_normal_pct: rows.iter().map(|r| r.vs_normal_pct).sum::<f64>() / n,
            vs_best_predicated_pct: rows.iter().map(|r| r.vs_best_predicated_pct).sum::<f64>() / n,
            best_predicated: "-",
            vs_best_pct: rows.iter().map(|r| r.vs_best_pct).sum::<f64>() / n,
            best: "-",
        });
    }
    rows
}
