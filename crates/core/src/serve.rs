//! Sweep-as-a-service: a long-running server that accepts
//! `wishbranch.request/v1` documents over local TCP from many concurrent
//! clients, admits them under per-tenant simulated-cycle budgets, shards
//! each request across a bounded pool of worker *processes*, and streams
//! per-job results back as `wishbranch.response/v1` JSONL lines as they
//! land.
//!
//! ## Protocol
//!
//! A client connects, writes one request line, and reads response lines
//! until the connection closes:
//!
//! ```text
//! → {"schema":"wishbranch.request/v1","tenant":"alice","experiments":["fig10"],...}
//! ← {"schema":"wishbranch.response/v1","type":"accepted","tenant":"alice","fingerprint":123}
//! ← {"schema":"wishbranch.response/v1","type":"job","experiment":"fig10","key":K,
//!    "entry":{"key":K,"v":2,"data":[...]}}        (one per job, as it lands)
//! ← {"schema":"wishbranch.response/v1","type":"report","experiment":"fig10",
//!    "report":{"schema":"wishbranch.report/v1",...}}
//! ← {"schema":"wishbranch.response/v1","type":"done","jobs":N,...,"failures":[...]}
//! ```
//!
//! A refused request gets a single `rejected` line (typed `kind` +
//! human-readable `reason`) and the connection closes. Each `job` line
//! embeds a verbatim `wishbranch.journal/v1` entry, so clients reuse the
//! journal codec ([`journal::decode_entry`](crate::journal::decode_entry))
//! to recover full bit-identical [`RunOutcome`](crate::RunOutcome)s.
//!
//! ## Sharding and crash recovery
//!
//! One shard = one experiment of the request. Each shard runs in a worker
//! process (`wishbranch-repro --worker`, fed one
//! `wishbranch.workerspec/v1` line on stdin), bounded by
//! [`ServeConfig::max_procs`] process slots across all connections. Every
//! shard journals to its own per-connection file; if a worker dies
//! mid-shard (crash, `kill -9`, injected abort), the server respawns it
//! in resume mode — completed jobs replay bit-identically from the
//! journal and re-announce through the stream, the server deduplicates by
//! job key, and the client sees a complete, gap-free, duplicate-free
//! stream. Respawns strip the request's fault plan, mirroring the CLI's
//! kill-then-resume contract (a resume legitimately does not re-inject
//! the fault that killed the run).
//!
//! ## Admission and billing
//!
//! Tenants named in [`ServeConfig::tenant_budgets`] are admitted until
//! their accumulated simulated cycles reach the budget; the next request
//! is `rejected` with kind `cycle_budget_exceeded` (the same stable kind
//! string as the per-job typed error). Journal and artifact-store hits
//! bill zero cycles — tenants pay only for simulation actually executed.

use std::collections::{HashMap, HashSet};
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

use crate::error::{ChaosKind, ChaosPlan, FaultPlan};
use crate::journal::encode_entry;
use crate::minijson::JsonValue;
use crate::report::json_escape;
use crate::request::SweepRequest;
use crate::store::ArtifactStore;

/// Schema tag on every response line.
pub const RESPONSE_SCHEMA: &str = "wishbranch.response/v1";

/// Schema tag on the one-line spec a worker process reads from stdin.
pub const WORKER_SPEC_SCHEMA: &str = "wishbranch.workerspec/v1";

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Server configuration: where worker processes come from, where state
/// lives, and who may spend how much.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// The binary to fork/exec per shard (run with `--worker`); normally
    /// the server's own executable.
    pub worker_exe: PathBuf,
    /// Root for per-connection shard journals
    /// (`<state_dir>/conn-N/<experiment>/journal.jsonl`).
    pub state_dir: PathBuf,
    /// Content-addressed artifact store shared by every worker, run and
    /// tenant; `None` disables the store.
    pub store_dir: Option<PathBuf>,
    /// Maximum worker processes alive at once, across all connections.
    pub max_procs: usize,
    /// Per-tenant simulated-cycle budgets. Tenants not named here are
    /// unmetered.
    pub tenant_budgets: HashMap<String, u64>,
    /// How many times a dead *or hung* worker is respawned (in
    /// journal-resume mode) before its shard is reported failed.
    pub max_respawns: u32,
    /// How long a connection may take to deliver its one request line
    /// before it is `rejected` with kind `request_timeout`. `0` disables.
    pub read_timeout_ms: u64,
    /// Per-write timeout toward the client. A stalled client (full socket
    /// buffers) trips this; the connection is marked dead, workers finish
    /// (journal and store stay complete), and the handler thread exits
    /// instead of pinning. `0` disables.
    pub write_timeout_ms: u64,
    /// Interval of the worker liveness heartbeat line (propagated into
    /// the worker spec). Heartbeats are consumed server-side and never
    /// forwarded to clients.
    pub heartbeat_ms: u64,
    /// Silence threshold after which a worker is declared hung, killed,
    /// and respawned in resume mode (any worker output — heartbeat or
    /// protocol line — counts as liveness).
    pub liveness_timeout_ms: u64,
    /// Shard deadline = the request's per-job `budget_wall_ms` × this
    /// factor, spanning every respawn attempt of the shard. On expiry the
    /// worker is killed and the shard fails with typed kind
    /// `shard_deadline_exceeded`. `0` (or a request without a wall
    /// budget) disables the deadline.
    pub shard_deadline_factor: u64,
    /// Maximum accepted request-line length in bytes (newline included);
    /// longer requests are `rejected` with kind `request_too_large`
    /// instead of buffering without bound.
    pub max_request_bytes: usize,
    /// Deterministic serve-layer fault injection (worker-side clauses are
    /// propagated into attempt-0 worker specs; respawns strip them, like
    /// the fault plan). Empty in production.
    pub chaos_plan: ChaosPlan,
}

impl ServeConfig {
    /// A config with defaults: 4 process slots, 2 respawns, no store, no
    /// budgets, 10 s read/write timeouts, 250 ms heartbeats with a 5 s
    /// liveness threshold, shard deadline 100 × `budget_wall_ms`, 1 MiB
    /// request cap, no chaos.
    #[must_use]
    pub fn new(worker_exe: impl Into<PathBuf>, state_dir: impl Into<PathBuf>) -> ServeConfig {
        ServeConfig {
            worker_exe: worker_exe.into(),
            state_dir: state_dir.into(),
            store_dir: None,
            max_procs: 4,
            tenant_budgets: HashMap::new(),
            max_respawns: 2,
            read_timeout_ms: 10_000,
            write_timeout_ms: 10_000,
            heartbeat_ms: 250,
            liveness_timeout_ms: 5_000,
            shard_deadline_factor: 100,
            max_request_bytes: 1 << 20,
            chaos_plan: ChaosPlan::new(),
        }
    }
}

/// The attempt-indexed respawn/reconnect backoff schedule. Deterministic
/// by construction — no wall-clock sampling, no jitter — so chaos runs
/// reproduce: the *timing* of a respawn varies with the host, the
/// schedule consulted does not.
const BACKOFF_MS: [u64; 6] = [10, 25, 50, 100, 250, 500];

/// The pause before respawn/reconnect attempt `attempt` (1-based).
/// Attempt-indexed into a fixed bounded schedule, saturating at the last
/// entry (500 ms).
#[must_use]
pub fn respawn_backoff(attempt: u32) -> Duration {
    let idx = (attempt.saturating_sub(1) as usize).min(BACKOFF_MS.len() - 1);
    Duration::from_millis(BACKOFF_MS[idx])
}

fn timeout_of(ms: u64) -> Option<Duration> {
    (ms > 0).then(|| Duration::from_millis(ms))
}

/// A counting semaphore bounding live worker processes.
struct Slots {
    free: Mutex<usize>,
    cv: Condvar,
}

impl Slots {
    fn new(n: usize) -> Slots {
        Slots {
            free: Mutex::new(n.max(1)),
            cv: Condvar::new(),
        }
    }

    /// Blocks until a slot is free and claims it. The claim is RAII: the
    /// returned guard releases on drop, so a panicking spawn path (or any
    /// early return) can never leak a slot.
    fn acquire(&self) -> SlotGuard<'_> {
        let mut free = lock(&self.free);
        while *free == 0 {
            free = self.cv.wait(free).unwrap_or_else(PoisonError::into_inner);
        }
        *free -= 1;
        SlotGuard { slots: self }
    }

    /// Slots currently free (test/observability hook).
    #[cfg(test)]
    fn available(&self) -> usize {
        *lock(&self.free)
    }
}

/// An RAII claim on one process slot; dropping it releases the slot.
struct SlotGuard<'a> {
    slots: &'a Slots,
}

impl Drop for SlotGuard<'_> {
    fn drop(&mut self) {
        *lock(&self.slots.free) += 1;
        self.slots.cv.notify_one();
    }
}

/// Server-lifetime resilience counters, reported to every client as a
/// `stats` line immediately before its `done` line.
#[derive(Debug, Default)]
struct ServerStats {
    /// Workers respawned in resume mode (died or hung, then restarted).
    respawns: AtomicU64,
    /// Workers killed because their liveness heartbeat went silent.
    hung_killed: AtomicU64,
    /// Workers killed because their shard deadline expired.
    deadline_kills: AtomicU64,
    /// Requests refused with a typed `rejected` line.
    rejected_requests: AtomicU64,
}

/// State shared by every connection thread.
struct Shared {
    cfg: ServeConfig,
    /// Simulated cycles spent so far, per tenant.
    ledger: Mutex<HashMap<String, u64>>,
    slots: Slots,
    conn_seq: AtomicU64,
    stats: ServerStats,
    /// Set by [`Server::shutdown`]: stop accepting, drain in-flight work.
    draining: AtomicBool,
    /// Live connection handlers (guarded by `idle_cv` for drain waits).
    active: Mutex<u64>,
    idle_cv: Condvar,
}

/// Decrements the live-handler count when a connection thread exits,
/// panicking or not, and wakes any drain waiter.
struct ActiveGuard<'a> {
    shared: &'a Shared,
}

impl Drop for ActiveGuard<'_> {
    fn drop(&mut self) {
        *lock(&self.shared.active) -= 1;
        self.shared.idle_cv.notify_all();
    }
}

/// The sweep server: one [`bind`](Server::bind), then [`run`](Server::run)
/// forever. Each accepted connection is one request, handled on its own
/// thread; shards compete for the shared process-slot pool.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

/// Aggregated statistics of one finished shard, lifted from the worker's
/// `done` line.
#[derive(Clone, Debug, Default)]
struct ShardStats {
    jobs: u64,
    failed: u64,
    store_hits: u64,
    store_misses: u64,
    store_quarantined: u64,
    profile_misses: u64,
    compile_misses: u64,
    sim_cycles: u64,
    /// Jobs the shard ran inside multi-lane lockstep batches.
    batched_jobs: u64,
    /// The raw contents of the shard's `failures` array (no brackets).
    failures_raw: String,
}

/// A shard-level failure: a stable `kind` for the failure table plus a
/// human-readable reason.
struct ShardError {
    kind: &'static str,
    reason: String,
}

impl ShardError {
    fn failed(reason: String) -> ShardError {
        ShardError {
            kind: "shard_failed",
            reason,
        }
    }
}

impl Server {
    /// Binds the server to `addr` (e.g. `"127.0.0.1:0"` for an ephemeral
    /// port) and creates the state directory.
    ///
    /// # Errors
    ///
    /// I/O errors binding the socket or creating `state_dir`.
    pub fn bind(addr: &str, cfg: ServeConfig) -> io::Result<Server> {
        std::fs::create_dir_all(&cfg.state_dir)?;
        if let Some(store_dir) = &cfg.store_dir {
            std::fs::create_dir_all(store_dir)?;
        }
        let listener = TcpListener::bind(addr)?;
        let slots = Slots::new(cfg.max_procs);
        Ok(Server {
            listener,
            shared: Arc::new(Shared {
                cfg,
                ledger: Mutex::new(HashMap::new()),
                slots,
                conn_seq: AtomicU64::new(0),
                stats: ServerStats::default(),
                draining: AtomicBool::new(false),
                active: Mutex::new(0),
                idle_cv: Condvar::new(),
            }),
        })
    }

    /// The bound address (useful after binding port 0).
    ///
    /// # Errors
    ///
    /// The socket's local address could not be read.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Accepts connections until [`shutdown`](Server::shutdown) drains
    /// the server, one handler thread per connection. Returns only after
    /// every in-flight handler (and its workers) has finished — shard
    /// journals are flushed per job, so a drained server leaves nothing
    /// torn behind.
    ///
    /// # Errors
    ///
    /// A fatal accept-loop I/O error (per-connection errors are contained
    /// in their handler threads).
    pub fn run(&self) -> io::Result<()> {
        for stream in self.listener.incoming() {
            if self.shared.draining.load(Ordering::SeqCst) {
                break;
            }
            let stream = stream?;
            let shared = Arc::clone(&self.shared);
            // Count the handler *before* the thread starts so a drain
            // that begins right now still waits for it.
            *lock(&shared.active) += 1;
            std::thread::spawn(move || {
                let _live = ActiveGuard { shared: &shared };
                handle_connection(&shared, stream);
            });
        }
        self.wait_idle();
        Ok(())
    }

    /// Graceful drain: stop accepting new connections, let every
    /// in-flight shard finish and stream its results, then return. Safe
    /// to call from any thread (e.g. a SIGTERM watcher) while
    /// [`run`](Server::run) blocks in accept.
    ///
    /// # Errors
    ///
    /// The socket's local address could not be read (needed to wake the
    /// blocked accept loop).
    pub fn shutdown(&self) -> io::Result<()> {
        self.shared.draining.store(true, Ordering::SeqCst);
        // Wake the accept loop with a throwaway connection so it observes
        // the drain flag instead of blocking forever.
        let _ = TcpStream::connect(self.local_addr()?);
        self.wait_idle();
        Ok(())
    }

    fn wait_idle(&self) {
        let mut active = lock(&self.shared.active);
        while *active > 0 {
            active = self
                .shared
                .idle_cv
                .wait(active)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// Binds to `addr`, prints one `listening on <addr>` line to stdout
/// (flushed, so wrappers can scrape the port), and serves forever.
///
/// # Errors
///
/// Bind or accept-loop I/O errors.
pub fn serve_forever(addr: &str, cfg: ServeConfig) -> io::Result<()> {
    let server = Server::bind(addr, cfg)?;
    println!("listening on {}", server.local_addr()?);
    io::stdout().flush()?;
    server.run()
}

/// A line writer shared by every shard of one connection. Once a write
/// fails (client went away) further writes are skipped; workers still
/// finish so the journal and store stay complete.
struct ConnWriter {
    stream: TcpStream,
    dead: bool,
}

impl ConnWriter {
    fn send(&mut self, line: &str) {
        if self.dead {
            return;
        }
        let mut buf = Vec::with_capacity(line.len() + 1);
        buf.extend_from_slice(line.as_bytes());
        buf.push(b'\n');
        if self.stream.write_all(&buf).is_err() {
            self.dead = true;
        }
    }
}

fn rejected_line(kind: &str, reason: &str) -> String {
    format!(
        "{{\"schema\":\"{RESPONSE_SCHEMA}\",\"type\":\"rejected\",\"kind\":\"{}\",\"reason\":\"{}\"}}",
        json_escape(kind),
        json_escape(reason)
    )
}

/// Sends a typed `rejected` line and counts it in the server stats.
fn reject(shared: &Shared, writer: &mut ConnWriter, kind: &str, reason: &str) {
    shared.stats.rejected_requests.fetch_add(1, Ordering::Relaxed);
    writer.send(&rejected_line(kind, reason));
}

fn handle_connection(shared: &Shared, stream: TcpStream) {
    let cfg = &shared.cfg;
    // Slow-client defenses: a client that never finishes its request
    // line, or never drains its responses, must not pin this thread.
    let _ = stream.set_read_timeout(timeout_of(cfg.read_timeout_ms));
    let _ = stream.set_write_timeout(timeout_of(cfg.write_timeout_ms));
    let reader = match stream.try_clone() {
        Ok(s) => BufReader::new(s),
        Err(_) => return,
    };
    let mut writer = ConnWriter {
        stream,
        dead: false,
    };
    // The request line (newline included) is capped: one extra byte of
    // budget distinguishes "exactly at the cap" from "overflowed it".
    let cap = cfg.max_request_bytes as u64;
    let mut limited = reader.take(cap + 1);
    let mut line = String::new();
    match limited.read_line(&mut line) {
        Ok(_) => {}
        Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) => {
            reject(
                shared,
                &mut writer,
                "request_timeout",
                &format!(
                    "no complete request line within {} ms",
                    cfg.read_timeout_ms
                ),
            );
            return;
        }
        Err(_) => return,
    }
    if line.len() as u64 > cap {
        reject(
            shared,
            &mut writer,
            "request_too_large",
            &format!("request line exceeds {} bytes", cfg.max_request_bytes),
        );
        return;
    }
    if line.trim().is_empty() {
        return;
    }
    let req = match SweepRequest::parse(line.trim()) {
        Ok(req) => req,
        Err(e) => {
            reject(shared, &mut writer, e.kind(), &e.to_string());
            return;
        }
    };
    // Admission: a metered tenant whose ledger has reached its budget is
    // refused before any work starts.
    if let Some(&budget) = shared.cfg.tenant_budgets.get(&req.tenant) {
        let spent = lock(&shared.ledger).get(&req.tenant).copied().unwrap_or(0);
        if spent >= budget {
            reject(
                shared,
                &mut writer,
                "cycle_budget_exceeded",
                &format!(
                    "tenant {:?} has spent {spent} of {budget} budgeted simulated cycles",
                    req.tenant
                ),
            );
            return;
        }
    }
    writer.send(&format!(
        "{{\"schema\":\"{RESPONSE_SCHEMA}\",\"type\":\"accepted\",\"tenant\":\"{}\",\"fingerprint\":{}}}",
        json_escape(&req.tenant),
        req.fingerprint()
    ));
    let conn = shared.conn_seq.fetch_add(1, Ordering::SeqCst);
    let conn_dir = shared.cfg.state_dir.join(format!("conn-{conn:06}"));
    let writer = Mutex::new(writer);
    let seen = Mutex::new(HashSet::new());
    // Shard deadline: one absolute instant spanning every respawn attempt
    // of every shard, derived from the request's own wall budget.
    let deadline = match (req.budgets.wall_ms, cfg.shard_deadline_factor) {
        (Some(ms), factor) if factor > 0 => {
            Some(Instant::now() + Duration::from_millis(ms.saturating_mul(factor)))
        }
        _ => None,
    };
    // One shard per experiment, all in flight at once; the process-slot
    // semaphore (shared across connections) bounds real concurrency.
    let results: Vec<Result<ShardStats, ShardError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = req
            .experiments
            .iter()
            .map(|exp| {
                let mut shard_req = req.clone();
                shard_req.experiments = vec![*exp];
                let conn_dir = &conn_dir;
                let writer = &writer;
                let seen = &seen;
                scope.spawn(move || run_shard(shared, conn_dir, shard_req, deadline, seen, writer))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(result) => result,
                Err(_) => Err(ShardError::failed("shard thread panicked".to_string())),
            })
            .collect()
    });
    // Synthesize the request-level `done` line from the shard summaries.
    let mut total = ShardStats::default();
    let mut failure_items: Vec<String> = Vec::new();
    for (exp, result) in req.experiments.iter().zip(results) {
        match result {
            Ok(stats) => {
                total.jobs += stats.jobs;
                total.failed += stats.failed;
                total.store_hits += stats.store_hits;
                total.store_misses += stats.store_misses;
                total.store_quarantined += stats.store_quarantined;
                total.profile_misses += stats.profile_misses;
                total.compile_misses += stats.compile_misses;
                total.sim_cycles += stats.sim_cycles;
                total.batched_jobs += stats.batched_jobs;
                if !stats.failures_raw.is_empty() {
                    failure_items.push(stats.failures_raw);
                }
            }
            Err(e) => {
                total.failed += 1;
                failure_items.push(format!(
                    "{{\"index\":0,\"kind\":\"{}\",\"job\":\"{}\",\"error\":\"{}\",\"attempts\":0}}",
                    json_escape(e.kind),
                    json_escape(exp.id()),
                    json_escape(&e.reason)
                ));
            }
        }
    }
    lock(&shared.ledger)
        .entry(req.tenant.clone())
        .and_modify(|spent| *spent += total.sim_cycles)
        .or_insert(total.sim_cycles);
    let stats_line = format!(
        "{{\"schema\":\"{RESPONSE_SCHEMA}\",\"type\":\"stats\",\"respawns\":{},\
         \"hung_killed\":{},\"deadline_kills\":{},\"rejected_requests\":{}}}",
        shared.stats.respawns.load(Ordering::Relaxed),
        shared.stats.hung_killed.load(Ordering::Relaxed),
        shared.stats.deadline_kills.load(Ordering::Relaxed),
        shared.stats.rejected_requests.load(Ordering::Relaxed),
    );
    let mut w = lock(&writer);
    w.send(&stats_line);
    w.send(&format!(
        "{{\"schema\":\"{RESPONSE_SCHEMA}\",\"type\":\"done\",\"jobs\":{},\"failed\":{},\
         \"store_hits\":{},\"store_misses\":{},\"store_quarantined\":{},\
         \"profile_misses\":{},\"compile_misses\":{},\
         \"sim_cycles\":{},\"batched_jobs\":{},\"failures\":[{}]}}",
        total.jobs,
        total.failed,
        total.store_hits,
        total.store_misses,
        total.store_quarantined,
        total.profile_misses,
        total.compile_misses,
        total.sim_cycles,
        total.batched_jobs,
        failure_items.join(",")
    ));
}

/// How one worker attempt ended, as seen by the shard's respawn loop.
enum ShardOutcome {
    /// The worker printed its shard `done` line and exited.
    Done(ShardStats),
    /// The worker died (crash, abort, torn write) before `done`.
    Died,
    /// The worker's liveness heartbeat went silent; it was killed.
    HungKilled,
    /// The shard deadline expired; the worker was killed.
    DeadlineKilled,
}

/// Runs one shard to completion: spawn a worker, forward its stream,
/// respawn in resume mode (after a deterministic attempt-indexed backoff)
/// if it dies or hangs before finishing. A shard-deadline expiry is a
/// budget violation, not a transient fault, so it fails the shard without
/// respawning.
fn run_shard(
    shared: &Shared,
    conn_dir: &Path,
    mut shard_req: SweepRequest,
    deadline: Option<Instant>,
    seen: &Mutex<HashSet<u64>>,
    writer: &Mutex<ConnWriter>,
) -> Result<ShardStats, ShardError> {
    let exp_id = shard_req.experiments[0].id();
    let shard_dir = conn_dir.join(exp_id);
    std::fs::create_dir_all(&shard_dir)
        .map_err(|e| ShardError::failed(format!("creating shard dir: {e}")))?;
    let journal_path = shard_dir.join("journal.jsonl");
    let mut attempt = 0u32;
    loop {
        let resume = attempt > 0;
        if resume {
            // Mirror the CLI's kill-then-resume contract: a resume does
            // not re-inject the fault that killed the previous attempt.
            shard_req.fault_plan = Some(FaultPlan::new());
        }
        // Chaos rides only on the first attempt, stripped on respawn for
        // the same reason.
        let chaos = if resume {
            String::new()
        } else {
            shared.cfg.chaos_plan.worker_spec()
        };
        let outcome = {
            let _slot = shared.slots.acquire();
            spawn_and_stream(
                shared,
                &journal_path,
                resume,
                &shard_req,
                &chaos,
                deadline,
                seen,
                writer,
            )
        };
        match outcome {
            Ok(ShardOutcome::Done(stats)) => return Ok(stats),
            Ok(ShardOutcome::Died | ShardOutcome::HungKilled) => {
                attempt += 1;
                if attempt > shared.cfg.max_respawns {
                    return Err(ShardError::failed(format!(
                        "worker for {exp_id} died {attempt} times without completing its shard"
                    )));
                }
                shared.stats.respawns.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(respawn_backoff(attempt));
            }
            Ok(ShardOutcome::DeadlineKilled) => {
                return Err(ShardError {
                    kind: "shard_deadline_exceeded",
                    reason: format!(
                        "shard {exp_id} exceeded its deadline \
                         (budget_wall_ms x {}) and was killed",
                        shared.cfg.shard_deadline_factor
                    ),
                });
            }
            Err(e) => return Err(ShardError::failed(format!("worker for {exp_id}: {e}"))),
        }
    }
}

/// The one-line `wishbranch.workerspec/v1` document a worker reads on
/// stdin. The request rides along as an escaped string, so the worker
/// reuses [`SweepRequest::parse`] verbatim.
fn worker_spec_line(
    journal: &Path,
    store: Option<&Path>,
    resume: bool,
    req: &SweepRequest,
    heartbeat_ms: u64,
    chaos: &str,
) -> String {
    let store_field = match store {
        Some(p) => format!("\"{}\"", json_escape(&p.display().to_string())),
        None => "null".to_string(),
    };
    format!(
        "{{\"schema\":\"{WORKER_SPEC_SCHEMA}\",\"journal\":\"{}\",\"store\":{},\"resume\":{},\
         \"heartbeat_ms\":{},\"chaos\":\"{}\",\"request\":\"{}\"}}",
        json_escape(&journal.display().to_string()),
        store_field,
        resume,
        heartbeat_ms,
        json_escape(chaos),
        json_escape(&req.to_json())
    )
}

/// Spawns one worker process and forwards its stream, monitoring
/// liveness (any output, heartbeat or protocol, counts) and the shard
/// deadline. A worker that goes silent past the liveness threshold, or
/// outlives the deadline, is killed — never waited on forever.
#[allow(clippy::too_many_arguments)]
fn spawn_and_stream(
    shared: &Shared,
    journal_path: &Path,
    resume: bool,
    shard_req: &SweepRequest,
    chaos: &str,
    deadline: Option<Instant>,
    seen: &Mutex<HashSet<u64>>,
    writer: &Mutex<ConnWriter>,
) -> io::Result<ShardOutcome> {
    let cfg = &shared.cfg;
    let mut child = Command::new(&cfg.worker_exe)
        .arg("--worker")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()?;
    {
        let mut stdin = child.stdin.take().ok_or_else(|| {
            io::Error::new(io::ErrorKind::BrokenPipe, "worker stdin unavailable")
        })?;
        let mut spec = worker_spec_line(
            journal_path,
            cfg.store_dir.as_deref(),
            resume,
            shard_req,
            cfg.heartbeat_ms,
            chaos,
        );
        spec.push('\n');
        stdin.write_all(spec.as_bytes())?;
        // Dropping stdin closes it: the worker sees EOF after the spec.
    }
    let stdout = child.stdout.take().ok_or_else(|| {
        io::Error::new(io::ErrorKind::BrokenPipe, "worker stdout unavailable")
    })?;
    // A reader thread feeds lines through a channel so this thread can
    // wait with a timeout — a blocking read on a hung worker's pipe would
    // never return. The channel is unbounded, so the reader never blocks
    // and always drains to EOF once the worker dies.
    let (tx, rx) = mpsc::channel::<io::Result<String>>();
    let reader = std::thread::spawn(move || {
        for line in BufReader::new(stdout).lines() {
            if tx.send(line).is_err() {
                return;
            }
        }
    });
    let liveness = Duration::from_millis(cfg.liveness_timeout_ms.max(1));
    let mut last_activity = Instant::now();
    let mut stats = None;
    let outcome = loop {
        let now = Instant::now();
        if deadline.is_some_and(|d| now >= d) {
            let _ = child.kill();
            shared.stats.deadline_kills.fetch_add(1, Ordering::Relaxed);
            break ShardOutcome::DeadlineKilled;
        }
        let Some(live_rem) = liveness.checked_sub(now.duration_since(last_activity)) else {
            let _ = child.kill();
            shared.stats.hung_killed.fetch_add(1, Ordering::Relaxed);
            break ShardOutcome::HungKilled;
        };
        let wait = match deadline {
            Some(d) => live_rem.min(d.duration_since(now)),
            None => live_rem,
        };
        match rx.recv_timeout(wait) {
            Ok(Ok(line)) => {
                last_activity = Instant::now();
                match line_type(&line) {
                    // Heartbeats prove liveness and are never forwarded.
                    Some("heartbeat") => {}
                    Some("job") => {
                        // Validate before claiming the key: a torn or
                        // garbled line must neither reach the client nor
                        // block the real line a journal replay will send.
                        if ResponseLine::parse(&line).is_ok() {
                            if let Some(key) = job_line_key(&line) {
                                if lock(seen).insert(key) {
                                    lock(writer).send(&line);
                                }
                            }
                        }
                    }
                    Some("report") => {
                        if ResponseLine::parse(&line).is_ok() {
                            lock(writer).send(&line);
                        }
                    }
                    Some("done") => stats = parse_shard_done(&line),
                    _ => {} // stray worker output; never forwarded
                }
            }
            // Pipe closed (worker exited) or errored: classify by whether
            // the shard `done` line arrived first.
            Ok(Err(_)) | Err(mpsc::RecvTimeoutError::Disconnected) => {
                break match stats.take() {
                    Some(s) => ShardOutcome::Done(s),
                    None => ShardOutcome::Died,
                };
            }
            // Woke to re-check liveness/deadline; loop around.
            Err(mpsc::RecvTimeoutError::Timeout) => {}
        }
    };
    let _ = child.kill(); // no-op if already exited
    let _ = child.wait(); // always reap; never leave a zombie
    let _ = reader.join();
    Ok(outcome)
}

/// The `type` of one of *our* response lines (emitter-controlled format:
/// `schema` first, `type` second).
fn line_type(line: &str) -> Option<&str> {
    let rest = line.strip_prefix(&format!(
        "{{\"schema\":\"{RESPONSE_SCHEMA}\",\"type\":\""
    ))?;
    rest.split('"').next()
}

/// The top-level `"key":` of a job line (field order is fixed:
/// `experiment`, `key`, `entry` — the first match is the top-level one).
fn job_line_key(line: &str) -> Option<u64> {
    let idx = line.find("\"key\":")?;
    let digits: String = line[idx + 6..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

fn parse_shard_done(line: &str) -> Option<ShardStats> {
    let doc = JsonValue::parse(line).ok()?;
    let field = |name: &str| doc.get(name).and_then(JsonValue::as_u64);
    let failures_raw = {
        let start = line.find("\"failures\":[")? + "\"failures\":[".len();
        let end = line.rfind(']')?;
        line.get(start..end)?.to_string()
    };
    Some(ShardStats {
        jobs: field("jobs")?,
        failed: field("failed")?,
        store_hits: field("store_hits")?,
        store_misses: field("store_misses")?,
        store_quarantined: field("store_quarantined")?,
        profile_misses: field("profile_misses")?,
        compile_misses: field("compile_misses")?,
        sim_cycles: field("sim_cycles")?,
        // Absent on done lines written before the batch dimension existed
        // (e.g. a journal replayed across an upgrade): default to 0.
        batched_jobs: field("batched_jobs").unwrap_or(0),
        failures_raw,
    })
}

// ---------------------------------------------------------------------------
// Worker mode
// ---------------------------------------------------------------------------

/// The body of `wishbranch-repro --worker`: reads one
/// `wishbranch.workerspec/v1` line from stdin, runs the embedded request
/// with journal + artifact store attached, and prints protocol lines
/// (`job` per completed job, `report` per experiment, one shard `done`)
/// to stdout. Returns the process exit code: 0 done, 4 aborted mid-shard
/// (the server respawns in resume mode), 2 on a bad spec.
#[must_use]
pub fn worker_main() -> i32 {
    let mut spec_line = String::new();
    if io::stdin().read_line(&mut spec_line).is_err() {
        eprintln!("worker: failed reading spec from stdin");
        return 2;
    }
    match worker_run(spec_line.trim()) {
        Ok(aborted) => {
            if aborted {
                4
            } else {
                0
            }
        }
        Err(msg) => {
            eprintln!("worker: {msg}");
            2
        }
    }
}

/// Runs one worker spec. `Ok(true)` means the shard aborted mid-run.
fn worker_run(spec_line: &str) -> Result<bool, String> {
    let spec = JsonValue::parse(spec_line).map_err(|e| format!("bad spec JSON: {e}"))?;
    match spec.get("schema").and_then(JsonValue::as_str) {
        Some(WORKER_SPEC_SCHEMA) => {}
        other => return Err(format!("bad spec schema {other:?}")),
    }
    let journal_path = spec
        .get("journal")
        .and_then(JsonValue::as_str)
        .ok_or("spec missing \"journal\"")?
        .to_string();
    let store_path = spec
        .get("store")
        .and_then(JsonValue::as_str)
        .map(str::to_string);
    let resume = spec
        .get("resume")
        .and_then(JsonValue::as_bool)
        .unwrap_or(false);
    let heartbeat_ms = spec
        .get("heartbeat_ms")
        .and_then(JsonValue::as_u64)
        .unwrap_or(250);
    let chaos = match spec.get("chaos").and_then(JsonValue::as_str) {
        Some(s) if !s.is_empty() => ChaosPlan::parse(s)?,
        _ => ChaosPlan::new(),
    };
    let request_text = spec
        .get("request")
        .and_then(JsonValue::as_str)
        .ok_or("spec missing \"request\"")?;
    let req = SweepRequest::parse(request_text).map_err(|e| format!("bad request: {e}"))?;
    let mut runner = req.build_runner().map_err(|e| e.to_string())?;
    let mut chaos_store = None;
    if let Some(path) = store_path {
        let store =
            Arc::new(ArtifactStore::open(path).map_err(|e| format!("opening store: {e}"))?);
        runner.attach_store(Arc::clone(&store));
        chaos_store = Some(store);
    }
    // Liveness heartbeat: a dedicated thread proves this process is alive
    // even between slow jobs. Each println! is one locked write, so
    // heartbeats never tear another thread's protocol line. An injected
    // hang clears `hb_alive` first — a hung worker must look hung.
    let hb_alive = Arc::new(AtomicBool::new(true));
    {
        let alive = Arc::clone(&hb_alive);
        let interval = Duration::from_millis(heartbeat_ms.max(1));
        std::thread::spawn(move || {
            let mut seq = 0u64;
            loop {
                std::thread::sleep(interval);
                if !alive.load(Ordering::SeqCst) {
                    return;
                }
                println!(
                    "{{\"schema\":\"{RESPONSE_SCHEMA}\",\"type\":\"heartbeat\",\"seq\":{seq}}}"
                );
                seq += 1;
            }
        });
    }
    // The observer streams every completed job — fresh, journal hit or
    // store hit — as a protocol line, and doubles as the chaos injection
    // point: faults strike *after* the journal append and store put for
    // this job, so a respawned resume always replays it bit-identically.
    // Stdout is line-buffered through the runtime lock, so concurrent
    // workers' println!s never interleave within a line.
    let current_exp = Arc::new(Mutex::new(String::new()));
    let label = Arc::clone(&current_exp);
    let completed = AtomicU64::new(0);
    let hb = Arc::clone(&hb_alive);
    runner.set_observer(Arc::new(move |key, result| {
        let line = format!(
            "{{\"schema\":\"{RESPONSE_SCHEMA}\",\"type\":\"job\",\"experiment\":\"{}\",\"key\":{key},\"entry\":{}}}",
            json_escape(&lock(&label)),
            encode_entry(key, &result.outcome)
        );
        let index = completed.fetch_add(1, Ordering::SeqCst);
        match chaos.fault_at(index) {
            Some(ChaosKind::TornLine) => {
                // A crash mid-write: half the line, no newline, gone.
                let bytes = line.as_bytes();
                let mut out = io::stdout().lock();
                let _ = out.write_all(&bytes[..bytes.len() / 2]);
                let _ = out.flush();
                drop(out);
                std::process::exit(4);
            }
            Some(ChaosKind::Hang) => {
                println!("{line}");
                let _ = io::stdout().flush();
                hb.store(false, Ordering::SeqCst);
                loop {
                    std::thread::sleep(Duration::from_secs(3600));
                }
            }
            Some(ChaosKind::CorruptStore) => {
                println!("{line}");
                if let Some(store) = &chaos_store {
                    let _ = std::fs::write(store.path_for(key), "{\"key\":torn");
                }
            }
            _ => println!("{line}"),
        }
    }));
    runner
        .attach_journal(Path::new(&journal_path), resume)
        .map_err(|e| format!("attaching journal: {e}"))?;
    for exp in &req.experiments {
        *lock(&current_exp) = exp.id().to_string();
        let report = exp.run(&runner);
        if runner.aborted() {
            return Ok(true);
        }
        println!(
            "{{\"schema\":\"{RESPONSE_SCHEMA}\",\"type\":\"report\",\"experiment\":\"{}\",\"report\":{}}}",
            json_escape(exp.id()),
            report.to_json()
        );
    }
    let s = runner.summary();
    let failure_items: Vec<String> = runner
        .failures()
        .iter()
        .map(|f| {
            format!(
                "{{\"index\":{},\"kind\":\"{}\",\"job\":\"{}\",\"error\":\"{}\",\"attempts\":{}}}",
                f.index,
                json_escape(f.error.kind()),
                json_escape(&format!(
                    "bench{} {} @{}",
                    f.job.bench,
                    f.job.variant.label(),
                    f.job.input.label()
                )),
                json_escape(&f.error.to_string()),
                f.attempts
            )
        })
        .collect();
    println!(
        "{{\"schema\":\"{RESPONSE_SCHEMA}\",\"type\":\"done\",\"jobs\":{},\"failed\":{},\
         \"store_hits\":{},\"store_misses\":{},\"store_quarantined\":{},\
         \"profile_misses\":{},\"compile_misses\":{},\
         \"sim_cycles\":{},\"batched_jobs\":{},\"failures\":[{}]}}",
        s.jobs,
        s.failed,
        s.store_hits,
        s.store_misses,
        s.store_quarantined,
        s.profile_misses,
        s.compile_misses,
        s.sim_cycles,
        s.batched_jobs,
        failure_items.join(",")
    );
    Ok(false)
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

/// One parsed `wishbranch.response/v1` line.
#[derive(Clone, PartialEq, Debug)]
pub enum ResponseLine {
    /// The request was admitted; results follow.
    Accepted {
        /// The admitted tenant.
        tenant: String,
        /// The canonical-request fingerprint the server computed.
        fingerprint: u64,
    },
    /// The request was refused; the connection closes after this line.
    Rejected {
        /// Stable error discriminator (e.g. `cycle_budget_exceeded`).
        kind: String,
        /// Human-readable explanation.
        reason: String,
    },
    /// One completed job.
    Job {
        /// The experiment this job belongs to.
        experiment: String,
        /// The job's stable key ([`SweepRunner::job_key`](crate::SweepRunner::job_key)).
        key: u64,
        /// The verbatim `wishbranch.journal/v1` entry (decode with
        /// [`journal::decode_entry`](crate::journal::decode_entry)).
        entry: String,
    },
    /// One experiment's finished `wishbranch.report/v1` document.
    Report {
        /// The experiment id.
        experiment: String,
        /// The verbatim report JSON.
        report: String,
    },
    /// A worker liveness pulse. Consumed server-side — clients never see
    /// one on a healthy stream — but parseable so a captured worker
    /// stream stays fully decodable.
    Heartbeat {
        /// Monotonic pulse counter within one worker process.
        seq: u64,
    },
    /// Server-lifetime resilience counters, sent immediately before
    /// `done`: what the resilience layer absorbed to produce this stream.
    Stats {
        /// Workers respawned in resume mode (died or hung).
        respawns: u64,
        /// Workers killed for a silent heartbeat.
        hung_killed: u64,
        /// Workers killed for an expired shard deadline.
        deadline_kills: u64,
        /// Requests refused with a typed `rejected` line.
        rejected_requests: u64,
    },
    /// The request finished; aggregate statistics.
    Done {
        /// Jobs completed across all shards.
        jobs: u64,
        /// Jobs that failed after retries.
        failed: u64,
        /// Jobs served from the shared artifact store.
        store_hits: u64,
        /// Jobs that consulted the store and missed.
        store_misses: u64,
        /// Corrupt store entries quarantined during this request.
        store_quarantined: u64,
        /// Profiling runs actually executed.
        profile_misses: u64,
        /// Compiles actually executed.
        compile_misses: u64,
        /// Simulated cycles billed to the tenant.
        sim_cycles: u64,
        /// Jobs that ran inside multi-lane lockstep batches (0 when
        /// batching is off or the server predates the batch dimension).
        batched_jobs: u64,
        /// The raw JSON `failures` array (same element shape as the
        /// summary document's failure table).
        failures: String,
    },
}

impl ResponseLine {
    /// Parses one response line.
    ///
    /// # Errors
    ///
    /// A description of the malformation, if the line is not a
    /// well-formed response line.
    pub fn parse(line: &str) -> Result<ResponseLine, String> {
        let doc = JsonValue::parse(line).map_err(|e| format!("bad response JSON: {e}"))?;
        match doc.get("schema").and_then(JsonValue::as_str) {
            Some(RESPONSE_SCHEMA) => {}
            other => return Err(format!("bad response schema {other:?}")),
        }
        let text = |name: &str| {
            doc.get(name)
                .and_then(JsonValue::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("response line missing {name:?}"))
        };
        let num = |name: &str| {
            doc.get(name)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("response line missing {name:?}"))
        };
        // `entry`/`report`/`failures` payloads are returned as verbatim
        // substrings; each is the final field of its line, so the payload
        // runs to the closing brace.
        let tail_after = |marker: &str| {
            let start = line.find(marker).map(|i| i + marker.len())?;
            line.get(start..line.len() - 1).map(str::to_string)
        };
        match doc.get("type").and_then(JsonValue::as_str) {
            Some("accepted") => Ok(ResponseLine::Accepted {
                tenant: text("tenant")?,
                fingerprint: num("fingerprint")?,
            }),
            Some("rejected") => Ok(ResponseLine::Rejected {
                kind: text("kind")?,
                reason: text("reason")?,
            }),
            Some("job") => Ok(ResponseLine::Job {
                experiment: text("experiment")?,
                key: num("key")?,
                entry: tail_after("\"entry\":").ok_or("job line missing entry payload")?,
            }),
            Some("report") => Ok(ResponseLine::Report {
                experiment: text("experiment")?,
                report: tail_after("\"report\":").ok_or("report line missing payload")?,
            }),
            Some("heartbeat") => Ok(ResponseLine::Heartbeat { seq: num("seq")? }),
            Some("stats") => Ok(ResponseLine::Stats {
                respawns: num("respawns")?,
                hung_killed: num("hung_killed")?,
                deadline_kills: num("deadline_kills")?,
                rejected_requests: num("rejected_requests")?,
            }),
            Some("done") => Ok(ResponseLine::Done {
                jobs: num("jobs")?,
                failed: num("failed")?,
                store_hits: num("store_hits")?,
                store_misses: num("store_misses")?,
                store_quarantined: num("store_quarantined")?,
                profile_misses: num("profile_misses")?,
                compile_misses: num("compile_misses")?,
                sim_cycles: num("sim_cycles")?,
                batched_jobs: num("batched_jobs").unwrap_or(0),
                failures: {
                    let raw = tail_after("\"failures\":[").ok_or("done line missing failures")?;
                    raw.strip_suffix(']').map(str::to_string).unwrap_or(raw)
                },
            }),
            other => Err(format!("unknown response type {other:?}")),
        }
    }
}

/// An open response stream: iterate to receive parsed lines as the server
/// streams them. Parse failures surface as `InvalidData` I/O errors —
/// typed, never a panic and never silent termination. Generic over the
/// byte source (defaulting to the live TCP connection) so malformed-input
/// behavior is testable against any reader.
pub struct ResponseStream<R: io::Read = TcpStream> {
    lines: std::io::Lines<BufReader<R>>,
}

impl<R: io::Read> ResponseStream<R> {
    /// Wraps any byte source in a response stream (tests feed canned or
    /// deliberately torn bytes through this).
    pub fn from_reader(reader: R) -> ResponseStream<R> {
        ResponseStream {
            lines: BufReader::new(reader).lines(),
        }
    }
}

impl<R: io::Read> Iterator for ResponseStream<R> {
    type Item = io::Result<(String, ResponseLine)>;

    /// The next `(raw line, parsed line)` pair — raw is kept so clients
    /// can persist or diff verbatim protocol bytes.
    fn next(&mut self) -> Option<io::Result<(String, ResponseLine)>> {
        let line = match self.lines.next()? {
            Ok(line) => line,
            Err(e) => return Some(Err(e)),
        };
        match ResponseLine::parse(&line) {
            Ok(parsed) => Some(Ok((line, parsed))),
            Err(msg) => Some(Err(io::Error::new(io::ErrorKind::InvalidData, msg))),
        }
    }
}

/// Connects to a server, submits `req`, and returns the response stream.
/// The canonical client one-liner:
///
/// ```no_run
/// use wishbranch_core::{client_stream, Experiment, SweepRequest};
/// for line in client_stream("127.0.0.1:7005", &SweepRequest::new(vec![Experiment::Fig10]))? {
///     println!("{}", line?.0);
/// }
/// # Ok::<(), std::io::Error>(())
/// ```
///
/// # Errors
///
/// Connection or request-write I/O errors.
pub fn client_stream(addr: &str, req: &SweepRequest) -> io::Result<ResponseStream> {
    let mut stream = TcpStream::connect(addr)?;
    let mut line = req.to_json();
    line.push('\n');
    stream.write_all(line.as_bytes())?;
    stream.flush()?;
    Ok(ResponseStream {
        lines: BufReader::new(stream).lines(),
    })
}

/// A self-healing response stream: if the connection drops (or delivers a
/// torn line) before `done`, it re-submits the *same* fingerprinted
/// request after a deterministic backoff and merges the new stream into
/// the old one — deduplicating jobs by key and reports by experiment, so
/// the caller sees one gap-free, duplicate-free stream ending in exactly
/// one `done`. A server-side store or journal makes the retry cheap, but
/// even a cold re-run merges correctly because results are deterministic.
pub struct ResilientStream {
    addr: String,
    req: SweepRequest,
    max_reconnects: u32,
    reconnects_used: u32,
    inner: Option<ResponseStream>,
    seen_jobs: HashSet<u64>,
    seen_reports: HashSet<String>,
    accepted_sent: bool,
    /// The last `stats` line of the *current* connection, held back until
    /// that same connection's `done` proves the stream completed (a
    /// reconnect would otherwise leak a stale stats line mid-stream).
    pending_stats: Option<(String, ResponseLine)>,
    pending_done: Option<(String, ResponseLine)>,
    finished: bool,
}

/// How many reconnect attempts a resilient client makes by default.
pub const DEFAULT_RECONNECTS: u32 = 3;

/// Connects like [`client_stream`] but returns a [`ResilientStream`]
/// that survives up to `max_reconnects` dropped connections.
///
/// # Errors
///
/// Connection or request-write I/O errors on the *initial* connection
/// (later drops are absorbed by the stream itself).
pub fn client_stream_resilient(
    addr: &str,
    req: &SweepRequest,
    max_reconnects: u32,
) -> io::Result<ResilientStream> {
    let inner = client_stream(addr, req)?;
    Ok(ResilientStream {
        addr: addr.to_string(),
        req: req.clone(),
        max_reconnects,
        reconnects_used: 0,
        inner: Some(inner),
        seen_jobs: HashSet::new(),
        seen_reports: HashSet::new(),
        accepted_sent: false,
        pending_stats: None,
        pending_done: None,
        finished: false,
    })
}

impl ResilientStream {
    /// Reconnects left before the stream gives up.
    #[must_use]
    pub fn reconnects_remaining(&self) -> u32 {
        self.max_reconnects - self.reconnects_used
    }

    fn reconnect(&mut self) -> Option<io::Error> {
        self.inner = None;
        self.pending_stats = None; // stale: from the dead connection
        if self.reconnects_used >= self.max_reconnects {
            return Some(io::Error::new(
                io::ErrorKind::ConnectionAborted,
                "stream ended before done and the reconnect budget is exhausted",
            ));
        }
        self.reconnects_used += 1;
        std::thread::sleep(respawn_backoff(self.reconnects_used));
        match client_stream(&self.addr, &self.req) {
            Ok(stream) => {
                self.inner = Some(stream);
                None
            }
            Err(e) => Some(e),
        }
    }
}

impl Iterator for ResilientStream {
    type Item = io::Result<(String, ResponseLine)>;

    fn next(&mut self) -> Option<io::Result<(String, ResponseLine)>> {
        if let Some(done) = self.pending_done.take() {
            self.finished = true;
            return Some(Ok(done));
        }
        if self.finished {
            return None;
        }
        loop {
            let next = self.inner.as_mut()?.next();
            match next {
                Some(Ok((raw, parsed))) => match parsed {
                    ResponseLine::Accepted { .. } => {
                        if !self.accepted_sent {
                            self.accepted_sent = true;
                            return Some(Ok((raw, parsed)));
                        }
                    }
                    ResponseLine::Rejected { .. } => {
                        self.finished = true;
                        return Some(Ok((raw, parsed)));
                    }
                    ResponseLine::Job { key, .. } => {
                        if self.seen_jobs.insert(key) {
                            return Some(Ok((raw, parsed)));
                        }
                    }
                    ResponseLine::Report { ref experiment, .. } => {
                        if self.seen_reports.insert(experiment.clone()) {
                            return Some(Ok((raw, parsed)));
                        }
                    }
                    ResponseLine::Heartbeat { .. } => {}
                    ResponseLine::Stats { .. } => {
                        self.pending_stats = Some((raw, parsed));
                    }
                    ResponseLine::Done { .. } => {
                        if let Some(stats) = self.pending_stats.take() {
                            self.pending_done = Some((raw, parsed));
                            return Some(Ok(stats));
                        }
                        self.finished = true;
                        return Some(Ok((raw, parsed)));
                    }
                },
                // A dropped connection or torn line before `done`:
                // re-submit the same request and keep merging.
                Some(Err(_)) | None => {
                    if let Some(e) = self.reconnect() {
                        self.finished = true;
                        return Some(Err(e));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Experiment;

    #[test]
    fn response_lines_round_trip() {
        let cases = [
            format!(
                "{{\"schema\":\"{RESPONSE_SCHEMA}\",\"type\":\"accepted\",\"tenant\":\"a\",\"fingerprint\":7}}"
            ),
            rejected_line("cycle_budget_exceeded", "over budget"),
            format!(
                "{{\"schema\":\"{RESPONSE_SCHEMA}\",\"type\":\"job\",\"experiment\":\"fig10\",\"key\":9,\"entry\":{{\"key\":9,\"v\":2,\"data\":[1,2]}}}}"
            ),
            format!(
                "{{\"schema\":\"{RESPONSE_SCHEMA}\",\"type\":\"report\",\"experiment\":\"fig10\",\"report\":{{\"schema\":\"wishbranch.report/v1\"}}}}"
            ),
            format!(
                "{{\"schema\":\"{RESPONSE_SCHEMA}\",\"type\":\"heartbeat\",\"seq\":11}}"
            ),
            format!(
                "{{\"schema\":\"{RESPONSE_SCHEMA}\",\"type\":\"stats\",\"respawns\":2,\
                 \"hung_killed\":1,\"deadline_kills\":0,\"rejected_requests\":3}}"
            ),
            format!(
                "{{\"schema\":\"{RESPONSE_SCHEMA}\",\"type\":\"done\",\"jobs\":3,\"failed\":0,\
                 \"store_hits\":1,\"store_misses\":2,\"store_quarantined\":1,\
                 \"profile_misses\":0,\"compile_misses\":0,\
                 \"sim_cycles\":42,\"failures\":[]}}"
            ),
        ];
        for line in &cases {
            let parsed = ResponseLine::parse(line).expect(line);
            match parsed {
                ResponseLine::Job { key, ref entry, .. } => {
                    assert_eq!(key, 9);
                    assert_eq!(entry, "{\"key\":9,\"v\":2,\"data\":[1,2]}");
                }
                ResponseLine::Report { ref report, .. } => {
                    assert_eq!(report, "{\"schema\":\"wishbranch.report/v1\"}");
                }
                ResponseLine::Heartbeat { seq } => assert_eq!(seq, 11),
                ResponseLine::Stats {
                    respawns,
                    hung_killed,
                    ..
                } => {
                    assert_eq!(respawns, 2);
                    assert_eq!(hung_killed, 1);
                }
                ResponseLine::Done {
                    sim_cycles,
                    store_quarantined,
                    ..
                } => {
                    assert_eq!(sim_cycles, 42);
                    assert_eq!(store_quarantined, 1);
                }
                _ => {}
            }
        }
        assert!(ResponseLine::parse("{\"schema\":\"nope\"}").is_err());
    }

    #[test]
    fn worker_spec_embeds_a_parseable_request() {
        let req = SweepRequest::new(vec![Experiment::Fig10]);
        let spec = worker_spec_line(Path::new("/tmp/j.jsonl"), None, true, &req, 250, "hang@3");
        let doc = JsonValue::parse(&spec).unwrap();
        assert_eq!(
            doc.get("schema").and_then(JsonValue::as_str),
            Some(WORKER_SPEC_SCHEMA)
        );
        assert_eq!(doc.get("resume").and_then(JsonValue::as_bool), Some(true));
        assert!(doc.get("store").is_some_and(|v| v.as_str().is_none()));
        assert_eq!(doc.get("heartbeat_ms").and_then(JsonValue::as_u64), Some(250));
        assert_eq!(doc.get("chaos").and_then(JsonValue::as_str), Some("hang@3"));
        let embedded = doc.get("request").and_then(JsonValue::as_str).unwrap();
        assert_eq!(SweepRequest::parse(embedded).unwrap(), req);
    }

    #[test]
    fn slot_guard_releases_on_drop_and_on_panic() {
        let slots = Slots::new(2);
        assert_eq!(slots.available(), 2);
        {
            let _one = slots.acquire();
            let _two = slots.acquire();
            assert_eq!(slots.available(), 0);
        }
        assert_eq!(slots.available(), 2, "drop must return both slots");
        let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = slots.acquire();
            panic!("spawn path exploded");
        }));
        assert!(panicked.is_err());
        assert_eq!(slots.available(), 2, "a panicking holder must not leak its slot");
    }

    #[test]
    fn respawn_backoff_is_deterministic_bounded_and_monotonic() {
        assert_eq!(respawn_backoff(1), Duration::from_millis(10));
        assert_eq!(respawn_backoff(1), respawn_backoff(1));
        for attempt in 1..20 {
            assert!(respawn_backoff(attempt) <= respawn_backoff(attempt + 1));
        }
        assert_eq!(respawn_backoff(1_000), Duration::from_millis(500));
    }

    #[test]
    fn job_lines_classify_and_key() {
        let line = format!(
            "{{\"schema\":\"{RESPONSE_SCHEMA}\",\"type\":\"job\",\"experiment\":\"fig10\",\"key\":18446744073709551615,\"entry\":{{\"key\":18446744073709551615,\"v\":2,\"data\":[]}}}}"
        );
        assert_eq!(line_type(&line), Some("job"));
        assert_eq!(job_line_key(&line), Some(u64::MAX));
        assert_eq!(line_type("{\"schema\":\"x\"}"), None);
    }
}
