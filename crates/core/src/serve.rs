//! Sweep-as-a-service: a long-running server that accepts
//! `wishbranch.request/v1` documents over local TCP from many concurrent
//! clients, admits them under per-tenant simulated-cycle budgets, shards
//! each request across a bounded pool of worker *processes*, and streams
//! per-job results back as `wishbranch.response/v1` JSONL lines as they
//! land.
//!
//! ## Protocol
//!
//! A client connects, writes one request line, and reads response lines
//! until the connection closes:
//!
//! ```text
//! → {"schema":"wishbranch.request/v1","tenant":"alice","experiments":["fig10"],...}
//! ← {"schema":"wishbranch.response/v1","type":"accepted","tenant":"alice","fingerprint":123}
//! ← {"schema":"wishbranch.response/v1","type":"job","experiment":"fig10","key":K,
//!    "entry":{"key":K,"v":2,"data":[...]}}        (one per job, as it lands)
//! ← {"schema":"wishbranch.response/v1","type":"report","experiment":"fig10",
//!    "report":{"schema":"wishbranch.report/v1",...}}
//! ← {"schema":"wishbranch.response/v1","type":"done","jobs":N,...,"failures":[...]}
//! ```
//!
//! A refused request gets a single `rejected` line (typed `kind` +
//! human-readable `reason`) and the connection closes. Each `job` line
//! embeds a verbatim `wishbranch.journal/v1` entry, so clients reuse the
//! journal codec ([`journal::decode_entry`](crate::journal::decode_entry))
//! to recover full bit-identical [`RunOutcome`](crate::RunOutcome)s.
//!
//! ## Sharding and crash recovery
//!
//! One shard = one experiment of the request. Each shard runs in a worker
//! process (`wishbranch-repro --worker`, fed one
//! `wishbranch.workerspec/v1` line on stdin), bounded by
//! [`ServeConfig::max_procs`] process slots across all connections. Every
//! shard journals to its own per-connection file; if a worker dies
//! mid-shard (crash, `kill -9`, injected abort), the server respawns it
//! in resume mode — completed jobs replay bit-identically from the
//! journal and re-announce through the stream, the server deduplicates by
//! job key, and the client sees a complete, gap-free, duplicate-free
//! stream. Respawns strip the request's fault plan, mirroring the CLI's
//! kill-then-resume contract (a resume legitimately does not re-inject
//! the fault that killed the run).
//!
//! ## Admission and billing
//!
//! Tenants named in [`ServeConfig::tenant_budgets`] are admitted until
//! their accumulated simulated cycles reach the budget; the next request
//! is `rejected` with kind `cycle_budget_exceeded` (the same stable kind
//! string as the per-job typed error). Journal and artifact-store hits
//! bill zero cycles — tenants pay only for simulation actually executed.

use std::collections::{HashMap, HashSet};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};

use crate::error::FaultPlan;
use crate::journal::encode_entry;
use crate::minijson::JsonValue;
use crate::report::json_escape;
use crate::request::SweepRequest;
use crate::store::ArtifactStore;

/// Schema tag on every response line.
pub const RESPONSE_SCHEMA: &str = "wishbranch.response/v1";

/// Schema tag on the one-line spec a worker process reads from stdin.
pub const WORKER_SPEC_SCHEMA: &str = "wishbranch.workerspec/v1";

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Server configuration: where worker processes come from, where state
/// lives, and who may spend how much.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// The binary to fork/exec per shard (run with `--worker`); normally
    /// the server's own executable.
    pub worker_exe: PathBuf,
    /// Root for per-connection shard journals
    /// (`<state_dir>/conn-N/<experiment>/journal.jsonl`).
    pub state_dir: PathBuf,
    /// Content-addressed artifact store shared by every worker, run and
    /// tenant; `None` disables the store.
    pub store_dir: Option<PathBuf>,
    /// Maximum worker processes alive at once, across all connections.
    pub max_procs: usize,
    /// Per-tenant simulated-cycle budgets. Tenants not named here are
    /// unmetered.
    pub tenant_budgets: HashMap<String, u64>,
    /// How many times a dead worker is respawned (in journal-resume mode)
    /// before its shard is reported failed.
    pub max_respawns: u32,
}

impl ServeConfig {
    /// A config with defaults: 4 process slots, 2 respawns, no store, no
    /// budgets.
    #[must_use]
    pub fn new(worker_exe: impl Into<PathBuf>, state_dir: impl Into<PathBuf>) -> ServeConfig {
        ServeConfig {
            worker_exe: worker_exe.into(),
            state_dir: state_dir.into(),
            store_dir: None,
            max_procs: 4,
            tenant_budgets: HashMap::new(),
            max_respawns: 2,
        }
    }
}

/// A counting semaphore bounding live worker processes.
struct Slots {
    free: Mutex<usize>,
    cv: Condvar,
}

impl Slots {
    fn new(n: usize) -> Slots {
        Slots {
            free: Mutex::new(n.max(1)),
            cv: Condvar::new(),
        }
    }

    fn acquire(&self) {
        let mut free = lock(&self.free);
        while *free == 0 {
            free = self.cv.wait(free).unwrap_or_else(PoisonError::into_inner);
        }
        *free -= 1;
    }

    fn release(&self) {
        *lock(&self.free) += 1;
        self.cv.notify_one();
    }
}

/// State shared by every connection thread.
struct Shared {
    cfg: ServeConfig,
    /// Simulated cycles spent so far, per tenant.
    ledger: Mutex<HashMap<String, u64>>,
    slots: Slots,
    conn_seq: AtomicU64,
}

/// The sweep server: one [`bind`](Server::bind), then [`run`](Server::run)
/// forever. Each accepted connection is one request, handled on its own
/// thread; shards compete for the shared process-slot pool.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

/// Aggregated statistics of one finished shard, lifted from the worker's
/// `done` line.
#[derive(Clone, Debug, Default)]
struct ShardStats {
    jobs: u64,
    failed: u64,
    store_hits: u64,
    store_misses: u64,
    profile_misses: u64,
    compile_misses: u64,
    sim_cycles: u64,
    /// The raw contents of the shard's `failures` array (no brackets).
    failures_raw: String,
}

impl Server {
    /// Binds the server to `addr` (e.g. `"127.0.0.1:0"` for an ephemeral
    /// port) and creates the state directory.
    ///
    /// # Errors
    ///
    /// I/O errors binding the socket or creating `state_dir`.
    pub fn bind(addr: &str, cfg: ServeConfig) -> io::Result<Server> {
        std::fs::create_dir_all(&cfg.state_dir)?;
        if let Some(store_dir) = &cfg.store_dir {
            std::fs::create_dir_all(store_dir)?;
        }
        let listener = TcpListener::bind(addr)?;
        let slots = Slots::new(cfg.max_procs);
        Ok(Server {
            listener,
            shared: Arc::new(Shared {
                cfg,
                ledger: Mutex::new(HashMap::new()),
                slots,
                conn_seq: AtomicU64::new(0),
            }),
        })
    }

    /// The bound address (useful after binding port 0).
    ///
    /// # Errors
    ///
    /// The socket's local address could not be read.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Accepts connections forever, one handler thread per connection.
    ///
    /// # Errors
    ///
    /// A fatal accept-loop I/O error (per-connection errors are contained
    /// in their handler threads).
    pub fn run(&self) -> io::Result<()> {
        for stream in self.listener.incoming() {
            let stream = stream?;
            let shared = Arc::clone(&self.shared);
            std::thread::spawn(move || handle_connection(&shared, stream));
        }
        Ok(())
    }
}

/// Binds to `addr`, prints one `listening on <addr>` line to stdout
/// (flushed, so wrappers can scrape the port), and serves forever.
///
/// # Errors
///
/// Bind or accept-loop I/O errors.
pub fn serve_forever(addr: &str, cfg: ServeConfig) -> io::Result<()> {
    let server = Server::bind(addr, cfg)?;
    println!("listening on {}", server.local_addr()?);
    io::stdout().flush()?;
    server.run()
}

/// A line writer shared by every shard of one connection. Once a write
/// fails (client went away) further writes are skipped; workers still
/// finish so the journal and store stay complete.
struct ConnWriter {
    stream: TcpStream,
    dead: bool,
}

impl ConnWriter {
    fn send(&mut self, line: &str) {
        if self.dead {
            return;
        }
        let mut buf = Vec::with_capacity(line.len() + 1);
        buf.extend_from_slice(line.as_bytes());
        buf.push(b'\n');
        if self.stream.write_all(&buf).is_err() {
            self.dead = true;
        }
    }
}

fn rejected_line(kind: &str, reason: &str) -> String {
    format!(
        "{{\"schema\":\"{RESPONSE_SCHEMA}\",\"type\":\"rejected\",\"kind\":\"{}\",\"reason\":\"{}\"}}",
        json_escape(kind),
        json_escape(reason)
    )
}

fn handle_connection(shared: &Shared, stream: TcpStream) {
    let mut reader = match stream.try_clone() {
        Ok(s) => BufReader::new(s),
        Err(_) => return,
    };
    let mut writer = ConnWriter {
        stream,
        dead: false,
    };
    let mut line = String::new();
    if reader.read_line(&mut line).is_err() || line.trim().is_empty() {
        return;
    }
    let req = match SweepRequest::parse(line.trim()) {
        Ok(req) => req,
        Err(e) => {
            writer.send(&rejected_line(e.kind(), &e.to_string()));
            return;
        }
    };
    // Admission: a metered tenant whose ledger has reached its budget is
    // refused before any work starts.
    if let Some(&budget) = shared.cfg.tenant_budgets.get(&req.tenant) {
        let spent = lock(&shared.ledger).get(&req.tenant).copied().unwrap_or(0);
        if spent >= budget {
            writer.send(&rejected_line(
                "cycle_budget_exceeded",
                &format!(
                    "tenant {:?} has spent {spent} of {budget} budgeted simulated cycles",
                    req.tenant
                ),
            ));
            return;
        }
    }
    writer.send(&format!(
        "{{\"schema\":\"{RESPONSE_SCHEMA}\",\"type\":\"accepted\",\"tenant\":\"{}\",\"fingerprint\":{}}}",
        json_escape(&req.tenant),
        req.fingerprint()
    ));
    let conn = shared.conn_seq.fetch_add(1, Ordering::SeqCst);
    let conn_dir = shared.cfg.state_dir.join(format!("conn-{conn:06}"));
    let writer = Mutex::new(writer);
    let seen = Mutex::new(HashSet::new());
    // One shard per experiment, all in flight at once; the process-slot
    // semaphore (shared across connections) bounds real concurrency.
    let results: Vec<Result<ShardStats, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = req
            .experiments
            .iter()
            .map(|exp| {
                let mut shard_req = req.clone();
                shard_req.experiments = vec![*exp];
                let conn_dir = &conn_dir;
                let writer = &writer;
                let seen = &seen;
                scope.spawn(move || run_shard(shared, conn_dir, shard_req, seen, writer))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(result) => result,
                Err(_) => Err("shard thread panicked".to_string()),
            })
            .collect()
    });
    // Synthesize the request-level `done` line from the shard summaries.
    let mut total = ShardStats::default();
    let mut failure_items: Vec<String> = Vec::new();
    for (exp, result) in req.experiments.iter().zip(results) {
        match result {
            Ok(stats) => {
                total.jobs += stats.jobs;
                total.failed += stats.failed;
                total.store_hits += stats.store_hits;
                total.store_misses += stats.store_misses;
                total.profile_misses += stats.profile_misses;
                total.compile_misses += stats.compile_misses;
                total.sim_cycles += stats.sim_cycles;
                if !stats.failures_raw.is_empty() {
                    failure_items.push(stats.failures_raw);
                }
            }
            Err(reason) => {
                total.failed += 1;
                failure_items.push(format!(
                    "{{\"index\":0,\"kind\":\"shard_failed\",\"job\":\"{}\",\"error\":\"{}\",\"attempts\":0}}",
                    json_escape(exp.id()),
                    json_escape(&reason)
                ));
            }
        }
    }
    lock(&shared.ledger)
        .entry(req.tenant.clone())
        .and_modify(|spent| *spent += total.sim_cycles)
        .or_insert(total.sim_cycles);
    lock(&writer).send(&format!(
        "{{\"schema\":\"{RESPONSE_SCHEMA}\",\"type\":\"done\",\"jobs\":{},\"failed\":{},\
         \"store_hits\":{},\"store_misses\":{},\"profile_misses\":{},\"compile_misses\":{},\
         \"sim_cycles\":{},\"failures\":[{}]}}",
        total.jobs,
        total.failed,
        total.store_hits,
        total.store_misses,
        total.profile_misses,
        total.compile_misses,
        total.sim_cycles,
        failure_items.join(",")
    ));
}

/// Runs one shard to completion: spawn a worker, forward its stream,
/// respawn in resume mode if it dies before finishing.
fn run_shard(
    shared: &Shared,
    conn_dir: &Path,
    mut shard_req: SweepRequest,
    seen: &Mutex<HashSet<u64>>,
    writer: &Mutex<ConnWriter>,
) -> Result<ShardStats, String> {
    let exp_id = shard_req.experiments[0].id();
    let shard_dir = conn_dir.join(exp_id);
    std::fs::create_dir_all(&shard_dir).map_err(|e| format!("creating shard dir: {e}"))?;
    let journal_path = shard_dir.join("journal.jsonl");
    let mut attempt = 0u32;
    loop {
        let resume = attempt > 0;
        if resume {
            // Mirror the CLI's kill-then-resume contract: a resume does
            // not re-inject the fault that killed the previous attempt.
            shard_req.fault_plan = Some(FaultPlan::new());
        }
        shared.slots.acquire();
        let outcome = spawn_and_stream(
            &shared.cfg,
            &journal_path,
            resume,
            &shard_req,
            seen,
            writer,
        );
        shared.slots.release();
        match outcome {
            Ok(Some(stats)) => return Ok(stats),
            Ok(None) => {
                attempt += 1;
                if attempt > shared.cfg.max_respawns {
                    return Err(format!(
                        "worker for {exp_id} died {attempt} times without completing its shard"
                    ));
                }
            }
            Err(e) => return Err(format!("worker for {exp_id}: {e}")),
        }
    }
}

/// The one-line `wishbranch.workerspec/v1` document a worker reads on
/// stdin. The request rides along as an escaped string, so the worker
/// reuses [`SweepRequest::parse`] verbatim.
fn worker_spec_line(
    journal: &Path,
    store: Option<&Path>,
    resume: bool,
    req: &SweepRequest,
) -> String {
    let store_field = match store {
        Some(p) => format!("\"{}\"", json_escape(&p.display().to_string())),
        None => "null".to_string(),
    };
    format!(
        "{{\"schema\":\"{WORKER_SPEC_SCHEMA}\",\"journal\":\"{}\",\"store\":{},\"resume\":{},\"request\":\"{}\"}}",
        json_escape(&journal.display().to_string()),
        store_field,
        resume,
        json_escape(&req.to_json())
    )
}

/// Spawns one worker process and forwards its stream. Returns
/// `Ok(Some(stats))` when the worker finished its shard (printed `done`),
/// `Ok(None)` when it died early (caller respawns), `Err` on spawn/pipe
/// failures.
fn spawn_and_stream(
    cfg: &ServeConfig,
    journal_path: &Path,
    resume: bool,
    shard_req: &SweepRequest,
    seen: &Mutex<HashSet<u64>>,
    writer: &Mutex<ConnWriter>,
) -> io::Result<Option<ShardStats>> {
    let mut child = Command::new(&cfg.worker_exe)
        .arg("--worker")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()?;
    {
        let mut stdin = child.stdin.take().ok_or_else(|| {
            io::Error::new(io::ErrorKind::BrokenPipe, "worker stdin unavailable")
        })?;
        let mut spec = worker_spec_line(journal_path, cfg.store_dir.as_deref(), resume, shard_req);
        spec.push('\n');
        stdin.write_all(spec.as_bytes())?;
        // Dropping stdin closes it: the worker sees EOF after the spec.
    }
    let stdout = child.stdout.take().ok_or_else(|| {
        io::Error::new(io::ErrorKind::BrokenPipe, "worker stdout unavailable")
    })?;
    let mut stats = None;
    for line in BufReader::new(stdout).lines() {
        let line = match line {
            Ok(line) => line,
            Err(_) => break, // pipe died with the worker
        };
        match line_type(&line) {
            Some("job") => {
                // Deduplicate across respawns: journal replays re-announce
                // completed jobs, the client must see each key exactly once.
                if let Some(key) = job_line_key(&line) {
                    if lock(seen).insert(key) {
                        lock(writer).send(&line);
                    }
                }
            }
            Some("report") => lock(writer).send(&line),
            Some("done") => stats = parse_shard_done(&line),
            _ => {} // stray worker output; never forwarded
        }
    }
    let _ = child.wait();
    Ok(stats)
}

/// The `type` of one of *our* response lines (emitter-controlled format:
/// `schema` first, `type` second).
fn line_type(line: &str) -> Option<&str> {
    let rest = line.strip_prefix(&format!(
        "{{\"schema\":\"{RESPONSE_SCHEMA}\",\"type\":\""
    ))?;
    rest.split('"').next()
}

/// The top-level `"key":` of a job line (field order is fixed:
/// `experiment`, `key`, `entry` — the first match is the top-level one).
fn job_line_key(line: &str) -> Option<u64> {
    let idx = line.find("\"key\":")?;
    let digits: String = line[idx + 6..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

fn parse_shard_done(line: &str) -> Option<ShardStats> {
    let doc = JsonValue::parse(line).ok()?;
    let field = |name: &str| doc.get(name).and_then(JsonValue::as_u64);
    let failures_raw = {
        let start = line.find("\"failures\":[")? + "\"failures\":[".len();
        let end = line.rfind(']')?;
        line.get(start..end)?.to_string()
    };
    Some(ShardStats {
        jobs: field("jobs")?,
        failed: field("failed")?,
        store_hits: field("store_hits")?,
        store_misses: field("store_misses")?,
        profile_misses: field("profile_misses")?,
        compile_misses: field("compile_misses")?,
        sim_cycles: field("sim_cycles")?,
        failures_raw,
    })
}

// ---------------------------------------------------------------------------
// Worker mode
// ---------------------------------------------------------------------------

/// The body of `wishbranch-repro --worker`: reads one
/// `wishbranch.workerspec/v1` line from stdin, runs the embedded request
/// with journal + artifact store attached, and prints protocol lines
/// (`job` per completed job, `report` per experiment, one shard `done`)
/// to stdout. Returns the process exit code: 0 done, 4 aborted mid-shard
/// (the server respawns in resume mode), 2 on a bad spec.
#[must_use]
pub fn worker_main() -> i32 {
    let mut spec_line = String::new();
    if io::stdin().read_line(&mut spec_line).is_err() {
        eprintln!("worker: failed reading spec from stdin");
        return 2;
    }
    match worker_run(spec_line.trim()) {
        Ok(aborted) => {
            if aborted {
                4
            } else {
                0
            }
        }
        Err(msg) => {
            eprintln!("worker: {msg}");
            2
        }
    }
}

/// Runs one worker spec. `Ok(true)` means the shard aborted mid-run.
fn worker_run(spec_line: &str) -> Result<bool, String> {
    let spec = JsonValue::parse(spec_line).map_err(|e| format!("bad spec JSON: {e}"))?;
    match spec.get("schema").and_then(JsonValue::as_str) {
        Some(WORKER_SPEC_SCHEMA) => {}
        other => return Err(format!("bad spec schema {other:?}")),
    }
    let journal_path = spec
        .get("journal")
        .and_then(JsonValue::as_str)
        .ok_or("spec missing \"journal\"")?
        .to_string();
    let store_path = spec
        .get("store")
        .and_then(JsonValue::as_str)
        .map(str::to_string);
    let resume = spec
        .get("resume")
        .and_then(JsonValue::as_bool)
        .unwrap_or(false);
    let request_text = spec
        .get("request")
        .and_then(JsonValue::as_str)
        .ok_or("spec missing \"request\"")?;
    let req = SweepRequest::parse(request_text).map_err(|e| format!("bad request: {e}"))?;
    let mut runner = req.build_runner().map_err(|e| e.to_string())?;
    if let Some(path) = store_path {
        let store = ArtifactStore::open(path).map_err(|e| format!("opening store: {e}"))?;
        runner.attach_store(Arc::new(store));
    }
    // The observer streams every completed job — fresh, journal hit or
    // store hit — as a protocol line. Stdout is line-buffered through the
    // runtime lock, so concurrent workers' println!s never interleave
    // within a line.
    let current_exp = Arc::new(Mutex::new(String::new()));
    let label = Arc::clone(&current_exp);
    runner.set_observer(Arc::new(move |key, result| {
        println!(
            "{{\"schema\":\"{RESPONSE_SCHEMA}\",\"type\":\"job\",\"experiment\":\"{}\",\"key\":{key},\"entry\":{}}}",
            json_escape(&lock(&label)),
            encode_entry(key, &result.outcome)
        );
    }));
    runner
        .attach_journal(Path::new(&journal_path), resume)
        .map_err(|e| format!("attaching journal: {e}"))?;
    for exp in &req.experiments {
        *lock(&current_exp) = exp.id().to_string();
        let report = exp.run(&runner);
        if runner.aborted() {
            return Ok(true);
        }
        println!(
            "{{\"schema\":\"{RESPONSE_SCHEMA}\",\"type\":\"report\",\"experiment\":\"{}\",\"report\":{}}}",
            json_escape(exp.id()),
            report.to_json()
        );
    }
    let s = runner.summary();
    let failure_items: Vec<String> = runner
        .failures()
        .iter()
        .map(|f| {
            format!(
                "{{\"index\":{},\"kind\":\"{}\",\"job\":\"{}\",\"error\":\"{}\",\"attempts\":{}}}",
                f.index,
                json_escape(f.error.kind()),
                json_escape(&format!(
                    "bench{} {} @{}",
                    f.job.bench,
                    f.job.variant.label(),
                    f.job.input.label()
                )),
                json_escape(&f.error.to_string()),
                f.attempts
            )
        })
        .collect();
    println!(
        "{{\"schema\":\"{RESPONSE_SCHEMA}\",\"type\":\"done\",\"jobs\":{},\"failed\":{},\
         \"store_hits\":{},\"store_misses\":{},\"profile_misses\":{},\"compile_misses\":{},\
         \"sim_cycles\":{},\"failures\":[{}]}}",
        s.jobs,
        s.failed,
        s.store_hits,
        s.store_misses,
        s.profile_misses,
        s.compile_misses,
        s.sim_cycles,
        failure_items.join(",")
    );
    Ok(false)
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

/// One parsed `wishbranch.response/v1` line.
#[derive(Clone, PartialEq, Debug)]
pub enum ResponseLine {
    /// The request was admitted; results follow.
    Accepted {
        /// The admitted tenant.
        tenant: String,
        /// The canonical-request fingerprint the server computed.
        fingerprint: u64,
    },
    /// The request was refused; the connection closes after this line.
    Rejected {
        /// Stable error discriminator (e.g. `cycle_budget_exceeded`).
        kind: String,
        /// Human-readable explanation.
        reason: String,
    },
    /// One completed job.
    Job {
        /// The experiment this job belongs to.
        experiment: String,
        /// The job's stable key ([`SweepRunner::job_key`](crate::SweepRunner::job_key)).
        key: u64,
        /// The verbatim `wishbranch.journal/v1` entry (decode with
        /// [`journal::decode_entry`](crate::journal::decode_entry)).
        entry: String,
    },
    /// One experiment's finished `wishbranch.report/v1` document.
    Report {
        /// The experiment id.
        experiment: String,
        /// The verbatim report JSON.
        report: String,
    },
    /// The request finished; aggregate statistics.
    Done {
        /// Jobs completed across all shards.
        jobs: u64,
        /// Jobs that failed after retries.
        failed: u64,
        /// Jobs served from the shared artifact store.
        store_hits: u64,
        /// Jobs that consulted the store and missed.
        store_misses: u64,
        /// Profiling runs actually executed.
        profile_misses: u64,
        /// Compiles actually executed.
        compile_misses: u64,
        /// Simulated cycles billed to the tenant.
        sim_cycles: u64,
        /// The raw JSON `failures` array (same element shape as the
        /// summary document's failure table).
        failures: String,
    },
}

impl ResponseLine {
    /// Parses one response line.
    ///
    /// # Errors
    ///
    /// A description of the malformation, if the line is not a
    /// well-formed response line.
    pub fn parse(line: &str) -> Result<ResponseLine, String> {
        let doc = JsonValue::parse(line).map_err(|e| format!("bad response JSON: {e}"))?;
        match doc.get("schema").and_then(JsonValue::as_str) {
            Some(RESPONSE_SCHEMA) => {}
            other => return Err(format!("bad response schema {other:?}")),
        }
        let text = |name: &str| {
            doc.get(name)
                .and_then(JsonValue::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("response line missing {name:?}"))
        };
        let num = |name: &str| {
            doc.get(name)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("response line missing {name:?}"))
        };
        // `entry`/`report`/`failures` payloads are returned as verbatim
        // substrings; each is the final field of its line, so the payload
        // runs to the closing brace.
        let tail_after = |marker: &str| {
            let start = line.find(marker).map(|i| i + marker.len())?;
            line.get(start..line.len() - 1).map(str::to_string)
        };
        match doc.get("type").and_then(JsonValue::as_str) {
            Some("accepted") => Ok(ResponseLine::Accepted {
                tenant: text("tenant")?,
                fingerprint: num("fingerprint")?,
            }),
            Some("rejected") => Ok(ResponseLine::Rejected {
                kind: text("kind")?,
                reason: text("reason")?,
            }),
            Some("job") => Ok(ResponseLine::Job {
                experiment: text("experiment")?,
                key: num("key")?,
                entry: tail_after("\"entry\":").ok_or("job line missing entry payload")?,
            }),
            Some("report") => Ok(ResponseLine::Report {
                experiment: text("experiment")?,
                report: tail_after("\"report\":").ok_or("report line missing payload")?,
            }),
            Some("done") => Ok(ResponseLine::Done {
                jobs: num("jobs")?,
                failed: num("failed")?,
                store_hits: num("store_hits")?,
                store_misses: num("store_misses")?,
                profile_misses: num("profile_misses")?,
                compile_misses: num("compile_misses")?,
                sim_cycles: num("sim_cycles")?,
                failures: {
                    let raw = tail_after("\"failures\":[").ok_or("done line missing failures")?;
                    raw.strip_suffix(']').map(str::to_string).unwrap_or(raw)
                },
            }),
            other => Err(format!("unknown response type {other:?}")),
        }
    }
}

/// An open response stream: iterate to receive parsed lines as the server
/// streams them. Parse failures surface as `InvalidData` I/O errors.
pub struct ResponseStream {
    lines: std::io::Lines<BufReader<TcpStream>>,
}

impl Iterator for ResponseStream {
    type Item = io::Result<(String, ResponseLine)>;

    /// The next `(raw line, parsed line)` pair — raw is kept so clients
    /// can persist or diff verbatim protocol bytes.
    fn next(&mut self) -> Option<io::Result<(String, ResponseLine)>> {
        let line = match self.lines.next()? {
            Ok(line) => line,
            Err(e) => return Some(Err(e)),
        };
        match ResponseLine::parse(&line) {
            Ok(parsed) => Some(Ok((line, parsed))),
            Err(msg) => Some(Err(io::Error::new(io::ErrorKind::InvalidData, msg))),
        }
    }
}

/// Connects to a server, submits `req`, and returns the response stream.
/// The canonical client one-liner:
///
/// ```no_run
/// use wishbranch_core::{client_stream, Experiment, SweepRequest};
/// for line in client_stream("127.0.0.1:7005", &SweepRequest::new(vec![Experiment::Fig10]))? {
///     println!("{}", line?.0);
/// }
/// # Ok::<(), std::io::Error>(())
/// ```
///
/// # Errors
///
/// Connection or request-write I/O errors.
pub fn client_stream(addr: &str, req: &SweepRequest) -> io::Result<ResponseStream> {
    let mut stream = TcpStream::connect(addr)?;
    let mut line = req.to_json();
    line.push('\n');
    stream.write_all(line.as_bytes())?;
    stream.flush()?;
    Ok(ResponseStream {
        lines: BufReader::new(stream).lines(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Experiment;

    #[test]
    fn response_lines_round_trip() {
        let cases = [
            format!(
                "{{\"schema\":\"{RESPONSE_SCHEMA}\",\"type\":\"accepted\",\"tenant\":\"a\",\"fingerprint\":7}}"
            ),
            rejected_line("cycle_budget_exceeded", "over budget"),
            format!(
                "{{\"schema\":\"{RESPONSE_SCHEMA}\",\"type\":\"job\",\"experiment\":\"fig10\",\"key\":9,\"entry\":{{\"key\":9,\"v\":2,\"data\":[1,2]}}}}"
            ),
            format!(
                "{{\"schema\":\"{RESPONSE_SCHEMA}\",\"type\":\"report\",\"experiment\":\"fig10\",\"report\":{{\"schema\":\"wishbranch.report/v1\"}}}}"
            ),
            format!(
                "{{\"schema\":\"{RESPONSE_SCHEMA}\",\"type\":\"done\",\"jobs\":3,\"failed\":0,\
                 \"store_hits\":1,\"store_misses\":2,\"profile_misses\":0,\"compile_misses\":0,\
                 \"sim_cycles\":42,\"failures\":[]}}"
            ),
        ];
        for line in &cases {
            let parsed = ResponseLine::parse(line).expect(line);
            match parsed {
                ResponseLine::Job { key, ref entry, .. } => {
                    assert_eq!(key, 9);
                    assert_eq!(entry, "{\"key\":9,\"v\":2,\"data\":[1,2]}");
                }
                ResponseLine::Report { ref report, .. } => {
                    assert_eq!(report, "{\"schema\":\"wishbranch.report/v1\"}");
                }
                ResponseLine::Done { sim_cycles, .. } => assert_eq!(sim_cycles, 42),
                _ => {}
            }
        }
        assert!(ResponseLine::parse("{\"schema\":\"nope\"}").is_err());
    }

    #[test]
    fn worker_spec_embeds_a_parseable_request() {
        let req = SweepRequest::new(vec![Experiment::Fig10]);
        let spec = worker_spec_line(Path::new("/tmp/j.jsonl"), None, true, &req);
        let doc = JsonValue::parse(&spec).unwrap();
        assert_eq!(
            doc.get("schema").and_then(JsonValue::as_str),
            Some(WORKER_SPEC_SCHEMA)
        );
        assert_eq!(doc.get("resume").and_then(JsonValue::as_bool), Some(true));
        assert!(doc.get("store").is_some_and(|v| v.as_str().is_none()));
        let embedded = doc.get("request").and_then(JsonValue::as_str).unwrap();
        assert_eq!(SweepRequest::parse(embedded).unwrap(), req);
    }

    #[test]
    fn job_lines_classify_and_key() {
        let line = format!(
            "{{\"schema\":\"{RESPONSE_SCHEMA}\",\"type\":\"job\",\"experiment\":\"fig10\",\"key\":18446744073709551615,\"entry\":{{\"key\":18446744073709551615,\"v\":2,\"data\":[]}}}}"
        );
        assert_eq!(line_type(&line), Some("job"));
        assert_eq!(job_line_key(&line), Some(u64::MAX));
        assert_eq!(line_type("{\"schema\":\"x\"}"), None);
    }
}
