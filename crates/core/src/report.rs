//! The typed report model: every figure, table and sweep of the
//! reproduction as one machine-readable [`Report`] value with hand-rolled
//! JSON and CSV emitters (this environment cannot reach a package
//! registry, so there is deliberately no serde dependency).
//!
//! ## JSON schema (`wishbranch.report/v1`)
//!
//! Every report serializes to one object:
//!
//! ```json
//! {"schema":"wishbranch.report/v1","id":"fig10","kind":"figure",
//!  "title":"...","data":{...}}
//! ```
//!
//! The `data` payload is keyed by `kind`:
//!
//! | kind             | data                                                  |
//! |------------------|-------------------------------------------------------|
//! | `figure`         | `{series:[…], rows:[{name, values:[…]}]}`             |
//! | `confidence`     | `{rows:[{name, low_mispredicted, low_correct, high_mispredicted, high_correct}]}` |
//! | `loop_breakdown` | `{rows:[{name, low_no_exit, low_late_exit, low_early_exit, low_correct, high_mispredicted, high_correct}]}` |
//! | `sweep`          | `{param, points:[{param, series:[…], avg:[…], avg_nomcf:[…]}]}` |
//! | `table4`         | `{rows:[{name, dynamic_uops, …}]}`                    |
//! | `table5`         | `{rows:[{name, vs_normal_pct, …}]}`                   |
//! | `ablation`       | `{param, points:[{param, avg_normalized}]}`           |
//!
//! Floats are always emitted with six decimal places, so values are stable
//! across runs and diffs are meaningful. [`summary_json`] serializes a
//! [`SweepSummary`] (schema `wishbranch.summary/v1`) with job counts,
//! cache statistics and the per-phase host-time breakdown.

use crate::ablation::AblationPoint;
use crate::engine::SweepSummary;
use crate::figures::{Fig11Row, Fig13Row, FigureData, SweepRow};
use crate::render::{fig11_table, fig13_table, sweep_table, table4_table, table5_table, Table};
use crate::tables::{Table4Row, Table5Row};
use std::fmt::Write as _;

/// Escapes a string for embedding in a JSON double-quoted literal.
#[must_use]
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Escapes a CSV field (quotes it when it contains a separator or quote).
fn csv_field(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// A JSON float: six decimals, or the literal `null` for a non-finite
/// value — the explicit-gap encoding of a failed cell (JSON has no NaN).
fn jf(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".to_string()
    }
}

/// A CSV float cell: six decimals, or an empty field for a non-finite
/// value (the CSV rendering of a failed cell's gap).
fn cf(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        String::new()
    }
}

fn jstr(s: &str) -> String {
    format!("\"{}\"", json_escape(s))
}

fn jarr_f(vs: &[f64]) -> String {
    let items: Vec<String> = vs.iter().map(|&v| jf(v)).collect();
    format!("[{}]", items.join(","))
}

fn jarr_s(vs: &[String]) -> String {
    let items: Vec<String> = vs.iter().map(|s| jstr(s)).collect();
    format!("[{}]", items.join(","))
}

/// The typed payload of a [`Report`].
#[derive(Clone, PartialEq, Debug)]
pub enum ReportData {
    /// A normalized-execution-time bar chart (Figs. 1/2/10/12/16 and the
    /// extension figures).
    Figure(FigureData),
    /// The Fig. 11 confidence breakdown.
    Confidence(Vec<Fig11Row>),
    /// The Fig. 13 wish-loop outcome breakdown.
    LoopBreakdown(Vec<Fig13Row>),
    /// A machine-parameter sweep (Figs. 14/15).
    ParamSweep {
        /// Name of the swept parameter (`window`, `depth`).
        param: String,
        /// One row per parameter value.
        rows: Vec<SweepRow>,
    },
    /// Table 4 benchmark characteristics.
    Benchmarks(Vec<Table4Row>),
    /// Table 5 best-binary comparison.
    BestBinary(Vec<Table5Row>),
    /// An ablation sweep (`param` → average normalized exec time).
    Ablation {
        /// Name of the swept parameter.
        param: String,
        /// One point per parameter value.
        points: Vec<AblationPoint>,
    },
}

/// One experiment's results in machine-readable form: serialize with
/// [`Report::to_json`] / [`Report::to_csv`], or pretty-print with
/// [`Report::render`].
#[derive(Clone, PartialEq, Debug)]
pub struct Report {
    /// Stable experiment id (`fig10`, `tab5`, `abl_mshr`, …); used as the
    /// file stem by `--report-dir`.
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// The typed payload.
    pub data: ReportData,
}

impl Report {
    /// Wraps a figure (the title is taken from the figure itself).
    #[must_use]
    pub fn figure(id: &str, fig: FigureData) -> Report {
        Report {
            id: id.into(),
            title: fig.title.clone(),
            data: ReportData::Figure(fig),
        }
    }

    /// Wraps an ablation sweep.
    #[must_use]
    pub fn ablation(id: &str, title: &str, param: &str, points: Vec<AblationPoint>) -> Report {
        Report {
            id: id.into(),
            title: title.into(),
            data: ReportData::Ablation {
                param: param.into(),
                points,
            },
        }
    }

    /// The schema `kind` discriminator of this report's payload.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match &self.data {
            ReportData::Figure(_) => "figure",
            ReportData::Confidence(_) => "confidence",
            ReportData::LoopBreakdown(_) => "loop_breakdown",
            ReportData::ParamSweep { .. } => "sweep",
            ReportData::Benchmarks(_) => "table4",
            ReportData::BestBinary(_) => "table5",
            ReportData::Ablation { .. } => "ablation",
        }
    }

    /// Serializes to one `wishbranch.report/v1` JSON object.
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"schema\":\"wishbranch.report/v1\",\"id\":{},\"kind\":{},\"title\":{},\"data\":{}}}",
            jstr(&self.id),
            jstr(self.kind()),
            jstr(&self.title),
            self.data_json()
        )
    }

    fn data_json(&self) -> String {
        match &self.data {
            ReportData::Figure(fig) => {
                let rows: Vec<String> = fig
                    .rows
                    .iter()
                    .map(|r| {
                        format!(
                            "{{\"name\":{},\"values\":{}}}",
                            jstr(&r.name),
                            jarr_f(&r.values)
                        )
                    })
                    .collect();
                format!(
                    "{{\"series\":{},\"rows\":[{}]}}",
                    jarr_s(&fig.series),
                    rows.join(",")
                )
            }
            ReportData::Confidence(rows) => {
                let rows: Vec<String> = rows
                    .iter()
                    .map(|r| {
                        format!(
                            "{{\"name\":{},\"low_mispredicted\":{},\"low_correct\":{},\"high_mispredicted\":{},\"high_correct\":{}}}",
                            jstr(&r.name),
                            jf(r.low_mispredicted),
                            jf(r.low_correct),
                            jf(r.high_mispredicted),
                            jf(r.high_correct)
                        )
                    })
                    .collect();
                format!("{{\"rows\":[{}]}}", rows.join(","))
            }
            ReportData::LoopBreakdown(rows) => {
                let rows: Vec<String> = rows
                    .iter()
                    .map(|r| {
                        format!(
                            "{{\"name\":{},\"low_no_exit\":{},\"low_late_exit\":{},\"low_early_exit\":{},\"low_correct\":{},\"high_mispredicted\":{},\"high_correct\":{}}}",
                            jstr(&r.name),
                            jf(r.low_no_exit),
                            jf(r.low_late_exit),
                            jf(r.low_early_exit),
                            jf(r.low_correct),
                            jf(r.high_mispredicted),
                            jf(r.high_correct)
                        )
                    })
                    .collect();
                format!("{{\"rows\":[{}]}}", rows.join(","))
            }
            ReportData::ParamSweep { param, rows } => {
                let points: Vec<String> = rows
                    .iter()
                    .map(|r| {
                        format!(
                            "{{\"param\":{},\"series\":{},\"avg\":{},\"avg_nomcf\":{}}}",
                            r.param,
                            jarr_s(&r.series),
                            jarr_f(&r.avg),
                            jarr_f(&r.avg_nomcf)
                        )
                    })
                    .collect();
                format!(
                    "{{\"param\":{},\"points\":[{}]}}",
                    jstr(param),
                    points.join(",")
                )
            }
            ReportData::Benchmarks(rows) => {
                let rows: Vec<String> = rows
                    .iter()
                    .map(|r| {
                        format!(
                            "{{\"name\":{},\"dynamic_uops\":{},\"static_branches\":{},\"dynamic_branches\":{},\"mispredicts_per_kuop\":{},\"upc\":{},\"static_wish\":{},\"static_wish_loop_pct\":{},\"dynamic_wish\":{},\"dynamic_wish_loop_pct\":{}}}",
                            jstr(&r.name),
                            r.dynamic_uops,
                            r.static_branches,
                            r.dynamic_branches,
                            jf(r.mispredicts_per_kuop),
                            jf(r.upc),
                            r.static_wish,
                            jf(r.static_wish_loop_pct),
                            r.dynamic_wish,
                            jf(r.dynamic_wish_loop_pct)
                        )
                    })
                    .collect();
                format!("{{\"rows\":[{}]}}", rows.join(","))
            }
            ReportData::BestBinary(rows) => {
                let rows: Vec<String> = rows
                    .iter()
                    .map(|r| {
                        format!(
                            "{{\"name\":{},\"vs_normal_pct\":{},\"vs_best_predicated_pct\":{},\"best_predicated\":{},\"vs_best_pct\":{},\"best\":{}}}",
                            jstr(&r.name),
                            jf(r.vs_normal_pct),
                            jf(r.vs_best_predicated_pct),
                            jstr(r.best_predicated),
                            jf(r.vs_best_pct),
                            jstr(r.best)
                        )
                    })
                    .collect();
                format!("{{\"rows\":[{}]}}", rows.join(","))
            }
            ReportData::Ablation { param, points } => {
                let points: Vec<String> = points
                    .iter()
                    .map(|p| {
                        format!(
                            "{{\"param\":{},\"avg_normalized\":{}}}",
                            p.param,
                            jf(p.avg_normalized)
                        )
                    })
                    .collect();
                format!(
                    "{{\"param\":{},\"points\":[{}]}}",
                    jstr(param),
                    points.join(",")
                )
            }
        }
    }

    /// Serializes to CSV: one header line, one line per row/point. Floats
    /// use six decimal places, matching the JSON emitter.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        match &self.data {
            ReportData::Figure(fig) => {
                let mut header = vec!["benchmark".to_string()];
                header.extend(fig.series.iter().cloned());
                push_csv_row(&mut out, &header);
                for r in &fig.rows {
                    let mut cells = vec![r.name.clone()];
                    cells.extend(r.values.iter().map(|&v| cf(v)));
                    push_csv_row(&mut out, &cells);
                }
            }
            ReportData::Confidence(rows) => {
                push_csv_row(
                    &mut out,
                    &[
                        "benchmark".into(),
                        "low_mispredicted".into(),
                        "low_correct".into(),
                        "high_mispredicted".into(),
                        "high_correct".into(),
                    ],
                );
                for r in rows {
                    push_csv_row(
                        &mut out,
                        &[
                            r.name.clone(),
                            cf(r.low_mispredicted),
                            cf(r.low_correct),
                            cf(r.high_mispredicted),
                            cf(r.high_correct),
                        ],
                    );
                }
            }
            ReportData::LoopBreakdown(rows) => {
                push_csv_row(
                    &mut out,
                    &[
                        "benchmark".into(),
                        "low_no_exit".into(),
                        "low_late_exit".into(),
                        "low_early_exit".into(),
                        "low_correct".into(),
                        "high_mispredicted".into(),
                        "high_correct".into(),
                    ],
                );
                for r in rows {
                    push_csv_row(
                        &mut out,
                        &[
                            r.name.clone(),
                            cf(r.low_no_exit),
                            cf(r.low_late_exit),
                            cf(r.low_early_exit),
                            cf(r.low_correct),
                            cf(r.high_mispredicted),
                            cf(r.high_correct),
                        ],
                    );
                }
            }
            ReportData::ParamSweep { param, rows } => {
                let mut header = vec![param.clone()];
                if let Some(first) = rows.first() {
                    for s in &first.series {
                        header.push(format!("{s} AVG"));
                    }
                    for s in &first.series {
                        header.push(format!("{s} AVGnomcf"));
                    }
                }
                push_csv_row(&mut out, &header);
                for r in rows {
                    let mut cells = vec![r.param.to_string()];
                    cells.extend(r.avg.iter().map(|&v| cf(v)));
                    cells.extend(r.avg_nomcf.iter().map(|&v| cf(v)));
                    push_csv_row(&mut out, &cells);
                }
            }
            ReportData::Benchmarks(rows) => {
                push_csv_row(
                    &mut out,
                    &[
                        "benchmark".into(),
                        "dynamic_uops".into(),
                        "static_branches".into(),
                        "dynamic_branches".into(),
                        "mispredicts_per_kuop".into(),
                        "upc".into(),
                        "static_wish".into(),
                        "static_wish_loop_pct".into(),
                        "dynamic_wish".into(),
                        "dynamic_wish_loop_pct".into(),
                    ],
                );
                for r in rows {
                    push_csv_row(
                        &mut out,
                        &[
                            r.name.clone(),
                            r.dynamic_uops.to_string(),
                            r.static_branches.to_string(),
                            r.dynamic_branches.to_string(),
                            cf(r.mispredicts_per_kuop),
                            cf(r.upc),
                            r.static_wish.to_string(),
                            cf(r.static_wish_loop_pct),
                            r.dynamic_wish.to_string(),
                            cf(r.dynamic_wish_loop_pct),
                        ],
                    );
                }
            }
            ReportData::BestBinary(rows) => {
                push_csv_row(
                    &mut out,
                    &[
                        "benchmark".into(),
                        "vs_normal_pct".into(),
                        "vs_best_predicated_pct".into(),
                        "best_predicated".into(),
                        "vs_best_pct".into(),
                        "best".into(),
                    ],
                );
                for r in rows {
                    push_csv_row(
                        &mut out,
                        &[
                            r.name.clone(),
                            cf(r.vs_normal_pct),
                            cf(r.vs_best_predicated_pct),
                            r.best_predicated.to_string(),
                            cf(r.vs_best_pct),
                            r.best.to_string(),
                        ],
                    );
                }
            }
            ReportData::Ablation { param, points } => {
                push_csv_row(&mut out, &[param.clone(), "avg_normalized".into()]);
                for p in points {
                    push_csv_row(&mut out, &[p.param.to_string(), cf(p.avg_normalized)]);
                }
            }
        }
        out
    }

    /// Pretty-prints the report as a fixed-width text [`Table`].
    #[must_use]
    pub fn render(&self) -> Table {
        match &self.data {
            ReportData::Figure(fig) => Table::from(fig),
            ReportData::Confidence(rows) => fig11_table(rows),
            ReportData::LoopBreakdown(rows) => fig13_table(rows),
            ReportData::ParamSweep { param, rows } => sweep_table(&self.title, param, rows),
            ReportData::Benchmarks(rows) => table4_table(rows),
            ReportData::BestBinary(rows) => table5_table(rows),
            ReportData::Ablation { param, points } => {
                let mut t = Table::new(
                    self.title.clone(),
                    vec![param.clone(), "avg normalized".into()],
                );
                for p in points {
                    t.push_row(vec![p.param.to_string(), format!("{:.3}", p.avg_normalized)]);
                }
                t
            }
        }
    }
}

fn push_csv_row(out: &mut String, cells: &[String]) {
    let line: Vec<String> = cells.iter().map(|c| csv_field(c)).collect();
    out.push_str(&line.join(","));
    out.push('\n');
}

/// Serializes a [`SweepSummary`] to one `wishbranch.summary/v1` JSON
/// object: job counts (including failures, retries and journal hits),
/// cache statistics, timing, the per-phase host-time breakdown, and the
/// simulator-throughput block (simulated cycles / retired µops per
/// host-second of simulate-phase time; journal hits contribute nothing),
/// and the batch block (`size` = configured lockstep width, `batched_jobs`
/// = jobs that actually ran in a multi-lane [`BatchSimulator`] round
/// rather than on the scalar path).
///
/// [`BatchSimulator`]: wishbranch_uarch::BatchSimulator
#[must_use]
pub fn summary_json(s: &SweepSummary) -> String {
    format!(
        "{{\"schema\":\"wishbranch.summary/v1\",\"jobs\":{},\"workers\":{},\
         \"failed\":{},\"retries\":{},\"journal_hits\":{},\
         \"profile_cache\":{{\"hits\":{},\"misses\":{}}},\
         \"compile_cache\":{{\"hits\":{},\"misses\":{}}},\
         \"artifact_store\":{{\"hits\":{},\"misses\":{},\"quarantined\":{}}},\
         \"job_time_s\":{},\"wall_time_s\":{},\"parallel_speedup\":{},\
         \"phase_time_s\":{{\"profile\":{},\"compile\":{},\"simulate\":{},\"verify\":{}}},\
         \"sim_throughput\":{{\"sim_cycles\":{},\"retired_uops\":{},\
         \"cycles_per_sec\":{},\"uops_per_sec\":{}}},\
         \"batch\":{{\"size\":{},\"batched_jobs\":{}}}}}",
        s.jobs,
        s.workers,
        s.failed,
        s.retries,
        s.journal_hits,
        s.profile_hits,
        s.profile_misses,
        s.compile_hits,
        s.compile_misses,
        s.store_hits,
        s.store_misses,
        s.store_quarantined,
        jf(s.job_time.as_secs_f64()),
        jf(s.wall_time.as_secs_f64()),
        jf(s.parallel_speedup()),
        jf(s.profile_time.as_secs_f64()),
        jf(s.compile_time.as_secs_f64()),
        jf(s.simulate_time.as_secs_f64()),
        jf(s.verify_time.as_secs_f64()),
        s.sim_cycles,
        s.sim_uops,
        jf(s.cycles_per_sec()),
        jf(s.uops_per_sec()),
        s.batch_size,
        s.batched_jobs,
    )
}

/// Serializes a [`SweepSummary`] to the `wishbranch.throughput/v1`
/// document the `perf-smoke` gate consumes (`BENCH_sim_throughput.json`):
/// simulator throughput (cycles/s, µops/s over simulate-phase time), the
/// raw numerators, the batch dimension (`batch_size`, `batched_jobs`),
/// and the per-phase host wall-clock.
#[must_use]
pub fn throughput_json(s: &SweepSummary) -> String {
    format!(
        "{{\"schema\":\"wishbranch.throughput/v1\",\"jobs\":{},\
         \"batch_size\":{},\"batched_jobs\":{},\
         \"sim_cycles\":{},\"retired_uops\":{},\
         \"cycles_per_sec\":{},\"uops_per_sec\":{},\
         \"phase_wall_s\":{{\"profile\":{},\"compile\":{},\"simulate\":{},\
         \"verify\":{},\"total\":{}}}}}",
        s.jobs,
        s.batch_size,
        s.batched_jobs,
        s.sim_cycles,
        s.sim_uops,
        jf(s.cycles_per_sec()),
        jf(s.uops_per_sec()),
        jf(s.profile_time.as_secs_f64()),
        jf(s.compile_time.as_secs_f64()),
        jf(s.simulate_time.as_secs_f64()),
        jf(s.verify_time.as_secs_f64()),
        jf(s.wall_time.as_secs_f64()),
    )
}

/// [`summary_json`] plus the failure table: one entry per failed job with
/// its submission index, typed kind, a short job label, the full error
/// message, and the attempt count. The `failures` array is always present
/// (empty on a clean sweep), so consumers get a stable schema.
#[must_use]
pub fn summary_json_with_failures(s: &SweepSummary, failures: &[crate::JobFailure]) -> String {
    let mut base = summary_json(s);
    let items: Vec<String> = failures
        .iter()
        .map(|f| {
            format!(
                "{{\"index\":{},\"kind\":{},\"job\":{},\"error\":{},\"attempts\":{}}}",
                f.index,
                jstr(f.error.kind()),
                jstr(&format!(
                    "bench{} {} @{}",
                    f.job.bench,
                    f.job.variant.label(),
                    f.job.input.label()
                )),
                jstr(&f.error.to_string()),
                f.attempts
            )
        })
        .collect();
    base.truncate(base.len() - 1); // strip the closing brace, then extend
    format!("{base},\"failures\":[{}]}}", items.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::NormalizedRow;

    fn sample_figure() -> Report {
        Report::figure(
            "figx",
            FigureData {
                title: "t \"quoted\"".into(),
                series: vec!["a".into(), "b".into()],
                rows: vec![NormalizedRow {
                    name: "gzip".into(),
                    values: vec![1.0, 0.5],
                }],
            },
        )
    }

    #[test]
    fn figure_json_shape_and_escaping() {
        let j = sample_figure().to_json();
        assert!(j.starts_with("{\"schema\":\"wishbranch.report/v1\""));
        assert!(j.contains("\"kind\":\"figure\""));
        assert!(j.contains("\\\"quoted\\\""));
        assert!(j.contains("\"values\":[1.000000,0.500000]"));
    }

    #[test]
    fn figure_csv_has_header_and_rows() {
        let c = sample_figure().to_csv();
        let lines: Vec<&str> = c.lines().collect();
        assert_eq!(lines[0], "benchmark,a,b");
        assert_eq!(lines[1], "gzip,1.000000,0.500000");
    }

    #[test]
    fn csv_fields_are_quoted_when_needed() {
        assert_eq!(csv_field("plain"), "plain");
        assert_eq!(csv_field("with,comma"), "\"with,comma\"");
        assert_eq!(csv_field("with\"quote"), "\"with\"\"quote\"");
    }

    #[test]
    fn ablation_report_round_trip() {
        let r = Report::ablation(
            "abl_x",
            "X sweep",
            "x",
            vec![AblationPoint {
                param: 7,
                avg_normalized: 0.25,
            }],
        );
        assert_eq!(r.kind(), "ablation");
        assert!(r.to_json().contains("\"param\":7"));
        assert!(r.to_csv().contains("7,0.250000"));
        assert!(r.render().to_string().contains("0.250"));
    }

    #[test]
    fn summary_json_contains_phases() {
        let j = summary_json(&SweepSummary::default());
        assert!(j.contains("\"schema\":\"wishbranch.summary/v1\""));
        assert!(j.contains("\"phase_time_s\""));
        assert!(j.contains("\"simulate\":0.000000"));
        assert!(j.contains("\"failed\":0"));
        assert!(j.contains("\"retries\":0"));
        assert!(j.contains("\"journal_hits\":0"));
        assert!(j.contains("\"artifact_store\":{\"hits\":0,\"misses\":0,\"quarantined\":0}"));
    }

    #[test]
    fn failed_cells_are_explicit_gaps_in_json_and_csv() {
        let r = Report::figure(
            "figx",
            FigureData {
                title: "t".into(),
                series: vec!["a".into(), "b".into()],
                rows: vec![NormalizedRow {
                    name: "gzip".into(),
                    values: vec![f64::NAN, 0.5],
                }],
            },
        );
        assert!(r.to_json().contains("\"values\":[null,0.500000]"));
        assert!(r.to_csv().contains("gzip,,0.500000"));
    }

    #[test]
    fn summary_with_failures_lists_each_failure() {
        use crate::engine::SweepJob;
        use crate::error::{JobError, JobFailure};
        use crate::experiment::ExperimentConfig;
        use wishbranch_compiler::BinaryVariant;
        use wishbranch_workloads::InputSet;

        let ec = ExperimentConfig::quick(20);
        let failure = JobFailure {
            job: SweepJob::standard(2, BinaryVariant::BaseDef, InputSet::A, &ec),
            index: 7,
            error: JobError::WorkerPanic {
                payload: "boom".into(),
            },
            attempts: 2,
        };
        let j = summary_json_with_failures(&SweepSummary::default(), &[failure]);
        assert!(j.contains("\"failures\":[{\"index\":7,\"kind\":\"worker_panic\""));
        assert!(j.contains("\"attempts\":2"));
        assert!(j.ends_with("]}"));
        let clean = summary_json_with_failures(&SweepSummary::default(), &[]);
        assert!(clean.contains("\"failures\":[]"));
    }
}
