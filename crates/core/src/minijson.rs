//! A minimal JSON reader for the typed request/response protocol.
//!
//! The report/journal emitters hand-roll their JSON (this environment has
//! no package registry, so no serde); the serving surface additionally
//! needs to *parse* documents arriving over a socket from untrusted
//! clients. This module is the counterpart reader: a small recursive-
//! descent parser into a [`JsonValue`] tree.
//!
//! Numbers are kept as their raw source text and converted on demand
//! ([`JsonValue::as_u64`] and friends), so values outside the `f64`-exact
//! range — journal keys are full 64-bit fingerprints — survive a round
//! trip without loss.

use std::fmt;

/// One parsed JSON value. Object keys keep their source order.
#[derive(Clone, PartialEq, Debug)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as raw source text (see module docs).
    Num(String),
    /// A string (escapes already decoded).
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, in source key order.
    Obj(Vec<(String, JsonValue)>),
}

/// Where and why parsing failed.
#[derive(Clone, PartialEq, Debug)]
pub struct JsonError {
    /// Byte offset of the failure in the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

impl JsonValue {
    /// Parses one complete JSON document (trailing whitespace allowed,
    /// trailing garbage is an error).
    ///
    /// # Errors
    ///
    /// [`JsonError`] naming the first offending byte offset.
    pub fn parse(text: &str) -> Result<JsonValue, JsonError> {
        let bytes = text.as_bytes();
        let mut p = Parser { bytes, pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return Err(p.err("trailing garbage after document"));
        }
        Ok(v)
    }

    /// Object field lookup (first match); `None` for non-objects.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number as `u64`, if this is a number with an exact `u64` value.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The number as `i64`, if this is a number with an exact `i64` value.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            JsonValue::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The number as `f64`, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The element slice, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The `(key, value)` entries in source order, if this is an object.
    #[must_use]
    pub fn entries(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Obj(entries) => Some(entries),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), JsonError> {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.bytes.get(self.pos) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected {word:?}")))
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let digits_start = self.pos;
        while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == digits_start {
            return Err(self.err("expected digits"));
        }
        if self.bytes.get(self.pos) == Some(&b'.') {
            self.pos += 1;
            let frac_start = self.pos;
            while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == frac_start {
                return Err(self.err("expected fraction digits"));
            }
        }
        if matches!(self.bytes.get(self.pos), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.bytes.get(self.pos), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_start = self.pos;
            while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == exp_start {
                return Err(self.err("expected exponent digits"));
            }
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid utf-8 in number"))?;
        Ok(JsonValue::Num(raw.to_string()))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogates are rejected rather than paired —
                            // nothing in the protocol emits them.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("\\u escape is not a scalar value"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(&b) if b < 0x20 => return Err(self.err("raw control byte in string")),
                Some(_) => {
                    // Multi-byte UTF-8 sequences pass through unchanged.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid utf-8 in string"))?;
                    let c = s.chars().next().ok_or_else(|| self.err("empty string tail"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.eat(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(entries));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let v = JsonValue::parse(
            "{\"a\": [1, -2.5, 3e2], \"b\": {\"c\": \"x\\n\\\"y\\\"\"}, \"d\": null, \"e\": true}",
        )
        .unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap()[0].as_u64(), Some(1));
        assert_eq!(v.get("a").unwrap().as_array().unwrap()[1].as_f64(), Some(-2.5));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\n\"y\""));
        assert_eq!(v.get("d"), Some(&JsonValue::Null));
        assert_eq!(v.get("e").unwrap().as_bool(), Some(true));
    }

    #[test]
    fn full_u64_keys_survive() {
        let v = JsonValue::parse("{\"key\":18446744073709551615}").unwrap();
        assert_eq!(v.get("key").unwrap().as_u64(), Some(u64::MAX));
        assert_eq!(v.get("key").unwrap().as_i64(), None, "out of i64 range");
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "", "{", "[1,", "{\"a\"}", "{\"a\":}", "tru", "1 2", "\"unterminated",
            "{\"a\":1,}", "[01x]", "nullx",
        ] {
            assert!(JsonValue::parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn round_trips_report_emitter_output() {
        // The hand-rolled emitters and this reader must agree on the dialect.
        let doc = crate::report::summary_json(&crate::engine::SweepSummary::default());
        let v = JsonValue::parse(&doc).unwrap();
        assert_eq!(
            v.get("schema").unwrap().as_str(),
            Some("wishbranch.summary/v1")
        );
    }
}
