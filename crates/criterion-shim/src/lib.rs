//! # criterion-shim
//!
//! A dependency-free, offline stand-in for the subset of the `criterion`
//! API this workspace uses: [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`BatchSize`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurements are simple wall-clock means (warmup + fixed sample count)
//! printed in a `name ... time: [mean]` line. Good enough to spot
//! order-of-magnitude regressions; not a statistical harness. Sample
//! count can be reduced for CI smoke runs with `CRITERION_SHIM_SAMPLES`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// How batched inputs are grouped; accepted and ignored (every iteration
/// gets a fresh setup value, as with `PerIteration`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

fn samples(default: usize) -> usize {
    std::env::var("CRITERION_SHIM_SAMPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n: &usize| n > 0)
        .unwrap_or(default)
}

/// Runs closures and reports their mean wall-clock time.
pub struct Bencher {
    sample_count: usize,
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `f`, called `sample_count` times after one warmup call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        std::hint::black_box(f());
        let t0 = Instant::now();
        for _ in 0..self.sample_count {
            std::hint::black_box(f());
        }
        self.elapsed = t0.elapsed();
        self.iters = self.sample_count as u64;
    }

    /// Times `routine` over fresh `setup()` inputs; setup time excluded.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        std::hint::black_box(routine(setup()));
        let mut total = Duration::ZERO;
        for _ in 0..self.sample_count {
            let input = setup();
            let t0 = Instant::now();
            std::hint::black_box(routine(input));
            total += t0.elapsed();
        }
        self.elapsed = total;
        self.iters = self.sample_count as u64;
    }
}

fn report(name: &str, b: &Bencher) {
    if b.iters == 0 {
        println!("{name:<40} time: [no measurement]");
        return;
    }
    let mean = b.elapsed.as_secs_f64() / b.iters as f64;
    let (value, unit) = if mean < 1e-6 {
        (mean * 1e9, "ns")
    } else if mean < 1e-3 {
        (mean * 1e6, "µs")
    } else if mean < 1.0 {
        (mean * 1e3, "ms")
    } else {
        (mean, "s")
    };
    println!("{name:<40} time: [{value:.2} {unit}/iter over {} iters]", b.iters);
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs one benchmark and prints its mean time.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            sample_count: samples(10),
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        report(name, &b);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            sample_size: samples(10),
        }
    }
}

/// A group of related benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = samples(n);
        self
    }

    /// Runs one benchmark in the group and prints its mean time.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            sample_count: self.sample_size,
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        report(&format!("{}/{name}", self.name), &b);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a function running the listed benchmark targets in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed [`criterion_group!`] functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        let mut calls = 0u32;
        c.bench_function("noop", |b| b.iter(|| calls += 1));
        assert!(calls > 0, "closure actually ran");
    }

    #[test]
    fn groups_run_batched_benchmarks() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        let mut total = 0u64;
        g.sample_size(5).bench_function("sum", |b| {
            b.iter_batched(|| 7u64, |x| total += x, BatchSize::SmallInput)
        });
        g.finish();
        assert!(total >= 7 * 5, "5 measured + 1 warmup batches: {total}");
    }
}
