//! Property test: the set-associative cache must behave exactly like an
//! executable reference model (per-set LRU list over line addresses).

use proptest::prelude::*;
use std::collections::VecDeque;
use wishbranch_mem::{Cache, CacheConfig};

/// Straight-line reference: one LRU list per set, most recent at the back.
struct RefCache {
    sets: Vec<VecDeque<u64>>,
    ways: usize,
    line_bytes: u64,
}

impl RefCache {
    fn new(sets: usize, ways: usize, line_bytes: u64) -> RefCache {
        RefCache {
            sets: (0..sets).map(|_| VecDeque::new()).collect(),
            ways,
            line_bytes,
        }
    }

    fn access(&mut self, addr: u64) -> bool {
        let line = addr / self.line_bytes;
        let set = (line as usize) % self.sets.len();
        let tag = line / self.sets.len() as u64;
        let s = &mut self.sets[set];
        if let Some(pos) = s.iter().position(|&t| t == tag) {
            s.remove(pos);
            s.push_back(tag);
            true
        } else {
            if s.len() == self.ways {
                s.pop_front();
            }
            s.push_back(tag);
            false
        }
    }

    fn probe(&self, addr: u64) -> bool {
        let line = addr / self.line_bytes;
        let set = (line as usize) % self.sets.len();
        let tag = line / self.sets.len() as u64;
        self.sets[set].iter().any(|&t| t == tag)
    }
}

proptest! {
    #[test]
    fn cache_matches_reference_model(
        ops in proptest::collection::vec((any::<bool>(), 0u64..(1 << 14)), 1..400),
        ways in 1usize..=4,
    ) {
        // 4 sets × ways × 64B lines.
        let cfg = CacheConfig {
            size_bytes: 4 * ways * 64,
            ways,
            line_bytes: 64,
            latency: 1,
        };
        let mut dut = Cache::new(cfg);
        let mut model = RefCache::new(4, ways, 64);
        for (is_probe, addr) in ops {
            if is_probe {
                prop_assert_eq!(dut.probe(addr), model.probe(addr), "probe {:#x}", addr);
            } else {
                prop_assert_eq!(dut.access(addr), model.access(addr), "access {:#x}", addr);
            }
        }
    }
}
