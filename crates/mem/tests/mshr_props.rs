//! Property tests for the MSHR file and the non-blocking hierarchy:
//! occupancy never exceeds the configured cap, `0` still means unlimited,
//! same-line misses coalesce onto one entry, and fill ordering is
//! deterministic under permuted access order.

use proptest::prelude::*;
use wishbranch_mem::{AccessOutcome, MemConfig, MemoryHierarchy, MshrFile};

proptest! {
    /// Under any interleaving of allocations and time advances, occupancy
    /// never exceeds a finite cap, and a refused allocation changes
    /// nothing.
    #[test]
    fn occupancy_never_exceeds_cap(
        cap in 1usize..6,
        ops in proptest::collection::vec((0u64..32, 1u64..40), 1..120),
    ) {
        let mut m = MshrFile::new(cap);
        let mut now = 0u64;
        for (line, dt) in ops {
            now += dt / 8; // advance time sometimes, by small steps
            m.drain(now, |_| {});
            if m.pending(line).is_none() {
                let before = m.occupancy();
                let ok = m.try_allocate(line, now + 100);
                prop_assert_eq!(ok, before < cap, "allocation iff below cap");
                if !ok {
                    prop_assert_eq!(m.occupancy(), before);
                }
            }
            prop_assert!(m.occupancy() <= cap, "occupancy {} > cap {}", m.occupancy(), cap);
        }
    }

    /// A cap of 0 means unlimited: no allocation is ever refused.
    #[test]
    fn zero_cap_is_unlimited(lines in proptest::collection::vec(0u64..10_000, 1..200)) {
        let mut m = MshrFile::new(0);
        for line in lines {
            if m.pending(line).is_none() {
                prop_assert!(m.try_allocate(line, 1_000_000), "unlimited file must accept");
            }
            prop_assert!(!m.is_full());
        }
    }

    /// Any number of same-line misses through the hierarchy consume exactly
    /// one MSHR per level and all see the same fill cycle.
    #[test]
    fn same_line_misses_coalesce_onto_one_mshr(
        offsets in proptest::collection::vec(0u64..64, 2..20),
        base in 0u64..1024,
    ) {
        let cfg = MemConfig { realistic: true, ..MemConfig::default() };
        let mut m = MemoryHierarchy::new(cfg);
        let line_base = 0x10_0000 + base * 64;
        let mut fill = None;
        for (i, off) in offsets.iter().enumerate() {
            match m.data_access_nonblocking(line_base + off, false, i as u64, 0) {
                AccessOutcome::Pending(f) => {
                    if let Some(prev) = fill {
                        prop_assert_eq!(f, prev, "coalesced fills must share the fill cycle");
                    }
                    fill = Some(f);
                }
                other => prop_assert!(false, "cold same-line access must be pending: {:?}", other),
            }
            prop_assert_eq!(m.mshr_occupancy(), (1, 1), "one line → one MSHR per level");
        }
    }

    /// Draining is deterministic and invariant under permuted allocation
    /// order: whatever order distinct-line misses were allocated in, fills
    /// retire sorted by (fill_at, line).
    #[test]
    fn fill_order_is_invariant_under_permutation(
        entries in proptest::collection::vec((0u64..1000, 10u64..50), 2..30),
        seed in any::<u64>(),
    ) {
        // Dedupe lines (coalescing forbids duplicate pending lines).
        let mut seen = std::collections::BTreeMap::new();
        for (line, fill) in entries {
            seen.entry(line).or_insert(fill);
        }
        let canonical: Vec<(u64, u64)> = seen.into_iter().collect();
        // A deterministic permutation from the seed (Fisher–Yates with
        // splitmix64 draws).
        let mut permuted = canonical.clone();
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        for i in (1..permuted.len()).rev() {
            let j = (next() % (i as u64 + 1)) as usize;
            permuted.swap(i, j);
        }
        let drain_order = |order: &[(u64, u64)]| {
            let mut m = MshrFile::new(0);
            for &(line, fill) in order {
                assert!(m.try_allocate(line, fill));
            }
            let mut out = Vec::new();
            m.drain(u64::MAX, |line| out.push(line));
            out
        };
        let a = drain_order(&canonical);
        let b = drain_order(&permuted);
        prop_assert_eq!(a, b, "fill order must not depend on allocation order");
    }
}

/// The cap also bounds the hierarchy end-to-end: a burst of distinct-line
/// misses is throttled to the configured L1 MSHR count, and the refused
/// remainder goes through once fills land.
#[test]
fn hierarchy_occupancy_respects_l1_cap() {
    let cfg = MemConfig {
        realistic: true,
        l1_mshrs: 3,
        ..MemConfig::default()
    };
    let mut m = MemoryHierarchy::new(cfg);
    let mut accepted = 0;
    let mut refused = 0;
    for k in 0..10u64 {
        match m.data_access_nonblocking(0x20_0000 + k * 4096, false, k, 0) {
            AccessOutcome::Pending(_) => accepted += 1,
            AccessOutcome::MshrFull => refused += 1,
            AccessOutcome::Ready(_) => panic!("cold lines cannot hit"),
            AccessOutcome::PortBusy => panic!("ports are unlimited here"),
        }
        assert!(m.mshr_occupancy().0 <= 3);
    }
    assert_eq!((accepted, refused), (3, 7));
    // After the fills complete every refused line can allocate again.
    for k in 3..6u64 {
        assert!(matches!(
            m.data_access_nonblocking(0x20_0000 + k * 4096, false, k, 1000),
            AccessOutcome::Pending(_)
        ));
    }
}
