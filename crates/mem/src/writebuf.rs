//! A small asynchronous write buffer: executed stores park here and drain
//! into the cache hierarchy over cycles instead of committing
//! instantaneously.
//!
//! The buffer is a pure timing device — architectural memory state lives
//! in the emulator, so an entry is just "a store whose cache write is
//! still in flight". Each entry carries the absolute cycle its drain
//! completes; drains serialize through the single cache write port the
//! buffer owns, so entry *k* can never complete before entry *k − 1*. The
//! whole structure is lazily pruned against the current cycle, which keeps
//! it usable from the batched core's inert-window fast-forward (no
//! per-cycle tick required).

/// FIFO of in-flight store drains, keyed by absolute completion cycle.
#[derive(Clone, Debug, Default)]
pub struct WriteBuffer {
    /// Capacity in entries; `0` disables the buffer (stores drain
    /// instantaneously, the historical model).
    cap: usize,
    /// Completion cycles of in-flight drains, non-decreasing by
    /// construction (each push serializes behind the current tail).
    entries: Vec<u64>,
    /// Stores refused because the buffer was full at issue time.
    full_rejections: u64,
    /// Stores accepted into the buffer over the whole run.
    accepted: u64,
}

impl WriteBuffer {
    /// Creates an empty buffer with `cap` entries (`0` = disabled).
    #[must_use]
    pub fn new(cap: usize) -> WriteBuffer {
        WriteBuffer {
            cap,
            entries: Vec::new(),
            ..WriteBuffer::default()
        }
    }

    /// Whether the buffer models anything at all.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.cap != 0
    }

    /// Drops every drain that completed by `now`.
    pub fn prune(&mut self, now: u64) {
        // Entries are sorted, so completed drains form a prefix.
        let done = self.entries.iter().take_while(|&&t| t <= now).count();
        self.entries.drain(..done);
    }

    /// Whether a store issued at `now` would be refused for lack of an
    /// entry. Prunes first, so the answer reflects the current cycle.
    #[must_use]
    pub fn is_full_at(&mut self, now: u64) -> bool {
        if self.cap == 0 {
            return false;
        }
        self.prune(now);
        self.entries.len() >= self.cap
    }

    /// Records a refused store (kept separate from [`WriteBuffer::push`]
    /// so the caller can check-then-refuse without side effects).
    pub fn note_rejected(&mut self) {
        self.full_rejections += 1;
    }

    /// Accepts a store whose cache write would complete at `complete_at`
    /// in isolation; the entry serializes behind the buffer tail and the
    /// actual drain-completion cycle is returned.
    ///
    /// The caller must have checked [`WriteBuffer::is_full_at`] first.
    pub fn push(&mut self, now: u64, complete_at: u64) -> u64 {
        debug_assert!(self.cap == 0 || self.entries.len() < self.cap);
        let tail = self.entries.last().copied().unwrap_or(now);
        let done = complete_at.max(tail);
        self.entries.push(done);
        self.accepted += 1;
        done
    }

    /// Entries still draining at `now` (diagnostic).
    #[must_use]
    pub fn occupancy_at(&mut self, now: u64) -> usize {
        self.prune(now);
        self.entries.len()
    }

    /// Stores refused because the buffer was full.
    #[must_use]
    pub fn full_rejections(&self) -> u64 {
        self.full_rejections
    }

    /// Stores accepted into the buffer.
    #[must_use]
    pub fn accepted(&self) -> u64 {
        self.accepted
    }

    /// Earliest cycle strictly after `now` at which an entry drains —
    /// when a full buffer next frees a slot. `None` when nothing is in
    /// flight past `now`.
    #[must_use]
    pub fn next_drain_after(&self, now: u64) -> Option<u64> {
        self.entries.iter().copied().find(|&t| t > now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_buffer_never_fills() {
        let mut wb = WriteBuffer::new(0);
        assert!(!wb.enabled());
        for _ in 0..100 {
            assert!(!wb.is_full_at(0));
            wb.push(0, 300);
        }
    }

    #[test]
    fn drains_serialize_behind_the_tail() {
        let mut wb = WriteBuffer::new(4);
        // A slow drain followed by a fast one: the fast one still waits.
        assert_eq!(wb.push(0, 300), 300);
        assert_eq!(wb.push(1, 3), 300);
        assert_eq!(wb.push(2, 500), 500);
    }

    #[test]
    fn full_buffer_frees_as_time_passes() {
        let mut wb = WriteBuffer::new(2);
        wb.push(0, 100);
        wb.push(0, 200);
        assert!(wb.is_full_at(50));
        assert_eq!(wb.next_drain_after(50), Some(100));
        assert!(!wb.is_full_at(100), "the head drain completed at 100");
        assert_eq!(wb.occupancy_at(150), 1);
        assert!(!wb.is_full_at(200));
        assert_eq!(wb.occupancy_at(200), 0);
    }

    #[test]
    fn rejections_are_counted_separately() {
        let mut wb = WriteBuffer::new(1);
        wb.push(0, 100);
        assert!(wb.is_full_at(10));
        wb.note_rejected();
        assert_eq!(wb.full_rejections(), 1);
        assert_eq!(wb.accepted(), 1);
    }
}
