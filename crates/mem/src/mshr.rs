//! Miss-status holding registers: the bookkeeping that makes a cache
//! level non-blocking.
//!
//! Each outstanding line fill occupies one [`MshrFile`] entry from the
//! cycle the miss is issued until its fill cycle has passed. Further
//! misses to the same line *coalesce* onto the existing entry (they get
//! the same fill cycle and consume no extra entry). When every entry is
//! busy the cache cannot accept a new miss: the access is refused and the
//! core must retry — surfaced upstream as the `mshr-full` stall cause.

/// One in-flight line fill.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MshrEntry {
    /// Line address (byte address of the line / line size).
    pub line: u64,
    /// Absolute cycle at which the fill completes and the line becomes
    /// resident.
    pub fill_at: u64,
}

/// A finite file of miss-status holding registers for one cache level.
///
/// A capacity of `0` means *unlimited* — the historical default of the
/// flat latency model, where memory-level parallelism is unbounded.
#[derive(Clone, Debug)]
pub struct MshrFile {
    cap: usize,
    entries: Vec<MshrEntry>,
    coalesced: u64,
    rejected: u64,
}

impl MshrFile {
    /// An empty file with `cap` entries (`0` = unlimited).
    #[must_use]
    pub fn new(cap: usize) -> MshrFile {
        MshrFile {
            cap,
            entries: Vec::new(),
            coalesced: 0,
            rejected: 0,
        }
    }

    /// Configured capacity (`0` = unlimited).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Entries currently in flight.
    #[must_use]
    pub fn occupancy(&self) -> usize {
        self.entries.len()
    }

    /// Whether a new (non-coalescing) miss would be refused.
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.cap != 0 && self.entries.len() >= self.cap
    }

    /// Fill cycle of the in-flight entry for `line`, if any. A hit here is
    /// a coalesced miss: the caller piggybacks on the existing fill.
    #[must_use]
    pub fn pending(&self, line: u64) -> Option<u64> {
        self.entries.iter().find(|e| e.line == line).map(|e| e.fill_at)
    }

    /// Records that an access coalesced onto an existing entry.
    pub fn note_coalesced(&mut self) {
        self.coalesced += 1;
    }

    /// Allocates an entry for `line` filling at `fill_at`. Returns `false`
    /// (and changes nothing) when the file is full. Must not be called for
    /// a line that is already pending — coalesce via [`MshrFile::pending`]
    /// instead.
    pub fn try_allocate(&mut self, line: u64, fill_at: u64) -> bool {
        debug_assert!(
            self.pending(line).is_none(),
            "line {line:#x} already pending — coalesce, don't allocate"
        );
        if self.is_full() {
            self.rejected += 1;
            return false;
        }
        self.entries.push(MshrEntry { line, fill_at });
        true
    }

    /// Retires every entry whose fill has completed by `now`, invoking
    /// `install(line)` for each in `(fill_at, line)` order. The tie-break
    /// on the line address (not allocation order) makes the resulting
    /// cache state invariant under permuted same-cycle access order.
    pub fn drain(&mut self, now: u64, mut install: impl FnMut(u64)) {
        if self.entries.iter().all(|e| e.fill_at > now) {
            return;
        }
        let mut done: Vec<MshrEntry> = Vec::new();
        self.entries.retain(|e| {
            if e.fill_at <= now {
                done.push(*e);
                false
            } else {
                true
            }
        });
        done.sort_by_key(|e| (e.fill_at, e.line));
        for e in done {
            install(e.line);
        }
    }

    /// Any fill still outstanding at `now` (i.e. completing strictly later)?
    #[must_use]
    pub fn busy(&self, now: u64) -> bool {
        self.entries.iter().any(|e| e.fill_at > now)
    }

    /// Earliest fill completing strictly after `now`, if any — the next
    /// cycle at which [`MshrFile::busy`] can change value. (Entries only
    /// leave the file via [`MshrFile::drain`], so between accesses the
    /// `busy` predicate is a pure function of `now` and this threshold.)
    #[must_use]
    pub fn next_fill_after(&self, now: u64) -> Option<u64> {
        self.entries.iter().map(|e| e.fill_at).filter(|&f| f > now).min()
    }

    /// Cancels every *still-pending* entry (fill strictly after `now`)
    /// whose line satisfies `cancel`, returning how many were dropped.
    /// Entries whose fill already completed are kept for the next
    /// [`MshrFile::drain`] — a landed fill cannot be recalled. Used to
    /// squash wrong-path instruction fills on a pipeline flush.
    pub fn cancel_pending_if(&mut self, now: u64, mut cancel: impl FnMut(u64) -> bool) -> u64 {
        let before = self.entries.len();
        self.entries.retain(|e| e.fill_at <= now || !cancel(e.line));
        (before - self.entries.len()) as u64
    }

    /// Misses that coalesced onto an existing entry.
    #[must_use]
    pub fn coalesced(&self) -> u64 {
        self.coalesced
    }

    /// Misses refused because the file was full.
    #[must_use]
    pub fn rejected(&self) -> u64 {
        self.rejected
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_bounds_occupancy() {
        let mut m = MshrFile::new(2);
        assert!(m.try_allocate(1, 10));
        assert!(m.try_allocate(2, 12));
        assert!(m.is_full());
        assert!(!m.try_allocate(3, 14), "third allocation must be refused");
        assert_eq!(m.occupancy(), 2);
        assert_eq!(m.rejected(), 1);
    }

    #[test]
    fn zero_capacity_is_unlimited() {
        let mut m = MshrFile::new(0);
        for line in 0..100 {
            assert!(m.try_allocate(line, 10 + line));
        }
        assert!(!m.is_full());
        assert_eq!(m.occupancy(), 100);
    }

    #[test]
    fn drain_retires_in_fill_time_then_line_order() {
        let mut m = MshrFile::new(0);
        m.try_allocate(7, 20);
        m.try_allocate(3, 10);
        m.try_allocate(9, 10);
        m.try_allocate(1, 30);
        let mut order = Vec::new();
        m.drain(20, |line| order.push(line));
        assert_eq!(order, vec![3, 9, 7]);
        assert_eq!(m.occupancy(), 1);
        assert!(m.busy(20));
        m.drain(30, |line| order.push(line));
        assert_eq!(order, vec![3, 9, 7, 1]);
        assert!(!m.busy(30));
    }

    #[test]
    fn cancel_drops_only_pending_matching_entries() {
        let mut m = MshrFile::new(0);
        m.try_allocate(1, 10); // completed by now=20: must survive
        m.try_allocate(2, 50); // pending, matches: cancelled
        m.try_allocate(3, 60); // pending, spared by the predicate
        let dropped = m.cancel_pending_if(20, |line| line != 3);
        assert_eq!(dropped, 1);
        assert_eq!(m.pending(2), None);
        assert_eq!(m.pending(3), Some(60));
        let mut installed = Vec::new();
        m.drain(20, |line| installed.push(line));
        assert_eq!(installed, vec![1], "a landed fill still installs");
    }

    #[test]
    fn pending_reports_fill_cycle() {
        let mut m = MshrFile::new(4);
        m.try_allocate(5, 42);
        assert_eq!(m.pending(5), Some(42));
        assert_eq!(m.pending(6), None);
        m.drain(42, |_| {});
        assert_eq!(m.pending(5), None);
    }
}
