//! # wishbranch-mem
//!
//! The cache/memory timing model of the baseline machine (Table 2 of the
//! paper):
//!
//! * 64 KB, 4-way, 2-cycle I-cache;
//! * 64 KB, 4-way, 2-cycle L1 data cache;
//! * 1 MB, 8-way, 6-cycle unified L2;
//! * 300-cycle minimum memory latency;
//! * 64 B lines, LRU replacement everywhere.
//!
//! Two data-side timing models share this geometry:
//!
//! * the **flat latency model** (default): an access returns the number of
//!   cycles until its data is available and the line fills immediately —
//!   misses block nothing and memory-level parallelism is unbounded
//!   (optionally capped by the `max_outstanding_misses` queueing knob of
//!   the `abl_mshr` study);
//! * the **non-blocking model** ([`MemConfig::realistic`]): per-level
//!   finite MSHR files ([`MshrFile`]) on the I-cache, L1D and L2, with
//!   same-line miss coalescing, fills that land at a future cycle instead
//!   of instantly, an [`AccessOutcome::MshrFull`] refusal when every MSHR
//!   is busy, an optional per-PC [`StridePrefetcher`] plus next-line
//!   instruction prefetch, an asynchronous [`WriteBuffer`] for executed
//!   stores ([`MemConfig::write_buffer_entries`]) and a per-cycle
//!   data-port limit ([`MemConfig::data_ports`]).
//!
//! Bus contention is still not modelled (see DESIGN.md); port/bank
//! conflicts are approximated by the single-bank `data_ports` limit, and
//! the 4:1 core-to-memory frequency ratio and 32 banks of the paper's
//! table are folded into the flat 300-cycle memory latency.
//! Store-to-load forwarding ([`MemConfig::store_forwarding`]) is enforced
//! by the core's store queue, which owns the in-flight store addresses.
//!
//! # Example
//!
//! ```
//! use wishbranch_mem::{MemoryHierarchy, MemConfig};
//!
//! let mut mem = MemoryHierarchy::new(MemConfig::default());
//! let cold = mem.data_access(0x1000, false);
//! let warm = mem.data_access(0x1008, false); // same 64B line
//! assert!(cold > warm);
//! assert_eq!(warm, 2); // L1 hit
//! ```
//!
//! The non-blocking model instead reports *when* the data arrives:
//!
//! ```
//! use wishbranch_mem::{AccessOutcome, MemConfig, MemoryHierarchy};
//!
//! let mut cfg = MemConfig::default();
//! cfg.realistic = true;
//! let mut mem = MemoryHierarchy::new(cfg);
//! match mem.data_access_nonblocking(0x1000, false, /*pc=*/ 1, /*now=*/ 0) {
//!     AccessOutcome::Pending(fill_at) => assert_eq!(fill_at, 2 + 6 + 300),
//!     other => panic!("cold miss: {other:?}"),
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod hierarchy;
mod mshr;
mod prefetch;
mod writebuf;

pub use cache::{Cache, CacheConfig, CacheStats};
pub use hierarchy::{AccessOutcome, MemConfig, MemoryHierarchy, StoreOutcome};
pub use mshr::{MshrEntry, MshrFile};
pub use prefetch::StridePrefetcher;
pub use writebuf::WriteBuffer;
