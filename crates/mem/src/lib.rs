//! # wishbranch-mem
//!
//! The cache/memory timing model of the baseline machine (Table 2 of the
//! paper):
//!
//! * 64 KB, 4-way, 2-cycle I-cache;
//! * 64 KB, 4-way, 2-cycle L1 data cache;
//! * 1 MB, 8-way, 6-cycle unified L2;
//! * 300-cycle minimum memory latency;
//! * 64 B lines, LRU replacement everywhere.
//!
//! The model is a *latency* model: an access returns the number of cycles
//! until its data is available, and fills happen immediately. Bank
//! conflicts, MSHR occupancy and bus contention are not modelled (see
//! DESIGN.md); the 4:1 core-to-memory frequency ratio and 32 banks of the
//! paper's table are folded into the flat 300-cycle memory latency.
//!
//! # Example
//!
//! ```
//! use wishbranch_mem::{MemoryHierarchy, MemConfig};
//!
//! let mut mem = MemoryHierarchy::new(MemConfig::default());
//! let cold = mem.data_access(0x1000, false);
//! let warm = mem.data_access(0x1008, false); // same 64B line
//! assert!(cold > warm);
//! assert_eq!(warm, 2); // L1 hit
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod hierarchy;

pub use cache::{Cache, CacheConfig, CacheStats};
pub use hierarchy::{MemConfig, MemoryHierarchy};
