//! A generic set-associative cache with true-LRU replacement.

/// Geometry of a [`Cache`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Associativity.
    pub ways: usize,
    /// Line size in bytes (power of two).
    pub line_bytes: usize,
    /// Access latency in cycles (hit latency).
    pub latency: u64,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (non-power-of-two sets/line,
    /// or capacity not divisible by `ways * line_bytes`).
    #[must_use]
    pub fn num_sets(&self) -> usize {
        assert!(self.line_bytes.is_power_of_two(), "line size must be a power of two");
        let set_bytes = self.ways * self.line_bytes;
        assert!(
            set_bytes > 0 && self.size_bytes.is_multiple_of(set_bytes),
            "capacity {} not divisible by ways*line {}",
            self.size_bytes,
            set_bytes
        );
        let sets = self.size_bytes / set_bytes;
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        sets
    }
}

/// Hit/miss counters for a cache.
#[derive(Clone, Copy, PartialEq, Eq, Default, Debug)]
pub struct CacheStats {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed (and filled).
    pub misses: u64,
    /// Probes (non-filling lookups, e.g. wrong-path loads).
    pub probes: u64,
}

impl CacheStats {
    /// Total filling accesses.
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss ratio over filling accesses (0 when no accesses).
    #[must_use]
    pub fn miss_ratio(&self) -> f64 {
        let a = self.accesses();
        if a == 0 {
            0.0
        } else {
            self.misses as f64 / a as f64
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct Line {
    tag: u64,
    lru: u64,
}

/// A set-associative, true-LRU, write-allocate cache tag array.
///
/// Only tags are stored — data always comes from the simulator's
/// architectural memory; the cache exists purely for timing.
#[derive(Clone, Debug)]
pub struct Cache {
    cfg: CacheConfig,
    sets: Vec<Vec<Line>>,
    set_shift: u32,
    set_mask: u64,
    tick: u64,
    stats: CacheStats,
}

impl Cache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (see [`CacheConfig::num_sets`]).
    #[must_use]
    pub fn new(cfg: CacheConfig) -> Cache {
        let sets = cfg.num_sets();
        Cache {
            cfg,
            sets: vec![Vec::with_capacity(cfg.ways); sets],
            set_shift: cfg.line_bytes.trailing_zeros(),
            set_mask: (sets - 1) as u64,
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    fn set_and_tag(&self, addr: u64) -> (usize, u64) {
        let line = addr >> self.set_shift;
        ((line & self.set_mask) as usize, line >> self.set_mask.count_ones())
    }

    /// Accesses `addr`: returns `true` on a hit. Misses allocate the line
    /// (write-allocate; evicting true-LRU).
    pub fn access(&mut self, addr: u64) -> bool {
        self.tick += 1;
        let tick = self.tick;
        let ways = self.cfg.ways;
        let (set, tag) = self.set_and_tag(addr);
        let set_vec = &mut self.sets[set];
        if let Some(line) = set_vec.iter_mut().find(|l| l.tag == tag) {
            line.lru = tick;
            self.stats.hits += 1;
            return true;
        }
        self.stats.misses += 1;
        if set_vec.len() < ways {
            set_vec.push(Line { tag, lru: tick });
        } else {
            let victim = set_vec
                .iter_mut()
                .min_by_key(|l| l.lru)
                .expect("set is non-empty");
            *victim = Line { tag, lru: tick };
        }
        false
    }

    /// Non-filling lookup: returns `true` on a hit, does not change LRU and
    /// does not allocate. Used for wrong-path accesses so speculation does
    /// not pollute the cache (DESIGN.md simplification).
    pub fn probe(&mut self, addr: u64) -> bool {
        self.stats.probes += 1;
        let (set, tag) = self.set_and_tag(addr);
        self.sets[set].iter().any(|l| l.tag == tag)
    }

    /// Pure presence check: no statistics, no LRU update, no allocation.
    /// The non-blocking hierarchy uses it to route an access (hit, coalesce,
    /// MSHR allocate, or refuse) *before* committing any state change, so a
    /// refused access (`MshrFull`) can be retried without perturbing
    /// counters or replacement state.
    #[must_use]
    pub fn contains(&self, addr: u64) -> bool {
        let (set, tag) = self.set_and_tag(addr);
        self.sets[set].iter().any(|l| l.tag == tag)
    }

    /// Demand lookup for the non-blocking hierarchy: counts a hit or a
    /// miss and refreshes LRU on a hit, but — unlike [`Cache::access`] —
    /// never allocates. On a miss the line arrives later via
    /// [`Cache::install`] when its MSHR fill completes.
    pub fn lookup(&mut self, addr: u64) -> bool {
        let (set, tag) = self.set_and_tag(addr);
        if let Some(line) = self.sets[set].iter_mut().find(|l| l.tag == tag) {
            self.tick += 1;
            line.lru = self.tick;
            self.stats.hits += 1;
            true
        } else {
            self.stats.misses += 1;
            false
        }
    }

    /// Installs the line holding `addr` (MSHR fill completion). Does not
    /// count as an access; idempotent if the line is already present
    /// (refreshes its LRU position, as a fill would).
    pub fn install(&mut self, addr: u64) {
        self.tick += 1;
        let tick = self.tick;
        let ways = self.cfg.ways;
        let (set, tag) = self.set_and_tag(addr);
        let set_vec = &mut self.sets[set];
        if let Some(line) = set_vec.iter_mut().find(|l| l.tag == tag) {
            line.lru = tick;
        } else if set_vec.len() < ways {
            set_vec.push(Line { tag, lru: tick });
        } else {
            let victim = set_vec
                .iter_mut()
                .min_by_key(|l| l.lru)
                .expect("set is non-empty");
            *victim = Line { tag, lru: tick };
        }
    }

    /// Hit latency in cycles.
    #[must_use]
    pub fn latency(&self) -> u64 {
        self.cfg.latency
    }

    /// Line size in bytes.
    #[must_use]
    pub fn line_bytes(&self) -> usize {
        self.cfg.line_bytes
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 2 sets × 2 ways × 64B lines = 256 B.
        Cache::new(CacheConfig {
            size_bytes: 256,
            ways: 2,
            line_bytes: 64,
            latency: 2,
        })
    }

    #[test]
    fn cold_miss_then_hit_same_line() {
        let mut c = tiny();
        assert!(!c.access(0x100));
        assert!(c.access(0x100));
        assert!(c.access(0x13f)); // same 64B line
        assert!(!c.access(0x140)); // next line
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = tiny();
        // Set 0 holds lines with (addr >> 6) even.
        c.access(0x000); // line A
        c.access(0x080); // line B (set 0, 2 sets × 64B → stride 128)
        c.access(0x000); // touch A; B is LRU
        c.access(0x100); // line C evicts B
        assert!(c.access(0x000), "A should survive");
        assert!(!c.access(0x080), "B was evicted");
    }

    #[test]
    fn probe_does_not_allocate_or_touch() {
        let mut c = tiny();
        assert!(!c.probe(0x40));
        assert!(!c.access(0x40));
        assert!(c.probe(0x40));
        // Probe must not refresh LRU: fill the set, probe the LRU line,
        // then insert — the probed line must still be evicted.
        c.access(0x0C0); // second way of set 1
        // LRU in set 1 is 0x40 now; touch 0x40 via probe only.
        c.probe(0x40);
        c.access(0x140); // evicts 0x40 despite the probe
        assert!(!c.probe(0x40));
        assert!(c.probe(0x0C0));
    }

    #[test]
    fn stats_miss_ratio() {
        let mut c = tiny();
        c.access(0);
        c.access(0);
        assert!((c.stats().miss_ratio() - 0.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_geometry_rejected() {
        let _ = Cache::new(CacheConfig {
            size_bytes: 192,
            ways: 1,
            line_bytes: 64,
            latency: 1,
        });
    }
}
