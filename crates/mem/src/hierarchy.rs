//! The two-level hierarchy of Table 2 glued together as a latency model.

use crate::cache::{Cache, CacheConfig, CacheStats};

/// Configuration of the full memory hierarchy. Defaults are Table 2's.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MemConfig {
    /// Instruction cache geometry.
    pub icache: CacheConfig,
    /// L1 data cache geometry.
    pub l1d: CacheConfig,
    /// Unified L2 geometry.
    pub l2: CacheConfig,
    /// Minimum main-memory latency in cycles.
    pub memory_latency: u64,
    /// Maximum outstanding memory-level misses (MSHRs). `0` = unlimited —
    /// the paper's table does not bound MLP, so unlimited is the default;
    /// finite values queue excess misses behind the oldest outstanding one
    /// (see the `abl_mshr` study).
    pub max_outstanding_misses: usize,
}

impl Default for MemConfig {
    fn default() -> Self {
        MemConfig {
            icache: CacheConfig {
                size_bytes: 64 * 1024,
                ways: 4,
                line_bytes: 64,
                latency: 2,
            },
            l1d: CacheConfig {
                size_bytes: 64 * 1024,
                ways: 4,
                line_bytes: 64,
                latency: 2,
            },
            l2: CacheConfig {
                size_bytes: 1024 * 1024,
                ways: 8,
                line_bytes: 64,
                latency: 6,
            },
            memory_latency: 300,
            max_outstanding_misses: 0,
        }
    }
}

/// I-cache + L1D + unified L2 + memory, as a pure latency model.
///
/// An access returns the total cycles until data is available:
/// L1 hit → L1 latency; L1 miss, L2 hit → L1 + L2; both miss → L1 + L2 +
/// memory latency. Fills are immediate (no MSHRs); see DESIGN.md.
#[derive(Clone, Debug)]
pub struct MemoryHierarchy {
    icache: Cache,
    l1d: Cache,
    l2: Cache,
    memory_latency: u64,
    max_outstanding: usize,
    /// Completion times of in-flight memory-level misses (kept sorted by
    /// construction: each new miss completes no earlier than the previous
    /// when the MSHRs are saturated).
    outstanding: Vec<u64>,
}

impl MemoryHierarchy {
    /// Creates an empty (cold) hierarchy.
    ///
    /// # Panics
    ///
    /// Panics if any cache geometry in `cfg` is inconsistent.
    #[must_use]
    pub fn new(cfg: MemConfig) -> MemoryHierarchy {
        MemoryHierarchy {
            icache: Cache::new(cfg.icache),
            l1d: Cache::new(cfg.l1d),
            l2: Cache::new(cfg.l2),
            memory_latency: cfg.memory_latency,
            max_outstanding: cfg.max_outstanding_misses,
            outstanding: Vec::new(),
        }
    }

    /// Accounts one memory-level miss issued at `now`, returning its
    /// effective latency after MSHR queueing.
    fn memory_miss(&mut self, now: u64) -> u64 {
        if self.max_outstanding == 0 {
            return self.memory_latency;
        }
        self.outstanding.retain(|&t| t > now);
        let start = if self.outstanding.len() >= self.max_outstanding {
            // Oldest outstanding miss must complete before this one can
            // allocate an MSHR.
            let k = self.outstanding.len() + 1 - self.max_outstanding;
            self.outstanding[k - 1].max(now)
        } else {
            now
        };
        let done = start + self.memory_latency;
        self.outstanding.push(done);
        self.outstanding.sort_unstable();
        done - now
    }

    /// Instruction fetch of the line containing `addr`; returns latency in
    /// cycles. `now` is the current cycle, used for MSHR accounting.
    pub fn fetch_access_at(&mut self, addr: u64, now: u64) -> u64 {
        let mut lat = self.icache.latency();
        if !self.icache.access(addr) {
            lat += self.l2.latency();
            if !self.l2.access(addr) {
                lat += self.memory_miss(now + lat);
            }
        }
        lat
    }

    /// [`MemoryHierarchy::fetch_access_at`] without MSHR accounting (kept
    /// for callers with no notion of time).
    pub fn fetch_access(&mut self, addr: u64) -> u64 {
        self.fetch_access_at(addr, 0)
    }

    /// Data access (load or store — write-allocate makes them identical for
    /// timing); returns latency in cycles. `now` is the current cycle.
    pub fn data_access_at(&mut self, addr: u64, _is_write: bool, now: u64) -> u64 {
        let mut lat = self.l1d.latency();
        if !self.l1d.access(addr) {
            lat += self.l2.latency();
            if !self.l2.access(addr) {
                lat += self.memory_miss(now + lat);
            }
        }
        lat
    }

    /// [`MemoryHierarchy::data_access_at`] without MSHR accounting.
    pub fn data_access(&mut self, addr: u64, is_write: bool) -> u64 {
        self.data_access_at(addr, is_write, 0)
    }

    /// Wrong-path data access: computes the latency the access *would* see
    /// but does not install lines anywhere (no pollution).
    pub fn data_probe(&mut self, addr: u64) -> u64 {
        let mut lat = self.l1d.latency();
        if !self.l1d.probe(addr) {
            lat += self.l2.latency();
            if !self.l2.probe(addr) {
                lat += self.memory_latency;
            }
        }
        lat
    }

    /// Statistics for (icache, l1d, l2).
    #[must_use]
    pub fn stats(&self) -> (CacheStats, CacheStats, CacheStats) {
        (self.icache.stats(), self.l1d.stats(), self.l2.stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_composition() {
        let mut m = MemoryHierarchy::new(MemConfig::default());
        // Cold: L1 miss + L2 miss + memory.
        assert_eq!(m.data_access(0x4000, false), 2 + 6 + 300);
        // Warm L1.
        assert_eq!(m.data_access(0x4000, false), 2);
    }

    #[test]
    fn l2_catches_l1_evictions() {
        // Tiny L1 (1 set × 1 way), big L2.
        let cfg = MemConfig {
            l1d: CacheConfig {
                size_bytes: 64,
                ways: 1,
                line_bytes: 64,
                latency: 2,
            },
            ..MemConfig::default()
        };
        let mut m = MemoryHierarchy::new(cfg);
        m.data_access(0x0, false); // miss both
        m.data_access(0x40, false); // evicts 0x0 from L1, fills L2
        // 0x0: L1 miss, L2 hit.
        assert_eq!(m.data_access(0x0, false), 2 + 6);
    }

    #[test]
    fn fetch_and_data_share_l2() {
        let mut m = MemoryHierarchy::new(MemConfig::default());
        m.fetch_access(0x8000); // fills L2 line
        // Data access to same line: L1D miss but L2 hit.
        assert_eq!(m.data_access(0x8000, false), 2 + 6);
    }

    #[test]
    fn probe_never_pollutes() {
        let mut m = MemoryHierarchy::new(MemConfig::default());
        assert_eq!(m.data_probe(0xA000), 2 + 6 + 300);
        // Still cold afterwards.
        assert_eq!(m.data_access(0xA000, false), 2 + 6 + 300);
    }
}

#[cfg(test)]
mod mshr_tests {
    use super::*;

    #[test]
    fn unlimited_mshrs_overlap_everything() {
        let mut m = MemoryHierarchy::new(MemConfig::default());
        for k in 0..8u64 {
            assert_eq!(m.data_access_at(0x10_0000 + k * 4096, false, 0), 308);
        }
    }

    #[test]
    fn finite_mshrs_queue_excess_misses() {
        let cfg = MemConfig {
            max_outstanding_misses: 2,
            ..MemConfig::default()
        };
        let mut m = MemoryHierarchy::new(cfg);
        // Three simultaneous misses: the third queues behind the first.
        let a = m.data_access_at(0x10_0000, false, 0);
        let b = m.data_access_at(0x20_0000, false, 0);
        let c = m.data_access_at(0x30_0000, false, 0);
        assert_eq!(a, 308);
        assert_eq!(b, 308);
        assert!(c > 308 + 290, "third miss must wait for an MSHR: {c}");
        // Once time passes, MSHRs free up.
        let d = m.data_access_at(0x40_0000, false, 2000);
        assert_eq!(d, 308);
    }

    #[test]
    fn mshr_queue_drains_in_order() {
        let cfg = MemConfig {
            max_outstanding_misses: 1,
            ..MemConfig::default()
        };
        let mut m = MemoryHierarchy::new(cfg);
        let a = m.data_access_at(0x10_0000, false, 0);
        let b = m.data_access_at(0x20_0000, false, 0);
        let c = m.data_access_at(0x30_0000, false, 0);
        // Fully serialized: each waits for the previous.
        assert_eq!(a, 308);
        assert!(b >= 300 + 300 && c >= b + 290, "serial misses: {a} {b} {c}");
    }
}
