//! The two-level hierarchy of Table 2, in two selectable timing models:
//!
//! * the historical **flat latency model** (`realistic = false`, the
//!   default): an access returns its total latency and the line fills
//!   immediately;
//! * the **non-blocking model** (`realistic = true`): per-level finite
//!   [`MshrFile`]s with same-line miss coalescing, fills that land at a
//!   future cycle, and an optional [`StridePrefetcher`] — see
//!   [`MemoryHierarchy::data_access_nonblocking`].

use crate::cache::{Cache, CacheConfig, CacheStats};
use crate::mshr::MshrFile;
use crate::prefetch::StridePrefetcher;
use crate::writebuf::WriteBuffer;

/// Configuration of the full memory hierarchy. Defaults are Table 2's.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MemConfig {
    /// Instruction cache geometry.
    pub icache: CacheConfig,
    /// L1 data cache geometry.
    pub l1d: CacheConfig,
    /// Unified L2 geometry.
    pub l2: CacheConfig,
    /// Minimum main-memory latency in cycles.
    pub memory_latency: u64,
    /// Maximum outstanding memory-level misses in the *flat* model. `0` =
    /// unlimited — the paper's table does not bound MLP, so unlimited is
    /// the default; finite values queue excess misses behind the oldest
    /// outstanding one (see the `abl_mshr` study). Ignored when
    /// [`MemConfig::realistic`] is on (the per-level MSHR files take over).
    pub max_outstanding_misses: usize,
    /// Selects the cycle-driven non-blocking data-side model: finite
    /// per-level MSHRs, miss coalescing on cache lines, future-cycle fills
    /// and (optionally) stride prefetching. Default **off** — the flat
    /// model is the golden baseline.
    pub realistic: bool,
    /// L1D MSHR entries in the non-blocking model (`0` = unlimited).
    pub l1_mshrs: usize,
    /// L2 MSHR entries in the non-blocking model (`0` = unlimited).
    pub l2_mshrs: usize,
    /// Enables store-to-load forwarding through the core's store queue:
    /// a load fully covered by an older in-flight store gets its value at
    /// L1-hit latency; partial overlap conservatively replays. Default
    /// **off**.
    pub store_forwarding: bool,
    /// Stride-prefetcher table entries (`0` = off, the default). Only
    /// active in the non-blocking model — prefetches allocate MSHRs and
    /// are dropped silently when none is free.
    pub prefetch_entries: usize,
    /// I-cache MSHR entries in the non-blocking model (`0` = unlimited).
    /// When [`MemConfig::realistic`] is on, instruction fetch goes through
    /// [`MemoryHierarchy::fetch_access_nonblocking`] and its misses occupy
    /// these entries until the fill lands.
    pub i_mshrs: usize,
    /// Next-line instruction prefetch in the non-blocking model: every
    /// I-side demand access also tries to start a fill for the following
    /// line through the normal MSHR path (dropped silently when no MSHR is
    /// free). Ignored by the flat model.
    pub iprefetch: bool,
    /// Asynchronous write-buffer entries (`0` = off, the default: stores
    /// commit instantaneously as in the historical model). When set,
    /// executed stores park in a [`WriteBuffer`] and drain serially over
    /// cycles; a store issued while the buffer is full is refused and the
    /// core retries (the `writebuf-full` stall cause). Only active in the
    /// non-blocking model.
    pub write_buffer_entries: usize,
    /// Data-cache access ports per cycle (`0` = unlimited, the default).
    /// In the non-blocking model at most this many demand accesses are
    /// accepted per cycle; excess accesses are refused with
    /// [`AccessOutcome::PortBusy`] and serialize into later cycles —
    /// a coarse single-bank model of port/bank conflicts.
    pub data_ports: usize,
}

impl MemConfig {
    /// The "realistic" preset shared by the validation lanes, the
    /// realistic golden set and the Fig. 14-style latency sweep:
    /// non-blocking hierarchy with finite MSHR files on all three caches,
    /// store-to-load forwarding, a stride prefetcher, next-line
    /// instruction prefetch, a 4-entry write buffer and 2 data ports.
    #[must_use]
    pub fn realistic_preset() -> MemConfig {
        MemConfig {
            realistic: true,
            store_forwarding: true,
            l1_mshrs: 4,
            l2_mshrs: 8,
            prefetch_entries: 16,
            i_mshrs: 4,
            iprefetch: true,
            write_buffer_entries: 4,
            data_ports: 2,
            ..MemConfig::default()
        }
    }
}

impl Default for MemConfig {
    fn default() -> Self {
        MemConfig {
            icache: CacheConfig {
                size_bytes: 64 * 1024,
                ways: 4,
                line_bytes: 64,
                latency: 2,
            },
            l1d: CacheConfig {
                size_bytes: 64 * 1024,
                ways: 4,
                line_bytes: 64,
                latency: 2,
            },
            l2: CacheConfig {
                size_bytes: 1024 * 1024,
                ways: 8,
                line_bytes: 64,
                latency: 6,
            },
            memory_latency: 300,
            max_outstanding_misses: 0,
            realistic: false,
            l1_mshrs: 8,
            l2_mshrs: 16,
            store_forwarding: false,
            prefetch_entries: 0,
            i_mshrs: 4,
            iprefetch: true,
            write_buffer_entries: 0,
            data_ports: 0,
        }
    }
}

/// What the non-blocking hierarchy did with a demand access.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AccessOutcome {
    /// Data available after `latency` cycles (L1 hit).
    Ready(u64),
    /// The line is (now) being filled; data available at the absolute
    /// cycle carried here — either a newly allocated miss or a coalesced
    /// hit on an already-pending fill.
    Pending(u64),
    /// Every MSHR the access needed is busy. Nothing was changed (no
    /// stats, no LRU, no allocation): retry next cycle.
    MshrFull,
    /// Every data-cache port is taken this cycle
    /// ([`MemConfig::data_ports`]). Nothing was changed: retry next cycle.
    PortBusy,
}

/// What the non-blocking hierarchy did with an executed store (the
/// write-buffer-aware sibling of [`AccessOutcome`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StoreOutcome {
    /// The store was accepted: its cache access is in flight and (when
    /// the write buffer is enabled) it occupies a buffer entry until the
    /// drain completes.
    Accepted,
    /// The write buffer has no free entry. Nothing was changed: retry
    /// next cycle (the `writebuf-full` stall cause).
    WriteBufFull,
    /// See [`AccessOutcome::MshrFull`].
    MshrFull,
    /// See [`AccessOutcome::PortBusy`].
    PortBusy,
}

/// I-cache + L1D + unified L2 + memory, as a pure latency model.
///
/// An access returns the total cycles until data is available:
/// L1 hit → L1 latency; L1 miss, L2 hit → L1 + L2; both miss → L1 + L2 +
/// memory latency. Fills are immediate (no MSHRs); see DESIGN.md.
#[derive(Clone, Debug)]
pub struct MemoryHierarchy {
    icache: Cache,
    l1d: Cache,
    l2: Cache,
    memory_latency: u64,
    max_outstanding: usize,
    /// Completion times of in-flight memory-level misses (kept sorted by
    /// construction: each new miss completes no earlier than the previous
    /// when the MSHRs are saturated).
    outstanding: Vec<u64>,
    realistic: bool,
    l1_mshrs: MshrFile,
    l2_mshrs: MshrFile,
    i_mshrs: MshrFile,
    prefetcher: StridePrefetcher,
    prefetch_fills: u64,
    iprefetch: bool,
    iprefetch_fills: u64,
    write_buffer: WriteBuffer,
    data_ports: usize,
    /// Cycle the per-cycle port counter below refers to.
    port_cycle: u64,
    /// Demand accesses accepted so far in `port_cycle`.
    port_used: usize,
    port_rejections: u64,
    wrong_path_fills: u64,
}

impl MemoryHierarchy {
    /// Creates an empty (cold) hierarchy.
    ///
    /// # Panics
    ///
    /// Panics if any cache geometry in `cfg` is inconsistent.
    #[must_use]
    pub fn new(cfg: MemConfig) -> MemoryHierarchy {
        MemoryHierarchy {
            icache: Cache::new(cfg.icache),
            l1d: Cache::new(cfg.l1d),
            l2: Cache::new(cfg.l2),
            memory_latency: cfg.memory_latency,
            max_outstanding: cfg.max_outstanding_misses,
            outstanding: Vec::new(),
            realistic: cfg.realistic,
            l1_mshrs: MshrFile::new(cfg.l1_mshrs),
            l2_mshrs: MshrFile::new(cfg.l2_mshrs),
            i_mshrs: MshrFile::new(cfg.i_mshrs),
            prefetcher: StridePrefetcher::new(if cfg.realistic {
                cfg.prefetch_entries
            } else {
                0
            }),
            prefetch_fills: 0,
            iprefetch: cfg.realistic && cfg.iprefetch,
            iprefetch_fills: 0,
            write_buffer: WriteBuffer::new(if cfg.realistic {
                cfg.write_buffer_entries
            } else {
                0
            }),
            data_ports: if cfg.realistic { cfg.data_ports } else { 0 },
            port_cycle: 0,
            port_used: 0,
            port_rejections: 0,
            wrong_path_fills: 0,
        }
    }

    /// Whether the non-blocking model is active.
    #[must_use]
    pub fn realistic(&self) -> bool {
        self.realistic
    }

    /// Byte address → line address under the (shared) 64 B line geometry.
    fn line_of(&self, addr: u64) -> u64 {
        addr / self.l1d.line_bytes() as u64
    }

    /// Retires every MSHR fill that completed by `now`, installing the
    /// lines into their level. L2 first so a line finishing both levels at
    /// the same cycle lands bottom-up.
    fn drain_fills(&mut self, now: u64) {
        let line_bytes = self.l1d.line_bytes() as u64;
        let l2 = &mut self.l2;
        self.l2_mshrs.drain(now, |line| l2.install(line * line_bytes));
        let l1d = &mut self.l1d;
        self.l1_mshrs.drain(now, |line| l1d.install(line * line_bytes));
        let icache = &mut self.icache;
        self.i_mshrs.drain(now, |line| icache.install(line * line_bytes));
    }

    /// Any data-side fill still outstanding at `now`? (Drives the
    /// `miss-pending` cycle-accounting cause.)
    #[must_use]
    pub fn fill_pending_at(&self, now: u64) -> bool {
        self.l1_mshrs.busy(now) || self.l2_mshrs.busy(now)
    }

    /// Earliest cycle strictly after `now` at which
    /// [`MemoryHierarchy::fill_pending_at`] can change value — the next
    /// data-side fill expiry. `None` while no fill is outstanding (the
    /// predicate then stays `false` until a new miss is issued).
    #[must_use]
    pub fn next_fill_change_after(&self, now: u64) -> Option<u64> {
        match (
            self.l1_mshrs.next_fill_after(now),
            self.l2_mshrs.next_fill_after(now),
        ) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Demand access through the non-blocking model. Routes the access —
    /// L1 hit, coalesce onto a pending fill, allocate new fill(s), or
    /// refuse ([`AccessOutcome::MshrFull`] /
    /// [`AccessOutcome::PortBusy`]) — committing state *only* on the
    /// paths that accept it, so a refused access can be retried verbatim.
    /// `pc` identifies the load/store for the stride prefetcher.
    ///
    /// When [`MemConfig::data_ports`] is finite, each accepted access
    /// consumes one port for the cycle; refused accesses consume none.
    pub fn data_access_nonblocking(
        &mut self,
        addr: u64,
        is_write: bool,
        pc: u64,
        now: u64,
    ) -> AccessOutcome {
        debug_assert!(self.realistic);
        if self.data_ports != 0 {
            if now != self.port_cycle {
                self.port_cycle = now;
                self.port_used = 0;
            }
            if self.port_used >= self.data_ports {
                self.port_rejections += 1;
                return AccessOutcome::PortBusy;
            }
        }
        let out = self.data_access_inner(addr, is_write, pc, now);
        if !matches!(out, AccessOutcome::MshrFull) {
            self.port_used += 1;
        }
        out
    }

    /// Port-free body of [`MemoryHierarchy::data_access_nonblocking`].
    fn data_access_inner(&mut self, addr: u64, _is_write: bool, pc: u64, now: u64) -> AccessOutcome {
        self.drain_fills(now);
        let line = self.line_of(addr);
        if self.l1d.contains(addr) {
            self.l1d.lookup(addr);
            self.train_prefetcher(pc, addr, now);
            return AccessOutcome::Ready(self.l1d.latency());
        }
        if let Some(fill_at) = self.l1_mshrs.pending(line) {
            self.l1_mshrs.note_coalesced();
            return AccessOutcome::Pending(fill_at);
        }
        // The access needs a fresh L1 MSHR (and possibly an L2 one);
        // refuse before touching any counter if either is unavailable.
        if self.l1_mshrs.is_full() {
            return AccessOutcome::MshrFull;
        }
        let l1_l2 = self.l1d.latency() + self.l2.latency();
        if self.l2.contains(addr) {
            self.l1d.lookup(addr); // counts the L1 miss
            self.l2.lookup(addr); // counts the L2 hit, refreshes LRU
            let fill_at = now + l1_l2;
            let ok = self.l1_mshrs.try_allocate(line, fill_at);
            debug_assert!(ok);
            self.train_prefetcher(pc, addr, now);
            return AccessOutcome::Pending(fill_at);
        }
        if let Some(l2_fill) = self.l2_mshrs.pending(line) {
            // Coalesce at L2: the line arrives there at `l2_fill` and is
            // forwarded up to L1 on the same cycle.
            self.l2_mshrs.note_coalesced();
            self.l1d.lookup(addr); // counts the L1 miss
            let fill_at = l2_fill.max(now + l1_l2);
            let ok = self.l1_mshrs.try_allocate(line, fill_at);
            debug_assert!(ok);
            return AccessOutcome::Pending(fill_at);
        }
        if self.l2_mshrs.is_full() {
            return AccessOutcome::MshrFull;
        }
        self.l1d.lookup(addr); // counts the L1 miss
        self.l2.lookup(addr); // counts the L2 miss
        let fill_at = now + l1_l2 + self.memory_latency;
        let ok = self.l2_mshrs.try_allocate(line, fill_at);
        debug_assert!(ok);
        let ok = self.l1_mshrs.try_allocate(line, fill_at);
        debug_assert!(ok);
        self.train_prefetcher(pc, addr, now);
        AccessOutcome::Pending(fill_at)
    }

    /// Trains the stride table on a demand access and, when it predicts,
    /// converts the prediction into a line fill through the normal MSHR
    /// path. Prefetches never refuse — when no MSHR is free they are
    /// dropped — and never touch demand hit/miss counters.
    fn train_prefetcher(&mut self, pc: u64, addr: u64, now: u64) {
        if !self.prefetcher.enabled() {
            return;
        }
        let Some(target) = self.prefetcher.train(pc, addr) else {
            return;
        };
        let line = self.line_of(target);
        if line == self.line_of(addr)
            || self.l1d.contains(target)
            || self.l1_mshrs.pending(line).is_some()
            || self.l1_mshrs.is_full()
        {
            return;
        }
        let l1_l2 = self.l1d.latency() + self.l2.latency();
        if self.l2.contains(target) {
            self.l1_mshrs.try_allocate(line, now + l1_l2);
        } else if let Some(l2_fill) = self.l2_mshrs.pending(line) {
            self.l1_mshrs.try_allocate(line, l2_fill.max(now + l1_l2));
        } else if !self.l2_mshrs.is_full() {
            let fill_at = now + l1_l2 + self.memory_latency;
            self.l2_mshrs.try_allocate(line, fill_at);
            self.l1_mshrs.try_allocate(line, fill_at);
        } else {
            return;
        }
        self.prefetch_fills += 1;
    }

    /// Executed-store access through the non-blocking model: the
    /// write-buffer-aware sibling of
    /// [`MemoryHierarchy::data_access_nonblocking`]. The buffer entry is
    /// reserved *before* the cache access, so every refusal
    /// ([`StoreOutcome::WriteBufFull`] / [`StoreOutcome::MshrFull`] /
    /// [`StoreOutcome::PortBusy`]) leaves the hierarchy untouched and the
    /// store can retry verbatim next cycle. An accepted store's drain
    /// completes when its line is writable (L1 hit latency, or the fill
    /// cycle of its miss), serialized behind older buffered stores.
    pub fn store_access_nonblocking(&mut self, addr: u64, pc: u64, now: u64) -> StoreOutcome {
        debug_assert!(self.realistic);
        if self.write_buffer.enabled() && self.write_buffer.is_full_at(now) {
            self.write_buffer.note_rejected();
            return StoreOutcome::WriteBufFull;
        }
        match self.data_access_nonblocking(addr, true, pc, now) {
            AccessOutcome::MshrFull => StoreOutcome::MshrFull,
            AccessOutcome::PortBusy => StoreOutcome::PortBusy,
            AccessOutcome::Ready(lat) => {
                if self.write_buffer.enabled() {
                    self.write_buffer.push(now, now + lat);
                }
                StoreOutcome::Accepted
            }
            AccessOutcome::Pending(fill_at) => {
                if self.write_buffer.enabled() {
                    self.write_buffer.push(now, fill_at);
                }
                StoreOutcome::Accepted
            }
        }
    }

    /// Instruction fetch through the non-blocking model: the I-side
    /// sibling of [`MemoryHierarchy::data_access_nonblocking`]. I-misses
    /// occupy [`MemConfig::i_mshrs`] entries (coalescing on lines) and
    /// fill through the shared L2 MSHRs; each accepted access also tries a
    /// next-line prefetch ([`MemConfig::iprefetch`]). Refusals change
    /// nothing and can be retried verbatim.
    pub fn fetch_access_nonblocking(&mut self, addr: u64, now: u64) -> AccessOutcome {
        debug_assert!(self.realistic);
        self.drain_fills(now);
        let line = self.line_of(addr);
        if self.icache.contains(addr) {
            self.icache.lookup(addr);
            self.prefetch_next_iline(addr, now);
            return AccessOutcome::Ready(self.icache.latency());
        }
        if let Some(fill_at) = self.i_mshrs.pending(line) {
            self.i_mshrs.note_coalesced();
            return AccessOutcome::Pending(fill_at);
        }
        // A fresh I-MSHR (and possibly an L2 one) is needed; refuse before
        // touching any counter if either is unavailable.
        if self.i_mshrs.is_full() {
            return AccessOutcome::MshrFull;
        }
        let i_l2 = self.icache.latency() + self.l2.latency();
        if self.l2.contains(addr) {
            self.icache.lookup(addr); // counts the I-miss
            self.l2.lookup(addr); // counts the L2 hit, refreshes LRU
            let fill_at = now + i_l2;
            let ok = self.i_mshrs.try_allocate(line, fill_at);
            debug_assert!(ok);
            self.prefetch_next_iline(addr, now);
            return AccessOutcome::Pending(fill_at);
        }
        if let Some(l2_fill) = self.l2_mshrs.pending(line) {
            // Coalesce at L2 (the fill may have been started by the data
            // side — the L2 is unified).
            self.l2_mshrs.note_coalesced();
            self.icache.lookup(addr); // counts the I-miss
            let fill_at = l2_fill.max(now + i_l2);
            let ok = self.i_mshrs.try_allocate(line, fill_at);
            debug_assert!(ok);
            return AccessOutcome::Pending(fill_at);
        }
        if self.l2_mshrs.is_full() {
            return AccessOutcome::MshrFull;
        }
        self.icache.lookup(addr); // counts the I-miss
        self.l2.lookup(addr); // counts the L2 miss
        let fill_at = now + i_l2 + self.memory_latency;
        let ok = self.l2_mshrs.try_allocate(line, fill_at);
        debug_assert!(ok);
        let ok = self.i_mshrs.try_allocate(line, fill_at);
        debug_assert!(ok);
        self.prefetch_next_iline(addr, now);
        AccessOutcome::Pending(fill_at)
    }

    /// Starts a fill for the line after `addr` through the I-MSHR path.
    /// Like data prefetches it never refuses — when no MSHR is free it is
    /// dropped — and never touches demand hit/miss counters.
    fn prefetch_next_iline(&mut self, addr: u64, now: u64) {
        if !self.iprefetch {
            return;
        }
        let line_bytes = self.icache.line_bytes() as u64;
        let target = (self.line_of(addr) + 1) * line_bytes;
        let line = self.line_of(target);
        if self.icache.contains(target)
            || self.i_mshrs.pending(line).is_some()
            || self.i_mshrs.is_full()
        {
            return;
        }
        let i_l2 = self.icache.latency() + self.l2.latency();
        if self.l2.contains(target) {
            self.i_mshrs.try_allocate(line, now + i_l2);
        } else if let Some(l2_fill) = self.l2_mshrs.pending(line) {
            self.i_mshrs.try_allocate(line, l2_fill.max(now + i_l2));
        } else if !self.l2_mshrs.is_full() {
            let fill_at = now + i_l2 + self.memory_latency;
            self.l2_mshrs.try_allocate(line, fill_at);
            self.i_mshrs.try_allocate(line, fill_at);
        } else {
            return;
        }
        self.iprefetch_fills += 1;
    }

    /// Any instruction fill still outstanding at `now`? (Drives the
    /// `imiss-pending` cycle-accounting cause.)
    #[must_use]
    pub fn ifill_pending_at(&self, now: u64) -> bool {
        self.i_mshrs.busy(now)
    }

    /// Cancels in-flight instruction fills on a pipeline squash: every
    /// still-pending I-MSHR entry except the one covering `resume_addr`
    /// (which the redirected fetch still wants) is dropped and counted in
    /// [`MemoryHierarchy::wrong_path_fills`]. The underlying L2 fills are
    /// *not* recalled — the request already left for memory, so the line
    /// still lands in the L2, just no longer in the I-cache. No-op in the
    /// flat model. Returns the number of fills cancelled.
    pub fn squash_wrong_path_ifills(&mut self, now: u64, resume_addr: u64) -> u64 {
        if !self.realistic {
            return 0;
        }
        let keep = self.line_of(resume_addr);
        let dropped = self.i_mshrs.cancel_pending_if(now, |line| line != keep);
        self.wrong_path_fills += dropped;
        dropped
    }

    /// Instruction fills cancelled as wrong-path on squashes.
    #[must_use]
    pub fn wrong_path_fills(&self) -> u64 {
        self.wrong_path_fills
    }

    /// Demand accesses refused with [`AccessOutcome::PortBusy`].
    #[must_use]
    pub fn port_rejections(&self) -> u64 {
        self.port_rejections
    }

    /// (refused-as-full, accepted) store counts of the write buffer.
    #[must_use]
    pub fn write_buffer_stats(&self) -> (u64, u64) {
        (self.write_buffer.full_rejections(), self.write_buffer.accepted())
    }

    /// Write-buffer entries still draining at `now` — test/diagnostic.
    pub fn write_buffer_occupancy_at(&mut self, now: u64) -> usize {
        self.write_buffer.occupancy_at(now)
    }

    /// I-MSHR occupancy right now — test/diagnostic hook.
    #[must_use]
    pub fn i_mshr_occupancy(&self) -> usize {
        self.i_mshrs.occupancy()
    }

    /// I-side misses that coalesced onto an already-pending I-fill.
    #[must_use]
    pub fn i_coalesced_misses(&self) -> u64 {
        self.i_mshrs.coalesced()
    }

    /// Next-line instruction-prefetch fills issued into the I-MSHRs.
    #[must_use]
    pub fn iprefetch_fills(&self) -> u64 {
        self.iprefetch_fills
    }

    /// (L1, L2) MSHR occupancy right now — test/diagnostic hook.
    #[must_use]
    pub fn mshr_occupancy(&self) -> (usize, usize) {
        (self.l1_mshrs.occupancy(), self.l2_mshrs.occupancy())
    }

    /// Misses that coalesced onto an already-pending fill, per level.
    #[must_use]
    pub fn coalesced_misses(&self) -> (u64, u64) {
        (self.l1_mshrs.coalesced(), self.l2_mshrs.coalesced())
    }

    /// Accesses refused with [`AccessOutcome::MshrFull`], per level.
    #[must_use]
    pub fn mshr_rejections(&self) -> (u64, u64) {
        (self.l1_mshrs.rejected(), self.l2_mshrs.rejected())
    }

    /// Prefetch fills issued into the MSHRs.
    #[must_use]
    pub fn prefetch_fills(&self) -> u64 {
        self.prefetch_fills
    }

    /// Accounts one memory-level miss issued at `now`, returning its
    /// effective latency after MSHR queueing.
    fn memory_miss(&mut self, now: u64) -> u64 {
        if self.max_outstanding == 0 {
            return self.memory_latency;
        }
        self.outstanding.retain(|&t| t > now);
        let start = if self.outstanding.len() >= self.max_outstanding {
            // Oldest outstanding miss must complete before this one can
            // allocate an MSHR.
            let k = self.outstanding.len() + 1 - self.max_outstanding;
            self.outstanding[k - 1].max(now)
        } else {
            now
        };
        let done = start + self.memory_latency;
        self.outstanding.push(done);
        self.outstanding.sort_unstable();
        done - now
    }

    /// Instruction fetch of the line containing `addr`; returns latency in
    /// cycles. `now` is the current cycle, used for MSHR accounting.
    pub fn fetch_access_at(&mut self, addr: u64, now: u64) -> u64 {
        let mut lat = self.icache.latency();
        if !self.icache.access(addr) {
            lat += self.l2.latency();
            if !self.l2.access(addr) {
                lat += self.memory_miss(now + lat);
            }
        }
        lat
    }

    /// [`MemoryHierarchy::fetch_access_at`] without MSHR accounting (kept
    /// for callers with no notion of time).
    pub fn fetch_access(&mut self, addr: u64) -> u64 {
        self.fetch_access_at(addr, 0)
    }

    /// Data access (load or store — write-allocate makes them identical for
    /// timing); returns latency in cycles. `now` is the current cycle.
    pub fn data_access_at(&mut self, addr: u64, _is_write: bool, now: u64) -> u64 {
        let mut lat = self.l1d.latency();
        if !self.l1d.access(addr) {
            lat += self.l2.latency();
            if !self.l2.access(addr) {
                lat += self.memory_miss(now + lat);
            }
        }
        lat
    }

    /// [`MemoryHierarchy::data_access_at`] without MSHR accounting.
    pub fn data_access(&mut self, addr: u64, is_write: bool) -> u64 {
        self.data_access_at(addr, is_write, 0)
    }

    /// Wrong-path data access: computes the latency the access *would* see
    /// at cycle `now` but does not install lines anywhere (no pollution).
    ///
    /// In the non-blocking model the probe is MSHR-aware instead of
    /// charging the raw memory latency: a probe to a line already being
    /// filled rides the in-flight fill (it arrives when the fill lands),
    /// and a cold probe that would need an L2 MSHR queues behind the
    /// earliest fill when the file is full — the same contention a demand
    /// miss would see. The flat model keeps its historical composition.
    pub fn data_probe(&mut self, addr: u64, now: u64) -> u64 {
        let mut lat = self.l1d.latency();
        if self.l1d.probe(addr) {
            return lat;
        }
        if self.realistic {
            self.drain_fills(now);
            let line = self.line_of(addr);
            if let Some(fill_at) = self.l1_mshrs.pending(line) {
                return fill_at.saturating_sub(now).max(lat);
            }
            lat += self.l2.latency();
            if self.l2.probe(addr) {
                return lat;
            }
            if let Some(fill_at) = self.l2_mshrs.pending(line) {
                return fill_at.saturating_sub(now).max(lat);
            }
            // Cold: a real miss would wait for a free L2 MSHR before the
            // memory round-trip even starts.
            let start = if self.l2_mshrs.is_full() {
                self.l2_mshrs.next_fill_after(now).unwrap_or(now)
            } else {
                now
            };
            return (start - now) + lat + self.memory_latency;
        }
        lat += self.l2.latency();
        if !self.l2.probe(addr) {
            lat += self.memory_latency;
        }
        lat
    }

    /// Statistics for (icache, l1d, l2).
    #[must_use]
    pub fn stats(&self) -> (CacheStats, CacheStats, CacheStats) {
        (self.icache.stats(), self.l1d.stats(), self.l2.stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_composition() {
        let mut m = MemoryHierarchy::new(MemConfig::default());
        // Cold: L1 miss + L2 miss + memory.
        assert_eq!(m.data_access(0x4000, false), 2 + 6 + 300);
        // Warm L1.
        assert_eq!(m.data_access(0x4000, false), 2);
    }

    #[test]
    fn l2_catches_l1_evictions() {
        // Tiny L1 (1 set × 1 way), big L2.
        let cfg = MemConfig {
            l1d: CacheConfig {
                size_bytes: 64,
                ways: 1,
                line_bytes: 64,
                latency: 2,
            },
            ..MemConfig::default()
        };
        let mut m = MemoryHierarchy::new(cfg);
        m.data_access(0x0, false); // miss both
        m.data_access(0x40, false); // evicts 0x0 from L1, fills L2
        // 0x0: L1 miss, L2 hit.
        assert_eq!(m.data_access(0x0, false), 2 + 6);
    }

    #[test]
    fn fetch_and_data_share_l2() {
        let mut m = MemoryHierarchy::new(MemConfig::default());
        m.fetch_access(0x8000); // fills L2 line
        // Data access to same line: L1D miss but L2 hit.
        assert_eq!(m.data_access(0x8000, false), 2 + 6);
    }

    #[test]
    fn probe_never_pollutes() {
        let mut m = MemoryHierarchy::new(MemConfig::default());
        assert_eq!(m.data_probe(0xA000, 0), 2 + 6 + 300);
        // Still cold afterwards.
        assert_eq!(m.data_access(0xA000, false), 2 + 6 + 300);
    }
}

#[cfg(test)]
mod mshr_tests {
    use super::*;

    #[test]
    fn unlimited_mshrs_overlap_everything() {
        let mut m = MemoryHierarchy::new(MemConfig::default());
        for k in 0..8u64 {
            assert_eq!(m.data_access_at(0x10_0000 + k * 4096, false, 0), 308);
        }
    }

    #[test]
    fn finite_mshrs_queue_excess_misses() {
        let cfg = MemConfig {
            max_outstanding_misses: 2,
            ..MemConfig::default()
        };
        let mut m = MemoryHierarchy::new(cfg);
        // Three simultaneous misses: the third queues behind the first.
        let a = m.data_access_at(0x10_0000, false, 0);
        let b = m.data_access_at(0x20_0000, false, 0);
        let c = m.data_access_at(0x30_0000, false, 0);
        assert_eq!(a, 308);
        assert_eq!(b, 308);
        assert!(c > 308 + 290, "third miss must wait for an MSHR: {c}");
        // Once time passes, MSHRs free up.
        let d = m.data_access_at(0x40_0000, false, 2000);
        assert_eq!(d, 308);
    }

    #[test]
    fn nonblocking_cold_miss_fills_at_full_latency() {
        let cfg = MemConfig {
            realistic: true,
            ..MemConfig::default()
        };
        let mut m = MemoryHierarchy::new(cfg);
        match m.data_access_nonblocking(0x4000, false, 1, 0) {
            AccessOutcome::Pending(fill) => assert_eq!(fill, 2 + 6 + 300),
            other => panic!("cold miss must be pending: {other:?}"),
        }
        // Same line before the fill: coalesced, same fill cycle, one MSHR.
        match m.data_access_nonblocking(0x4008, false, 2, 10) {
            AccessOutcome::Pending(fill) => assert_eq!(fill, 308),
            other => panic!("same-line miss must coalesce: {other:?}"),
        }
        assert_eq!(m.mshr_occupancy(), (1, 1));
        assert_eq!(m.coalesced_misses().0, 1);
        // After the fill lands the line is resident.
        match m.data_access_nonblocking(0x4000, false, 1, 308) {
            AccessOutcome::Ready(lat) => assert_eq!(lat, 2),
            other => panic!("filled line must hit: {other:?}"),
        }
        assert_eq!(m.mshr_occupancy(), (0, 0));
    }

    #[test]
    fn nonblocking_refuses_when_mshrs_full_without_side_effects() {
        let cfg = MemConfig {
            realistic: true,
            l1_mshrs: 2,
            ..MemConfig::default()
        };
        let mut m = MemoryHierarchy::new(cfg);
        assert!(matches!(m.data_access_nonblocking(0x1000, false, 1, 0), AccessOutcome::Pending(_)));
        assert!(matches!(m.data_access_nonblocking(0x2000, false, 2, 0), AccessOutcome::Pending(_)));
        let stats_before = m.stats();
        assert_eq!(m.data_access_nonblocking(0x3000, false, 3, 0), AccessOutcome::MshrFull);
        assert_eq!(m.stats(), stats_before, "a refused access must not count");
        assert_eq!(m.mshr_occupancy().0, 2);
        // Once the fills land, the refused access goes through.
        assert!(matches!(
            m.data_access_nonblocking(0x3000, false, 3, 400),
            AccessOutcome::Pending(_)
        ));
    }

    #[test]
    fn nonblocking_l2_hit_fills_fast() {
        let cfg = MemConfig {
            realistic: true,
            ..MemConfig::default()
        };
        let mut m = MemoryHierarchy::new(cfg);
        m.fetch_access(0x8000); // fills the L2 line via the I-side
        match m.data_access_nonblocking(0x8000, false, 1, 100) {
            AccessOutcome::Pending(fill) => assert_eq!(fill, 100 + 2 + 6),
            other => panic!("L2 hit must fill at L1+L2 latency: {other:?}"),
        }
    }

    #[test]
    fn stride_prefetcher_hides_the_next_line() {
        let cfg = MemConfig {
            realistic: true,
            prefetch_entries: 16,
            ..MemConfig::default()
        };
        let mut m = MemoryHierarchy::new(cfg);
        // A constant 64-byte stride from one PC; let each fill land before
        // the next access so training sees clean demand hits/misses.
        let mut now = 0;
        for i in 0..8u64 {
            m.data_access_nonblocking(0x10_0000 + i * 64, false, 7, now);
            now += 400;
        }
        assert!(m.prefetch_fills() > 0, "a unit-stride stream must trigger prefetches");
        // The line after the last access should already be resident or
        // pending thanks to the prefetcher.
        match m.data_access_nonblocking(0x10_0000 + 8 * 64, false, 7, now) {
            AccessOutcome::Ready(_) => {}
            AccessOutcome::Pending(fill) => {
                assert!(fill < now + 308, "prefetched line must fill early: {fill} vs {now}");
            }
            AccessOutcome::MshrFull => panic!("prefetch must not exhaust MSHRs here"),
            AccessOutcome::PortBusy => panic!("ports are unlimited here"),
        }
    }

    #[test]
    fn nonblocking_fetch_cold_miss_prefetches_next_line() {
        let cfg = MemConfig {
            realistic: true,
            ..MemConfig::default()
        };
        let mut m = MemoryHierarchy::new(cfg);
        match m.fetch_access_nonblocking(0x4000, 0) {
            AccessOutcome::Pending(fill) => assert_eq!(fill, 2 + 6 + 300),
            other => panic!("cold I-miss must be pending: {other:?}"),
        }
        // The next line rides the I-prefetch: one demand entry + one
        // prefetch entry in the I-MSHRs.
        assert_eq!(m.i_mshr_occupancy(), 2);
        assert_eq!(m.iprefetch_fills(), 1);
        // A fetch into the prefetched line before its fill coalesces.
        match m.fetch_access_nonblocking(0x4040, 10) {
            AccessOutcome::Pending(_) => {}
            other => panic!("prefetched line must be pending: {other:?}"),
        }
        assert_eq!(m.i_coalesced_misses(), 1);
        // After the fills land, both lines hit.
        match m.fetch_access_nonblocking(0x4000, 400) {
            AccessOutcome::Ready(lat) => assert_eq!(lat, 2),
            other => panic!("filled line must hit: {other:?}"),
        }
        match m.fetch_access_nonblocking(0x4040, 400) {
            AccessOutcome::Ready(_) => {}
            other => panic!("prefetched line must hit: {other:?}"),
        }
    }

    #[test]
    fn nonblocking_fetch_refuses_without_side_effects_when_i_mshrs_full() {
        let cfg = MemConfig {
            realistic: true,
            i_mshrs: 1,
            iprefetch: false,
            ..MemConfig::default()
        };
        let mut m = MemoryHierarchy::new(cfg);
        assert!(matches!(m.fetch_access_nonblocking(0x1000, 0), AccessOutcome::Pending(_)));
        let stats_before = m.stats();
        assert_eq!(m.fetch_access_nonblocking(0x2000, 1), AccessOutcome::MshrFull);
        assert_eq!(m.stats(), stats_before, "a refused fetch must not count");
        assert_eq!(m.i_mshr_occupancy(), 1);
        // Once the fill lands the refused fetch goes through.
        assert!(matches!(
            m.fetch_access_nonblocking(0x2000, 400),
            AccessOutcome::Pending(_)
        ));
    }

    #[test]
    fn fetch_and_data_misses_share_the_l2_mshrs() {
        let cfg = MemConfig {
            realistic: true,
            iprefetch: false,
            ..MemConfig::default()
        };
        let mut m = MemoryHierarchy::new(cfg);
        // Data side starts the line fill; the I-side coalesces on it at L2.
        let AccessOutcome::Pending(data_fill) = m.data_access_nonblocking(0x8000, false, 1, 0)
        else {
            panic!("cold data miss must be pending");
        };
        match m.fetch_access_nonblocking(0x8000, 5) {
            AccessOutcome::Pending(ifill) => assert!(
                ifill >= data_fill,
                "I-side fill {ifill} must not undercut the L2 fill {data_fill}"
            ),
            other => panic!("I-fetch must coalesce on the L2 fill: {other:?}"),
        }
        assert_eq!(m.coalesced_misses().1, 1, "one L2-level coalesce");
    }

    #[test]
    fn squash_cancels_pending_ifills_except_the_resume_line() {
        let cfg = MemConfig {
            realistic: true,
            iprefetch: false,
            ..MemConfig::default()
        };
        let mut m = MemoryHierarchy::new(cfg);
        assert!(matches!(m.fetch_access_nonblocking(0x1000, 0), AccessOutcome::Pending(_)));
        assert!(matches!(m.fetch_access_nonblocking(0x2000, 1), AccessOutcome::Pending(_)));
        assert_eq!(m.i_mshr_occupancy(), 2);
        // Squash at cycle 10, resuming inside the 0x2000 line: the 0x1000
        // fill is wrong-path and cancelled, the resume line survives.
        assert_eq!(m.squash_wrong_path_ifills(10, 0x2010), 1);
        assert_eq!(m.wrong_path_fills(), 1);
        assert_eq!(m.i_mshr_occupancy(), 1);
        // The cancelled line never installs in the I-cache; refetching it
        // restarts from the (still-landing) L2 fill, not a fresh 300-cycle
        // round trip.
        match m.fetch_access_nonblocking(0x1000, 20) {
            AccessOutcome::Pending(fill) => assert_eq!(fill, 308.max(20 + 2 + 6)),
            other => panic!("refetch after cancel: {other:?}"),
        }
    }

    #[test]
    fn write_buffer_full_refuses_stores_until_a_drain_completes() {
        let cfg = MemConfig {
            realistic: true,
            write_buffer_entries: 2,
            ..MemConfig::default()
        };
        let mut m = MemoryHierarchy::new(cfg);
        // Two cold stores fill the buffer (their drains wait ~308 cycles).
        assert_eq!(m.store_access_nonblocking(0x10_0000, 1, 0), StoreOutcome::Accepted);
        assert_eq!(m.store_access_nonblocking(0x20_0000, 2, 1), StoreOutcome::Accepted);
        assert_eq!(m.write_buffer_occupancy_at(2), 2);
        assert_eq!(m.store_access_nonblocking(0x30_0000, 3, 2), StoreOutcome::WriteBufFull);
        assert_eq!(m.write_buffer_stats().0, 1);
        // Once the first drain lands, the store is accepted.
        assert_eq!(m.store_access_nonblocking(0x30_0000, 3, 400), StoreOutcome::Accepted);
    }

    #[test]
    fn data_ports_serialize_same_cycle_accesses() {
        let cfg = MemConfig {
            realistic: true,
            data_ports: 2,
            ..MemConfig::default()
        };
        let mut m = MemoryHierarchy::new(cfg);
        assert!(matches!(m.data_access_nonblocking(0x1000, false, 1, 7), AccessOutcome::Pending(_)));
        assert!(matches!(m.data_access_nonblocking(0x2000, false, 2, 7), AccessOutcome::Pending(_)));
        let stats_before = m.stats();
        assert_eq!(
            m.data_access_nonblocking(0x3000, false, 3, 7),
            AccessOutcome::PortBusy,
            "third same-cycle access must be refused"
        );
        assert_eq!(m.stats(), stats_before, "a port-refused access must not count");
        assert_eq!(m.port_rejections(), 1);
        // Next cycle the ports are free again.
        assert!(matches!(m.data_access_nonblocking(0x3000, false, 3, 8), AccessOutcome::Pending(_)));
    }

    #[test]
    fn realistic_probe_rides_pending_fills_and_queues_behind_full_mshrs() {
        let cfg = MemConfig {
            realistic: true,
            l2_mshrs: 1,
            ..MemConfig::default()
        };
        let mut m = MemoryHierarchy::new(cfg);
        let AccessOutcome::Pending(fill) = m.data_access_nonblocking(0x1000, false, 1, 0) else {
            panic!("cold miss must be pending");
        };
        // Probe of the in-flight line arrives with the fill, not after a
        // fresh 308-cycle round trip.
        assert_eq!(m.data_probe(0x1000, 100), fill - 100);
        // Cold probe with the single L2 MSHR busy: the miss could not even
        // start until the fill frees the entry.
        let cold = m.data_probe(0x9000, 100);
        assert_eq!(cold, (fill - 100) + 2 + 6 + 300);
        // With a free MSHR the probe sees the plain composition.
        assert_eq!(m.data_probe(0x9000, 400), 2 + 6 + 300);
        // Probes never install.
        assert!(matches!(
            m.data_access_nonblocking(0x9000, false, 4, 400),
            AccessOutcome::Pending(_)
        ));
    }

    #[test]
    fn mshr_queue_drains_in_order() {
        let cfg = MemConfig {
            max_outstanding_misses: 1,
            ..MemConfig::default()
        };
        let mut m = MemoryHierarchy::new(cfg);
        let a = m.data_access_at(0x10_0000, false, 0);
        let b = m.data_access_at(0x20_0000, false, 0);
        let c = m.data_access_at(0x30_0000, false, 0);
        // Fully serialized: each waits for the previous.
        assert_eq!(a, 308);
        assert!(b >= 300 + 300 && c >= b + 290, "serial misses: {a} {b} {c}");
    }
}
