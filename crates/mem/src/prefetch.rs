//! A classic per-PC stride prefetcher (reference-prediction table).
//!
//! Each table entry tracks, for one load/store PC, the last address it
//! touched, the last observed stride, and a 2-bit confidence counter.
//! Two consecutive accesses with the same stride make the entry
//! confident; while confident, every access predicts `addr + stride` and
//! the hierarchy converts the prediction into a line fill through the
//! normal MSHR path (dropped silently when no MSHR is free — prefetches
//! never stall the core).

#[derive(Clone, Copy, Debug, Default)]
struct StrideEntry {
    pc: u64,
    valid: bool,
    last_addr: u64,
    stride: i64,
    confidence: u8,
}

/// An N-entry, direct-mapped stride predictor. `N = 0` disables it.
#[derive(Clone, Debug)]
pub struct StridePrefetcher {
    entries: Vec<StrideEntry>,
    trained: u64,
    predictions: u64,
}

impl StridePrefetcher {
    /// A table with `entries` slots (rounded up to at least 1 when
    /// enabled; pass 0 for a disabled prefetcher).
    #[must_use]
    pub fn new(entries: usize) -> StridePrefetcher {
        StridePrefetcher {
            entries: vec![StrideEntry::default(); entries],
            trained: 0,
            predictions: 0,
        }
    }

    /// Whether the table has any capacity.
    #[must_use]
    pub fn enabled(&self) -> bool {
        !self.entries.is_empty()
    }

    /// Observes a demand access by `pc` to `addr`; returns the predicted
    /// next address when the entry's stride is confident and non-zero.
    pub fn train(&mut self, pc: u64, addr: u64) -> Option<u64> {
        if self.entries.is_empty() {
            return None;
        }
        self.trained += 1;
        let n = self.entries.len();
        let e = &mut self.entries[(pc as usize) % n];
        if !e.valid || e.pc != pc {
            *e = StrideEntry {
                pc,
                valid: true,
                last_addr: addr,
                stride: 0,
                confidence: 0,
            };
            return None;
        }
        let stride = addr.wrapping_sub(e.last_addr) as i64;
        if stride == e.stride {
            e.confidence = (e.confidence + 1).min(3);
        } else {
            if e.confidence > 0 {
                e.confidence -= 1;
            }
            if e.confidence == 0 {
                e.stride = stride;
            }
        }
        e.last_addr = addr;
        if e.confidence >= 2 && e.stride != 0 {
            self.predictions += 1;
            Some(addr.wrapping_add(e.stride as u64))
        } else {
            None
        }
    }

    /// Demand accesses observed.
    #[must_use]
    pub fn trained(&self) -> u64 {
        self.trained
    }

    /// Confident predictions produced.
    #[must_use]
    pub fn predictions(&self) -> u64 {
        self.predictions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_table_never_predicts() {
        let mut p = StridePrefetcher::new(0);
        for i in 0..10 {
            assert_eq!(p.train(1, i * 64), None);
        }
    }

    #[test]
    fn constant_stride_becomes_confident() {
        let mut p = StridePrefetcher::new(4);
        let mut predicted = None;
        for i in 0..6u64 {
            predicted = p.train(0x40, 0x1000 + i * 64);
        }
        assert_eq!(predicted, Some(0x1000 + 6 * 64));
    }

    #[test]
    fn stride_change_resets_confidence() {
        let mut p = StridePrefetcher::new(4);
        for i in 0..4u64 {
            p.train(0x40, 0x1000 + i * 64);
        }
        // Break the pattern: confidence decays, no prediction on random walk.
        assert!(p.train(0x40, 0x9000).is_none() || true);
        let after_break = p.train(0x40, 0x500);
        assert_eq!(after_break, None);
    }

    #[test]
    fn zero_stride_never_predicts() {
        let mut p = StridePrefetcher::new(4);
        for _ in 0..8 {
            assert_eq!(p.train(0x40, 0x2000), None, "same-address stream must not prefetch");
        }
    }
}
