//! The JRS confidence estimator (Jacobsen, Rotenberg, Smith [13]),
//! modified with tags as described in §3.5.5 / Table 2 of the paper:
//! "1KB, tagged (4-way), 16-bit history JRS estimator".

use crate::counters::SatCounter;

/// The confidence assigned to a branch prediction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ConfidenceLevel {
    /// The prediction is trusted: use normal branch prediction.
    High,
    /// The prediction is not trusted: fall back to predicated execution.
    Low,
}

impl ConfidenceLevel {
    /// Whether this is [`ConfidenceLevel::High`].
    #[must_use]
    pub fn is_high(self) -> bool {
        matches!(self, ConfidenceLevel::High)
    }
}

/// Configuration of the [`JrsConfidence`] estimator.
///
/// The default models the paper's 1 KB budget: 64 sets × 4 ways = 256
/// entries, each holding an 8-bit tag and a 4-bit resetting miss distance
/// counter, indexed by `pc ⊕ history`. The paper's table lists a 16-bit
/// history; because wish branches make the *presence* of other wish
/// branches in the history mode-dependent, long histories fragment the
/// context space and the estimator never converges on easy branches — the
/// default here folds 4 history bits into the index instead (see the
/// `abl_confidence` bench for the sweep).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct JrsConfig {
    /// Number of sets (power of two).
    pub sets: usize,
    /// Associativity.
    pub ways: usize,
    /// Width of the miss distance counter in bits.
    pub counter_bits: u32,
    /// Counter value at or above which the prediction is high confidence.
    pub threshold: u8,
    /// Branch-history bits XOR-folded into the index.
    pub hist_bits: u32,
}

impl Default for JrsConfig {
    fn default() -> Self {
        JrsConfig {
            sets: 64,
            ways: 4,
            counter_bits: 4,
            threshold: 13,
            hist_bits: 4,
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct Entry {
    tag: u32,
    mdc: SatCounter,
    lru: u64,
}

/// Counters exposed by [`JrsConfidence::stats`].
#[derive(Clone, Copy, PartialEq, Eq, Default, Debug)]
pub struct JrsStats {
    /// Estimates requested.
    pub lookups: u64,
    /// Estimates that found no matching entry (reported low confidence).
    pub tag_misses: u64,
    /// Estimates reported high confidence.
    pub high: u64,
}

/// Tagged set-associative JRS estimator with resetting counters.
///
/// Semantics: each entry holds a *miss distance counter* that increments on
/// every correct prediction of the branch and resets to zero on a
/// misprediction. A prediction is deemed high confidence when the counter
/// has reached [`JrsConfig::threshold`] — i.e. the branch has been predicted
/// correctly at least `threshold` consecutive times in this history context.
/// A tag miss reports low confidence (unknown branches are not trusted).
#[derive(Clone, Debug)]
pub struct JrsConfidence {
    cfg: JrsConfig,
    sets: Vec<Vec<Entry>>,
    hist_mask: u64,
    tick: u64,
    stats: JrsStats,
}

impl JrsConfidence {
    /// Creates an empty estimator.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a power of two or `threshold` exceeds the
    /// counter's maximum.
    #[must_use]
    pub fn new(cfg: JrsConfig) -> JrsConfidence {
        assert!(cfg.sets.is_power_of_two(), "sets must be a power of two");
        let max = ((1u16 << cfg.counter_bits) - 1) as u8;
        assert!(
            cfg.threshold <= max,
            "threshold {} exceeds counter max {max}",
            cfg.threshold
        );
        JrsConfidence {
            cfg,
            sets: vec![Vec::with_capacity(cfg.ways); cfg.sets],
            hist_mask: (1u64 << cfg.hist_bits) - 1,
            tick: 0,
            stats: JrsStats::default(),
        }
    }

    fn index_tag(&self, pc: u32, ghr: u64) -> (usize, u32) {
        let hashed = u64::from(pc) ^ (ghr & self.hist_mask);
        let set = (hashed as usize) & (self.cfg.sets - 1);
        let tag = (hashed >> self.cfg.sets.trailing_zeros()) as u32;
        (set, tag)
    }

    /// Estimates the confidence of the prediction for the branch at `pc`
    /// under branch history `ghr`.
    pub fn estimate(&mut self, pc: u32, ghr: u64) -> ConfidenceLevel {
        self.stats.lookups += 1;
        self.tick += 1;
        let tick = self.tick;
        let threshold = self.cfg.threshold;
        let (set, tag) = self.index_tag(pc, ghr);
        for e in &mut self.sets[set] {
            if e.tag == tag {
                e.lru = tick;
                return if e.mdc.value() >= threshold {
                    self.stats.high += 1;
                    ConfidenceLevel::High
                } else {
                    ConfidenceLevel::Low
                };
            }
        }
        self.stats.tag_misses += 1;
        ConfidenceLevel::Low
    }

    /// Trains the estimator with the resolved outcome: `correct` is whether
    /// the direction prediction for this branch was right. Allocates an
    /// entry on a tag miss (evicting LRU).
    pub fn update(&mut self, pc: u32, ghr: u64, correct: bool) {
        self.tick += 1;
        let tick = self.tick;
        let ways = self.cfg.ways;
        let counter_bits = self.cfg.counter_bits;
        let (set, tag) = self.index_tag(pc, ghr);
        let set_vec = &mut self.sets[set];
        if let Some(e) = set_vec.iter_mut().find(|e| e.tag == tag) {
            if correct {
                e.mdc.inc();
            } else {
                e.mdc.reset();
            }
            e.lru = tick;
            return;
        }
        let mut mdc = SatCounter::new(counter_bits, 0);
        if correct {
            mdc.inc();
        }
        let fresh = Entry { tag, mdc, lru: tick };
        if set_vec.len() < ways {
            set_vec.push(fresh);
        } else {
            let victim = set_vec
                .iter_mut()
                .min_by_key(|e| e.lru)
                .expect("set is non-empty");
            *victim = fresh;
        }
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> JrsStats {
        self.stats
    }

    /// The configured high-confidence threshold.
    #[must_use]
    pub fn threshold(&self) -> u8 {
        self.cfg.threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(threshold: u8) -> JrsConfidence {
        JrsConfidence::new(JrsConfig {
            sets: 8,
            ways: 2,
            counter_bits: 4,
            threshold,
            hist_bits: 4,
        })
    }

    #[test]
    fn unknown_branch_is_low_confidence() {
        let mut c = small(4);
        assert_eq!(c.estimate(10, 0), ConfidenceLevel::Low);
        assert_eq!(c.stats().tag_misses, 1);
    }

    #[test]
    fn confidence_builds_with_correct_streak() {
        let mut c = small(4);
        for _ in 0..3 {
            c.update(10, 0, true);
            assert_eq!(c.estimate(10, 0), ConfidenceLevel::Low);
        }
        c.update(10, 0, true);
        assert_eq!(c.estimate(10, 0), ConfidenceLevel::High);
    }

    #[test]
    fn misprediction_resets_to_low() {
        let mut c = small(2);
        c.update(10, 0, true);
        c.update(10, 0, true);
        assert!(c.estimate(10, 0).is_high());
        c.update(10, 0, false);
        assert_eq!(c.estimate(10, 0), ConfidenceLevel::Low);
    }

    #[test]
    fn history_contexts_are_separate() {
        let mut c = small(1);
        c.update(10, 0b0001, true);
        assert!(c.estimate(10, 0b0001).is_high());
        assert_eq!(c.estimate(10, 0b0010), ConfidenceLevel::Low);
    }

    #[test]
    fn lru_eviction_forgets_oldest() {
        let mut c = small(1);
        // Fill one set with 2 ways, then insert a third conflicting entry.
        // With hist XOR folding, pick pcs mapping to the same set: pc=0,8,16
        // with ghr=0 all hit set 0 (8 sets).
        c.update(0, 0, true);
        c.update(8, 0, true);
        assert!(c.estimate(0, 0).is_high()); // touch 0
        c.update(16, 0, true); // evicts 8
        assert_eq!(c.estimate(8, 0), ConfidenceLevel::Low);
        assert!(c.estimate(16, 0).is_high());
    }

    #[test]
    #[should_panic(expected = "exceeds counter max")]
    fn threshold_above_counter_max_rejected() {
        let _ = JrsConfidence::new(JrsConfig {
            counter_bits: 2,
            threshold: 4,
            ..JrsConfig::default()
        });
    }
}
