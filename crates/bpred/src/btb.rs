//! Branch target buffer, extended with wish-branch type bits (§3.5.1).

use wishbranch_isa::WishType;

/// The branch flavour recorded in a BTB entry, used by fetch to decide how
/// to predict the target.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BtbKind {
    /// Conditional direct branch (possibly wish-hinted).
    Cond,
    /// Unconditional direct branch.
    Uncond,
    /// Call (pushes the return address stack).
    Call,
    /// Return (pops the return address stack).
    Ret,
    /// Indirect jump (uses the indirect target cache).
    Indirect,
}

/// One BTB entry: target plus branch/wish type metadata.
///
/// The paper extends each entry to "indicate whether or not the branch is a
/// wish branch and the type of the wish branch" (§3.5.1); that is the
/// [`BtbEntry::wish`] field.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BtbEntry {
    /// Predicted target µop index.
    pub target: u32,
    /// Branch flavour.
    pub kind: BtbKind,
    /// Wish-branch type, when the branch is a wish branch.
    pub wish: Option<WishType>,
}

/// Configuration of the [`Btb`]. Default: 4K entries, 4-way (Table 2).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BtbConfig {
    /// Total entries (power of two).
    pub entries: usize,
    /// Associativity (power of two, divides `entries`).
    pub ways: usize,
}

impl Default for BtbConfig {
    fn default() -> Self {
        BtbConfig {
            entries: 4096,
            ways: 4,
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct Way {
    tag: u32,
    entry: BtbEntry,
    lru: u64,
}

/// A tagged, set-associative branch target buffer with true-LRU replacement.
#[derive(Clone, Debug)]
pub struct Btb {
    sets: Vec<Vec<Way>>,
    ways: usize,
    set_mask: u32,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl Btb {
    /// Creates an empty BTB.
    ///
    /// # Panics
    ///
    /// Panics if `entries`/`ways` are not powers of two or `ways` does not
    /// divide `entries`.
    #[must_use]
    pub fn new(cfg: BtbConfig) -> Btb {
        assert!(cfg.entries.is_power_of_two(), "entries must be a power of two");
        assert!(cfg.ways.is_power_of_two(), "ways must be a power of two");
        assert!(cfg.entries.is_multiple_of(cfg.ways), "ways must divide entries");
        let num_sets = cfg.entries / cfg.ways;
        Btb {
            sets: vec![Vec::with_capacity(cfg.ways); num_sets],
            ways: cfg.ways,
            set_mask: (num_sets - 1) as u32,
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    fn set_index(&self, pc: u32) -> usize {
        (pc & self.set_mask) as usize
    }

    fn tag(&self, pc: u32) -> u32 {
        pc >> self.set_mask.count_ones()
    }

    /// Looks up the branch at `pc`, updating LRU on a hit.
    pub fn lookup(&mut self, pc: u32) -> Option<BtbEntry> {
        self.tick += 1;
        let tick = self.tick;
        let tag = self.tag(pc);
        let set = self.set_index(pc);
        for way in &mut self.sets[set] {
            if way.tag == tag {
                way.lru = tick;
                self.hits += 1;
                return Some(way.entry);
            }
        }
        self.misses += 1;
        None
    }

    /// Installs or updates the entry for the branch at `pc` (called when a
    /// branch resolves or is decoded).
    pub fn install(&mut self, pc: u32, entry: BtbEntry) {
        self.tick += 1;
        let tick = self.tick;
        let tag = self.tag(pc);
        let set = self.set_index(pc);
        let ways = self.ways;
        let set_vec = &mut self.sets[set];
        if let Some(way) = set_vec.iter_mut().find(|w| w.tag == tag) {
            way.entry = entry;
            way.lru = tick;
            return;
        }
        if set_vec.len() < ways {
            set_vec.push(Way {
                tag,
                entry,
                lru: tick,
            });
            return;
        }
        // Evict true-LRU.
        let victim = set_vec
            .iter_mut()
            .min_by_key(|w| w.lru)
            .expect("set is non-empty");
        *victim = Way {
            tag,
            entry,
            lru: tick,
        };
    }

    /// (hits, misses) counters.
    #[must_use]
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(target: u32) -> BtbEntry {
        BtbEntry {
            target,
            kind: BtbKind::Cond,
            wish: None,
        }
    }

    #[test]
    fn miss_then_hit() {
        let mut btb = Btb::new(BtbConfig {
            entries: 16,
            ways: 2,
        });
        assert_eq!(btb.lookup(5), None);
        btb.install(5, entry(99));
        assert_eq!(btb.lookup(5).unwrap().target, 99);
        assert_eq!(btb.stats(), (1, 1));
    }

    #[test]
    fn wish_type_preserved() {
        let mut btb = Btb::new(BtbConfig::default());
        btb.install(
            7,
            BtbEntry {
                target: 3,
                kind: BtbKind::Cond,
                wish: Some(WishType::Loop),
            },
        );
        assert_eq!(btb.lookup(7).unwrap().wish, Some(WishType::Loop));
    }

    #[test]
    fn lru_evicts_oldest() {
        // 1 set, 2 ways: pcs 0, 8, 16 all map to set 0 (8 sets → mask 7)…
        // use a tiny config with a single set instead.
        let mut btb = Btb::new(BtbConfig { entries: 2, ways: 2 });
        btb.install(0, entry(10));
        btb.install(1, entry(11));
        assert!(btb.lookup(0).is_some()); // touch 0, so 1 becomes LRU
        btb.install(2, entry(12)); // evicts 1
        assert!(btb.lookup(1).is_none());
        assert!(btb.lookup(0).is_some());
        assert!(btb.lookup(2).is_some());
    }

    #[test]
    fn update_in_place() {
        let mut btb = Btb::new(BtbConfig::default());
        btb.install(7, entry(1));
        btb.install(7, entry(2));
        assert_eq!(btb.lookup(7).unwrap().target, 2);
    }

    #[test]
    fn different_sets_do_not_conflict() {
        let mut btb = Btb::new(BtbConfig { entries: 8, ways: 1 });
        for pc in 0..8u32 {
            btb.install(pc, entry(pc + 100));
        }
        for pc in 0..8u32 {
            assert_eq!(btb.lookup(pc).unwrap().target, pc + 100);
        }
    }
}
