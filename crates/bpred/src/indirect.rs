//! Indirect target cache (64K entries, Table 2).

/// Configuration of the [`IndirectTargetCache`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct IndirectConfig {
    /// Entries (power of two). Table 2: 64K.
    pub entries: usize,
    /// Global-history bits folded into the index (path sensitivity).
    pub hist_bits: u32,
}

impl Default for IndirectConfig {
    fn default() -> Self {
        IndirectConfig {
            entries: 64 * 1024,
            hist_bits: 8,
        }
    }
}

/// A direct-mapped, history-hashed last-target predictor for indirect
/// jumps and RAS-underflow returns.
#[derive(Clone, Debug)]
pub struct IndirectTargetCache {
    targets: Vec<Option<u32>>,
    hist_mask: u64,
    lookups: u64,
    hits: u64,
}

impl IndirectTargetCache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    #[must_use]
    pub fn new(cfg: IndirectConfig) -> IndirectTargetCache {
        assert!(cfg.entries.is_power_of_two(), "entries must be a power of two");
        IndirectTargetCache {
            targets: vec![None; cfg.entries],
            hist_mask: (1u64 << cfg.hist_bits) - 1,
            lookups: 0,
            hits: 0,
        }
    }

    fn index(&self, pc: u32, ghr: u64) -> usize {
        ((u64::from(pc) ^ (ghr & self.hist_mask)) as usize) & (self.targets.len() - 1)
    }

    /// Predicts the target of the indirect branch at `pc` under global
    /// history `ghr`.
    pub fn predict(&mut self, pc: u32, ghr: u64) -> Option<u32> {
        self.lookups += 1;
        let t = self.targets[self.index(pc, ghr)];
        if t.is_some() {
            self.hits += 1;
        }
        t
    }

    /// Records the resolved target.
    pub fn update(&mut self, pc: u32, ghr: u64, target: u32) {
        let idx = self.index(pc, ghr);
        self.targets[idx] = Some(target);
    }

    /// (lookups, hits) counters.
    #[must_use]
    pub fn stats(&self) -> (u64, u64) {
        (self.lookups, self.hits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_last_target_per_history() {
        let mut itc = IndirectTargetCache::new(IndirectConfig {
            entries: 64,
            hist_bits: 4,
        });
        assert_eq!(itc.predict(10, 0b0101), None);
        itc.update(10, 0b0101, 77);
        assert_eq!(itc.predict(10, 0b0101), Some(77));
        // Different history → possibly different entry (here: different).
        itc.update(10, 0b0110, 88);
        assert_eq!(itc.predict(10, 0b0110), Some(88));
        assert_eq!(itc.predict(10, 0b0101), Some(77));
    }

    #[test]
    fn stats_count_hits() {
        let mut itc = IndirectTargetCache::new(IndirectConfig {
            entries: 16,
            hist_bits: 0,
        });
        itc.predict(1, 0);
        itc.update(1, 0, 5);
        itc.predict(1, 0);
        assert_eq!(itc.stats(), (2, 1));
    }
}
