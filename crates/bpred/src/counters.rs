//! Saturating counters, the workhorse of every table-based predictor.

/// An n-bit saturating counter (n ≤ 8).
///
/// Used as a 2-bit bimodal counter in the direction predictors and selector,
/// and as a wider resetting "miss distance counter" in the JRS confidence
/// estimator.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SatCounter {
    value: u8,
    max: u8,
}

impl SatCounter {
    /// Creates a counter with `bits` width starting at `initial`.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or greater than 8, or if `initial` exceeds the
    /// maximum representable value.
    #[must_use]
    pub fn new(bits: u32, initial: u8) -> SatCounter {
        assert!((1..=8).contains(&bits), "counter width must be 1..=8 bits");
        let max = ((1u16 << bits) - 1) as u8;
        assert!(initial <= max, "initial value {initial} exceeds max {max}");
        SatCounter {
            value: initial,
            max,
        }
    }

    /// A 2-bit counter initialized to weakly-taken (2), the usual bimodal
    /// starting point.
    #[must_use]
    pub fn bimodal() -> SatCounter {
        SatCounter::new(2, 2)
    }

    /// Current value.
    #[inline]
    #[must_use]
    pub fn value(self) -> u8 {
        self.value
    }

    /// Maximum (saturated) value.
    #[inline]
    #[must_use]
    pub fn max(self) -> u8 {
        self.max
    }

    /// Saturating increment.
    #[inline]
    pub fn inc(&mut self) {
        if self.value < self.max {
            self.value += 1;
        }
    }

    /// Saturating decrement.
    #[inline]
    pub fn dec(&mut self) {
        if self.value > 0 {
            self.value -= 1;
        }
    }

    /// Resets to zero (JRS resetting-counter behaviour on a misprediction).
    #[inline]
    pub fn reset(&mut self) {
        self.value = 0;
    }

    /// Interprets the counter as a taken/not-taken prediction (MSB set).
    #[inline]
    #[must_use]
    pub fn predict_taken(self) -> bool {
        self.value > self.max / 2
    }

    /// Moves the counter toward `taken` (increment if taken, else decrement).
    #[inline]
    pub fn train(&mut self, taken: bool) {
        if taken {
            self.inc();
        } else {
            self.dec();
        }
    }

    /// Whether the counter is saturated at its maximum.
    #[inline]
    #[must_use]
    pub fn is_saturated(self) -> bool {
        self.value == self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bimodal_starts_weakly_taken() {
        let c = SatCounter::bimodal();
        assert!(c.predict_taken());
        assert_eq!(c.value(), 2);
        assert_eq!(c.max(), 3);
    }

    #[test]
    fn saturation_at_both_ends() {
        let mut c = SatCounter::new(2, 3);
        c.inc();
        assert_eq!(c.value(), 3);
        c.dec();
        c.dec();
        c.dec();
        c.dec();
        assert_eq!(c.value(), 0);
        assert!(!c.predict_taken());
    }

    #[test]
    fn train_and_hysteresis() {
        let mut c = SatCounter::bimodal();
        c.train(false); // 1
        assert!(!c.predict_taken());
        c.train(true); // 2
        assert!(c.predict_taken());
    }

    #[test]
    fn reset_zeroes() {
        let mut c = SatCounter::new(4, 9);
        c.reset();
        assert_eq!(c.value(), 0);
        assert_eq!(c.max(), 15);
    }

    #[test]
    #[should_panic(expected = "width")]
    fn zero_width_rejected() {
        let _ = SatCounter::new(0, 0);
    }

    #[test]
    #[should_panic(expected = "exceeds max")]
    fn oversized_initial_rejected() {
        let _ = SatCounter::new(2, 4);
    }
}
