//! Loop termination predictor (Sherwood & Calder [27]), provided as the
//! "specialized wish loop predictor" extension the paper sketches in §3.2:
//! it can be *biased to overestimate* the trip count so that wish-loop
//! mispredictions fall into the cheap late-exit case rather than early-exit.

use crate::counters::SatCounter;

/// Configuration of the [`LoopPredictor`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LoopPredConfig {
    /// Table entries (power of two, direct-mapped, tagged).
    pub entries: usize,
    /// Confidence counter bits; the trip prediction is used only when the
    /// counter is saturated.
    pub conf_bits: u32,
    /// Extra iterations added to the predicted trip count (§3.2's
    /// overestimation bias; 0 = unbiased).
    pub bias: u32,
}

impl Default for LoopPredConfig {
    fn default() -> Self {
        LoopPredConfig {
            entries: 256,
            conf_bits: 2,
            bias: 0,
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct Entry {
    tag: u32,
    predicted_trip: u32,
    conf: SatCounter,
    /// Decaying maximum of recently observed trip counts, used when the
    /// exact trip is unstable (§3.2: the predictor "does not have to
    /// exactly predict the iteration count" — overestimating it makes
    /// late exits more common than early exits).
    rolling_max: u32,
    /// Speculative iteration count for the in-flight execution of the loop
    /// (number of times the loop branch has been fetched since the last
    /// observed exit).
    spec_iter: u32,
}

/// Token carrying the speculative iteration number a prediction was made at,
/// used for training and flush repair.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LoopToken {
    /// 1-based iteration number of this fetch of the loop branch.
    pub iter: u32,
    /// Whether the predictor had a confident trip prediction.
    pub confident: bool,
}

/// A trip-count-based loop branch predictor.
///
/// Predicts *taken* while the speculative iteration count is below the
/// (possibly biased) predicted trip count, *not-taken* at the predicted
/// exit, and declines to predict (`None`) while unconfident.
#[derive(Clone, Debug)]
pub struct LoopPredictor {
    cfg: LoopPredConfig,
    entries: Vec<Option<Entry>>,
}

impl LoopPredictor {
    /// Creates an empty predictor.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    #[must_use]
    pub fn new(cfg: LoopPredConfig) -> LoopPredictor {
        assert!(cfg.entries.is_power_of_two(), "entries must be a power of two");
        LoopPredictor {
            cfg,
            entries: vec![None; cfg.entries],
        }
    }

    fn index(&self, pc: u32) -> usize {
        (pc as usize) & (self.entries.len() - 1)
    }

    /// Called when fetch encounters the loop branch at `pc`. Advances the
    /// speculative iteration count and returns the trip-based direction
    /// prediction (if confident) plus the repair token.
    pub fn fetch_predict(&mut self, pc: u32) -> (Option<bool>, LoopToken) {
        let idx = self.index(pc);
        let bias = self.cfg.bias;
        let entry = self.entries[idx].get_or_insert(Entry {
            tag: pc,
            predicted_trip: 0,
            conf: SatCounter::new(self.cfg.conf_bits, 0),
            rolling_max: 0,
            spec_iter: 0,
        });
        if entry.tag != pc {
            // Conflict: reallocate.
            *entry = Entry {
                tag: pc,
                predicted_trip: 0,
                conf: SatCounter::new(self.cfg.conf_bits, 0),
                rolling_max: 0,
                spec_iter: 0,
            };
        }
        entry.spec_iter += 1;
        let token = LoopToken {
            iter: entry.spec_iter,
            confident: entry.conf.is_saturated(),
        };
        // Confident exact trip when the loop is regular; otherwise the
        // biased rolling maximum (deliberate overestimation, §3.2).
        let pred = if entry.conf.is_saturated() {
            Some(entry.spec_iter < entry.predicted_trip + bias)
        } else if entry.rolling_max > 0 {
            Some(entry.spec_iter < entry.rolling_max + bias)
        } else {
            None
        };
        if pred == Some(false) {
            // Predicted exit: reset the speculative count for the next
            // execution of the loop.
            entry.spec_iter = 0;
        }
        (pred, token)
    }

    /// Trains the predictor with the resolved outcome of the loop branch.
    /// `taken = false` means the loop exited at iteration `token.iter`.
    pub fn update(&mut self, pc: u32, token: &LoopToken, taken: bool) {
        let idx = self.index(pc);
        let Some(entry) = self.entries[idx].as_mut() else {
            return;
        };
        if entry.tag != pc {
            return;
        }
        if !taken {
            // Observed a complete execution with trip count = token.iter.
            if entry.predicted_trip == token.iter {
                entry.conf.inc();
            } else {
                entry.predicted_trip = token.iter;
                entry.conf.reset();
            }
            // Rolling maximum with slow decay toward the observed trip.
            if token.iter >= entry.rolling_max {
                entry.rolling_max = token.iter;
            } else {
                entry.rolling_max -= (entry.rolling_max - token.iter).div_ceil(4);
            }
        }
    }

    /// Repairs the speculative iteration count after a pipeline flush at the
    /// loop branch whose prediction produced `token`: the resolved direction
    /// determines whether the execution continues (`taken`) or restarts.
    pub fn repair(&mut self, pc: u32, token: &LoopToken, resolved_taken: bool) {
        let idx = self.index(pc);
        let Some(entry) = self.entries[idx].as_mut() else {
            return;
        };
        if entry.tag != pc {
            return;
        }
        entry.spec_iter = if resolved_taken { token.iter } else { 0 };
    }

    /// The predicted trip count for the loop at `pc`, if confident.
    #[must_use]
    pub fn confident_trip(&self, pc: u32) -> Option<u32> {
        let e = self.entries[self.index(pc)]?;
        (e.tag == pc && e.conf.is_saturated()).then_some(e.predicted_trip)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Runs one full loop execution of `trip` iterations through the
    /// predictor, returning the number of mispredictions.
    fn run_execution(lp: &mut LoopPredictor, pc: u32, trip: u32) -> u32 {
        let mut mispredicts = 0;
        for i in 1..=trip {
            let actual_taken = i < trip;
            let (pred, tok) = lp.fetch_predict(pc);
            if let Some(p) = pred {
                if p != actual_taken {
                    mispredicts += 1;
                    lp.repair(pc, &tok, actual_taken);
                }
            } else if !actual_taken {
                // Unconfident predictors fall back to the hybrid; for this
                // test we just reset the execution at the exit.
                lp.repair(pc, &tok, false);
            }
            lp.update(pc, &tok, actual_taken);
        }
        mispredicts
    }

    #[test]
    fn learns_fixed_trip_count() {
        let mut lp = LoopPredictor::new(LoopPredConfig::default());
        // Warm up: needs conf_bits saturation (3 consistent executions).
        for _ in 0..4 {
            run_execution(&mut lp, 10, 7);
        }
        assert_eq!(lp.confident_trip(10), Some(7));
        assert_eq!(run_execution(&mut lp, 10, 7), 0);
    }

    #[test]
    fn trip_change_resets_confidence() {
        let mut lp = LoopPredictor::new(LoopPredConfig::default());
        for _ in 0..4 {
            run_execution(&mut lp, 10, 5);
        }
        run_execution(&mut lp, 10, 9);
        assert_eq!(lp.confident_trip(10), None);
    }

    #[test]
    fn bias_overestimates_exit() {
        let mut lp = LoopPredictor::new(LoopPredConfig {
            bias: 2,
            ..LoopPredConfig::default()
        });
        for _ in 0..4 {
            run_execution(&mut lp, 10, 5);
        }
        // With bias 2, the predictor keeps predicting taken at iteration 5
        // (the true exit) — a late-exit style misprediction by design.
        let (pred1, t1) = lp.fetch_predict(10);
        for _ in 0..3 {
            let (_, _) = lp.fetch_predict(10);
        }
        let (pred5, t5) = lp.fetch_predict(10);
        assert_eq!(pred1, Some(true));
        assert_eq!(pred5, Some(true), "biased predictor overshoots the exit");
        assert!(t5.iter > t1.iter);
    }

    #[test]
    fn conflict_reallocates() {
        let mut lp = LoopPredictor::new(LoopPredConfig {
            entries: 4,
            ..LoopPredConfig::default()
        });
        for _ in 0..4 {
            run_execution(&mut lp, 1, 3);
        }
        assert_eq!(lp.confident_trip(1), Some(3));
        // pc=5 maps to the same slot (4 entries) and evicts.
        let _ = lp.fetch_predict(5);
        assert_eq!(lp.confident_trip(1), None);
    }
}
