//! # wishbranch-bpred
//!
//! Branch-direction predictors, target predictors, and the confidence
//! estimator used by the wish-branches reproduction.
//!
//! The baseline front end of the paper (Table 2) uses:
//!
//! * a 64K-entry gshare / 64K-entry PAs hybrid with a 64K-entry selector
//!   ([`HybridPredictor`]) — deliberately large and accurate so wish-branch
//!   gains are not inflated;
//! * a 4K-entry branch target buffer extended with wish-branch type bits
//!   ([`Btb`]);
//! * a 64-entry return address stack ([`ReturnAddressStack`]);
//! * a 64K-entry indirect target cache ([`IndirectTargetCache`]);
//! * a 1 KB tagged 4-way JRS confidence estimator with 16-bit history
//!   ([`JrsConfidence`]) dedicated to wish branches (§3.5.5).
//!
//! Predictions are pure lookups that return a *token* capturing the history
//! the prediction was made with; the caller hands the token back at update
//! time. This keeps speculative-history repair explicit in the simulator:
//! the global history register is checkpointed per branch and restored on a
//! pipeline flush.
//!
//! # Example
//!
//! ```
//! use wishbranch_bpred::{HybridPredictor, HybridConfig};
//!
//! let mut bp = HybridPredictor::new(HybridConfig::default());
//! let (pred, token) = bp.predict(0x40);
//! bp.on_fetch_branch(pred);              // speculative global-history update
//! bp.update(0x40, &token, true);         // at branch resolution
//! assert!(bp.stats().lookups >= 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod btb;
mod confidence;
mod counters;
mod hybrid;
mod indirect;
mod loop_pred;
mod ras;

pub use btb::{Btb, BtbConfig, BtbEntry, BtbKind};
pub use confidence::{ConfidenceLevel, JrsConfidence, JrsConfig};
pub use counters::SatCounter;
pub use hybrid::{BpStats, HybridConfig, HybridPredictor, HybridToken};
pub use indirect::{IndirectConfig, IndirectTargetCache};
pub use loop_pred::{LoopPredConfig, LoopPredictor, LoopToken};
pub use ras::{RasCheckpoint, ReturnAddressStack};
