//! The gshare/PAs hybrid direction predictor of Table 2.

use crate::counters::SatCounter;

/// Configuration of the [`HybridPredictor`]. Defaults follow Table 2 of the
/// paper: 64K-entry gshare, 64K-entry PAs, 64K-entry selector.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct HybridConfig {
    /// Entries in the gshare pattern history table (power of two).
    pub gshare_entries: usize,
    /// Global history bits used by gshare.
    pub gshare_hist_bits: u32,
    /// Per-address local-history registers (power of two).
    pub pas_local_entries: usize,
    /// Local history bits per register.
    pub pas_hist_bits: u32,
    /// Entries in the PAs pattern history table (power of two).
    pub pas_pht_entries: usize,
    /// Entries in the selector table (power of two).
    pub selector_entries: usize,
}

impl Default for HybridConfig {
    fn default() -> Self {
        HybridConfig {
            gshare_entries: 64 * 1024,
            gshare_hist_bits: 16,
            pas_local_entries: 4096,
            pas_hist_bits: 10,
            pas_pht_entries: 64 * 1024,
            selector_entries: 64 * 1024,
        }
    }
}

/// Aggregate direction-prediction statistics.
#[derive(Clone, Copy, PartialEq, Eq, Default, Debug)]
pub struct BpStats {
    /// Total predictions requested.
    pub lookups: u64,
    /// Updates where the recorded prediction was wrong.
    pub mispredicts: u64,
    /// Total updates applied.
    pub updates: u64,
}

/// Prediction token: the history state a prediction was made with, handed
/// back at update time so tables are trained with the right indices even if
/// intervening speculation perturbed the live history registers.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct HybridToken {
    /// Global history register value at prediction time.
    pub ghr: u64,
    /// Local history register value at prediction time.
    pub local: u16,
    /// What gshare predicted.
    pub gshare_taken: bool,
    /// What PAs predicted.
    pub pas_taken: bool,
    /// The overall (selected) prediction.
    pub taken: bool,
}

/// A gshare (McFarling \[21\]) / PAs (Yeh & Patt \[32\]) hybrid with a
/// selector table, as in Table 2.
///
/// The global history register is updated *speculatively* by the fetch
/// engine via [`HybridPredictor::on_fetch_branch`], checkpointed per branch
/// with [`HybridPredictor::ghr`], and restored on a pipeline flush with
/// [`HybridPredictor::restore_ghr`]. Local histories are updated
/// non-speculatively at resolution.
#[derive(Clone, Debug)]
pub struct HybridPredictor {
    cfg: HybridConfig,
    gshare_pht: Vec<SatCounter>,
    pas_hist: Vec<u16>,
    pas_pht: Vec<SatCounter>,
    selector: Vec<SatCounter>,
    ghr: u64,
    stats: BpStats,
}

fn assert_pow2(n: usize, what: &str) {
    assert!(n.is_power_of_two(), "{what} must be a power of two, got {n}");
}

impl HybridPredictor {
    /// Creates a predictor with all counters at their weakly-taken initial
    /// state and empty histories.
    ///
    /// # Panics
    ///
    /// Panics if any table size in `cfg` is not a power of two.
    #[must_use]
    pub fn new(cfg: HybridConfig) -> HybridPredictor {
        assert_pow2(cfg.gshare_entries, "gshare_entries");
        assert_pow2(cfg.pas_local_entries, "pas_local_entries");
        assert_pow2(cfg.pas_pht_entries, "pas_pht_entries");
        assert_pow2(cfg.selector_entries, "selector_entries");
        assert!(cfg.pas_hist_bits <= 16, "local history limited to 16 bits");
        HybridPredictor {
            cfg,
            gshare_pht: vec![SatCounter::bimodal(); cfg.gshare_entries],
            pas_hist: vec![0; cfg.pas_local_entries],
            pas_pht: vec![SatCounter::bimodal(); cfg.pas_pht_entries],
            selector: vec![SatCounter::bimodal(); cfg.selector_entries],
            ghr: 0,
            stats: BpStats::default(),
        }
    }

    fn gshare_index(&self, pc: u32, ghr: u64) -> usize {
        let hist_mask = (1u64 << self.cfg.gshare_hist_bits) - 1;
        ((u64::from(pc) ^ (ghr & hist_mask)) as usize) & (self.cfg.gshare_entries - 1)
    }

    fn pas_hist_index(&self, pc: u32) -> usize {
        (pc as usize) & (self.cfg.pas_local_entries - 1)
    }

    fn pas_pht_index(&self, pc: u32, local: u16) -> usize {
        let hist = usize::from(local) & ((1 << self.cfg.pas_hist_bits) - 1);
        (((pc as usize) << self.cfg.pas_hist_bits) | hist) & (self.cfg.pas_pht_entries - 1)
    }

    fn selector_index(&self, pc: u32) -> usize {
        (pc as usize) & (self.cfg.selector_entries - 1)
    }

    /// Predicts the direction of the conditional branch at µop index `pc`,
    /// returning the prediction and the token to hand back to
    /// [`HybridPredictor::update`].
    pub fn predict(&mut self, pc: u32) -> (bool, HybridToken) {
        self.stats.lookups += 1;
        let ghr = self.ghr;
        let gshare_taken = self.gshare_pht[self.gshare_index(pc, ghr)].predict_taken();
        let local = self.pas_hist[self.pas_hist_index(pc)];
        let pas_taken = self.pas_pht[self.pas_pht_index(pc, local)].predict_taken();
        // Selector counter: high half selects PAs, low half selects gshare.
        let use_pas = self.selector[self.selector_index(pc)].predict_taken();
        let taken = if use_pas { pas_taken } else { gshare_taken };
        (
            taken,
            HybridToken {
                ghr,
                local,
                gshare_taken,
                pas_taken,
                taken,
            },
        )
    }

    /// Speculatively shifts a predicted conditional-branch outcome into the
    /// global history register (called by fetch for every predicted
    /// conditional branch).
    pub fn on_fetch_branch(&mut self, taken: bool) {
        self.ghr = (self.ghr << 1) | u64::from(taken);
    }

    /// Current global history register, for checkpointing at a branch.
    #[must_use]
    pub fn ghr(&self) -> u64 {
        self.ghr
    }

    /// Restores the global history register after a pipeline flush. The
    /// caller passes the checkpoint taken at the mispredicted branch plus
    /// the branch's now-known outcome, which is shifted in.
    pub fn restore_ghr(&mut self, checkpoint: u64, resolved_taken: bool) {
        self.ghr = (checkpoint << 1) | u64::from(resolved_taken);
    }

    /// Sets the global history register to an exact checkpoint (flush
    /// recovery for branches that never entered the history, e.g. returns
    /// and indirect jumps).
    pub fn set_ghr(&mut self, value: u64) {
        self.ghr = value;
    }

    /// Trains all tables with the resolved outcome of the branch at `pc`
    /// whose prediction produced `token`.
    pub fn update(&mut self, pc: u32, token: &HybridToken, taken: bool) {
        self.stats.updates += 1;
        if token.taken != taken {
            self.stats.mispredicts += 1;
        }
        let gidx = self.gshare_index(pc, token.ghr);
        self.gshare_pht[gidx].train(taken);
        let pidx = self.pas_pht_index(pc, token.local);
        self.pas_pht[pidx].train(taken);
        // Selector trains toward whichever component was right (only when
        // they disagree, per McFarling).
        if token.gshare_taken != token.pas_taken {
            let sidx = self.selector_index(pc);
            self.selector[sidx].train(token.pas_taken == taken);
        }
        // Non-speculative local history update.
        let hidx = self.pas_hist_index(pc);
        let mask = ((1u32 << self.cfg.pas_hist_bits) - 1) as u16;
        self.pas_hist[hidx] = ((self.pas_hist[hidx] << 1) | u16::from(taken)) & mask;
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> BpStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> HybridPredictor {
        HybridPredictor::new(HybridConfig {
            gshare_entries: 256,
            gshare_hist_bits: 8,
            pas_local_entries: 64,
            pas_hist_bits: 6,
            pas_pht_entries: 256,
            selector_entries: 64,
        })
    }

    #[test]
    fn learns_always_taken_branch() {
        let mut bp = small();
        for _ in 0..8 {
            let (_, tok) = bp.predict(100);
            bp.on_fetch_branch(tok.taken);
            bp.update(100, &tok, true);
        }
        let (pred, _) = bp.predict(100);
        assert!(pred);
        assert_eq!(bp.stats().lookups, 9);
    }

    #[test]
    fn learns_alternating_pattern_via_history() {
        let mut bp = small();
        let mut outcome = false;
        // Train an alternating T/N/T/N branch; history-based components must
        // learn it essentially perfectly after warmup.
        let mut late_mispredicts = 0;
        for i in 0..400 {
            outcome = !outcome;
            let (pred, tok) = bp.predict(7);
            bp.on_fetch_branch(pred);
            if i >= 200 && pred != outcome {
                late_mispredicts += 1;
            }
            bp.update(7, &tok, outcome);
        }
        assert_eq!(
            late_mispredicts, 0,
            "alternating pattern should be perfectly predicted after warmup"
        );
    }

    #[test]
    fn ghr_checkpoint_restore() {
        let mut bp = small();
        let cp = bp.ghr();
        bp.on_fetch_branch(true);
        bp.on_fetch_branch(true);
        assert_ne!(bp.ghr(), cp);
        bp.restore_ghr(cp, false);
        assert_eq!(bp.ghr(), cp << 1);
    }

    #[test]
    fn mispredict_counting() {
        let mut bp = small();
        let (_, tok) = bp.predict(1);
        // Force a wrong recorded prediction.
        let wrong = HybridToken {
            taken: !tok.taken,
            ..tok
        };
        bp.update(1, &wrong, tok.taken);
        assert_eq!(bp.stats().mispredicts, 1);
        assert_eq!(bp.stats().updates, 1);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_rejected() {
        let _ = HybridPredictor::new(HybridConfig {
            gshare_entries: 100,
            ..HybridConfig::default()
        });
    }
}
