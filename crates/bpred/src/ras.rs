//! Return address stack with whole-stack checkpointing for flush recovery.

/// Number of entries in the baseline RAS (Table 2).
pub const RAS_ENTRIES: usize = 64;

/// A snapshot of the RAS taken at a branch, restored on a pipeline flush.
///
/// The stack is small (64 × 4 bytes), so a full copy per in-flight branch is
/// the simplest correct recovery mechanism; commercial designs approximate
/// this with top-of-stack repair, which can corrupt deep stacks — we model
/// the ideal repair.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RasCheckpoint {
    stack: [u32; RAS_ENTRIES],
    top: usize,
    depth: usize,
}

/// A circular return address stack (64 entries, Table 2) used by fetch to
/// predict `ret` targets.
#[derive(Clone, Copy, Debug)]
pub struct ReturnAddressStack {
    stack: [u32; RAS_ENTRIES],
    /// Index one past the most recently pushed entry (mod RAS_ENTRIES).
    top: usize,
    /// Number of live entries (saturates at RAS_ENTRIES as old frames are
    /// overwritten).
    depth: usize,
}

impl Default for ReturnAddressStack {
    fn default() -> Self {
        Self::new()
    }
}

impl ReturnAddressStack {
    /// Creates an empty stack.
    #[must_use]
    pub fn new() -> ReturnAddressStack {
        ReturnAddressStack {
            stack: [0; RAS_ENTRIES],
            top: 0,
            depth: 0,
        }
    }

    /// Pushes a return address (on fetching a call).
    pub fn push(&mut self, return_addr: u32) {
        self.stack[self.top] = return_addr;
        self.top = (self.top + 1) % RAS_ENTRIES;
        self.depth = (self.depth + 1).min(RAS_ENTRIES);
    }

    /// Pops the predicted return address (on fetching a `ret`). Returns
    /// `None` when the stack has underflowed, in which case fetch falls back
    /// to the indirect target cache.
    pub fn pop(&mut self) -> Option<u32> {
        if self.depth == 0 {
            return None;
        }
        self.top = (self.top + RAS_ENTRIES - 1) % RAS_ENTRIES;
        self.depth -= 1;
        Some(self.stack[self.top])
    }

    /// Number of live entries.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Takes a checkpoint for flush recovery.
    #[must_use]
    pub fn checkpoint(&self) -> RasCheckpoint {
        RasCheckpoint {
            stack: self.stack,
            top: self.top,
            depth: self.depth,
        }
    }

    /// Restores a previously taken checkpoint.
    pub fn restore(&mut self, cp: &RasCheckpoint) {
        self.stack = cp.stack;
        self.top = cp.top;
        self.depth = cp.depth;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_lifo() {
        let mut ras = ReturnAddressStack::new();
        ras.push(10);
        ras.push(20);
        assert_eq!(ras.pop(), Some(20));
        assert_eq!(ras.pop(), Some(10));
        assert_eq!(ras.pop(), None);
    }

    #[test]
    fn overflow_wraps_and_keeps_newest() {
        let mut ras = ReturnAddressStack::new();
        for i in 0..(RAS_ENTRIES as u32 + 4) {
            ras.push(i);
        }
        assert_eq!(ras.depth(), RAS_ENTRIES);
        // Newest entries pop first.
        assert_eq!(ras.pop(), Some(RAS_ENTRIES as u32 + 3));
        assert_eq!(ras.pop(), Some(RAS_ENTRIES as u32 + 2));
    }

    #[test]
    fn checkpoint_restore_roundtrip() {
        let mut ras = ReturnAddressStack::new();
        ras.push(1);
        ras.push(2);
        let cp = ras.checkpoint();
        ras.push(3);
        assert_eq!(ras.pop(), Some(3));
        assert_eq!(ras.pop(), Some(2));
        ras.restore(&cp);
        assert_eq!(ras.depth(), 2);
        assert_eq!(ras.pop(), Some(2));
        assert_eq!(ras.pop(), Some(1));
    }

    #[test]
    fn underflow_after_restore_of_empty() {
        let ras0 = ReturnAddressStack::new();
        let cp = ras0.checkpoint();
        let mut ras = ReturnAddressStack::new();
        ras.push(5);
        ras.restore(&cp);
        assert_eq!(ras.pop(), None);
    }
}
