//! Property tests over the predictor suite: reference-model equivalence for
//! the JRS resetting counters, RAS checkpointing under arbitrary
//! interleavings, and hybrid-predictor determinism/accuracy bounds.

use proptest::prelude::*;
use std::collections::HashMap;
use wishbranch_bpred::{
    ConfidenceLevel, HybridConfig, HybridPredictor, JrsConfidence, JrsConfig,
    ReturnAddressStack,
};

proptest! {
    /// Single branch, no conflicts: the tagged JRS must behave exactly like
    /// one resetting saturating counter with a threshold.
    #[test]
    fn jrs_matches_streak_model(outcomes in proptest::collection::vec(any::<bool>(), 1..200)) {
        let cfg = JrsConfig {
            sets: 16,
            ways: 2,
            counter_bits: 4,
            threshold: 5,
            hist_bits: 0, // single context for the model
        };
        let mut jrs = JrsConfidence::new(cfg);
        let mut streak: u64 = 0;
        let mut seen = false;
        for correct in outcomes {
            let expect = if !seen {
                ConfidenceLevel::Low // tag miss
            } else if streak >= 5 {
                ConfidenceLevel::High
            } else {
                ConfidenceLevel::Low
            };
            prop_assert_eq!(jrs.estimate(77, 0), expect, "streak={}", streak);
            jrs.update(77, 0, correct);
            seen = true;
            streak = if correct { (streak + 1).min(15) } else { 0 };
        }
    }

    /// Arbitrary push/pop/checkpoint/restore interleavings: a restored RAS
    /// must behave exactly as it did at checkpoint time.
    #[test]
    fn ras_checkpoint_is_exact(ops in proptest::collection::vec(0u8..4, 1..100)) {
        let mut ras = ReturnAddressStack::new();
        let mut model: Vec<u32> = Vec::new();
        let mut next = 1u32;
        let mut checkpoint = None;
        for op in ops {
            match op {
                0 => {
                    ras.push(next);
                    model.push(next);
                    if model.len() > 64 {
                        model.remove(0);
                    }
                    next += 1;
                }
                1 => {
                    prop_assert_eq!(ras.pop(), model.pop());
                }
                2 => checkpoint = Some((ras.checkpoint(), model.clone())),
                _ => {
                    if let Some((cp, m)) = &checkpoint {
                        ras.restore(cp);
                        model = m.clone();
                    }
                }
            }
        }
        // Drain both and compare.
        while let Some(expect) = model.pop() {
            prop_assert_eq!(ras.pop(), Some(expect));
        }
        prop_assert_eq!(ras.pop(), None);
    }

    /// The hybrid predictor is deterministic: identical stimulus → identical
    /// predictions and state.
    #[test]
    fn hybrid_is_deterministic(
        branches in proptest::collection::vec((0u32..64, any::<bool>()), 1..300)
    ) {
        let cfg = HybridConfig {
            gshare_entries: 1024,
            gshare_hist_bits: 8,
            pas_local_entries: 64,
            pas_hist_bits: 6,
            pas_pht_entries: 1024,
            selector_entries: 256,
        };
        let run = || {
            let mut bp = HybridPredictor::new(cfg);
            let mut trace = Vec::new();
            for &(pc, taken) in &branches {
                let (dir, tok) = bp.predict(pc);
                bp.on_fetch_branch(dir);
                bp.update(pc, &tok, taken);
                trace.push(dir);
            }
            (trace, bp.stats())
        };
        prop_assert_eq!(run(), run());
    }
}

/// The hybrid must learn a set of strongly biased static branches to high
/// accuracy — a functional floor, not a microbenchmark.
#[test]
fn hybrid_learns_biased_branches() {
    let mut bp = HybridPredictor::new(HybridConfig::default());
    let mut outcomes: HashMap<u32, bool> = HashMap::new();
    for pc in 0..32u32 {
        outcomes.insert(pc * 16, pc % 2 == 0);
    }
    let mut late_wrong = 0;
    let mut late_total = 0;
    for round in 0..200 {
        for (&pc, &taken) in &outcomes {
            let (dir, tok) = bp.predict(pc);
            bp.on_fetch_branch(dir);
            if round > 50 {
                late_total += 1;
                if dir != taken {
                    late_wrong += 1;
                }
            }
            bp.update(pc, &tok, taken);
        }
    }
    assert!(
        (late_wrong as f64) < 0.01 * late_total as f64,
        "static branches must be near-perfectly predicted: {late_wrong}/{late_total}"
    );
}
