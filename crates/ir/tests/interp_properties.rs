//! Property tests on the IR interpreter: determinism, profile accounting,
//! and agreement between interpreter-visible state and program structure.

use proptest::prelude::*;
use wishbranch_ir::{FunctionBuilder, Interpreter, Module};
use wishbranch_isa::{AluOp, CmpOp, Gpr, Operand};

fn r(i: u8) -> Gpr {
    Gpr::new(i)
}

/// A small structured program: counted loop with a data-dependent hammock.
fn program(trip: i32, threshold: i32) -> Module {
    let mut f = FunctionBuilder::new("main");
    let e = f.entry_block();
    let body = f.new_block();
    let t = f.new_block();
    let el = f.new_block();
    let j = f.new_block();
    let exit = f.new_block();
    f.select(e);
    f.movi(r(1), 0);
    f.movi(r(2), 0);
    f.jump(body);
    f.select(body);
    f.alu(AluOp::Mul, r(3), r(1), Operand::imm(37));
    f.alu(AluOp::And, r(3), r(3), Operand::imm(63));
    f.branch(CmpOp::Lt, r(3), Operand::imm(threshold), t, el);
    f.select(el);
    f.alu(AluOp::Sub, r(2), r(2), Operand::imm(1));
    f.jump(j);
    f.select(t);
    f.alu(AluOp::Add, r(2), r(2), Operand::imm(2));
    f.jump(j);
    f.select(j);
    f.alu(AluOp::Add, r(1), r(1), Operand::imm(1));
    f.branch(CmpOp::Lt, r(1), Operand::imm(trip), body, exit);
    f.select(exit);
    f.halt();
    Module::new(vec![f.build()], 0).unwrap()
}

proptest! {
    #[test]
    fn interpreter_is_deterministic(trip in 1i32..200, th in 0i32..64) {
        let m = program(trip, th);
        let a = Interpreter::new().run(&m, 1_000_000).unwrap();
        let b = Interpreter::new().run(&m, 1_000_000).unwrap();
        prop_assert_eq!(a.regs, b.regs);
        prop_assert_eq!(&a.mem, &b.mem);
        prop_assert_eq!(a.steps, b.steps);
        prop_assert_eq!(a.mem_digest(), b.mem_digest());
    }

    #[test]
    fn profile_edge_counts_match_structure(trip in 1i32..200, th in 0i32..64) {
        let m = program(trip, th);
        let res = Interpreter::new().run(&m, 1_000_000).unwrap();
        // The loop latch executes exactly `trip` times, taken `trip - 1`.
        let latch = res
            .profile
            .iter()
            .find(|((_, b), _)| b.0 == 4)
            .map(|(_, p)| *p)
            .expect("latch profiled");
        prop_assert_eq!(latch.executions(), trip as u64);
        prop_assert_eq!(latch.taken, trip as u64 - 1);
        // The hammock executes exactly `trip` times and its two directions
        // partition it.
        let hammock = res
            .profile
            .iter()
            .find(|((_, b), _)| b.0 == 1)
            .map(|(_, p)| *p)
            .expect("hammock profiled");
        prop_assert_eq!(hammock.taken + hammock.not_taken, trip as u64);
        // Estimated mispredictions can never exceed executions.
        prop_assert!(hammock.est_mispredicts <= hammock.executions());
    }

    #[test]
    fn register_result_matches_closed_form(trip in 1i32..200, th in 0i32..64) {
        let m = program(trip, th);
        let res = Interpreter::new().run(&m, 1_000_000).unwrap();
        let mut expect = 0i64;
        for i in 0..trip {
            let v = (i as i64 * 37) & 63;
            expect += if v < i64::from(th) { 2 } else { -1 };
        }
        prop_assert_eq!(res.regs[2], expect);
        prop_assert_eq!(res.regs[1], i64::from(trip));
    }
}
