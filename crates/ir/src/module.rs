//! IR data types: modules, functions, blocks, instructions, terminators.

use std::error::Error;
use std::fmt;
use wishbranch_isa::{AluOp, CmpOp, Gpr, Operand};

/// Index of a function within a [`Module`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct FuncId(pub u32);

/// Index of a basic block within a [`Function`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct BlockId(pub u32);

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

/// A branch condition: `lhs <op> rhs` over general-purpose registers.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Cond {
    /// Comparison operator.
    pub op: CmpOp,
    /// Left operand register.
    pub lhs: Gpr,
    /// Right operand (register or immediate).
    pub rhs: Operand,
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.lhs, self.op.mnemonic(), self.rhs)
    }
}

/// A straight-line (non-control) IR instruction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BodyInsn {
    /// `dst = src1 <op> src2`.
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination register.
        dst: Gpr,
        /// First source.
        src1: Gpr,
        /// Second source.
        src2: Operand,
    },
    /// `dst = imm`.
    MovImm {
        /// Destination register.
        dst: Gpr,
        /// Immediate value.
        imm: i64,
    },
    /// `dst = mem[base + offset]`.
    Load {
        /// Destination register.
        dst: Gpr,
        /// Base address register.
        base: Gpr,
        /// Byte offset.
        offset: i32,
    },
    /// `mem[base + offset] = src`.
    Store {
        /// Source data register.
        src: Gpr,
        /// Base address register.
        base: Gpr,
        /// Byte offset.
        offset: i32,
    },
    /// Call another function in the module. Registers are caller/callee
    /// shared (the IR has no frames); conventions are up to the program.
    Call {
        /// Callee.
        func: FuncId,
    },
}

impl fmt::Display for BodyInsn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            BodyInsn::Alu {
                op,
                dst,
                src1,
                src2,
            } => write!(f, "{dst} = {} {src1}, {src2}", op.mnemonic()),
            BodyInsn::MovImm { dst, imm } => write!(f, "{dst} = {imm}"),
            BodyInsn::Load { dst, base, offset } => write!(f, "{dst} = load [{base}{offset:+}]"),
            BodyInsn::Store { src, base, offset } => write!(f, "store [{base}{offset:+}] = {src}"),
            BodyInsn::Call { func } => write!(f, "call f{}", func.0),
        }
    }
}

/// How a basic block ends.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Terminator {
    /// Unconditional transfer.
    Jump(BlockId),
    /// Two-way conditional transfer: `if cond goto taken else goto fall`.
    Branch {
        /// The condition.
        cond: Cond,
        /// Successor when the condition holds.
        taken: BlockId,
        /// Successor when it does not.
        fall: BlockId,
    },
    /// Return from the current function (invalid in `main`).
    Return,
    /// Stop the program (valid only in `main`).
    Halt,
}

impl Terminator {
    /// The block's successors, in (taken, fall) order for branches.
    #[must_use]
    pub fn successors(&self) -> Vec<BlockId> {
        match *self {
            Terminator::Jump(b) => vec![b],
            Terminator::Branch { taken, fall, .. } => vec![taken, fall],
            Terminator::Return | Terminator::Halt => vec![],
        }
    }
}

/// A basic block: straight-line body plus terminator.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Block {
    /// Straight-line instructions.
    pub insns: Vec<BodyInsn>,
    /// Control-flow exit.
    pub term: Terminator,
}

/// A function: a CFG of basic blocks. Block 0 is the entry.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Function {
    /// Debug name.
    pub name: String,
    /// Basic blocks; `BlockId(i)` indexes this vector.
    pub blocks: Vec<Block>,
}

impl Function {
    /// The block with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.0 as usize]
    }

    /// Predecessor lists for every block.
    #[must_use]
    pub fn predecessors(&self) -> Vec<Vec<BlockId>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for (i, b) in self.blocks.iter().enumerate() {
            for s in b.term.successors() {
                preds[s.0 as usize].push(BlockId(i as u32));
            }
        }
        preds
    }

    /// Whether the edge `from → to` is a *backward* edge under the block
    /// ordering convention (workload builders emit blocks in program order,
    /// so loop latches always target earlier blocks). Used by the compiler
    /// to find loop branches.
    #[must_use]
    pub fn is_backward_edge(&self, from: BlockId, to: BlockId) -> bool {
        to <= from
    }
}

/// Structural problems detected by [`Module::new`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ValidationError {
    /// A terminator referenced a block outside its function.
    BadBlockRef {
        /// Function containing the bad reference.
        func: FuncId,
        /// Block whose terminator is bad.
        block: BlockId,
    },
    /// A call referenced a nonexistent function.
    BadFuncRef {
        /// Function containing the call.
        func: FuncId,
    },
    /// `main` contains a `Return`, or a non-main function contains `Halt`.
    WrongTerminator {
        /// Offending function.
        func: FuncId,
        /// Offending block.
        block: BlockId,
    },
    /// The module's `main` index is out of range.
    BadMain,
    /// A function has no blocks.
    EmptyFunction {
        /// Offending function.
        func: FuncId,
    },
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::BadBlockRef { func, block } => {
                write!(f, "function f{} block {block} references a nonexistent block", func.0)
            }
            ValidationError::BadFuncRef { func } => {
                write!(f, "function f{} calls a nonexistent function", func.0)
            }
            ValidationError::WrongTerminator { func, block } => {
                write!(f, "function f{} block {block} has a terminator invalid for its role", func.0)
            }
            ValidationError::BadMain => write!(f, "main function index out of range"),
            ValidationError::EmptyFunction { func } => write!(f, "function f{} has no blocks", func.0),
        }
    }
}

impl Error for ValidationError {}

/// A whole program: functions plus the index of `main`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Module {
    funcs: Vec<Function>,
    main: FuncId,
}

impl Module {
    /// Creates and validates a module.
    ///
    /// # Errors
    ///
    /// Returns a [`ValidationError`] describing the first structural problem
    /// found (dangling block/function references, wrong terminators, empty
    /// functions).
    pub fn new(funcs: Vec<Function>, main: u32) -> Result<Module, ValidationError> {
        if (main as usize) >= funcs.len() {
            return Err(ValidationError::BadMain);
        }
        let nfuncs = funcs.len();
        for (fi, func) in funcs.iter().enumerate() {
            let fid = FuncId(fi as u32);
            if func.blocks.is_empty() {
                return Err(ValidationError::EmptyFunction { func: fid });
            }
            for (bi, block) in func.blocks.iter().enumerate() {
                let bid = BlockId(bi as u32);
                for s in block.term.successors() {
                    if (s.0 as usize) >= func.blocks.len() {
                        return Err(ValidationError::BadBlockRef { func: fid, block: bid });
                    }
                }
                let is_main = fi as u32 == main;
                match block.term {
                    Terminator::Return if is_main => {
                        return Err(ValidationError::WrongTerminator { func: fid, block: bid })
                    }
                    Terminator::Halt if !is_main => {
                        return Err(ValidationError::WrongTerminator { func: fid, block: bid })
                    }
                    _ => {}
                }
                for insn in &block.insns {
                    if let BodyInsn::Call { func: callee } = insn {
                        if (callee.0 as usize) >= nfuncs {
                            return Err(ValidationError::BadFuncRef { func: fid });
                        }
                    }
                }
            }
        }
        Ok(Module {
            funcs,
            main: FuncId(main),
        })
    }

    /// All functions.
    #[must_use]
    pub fn funcs(&self) -> &[Function] {
        &self.funcs
    }

    /// The function with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn func(&self, id: FuncId) -> &Function {
        &self.funcs[id.0 as usize]
    }

    /// The entry function.
    #[must_use]
    pub fn main(&self) -> FuncId {
        self.main
    }
}

impl fmt::Display for Module {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (fi, func) in self.funcs.iter().enumerate() {
            writeln!(f, "fn f{} \"{}\":", fi, func.name)?;
            for (bi, block) in func.blocks.iter().enumerate() {
                writeln!(f, "  bb{bi}:")?;
                for insn in &block.insns {
                    writeln!(f, "    {insn}")?;
                }
                match block.term {
                    Terminator::Jump(b) => writeln!(f, "    jump {b}")?,
                    Terminator::Branch { cond, taken, fall } => {
                        writeln!(f, "    if {cond} goto {taken} else {fall}")?
                    }
                    Terminator::Return => writeln!(f, "    return")?,
                    Terminator::Halt => writeln!(f, "    halt")?,
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial_block(term: Terminator) -> Block {
        Block {
            insns: vec![],
            term,
        }
    }

    #[test]
    fn validation_catches_dangling_block() {
        let f = Function {
            name: "main".into(),
            blocks: vec![trivial_block(Terminator::Jump(BlockId(5)))],
        };
        assert!(matches!(
            Module::new(vec![f], 0),
            Err(ValidationError::BadBlockRef { .. })
        ));
    }

    #[test]
    fn validation_catches_return_in_main() {
        let f = Function {
            name: "main".into(),
            blocks: vec![trivial_block(Terminator::Return)],
        };
        assert!(matches!(
            Module::new(vec![f], 0),
            Err(ValidationError::WrongTerminator { .. })
        ));
    }

    #[test]
    fn validation_catches_bad_call() {
        let f = Function {
            name: "main".into(),
            blocks: vec![Block {
                insns: vec![BodyInsn::Call { func: FuncId(3) }],
                term: Terminator::Halt,
            }],
        };
        assert!(matches!(
            Module::new(vec![f], 0),
            Err(ValidationError::BadFuncRef { .. })
        ));
    }

    #[test]
    fn predecessors_and_backward_edges() {
        use wishbranch_isa::{CmpOp, Gpr, Operand};
        let cond = Cond {
            op: CmpOp::Lt,
            lhs: Gpr::new(1),
            rhs: Operand::imm(10),
        };
        // bb0 -> bb1; bb1 -> (bb1 taken | bb2 fall): a self-loop latch.
        let f = Function {
            name: "main".into(),
            blocks: vec![
                trivial_block(Terminator::Jump(BlockId(1))),
                trivial_block(Terminator::Branch {
                    cond,
                    taken: BlockId(1),
                    fall: BlockId(2),
                }),
                trivial_block(Terminator::Halt),
            ],
        };
        let preds = f.predecessors();
        assert_eq!(preds[1], vec![BlockId(0), BlockId(1)]);
        assert!(f.is_backward_edge(BlockId(1), BlockId(1)));
        assert!(!f.is_backward_edge(BlockId(1), BlockId(2)));
        let m = Module::new(vec![f], 0).unwrap();
        assert!(m.to_string().contains("if r1 lt 10 goto bb1 else bb2"));
    }
}
