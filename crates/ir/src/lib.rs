//! # wishbranch-ir
//!
//! A small control-flow-graph intermediate representation, standing in for
//! the source-level view the ORC compiler has in the paper.
//!
//! Workload programs (crate `wishbranch-workloads`) are written in this IR;
//! the compiler (crate `wishbranch-compiler`) lowers it to µops in the five
//! binary variants of the paper's Table 3 (normal branches, BASE-DEF,
//! BASE-MAX, wish jump/join, wish jump/join/loop).
//!
//! The IR deliberately uses *architectural* registers ([`wishbranch_isa::Gpr`])
//! rather than SSA virtual registers: the interesting compilation problem in
//! this reproduction is if-conversion and wish-branch generation, not
//! register allocation. Predicate registers are invisible at the IR level —
//! they are allocated by if-conversion.
//!
//! The crate also provides a reference [`Interpreter`] that executes modules
//! directly. It serves two purposes:
//!
//! 1. **profiling** — edge counts feed the compiler's cost model
//!    (Equations 4.1–4.3 of the paper);
//! 2. **oracle** — the cycle simulator's retired architectural state must
//!    match the interpreter's final state for every binary variant, which is
//!    the backbone of the test suite.
//!
//! # Example
//!
//! ```
//! use wishbranch_ir::{FunctionBuilder, Module, Interpreter, Cond};
//! use wishbranch_isa::{AluOp, CmpOp, Gpr, Operand};
//!
//! let r1 = Gpr::new(1);
//! let mut f = FunctionBuilder::new("main");
//! let entry = f.entry_block();
//! let done = f.new_block();
//! f.select(entry);
//! f.movi(r1, 41);
//! f.alu(AluOp::Add, r1, r1, Operand::imm(1));
//! f.jump(done);
//! f.select(done);
//! f.halt();
//! let module = Module::new(vec![f.build()], 0).unwrap();
//!
//! let mut interp = Interpreter::new();
//! let result = interp.run(&module, 1_000).unwrap();
//! assert_eq!(result.regs[1], 42);
//! # let _ = Cond { op: CmpOp::Eq, lhs: r1, rhs: Operand::imm(0) };
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod build;
mod interp;
mod module;

pub use build::FunctionBuilder;
pub use interp::{BranchSiteProfile, Interpreter, Profile, RunError, RunResult};
pub use module::{
    BlockId, BodyInsn, Block, Cond, FuncId, Function, Module, Terminator, ValidationError,
};
