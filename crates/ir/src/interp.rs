//! Reference interpreter and profiler for IR modules.

use crate::module::{BlockId, BodyInsn, FuncId, Module, Terminator};
use std::collections::{BTreeMap, HashMap};
use std::error::Error;
use std::fmt;
use wishbranch_isa::{Gpr, NUM_GPRS};

/// Per-branch-site profile collected during interpretation.
///
/// Besides raw edge counts, the profiler runs a small embedded gshare
/// predictor and records its mispredictions; this is the "estimated branch
/// misprediction rate" input to the compiler's cost model (§4.2.1). The
/// compiler never sees run-time hardware state — only this profile, exactly
/// like the ORC compiler's profile-guided heuristics.
#[derive(Clone, Copy, PartialEq, Eq, Default, Debug)]
pub struct BranchSiteProfile {
    /// Times the branch was taken.
    pub taken: u64,
    /// Times it fell through.
    pub not_taken: u64,
    /// Mispredictions by the profiler's embedded predictor.
    pub est_mispredicts: u64,
}

impl BranchSiteProfile {
    /// Total executions.
    #[must_use]
    pub fn executions(&self) -> u64 {
        self.taken + self.not_taken
    }

    /// Probability the branch is taken (0 when never executed).
    #[must_use]
    pub fn p_taken(&self) -> f64 {
        let n = self.executions();
        if n == 0 {
            0.0
        } else {
            self.taken as f64 / n as f64
        }
    }

    /// Estimated misprediction probability (0 when never executed).
    #[must_use]
    pub fn p_mispredict(&self) -> f64 {
        let n = self.executions();
        if n == 0 {
            0.0
        } else {
            self.est_mispredicts as f64 / n as f64
        }
    }
}

/// Whole-program profile keyed by branch site.
pub type Profile = HashMap<(FuncId, BlockId), BranchSiteProfile>;

/// Errors from [`Interpreter::run`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RunError {
    /// The step budget was exhausted before `halt`.
    StepLimitExceeded {
        /// The configured limit.
        limit: u64,
    },
    /// Call nesting exceeded the interpreter's limit.
    CallDepthExceeded,
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::StepLimitExceeded { limit } => {
                write!(f, "program did not halt within {limit} IR steps")
            }
            RunError::CallDepthExceeded => write!(f, "call depth limit exceeded"),
        }
    }
}

impl Error for RunError {}

/// The architectural outcome of a run.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RunResult {
    /// Dynamic IR instructions executed (bodies + terminators).
    pub steps: u64,
    /// Final register file.
    pub regs: [i64; NUM_GPRS],
    /// Final data memory (sorted for deterministic comparison).
    pub mem: BTreeMap<u64, i64>,
    /// Branch profile collected along the way.
    pub profile: Profile,
}

impl RunResult {
    /// FNV-1a digest of the final memory image, for quick equivalence
    /// assertions in tests.
    #[must_use]
    pub fn mem_digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for (k, v) in &self.mem {
            for b in k.to_le_bytes().into_iter().chain(v.to_le_bytes()) {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        h
    }
}

const CALL_DEPTH_LIMIT: usize = 64;
const PROFILER_PHT_BITS: u32 = 12;

/// Executes IR modules directly, with architectural semantics identical to
/// the compiled µop programs (the test suite enforces this).
///
/// Memory is a sparse map of 64-bit addresses to 64-bit values; the
/// interpreter and the µop machine both index memory by exact address, so
/// programs that use 8-byte strides behave identically in both.
#[derive(Clone, Debug)]
pub struct Interpreter {
    /// Register file; pre-set before [`Interpreter::run`] to pass inputs.
    pub regs: [i64; NUM_GPRS],
    /// Data memory; pre-populate before [`Interpreter::run`] with input
    /// arrays.
    pub mem: HashMap<u64, i64>,
    // Embedded profiler predictor state.
    pht: Vec<u8>,
    ghr: u64,
}

impl Default for Interpreter {
    fn default() -> Self {
        Self::new()
    }
}

impl Interpreter {
    /// Creates an interpreter with zeroed registers and empty memory.
    #[must_use]
    pub fn new() -> Interpreter {
        Interpreter {
            regs: [0; NUM_GPRS],
            mem: HashMap::new(),
            pht: vec![2; 1 << PROFILER_PHT_BITS],
            ghr: 0,
        }
    }

    fn reg(&self, r: Gpr) -> i64 {
        self.regs[r.index()]
    }

    fn operand(&self, op: wishbranch_isa::Operand) -> i64 {
        match op {
            wishbranch_isa::Operand::Reg(r) => self.reg(r),
            wishbranch_isa::Operand::Imm(i) => i64::from(i),
        }
    }

    fn profile_predict(&mut self, site: u64, taken: bool) -> bool {
        let idx = ((site ^ self.ghr) as usize) & (self.pht.len() - 1);
        let pred = self.pht[idx] >= 2;
        if taken {
            if self.pht[idx] < 3 {
                self.pht[idx] += 1;
            }
        } else if self.pht[idx] > 0 {
            self.pht[idx] -= 1;
        }
        self.ghr = (self.ghr << 1) | u64::from(taken);
        pred != taken
    }

    /// Runs the module to `halt`, returning the architectural outcome and
    /// profile.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::StepLimitExceeded`] if `max_steps` IR
    /// instructions execute without halting, or
    /// [`RunError::CallDepthExceeded`] on runaway recursion.
    pub fn run(&mut self, module: &Module, max_steps: u64) -> Result<RunResult, RunError> {
        let mut steps: u64 = 0;
        let mut profile: Profile = HashMap::new();
        self.exec_func(module, module.main(), max_steps, &mut steps, &mut profile, 0)?;
        Ok(RunResult {
            steps,
            regs: self.regs,
            mem: self.mem.iter().map(|(&k, &v)| (k, v)).collect(),
            profile,
        })
    }

    fn exec_func(
        &mut self,
        module: &Module,
        fid: FuncId,
        max_steps: u64,
        steps: &mut u64,
        profile: &mut Profile,
        depth: usize,
    ) -> Result<(), RunError> {
        if depth >= CALL_DEPTH_LIMIT {
            return Err(RunError::CallDepthExceeded);
        }
        let func = module.func(fid);
        let mut bid = BlockId(0);
        loop {
            let block = func.block(bid);
            for insn in &block.insns {
                *steps += 1;
                if *steps > max_steps {
                    return Err(RunError::StepLimitExceeded { limit: max_steps });
                }
                match *insn {
                    BodyInsn::Alu {
                        op,
                        dst,
                        src1,
                        src2,
                    } => {
                        let v = op.apply(self.reg(src1), self.operand(src2));
                        self.regs[dst.index()] = v;
                    }
                    BodyInsn::MovImm { dst, imm } => self.regs[dst.index()] = imm,
                    BodyInsn::Load { dst, base, offset } => {
                        let addr = (self.reg(base)).wrapping_add(i64::from(offset)) as u64;
                        self.regs[dst.index()] = self.mem.get(&addr).copied().unwrap_or(0);
                    }
                    BodyInsn::Store { src, base, offset } => {
                        let addr = (self.reg(base)).wrapping_add(i64::from(offset)) as u64;
                        self.mem.insert(addr, self.reg(src));
                    }
                    BodyInsn::Call { func: callee } => {
                        self.exec_func(module, callee, max_steps, steps, profile, depth + 1)?;
                    }
                }
            }
            *steps += 1;
            if *steps > max_steps {
                return Err(RunError::StepLimitExceeded { limit: max_steps });
            }
            match block.term {
                Terminator::Jump(next) => bid = next,
                Terminator::Branch { cond, taken, fall } => {
                    let is_taken = cond.op.apply(self.reg(cond.lhs), self.operand(cond.rhs));
                    let site = (u64::from(fid.0) << 32) | u64::from(bid.0);
                    let mispredicted = self.profile_predict(site, is_taken);
                    let entry = profile.entry((fid, bid)).or_default();
                    if is_taken {
                        entry.taken += 1;
                    } else {
                        entry.not_taken += 1;
                    }
                    if mispredicted {
                        entry.est_mispredicts += 1;
                    }
                    bid = if is_taken { taken } else { fall };
                }
                Terminator::Return | Terminator::Halt => return Ok(()),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::FunctionBuilder;
    use wishbranch_isa::{AluOp, CmpOp, Operand};

    fn r(i: u8) -> Gpr {
        Gpr::new(i)
    }

    /// sum = Σ_{i=0}^{9} i, stored to mem[1000].
    fn sum_module() -> Module {
        let mut f = FunctionBuilder::new("main");
        let entry = f.entry_block();
        let body = f.new_block();
        let exit = f.new_block();
        f.select(entry);
        f.movi(r(1), 0); // i
        f.movi(r(2), 0); // sum
        f.movi(r(3), 1000); // &out
        f.jump(body);
        f.select(body);
        f.alu(AluOp::Add, r(2), r(2), Operand::reg(1));
        f.alu(AluOp::Add, r(1), r(1), Operand::imm(1));
        f.branch(CmpOp::Lt, r(1), Operand::imm(10), body, exit);
        f.select(exit);
        f.store(r(2), r(3), 0);
        f.halt();
        Module::new(vec![f.build()], 0).unwrap()
    }

    #[test]
    fn sum_loop_executes_correctly() {
        let mut i = Interpreter::new();
        let res = i.run(&sum_module(), 10_000).unwrap();
        assert_eq!(res.mem.get(&1000), Some(&45));
        assert_eq!(res.regs[1], 10);
    }

    #[test]
    fn profile_counts_loop_branch() {
        let mut i = Interpreter::new();
        let res = i.run(&sum_module(), 10_000).unwrap();
        let p = res.profile[&(FuncId(0), BlockId(1))];
        assert_eq!(p.taken, 9);
        assert_eq!(p.not_taken, 1);
        assert!((p.p_taken() - 0.9).abs() < 1e-9);
    }

    #[test]
    fn step_limit_enforced() {
        let mut f = FunctionBuilder::new("main");
        let e = f.entry_block();
        f.select(e);
        f.jump(e); // infinite loop
        let m = Module::new(vec![f.build()], 0).unwrap();
        let mut i = Interpreter::new();
        assert!(matches!(
            i.run(&m, 100),
            Err(RunError::StepLimitExceeded { limit: 100 })
        ));
    }

    #[test]
    fn call_executes_callee() {
        // f1 doubles r1; main calls it twice.
        let mut callee = FunctionBuilder::new("double");
        let e = callee.entry_block();
        callee.select(e);
        callee.alu(AluOp::Mul, r(1), r(1), Operand::imm(2));
        callee.ret();

        let mut main = FunctionBuilder::new("main");
        let e = main.entry_block();
        main.select(e);
        main.movi(r(1), 3);
        main.call(FuncId(1));
        main.call(FuncId(1));
        main.halt();

        let m = Module::new(vec![main.build(), callee.build()], 0).unwrap();
        let mut i = Interpreter::new();
        let res = i.run(&m, 1000).unwrap();
        assert_eq!(res.regs[1], 12);
    }

    #[test]
    fn recursion_depth_limited() {
        let mut f0 = FunctionBuilder::new("main");
        let e = f0.entry_block();
        f0.select(e);
        f0.call(FuncId(1));
        f0.halt();
        let mut f1 = FunctionBuilder::new("rec");
        let e = f1.entry_block();
        f1.select(e);
        f1.call(FuncId(1));
        f1.ret();
        let m = Module::new(vec![f0.build(), f1.build()], 0).unwrap();
        let mut i = Interpreter::new();
        assert_eq!(i.run(&m, 1 << 30), Err(RunError::CallDepthExceeded));
    }

    #[test]
    fn mem_digest_distinguishes_states() {
        let mut a = Interpreter::new();
        let ra = a.run(&sum_module(), 10_000).unwrap();
        let mut b = Interpreter::new();
        b.mem.insert(1000, 7); // overwritten by the program
        let rb = b.run(&sum_module(), 10_000).unwrap();
        assert_eq!(ra.mem_digest(), rb.mem_digest());
        let mut c = Interpreter::new();
        c.mem.insert(2000, 7); // survives
        let rc = c.run(&sum_module(), 10_000).unwrap();
        assert_ne!(ra.mem_digest(), rc.mem_digest());
    }

    #[test]
    fn predictable_branch_has_low_estimated_mispredict_rate() {
        let mut i = Interpreter::new();
        let res = i.run(&sum_module(), 10_000).unwrap();
        let p = res.profile[&(FuncId(0), BlockId(1))];
        // 10-iteration loop executed once: the embedded predictor can only
        // be wrong a couple of times.
        assert!(p.est_mispredicts <= 3);
    }
}
