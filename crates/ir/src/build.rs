//! Ergonomic construction of IR functions for the workload crate.

use crate::module::{Block, BlockId, BodyInsn, Cond, FuncId, Function, Terminator};
use wishbranch_isa::{AluOp, CmpOp, Gpr, Operand};

/// Builds one [`Function`] block by block.
///
/// Blocks are created with [`FunctionBuilder::new_block`], selected with
/// [`FunctionBuilder::select`], filled with instruction helpers, and closed
/// with a terminator helper. Blocks should be created in program order so
/// that loop back-edges target earlier blocks (the convention the compiler's
/// loop detector relies on).
#[derive(Debug)]
pub struct FunctionBuilder {
    name: String,
    blocks: Vec<Option<Block>>,
    pending: Vec<Vec<BodyInsn>>,
    current: Option<BlockId>,
}

impl FunctionBuilder {
    /// Starts a function with an (unselected) entry block `bb0`.
    #[must_use]
    pub fn new(name: impl Into<String>) -> FunctionBuilder {
        FunctionBuilder {
            name: name.into(),
            blocks: vec![None],
            pending: vec![Vec::new()],
            current: None,
        }
    }

    /// The entry block id (`bb0`).
    #[must_use]
    pub fn entry_block(&self) -> BlockId {
        BlockId(0)
    }

    /// Creates a new, empty block and returns its id.
    pub fn new_block(&mut self) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(None);
        self.pending.push(Vec::new());
        id
    }

    /// Makes `block` the insertion point for subsequent instructions.
    ///
    /// # Panics
    ///
    /// Panics if the block was already terminated.
    pub fn select(&mut self, block: BlockId) {
        assert!(
            self.blocks[block.0 as usize].is_none(),
            "{block} already terminated"
        );
        self.current = Some(block);
    }

    fn cur(&mut self) -> &mut Vec<BodyInsn> {
        let c = self.current.expect("no block selected");
        &mut self.pending[c.0 as usize]
    }

    /// Appends `dst = src1 <op> src2`.
    pub fn alu(&mut self, op: AluOp, dst: Gpr, src1: Gpr, src2: Operand) {
        self.cur().push(BodyInsn::Alu {
            op,
            dst,
            src1,
            src2,
        });
    }

    /// Appends `dst = imm`.
    pub fn movi(&mut self, dst: Gpr, imm: i64) {
        self.cur().push(BodyInsn::MovImm { dst, imm });
    }

    /// Appends `dst = src` (as `add dst = src, 0`).
    pub fn mov(&mut self, dst: Gpr, src: Gpr) {
        self.alu(AluOp::Add, dst, src, Operand::imm(0));
    }

    /// Appends `dst = mem[base + offset]`.
    pub fn load(&mut self, dst: Gpr, base: Gpr, offset: i32) {
        self.cur().push(BodyInsn::Load { dst, base, offset });
    }

    /// Appends `mem[base + offset] = src`.
    pub fn store(&mut self, src: Gpr, base: Gpr, offset: i32) {
        self.cur().push(BodyInsn::Store { src, base, offset });
    }

    /// Appends a call to function `func`.
    pub fn call(&mut self, func: FuncId) {
        self.cur().push(BodyInsn::Call { func });
    }

    fn terminate(&mut self, term: Terminator) {
        let c = self.current.take().expect("no block selected");
        let insns = std::mem::take(&mut self.pending[c.0 as usize]);
        self.blocks[c.0 as usize] = Some(Block { insns, term });
    }

    /// Ends the current block with an unconditional jump.
    pub fn jump(&mut self, to: BlockId) {
        self.terminate(Terminator::Jump(to));
    }

    /// Ends the current block with `if (lhs op rhs) goto taken else fall`.
    pub fn branch(&mut self, op: CmpOp, lhs: Gpr, rhs: Operand, taken: BlockId, fall: BlockId) {
        self.terminate(Terminator::Branch {
            cond: Cond { op, lhs, rhs },
            taken,
            fall,
        });
    }

    /// Ends the current block with `return`.
    pub fn ret(&mut self) {
        self.terminate(Terminator::Return);
    }

    /// Ends the current block with `halt`.
    pub fn halt(&mut self) {
        self.terminate(Terminator::Halt);
    }

    /// Finishes the function.
    ///
    /// # Panics
    ///
    /// Panics if any created block was never terminated.
    #[must_use]
    pub fn build(self) -> Function {
        let blocks = self
            .blocks
            .into_iter()
            .enumerate()
            .map(|(i, b)| b.unwrap_or_else(|| panic!("bb{i} was never terminated")))
            .collect();
        Function {
            name: self.name,
            blocks,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::Module;

    #[test]
    fn builds_a_loop() {
        let r1 = Gpr::new(1);
        let mut f = FunctionBuilder::new("main");
        let entry = f.entry_block();
        let body = f.new_block();
        let exit = f.new_block();
        f.select(entry);
        f.movi(r1, 0);
        f.jump(body);
        f.select(body);
        f.alu(AluOp::Add, r1, r1, Operand::imm(1));
        f.branch(CmpOp::Lt, r1, Operand::imm(10), body, exit);
        f.select(exit);
        f.halt();
        let func = f.build();
        assert_eq!(func.blocks.len(), 3);
        assert!(func.is_backward_edge(body, body));
        assert!(Module::new(vec![func], 0).is_ok());
    }

    #[test]
    #[should_panic(expected = "never terminated")]
    fn unterminated_block_panics() {
        let mut f = FunctionBuilder::new("main");
        let _ = f.new_block();
        f.select(f.entry_block());
        f.halt();
        let _ = f.build();
    }

    #[test]
    #[should_panic(expected = "already terminated")]
    fn reselecting_terminated_block_panics() {
        let mut f = FunctionBuilder::new("main");
        f.select(f.entry_block());
        f.halt();
        f.select(BlockId(0));
    }
}
