//! Regenerates Fig. 11: dynamic wish jumps/joins per 1M retired µops,
//! classified by confidence estimate and prediction correctness.

use criterion::{criterion_group, criterion_main, Criterion};
use wishbranch_bench::{emit_report, paper_runner, print_sweep_summary, register_kernel};
use wishbranch_core::Experiment;

fn bench(c: &mut Criterion) {
    let runner = paper_runner();
    emit_report(&Experiment::Fig11.run(&runner));
    print_sweep_summary(&runner);
    register_kernel(c, "fig11");
}

criterion_group!(benches, bench);
criterion_main!(benches);
