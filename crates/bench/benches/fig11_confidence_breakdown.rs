//! Regenerates Fig. 11: dynamic wish jumps/joins per 1M retired µops,
//! classified by confidence estimate and prediction correctness.

use criterion::{criterion_group, criterion_main, Criterion};
use wishbranch_bench::{paper_config, register_kernel};
use wishbranch_core::{fig11_table, figure11};

fn bench(c: &mut Criterion) {
    let rows = figure11(&paper_config());
    println!("\n{}", fig11_table(&rows));
    register_kernel(c, "fig11");
}

criterion_group!(benches, bench);
criterion_main!(benches);
