//! Regenerates the Fig. 14-style memory-latency sweep on the non-blocking
//! hierarchy (finite MSHRs, future-cycle fills, store-to-load forwarding).

use criterion::{criterion_group, criterion_main, Criterion};
use wishbranch_bench::{emit_report, paper_runner, print_sweep_summary, register_kernel};
use wishbranch_core::Experiment;

fn bench(c: &mut Criterion) {
    let runner = paper_runner();
    emit_report(&Experiment::Fig14Mem.run(&runner));
    print_sweep_summary(&runner);
    register_kernel(c, "fig14_mem_latency");
}

criterion_group!(benches, bench);
criterion_main!(benches);
