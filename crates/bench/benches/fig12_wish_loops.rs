//! Regenerates Fig. 12: wish jump/join/loop binaries vs all baselines —
//! the paper's headline result (14.2% over normal branches).

use criterion::{criterion_group, criterion_main, Criterion};
use wishbranch_bench::{emit_report, paper_runner, print_sweep_summary, register_kernel};
use wishbranch_core::Experiment;

fn bench(c: &mut Criterion) {
    let runner = paper_runner();
    emit_report(&Experiment::Fig12.run(&runner));
    print_sweep_summary(&runner);
    register_kernel(c, "fig12");
}

criterion_group!(benches, bench);
criterion_main!(benches);
