//! Regenerates Fig. 12: wish jump/join/loop binaries vs all baselines —
//! the paper's headline result (14.2% over normal branches).

use criterion::{criterion_group, criterion_main, Criterion};
use wishbranch_bench::{paper_config, register_kernel};
use wishbranch_core::{figure12, Table};

fn bench(c: &mut Criterion) {
    let fig = figure12(&paper_config());
    println!("\n{}", Table::from(&fig));
    register_kernel(c, "fig12");
}

criterion_group!(benches, bench);
criterion_main!(benches);
