//! Regenerates Fig. 12: wish jump/join/loop binaries vs all baselines —
//! the paper's headline result (14.2% over normal branches).

use criterion::{criterion_group, criterion_main, Criterion};
use wishbranch_bench::{paper_runner, print_sweep_summary, register_kernel};
use wishbranch_core::{figure12_on, Table};

fn bench(c: &mut Criterion) {
    let runner = paper_runner();
    let fig = figure12_on(&runner);
    println!("\n{}", Table::from(&fig));
    print_sweep_summary(&runner);
    register_kernel(c, "fig12");
}

criterion_group!(benches, bench);
criterion_main!(benches);
