//! Ablation: the compiler's wish-conversion threshold N (§4.2.2, untuned
//! at 5 in the paper).

use criterion::{criterion_group, criterion_main, Criterion};
use wishbranch_bench::{paper_runner, print_sweep_summary, register_kernel};
use wishbranch_core::wish_threshold_sweep_on;

fn bench(c: &mut Criterion) {
    let runner = paper_runner();
    let points = wish_threshold_sweep_on(&runner, &[0, 3, 5, 9, 15]);
    println!("\nAblation: wish-jump threshold N vs avg wish-jjl exec time (normalized)");
    println!("{:>10} {:>14}", "N", "avg exec time");
    for p in &points {
        println!("{:>10} {:>14.3}", p.param, p.avg_normalized);
    }
    print_sweep_summary(&runner);
    register_kernel(c, "abl_thresholds");
}

criterion_group!(benches, bench);
criterion_main!(benches);
