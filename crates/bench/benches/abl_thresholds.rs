//! Ablation: the compiler's wish-conversion threshold N (§4.2.2, untuned
//! at 5 in the paper).

use criterion::{criterion_group, criterion_main, Criterion};
use wishbranch_bench::{emit_report, paper_runner, print_sweep_summary, register_kernel};
use wishbranch_core::{wish_threshold_sweep, Report};

fn bench(c: &mut Criterion) {
    let runner = paper_runner();
    let points = wish_threshold_sweep(&runner, &[0, 3, 5, 9, 15]);
    emit_report(&Report::ablation(
        "abl_thresholds",
        "Ablation: wish-jump threshold N vs avg wish-jjl exec time (normalized)",
        "N",
        points,
    ));
    print_sweep_summary(&runner);
    register_kernel(c, "abl_thresholds");
}

criterion_group!(benches, bench);
criterion_main!(benches);
