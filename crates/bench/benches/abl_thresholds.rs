//! Ablation: the compiler's wish-conversion threshold N (§4.2.2, untuned
//! at 5 in the paper).

use criterion::{criterion_group, criterion_main, Criterion};
use wishbranch_bench::{emit_report, paper_runner, print_sweep_summary, register_kernel};
use wishbranch_core::Experiment;

fn bench(c: &mut Criterion) {
    let runner = paper_runner();
    emit_report(&Experiment::AblThresholds.run(&runner));
    print_sweep_summary(&runner);
    register_kernel(c, "abl_thresholds");
}

criterion_group!(benches, bench);
criterion_main!(benches);
