//! The `perf-smoke` throughput gate: runs the Fig. 10 sweep at a fixed
//! scale on one worker, writes `BENCH_sim_throughput.json`
//! (`wishbranch.throughput/v1`: cycles/s, µops/s, per-phase wall-clock),
//! and fails if simulator throughput regressed more than
//! [`MAX_REGRESSION`] against the committed baseline
//! (`crates/bench/perf_baseline.json`).
//!
//! Environment:
//! - `WISHBRANCH_THROUGHPUT_OUT` — where to write the artifact
//!   (default `BENCH_sim_throughput.json` in the working directory);
//! - `WISHBRANCH_PERF_WRITE_BASELINE=1` — overwrite the committed
//!   baseline with this run's numbers instead of gating (run on the
//!   reference machine after an intentional perf change).

use wishbranch_core::{throughput_json, Experiment, ExperimentConfig, SweepRunner};

/// Fixed workload scale: big enough that simulate-phase time dominates
/// process noise, small enough for a smoke job.
const SCALE: i32 = 1000;

/// Allowed throughput loss vs the committed baseline (the ISSUE's 25%).
const MAX_REGRESSION: f64 = 0.25;

/// The committed baseline, resolved relative to this crate so the gate
/// works from any working directory.
fn baseline_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("perf_baseline.json")
}

/// Extracts a numeric field from one of our flat JSON documents. The
/// writer is ours ([`throughput_json`]), so a string scan is exact.
fn json_number(doc: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = doc.find(&needle)? + needle.len();
    let rest = &doc[at..];
    let end = rest
        .find(|c: char| c != '-' && c != '.' && !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn main() {
    let ec = ExperimentConfig::paper(SCALE);
    let runner = SweepRunner::with_workers(&ec, 1);
    let report = Experiment::Fig10.run(&runner);
    println!("{}", report.render());
    let failures = runner.failures();
    assert!(failures.is_empty(), "perf-smoke jobs failed: {failures:?}");
    let summary = runner.summary();
    let doc = throughput_json(&summary);

    let out = std::env::var("WISHBRANCH_THROUGHPUT_OUT")
        .unwrap_or_else(|_| "BENCH_sim_throughput.json".into());
    std::fs::write(&out, format!("{doc}\n")).unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
    println!(
        "perf-smoke: {} jobs, {:.0} cycles/s, {:.0} uops/s (simulate {:.2}s) -> {out}",
        summary.jobs,
        summary.cycles_per_sec(),
        summary.uops_per_sec(),
        summary.simulate_time.as_secs_f64(),
    );

    let baseline = baseline_path();
    if std::env::var("WISHBRANCH_PERF_WRITE_BASELINE").as_deref() == Ok("1") {
        std::fs::write(&baseline, format!("{doc}\n"))
            .unwrap_or_else(|e| panic!("cannot write {}: {e}", baseline.display()));
        println!("perf-smoke: baseline rewritten at {}", baseline.display());
        return;
    }
    let base_doc = std::fs::read_to_string(&baseline)
        .unwrap_or_else(|e| panic!("no committed baseline at {}: {e}", baseline.display()));
    let base_uops = json_number(&base_doc, "uops_per_sec").expect("baseline uops_per_sec");
    let got_uops = summary.uops_per_sec();
    let floor = base_uops * (1.0 - MAX_REGRESSION);
    println!(
        "perf-smoke: baseline {base_uops:.0} uops/s, floor {floor:.0}, measured {got_uops:.0}"
    );
    assert!(
        got_uops >= floor,
        "simulator throughput regressed >{:.0}%: {got_uops:.0} uops/s vs \
         baseline {base_uops:.0} (floor {floor:.0})",
        MAX_REGRESSION * 100.0
    );
    println!("perf-smoke: PASS");
}
