//! The `perf-smoke` throughput gate: runs the Fig. 10 sweep at a fixed
//! scale on one worker twice — once on the scalar path, once with the
//! lockstep batch engine — writes `BENCH_sim_throughput.json`
//! (`wishbranch.throughput/v1` for the scalar run plus the flat
//! `batch_uops_per_sec` / `batch_width` / `batch_speedup` dimension from
//! the batched run), and fails if either path's simulator throughput
//! regressed more than [`MAX_REGRESSION`] against the committed baseline
//! (`crates/bench/perf_baseline.json`).
//!
//! Environment:
//! - `WISHBRANCH_THROUGHPUT_OUT` — where to write the artifact
//!   (default `BENCH_sim_throughput.json` in the working directory);
//! - `WISHBRANCH_PERF_WRITE_BASELINE=1` — overwrite the committed
//!   baseline with this run's numbers instead of gating (run on the
//!   reference machine after an intentional perf change).

use wishbranch_core::{throughput_json, Experiment, ExperimentConfig, SweepRunner};

/// Fixed workload scale: big enough that simulate-phase time dominates
/// process noise, small enough for a smoke job.
const SCALE: i32 = 1000;

/// Lockstep lanes for the batched measurement (one Fig. 10 compile group
/// is 9 benches wide at default width, so 8 keeps one straggler on the
/// scalar path — the same shape real sweeps see).
const BATCH: usize = 8;

/// Allowed throughput loss vs the committed baseline (the ISSUE's 25%).
const MAX_REGRESSION: f64 = 0.25;

/// The committed baseline, resolved relative to this crate so the gate
/// works from any working directory.
fn baseline_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("perf_baseline.json")
}

/// Extracts a numeric field from one of our flat JSON documents. The
/// writer is ours ([`throughput_json`]), so a string scan is exact.
fn json_number(doc: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = doc.find(&needle)? + needle.len();
    let rest = &doc[at..];
    let end = rest
        .find(|c: char| c != '-' && c != '.' && !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Runs the Fig. 10 sweep on a fresh single-worker runner with the given
/// batch width and returns its summary. A fresh runner per measurement
/// keeps the two passes independent: no journal or compile-cache warmth
/// leaks from one into the other beyond what both equally enjoy.
fn measure(ec: &ExperimentConfig, batch: usize) -> wishbranch_core::SweepSummary {
    let mut runner = SweepRunner::with_workers(ec, 1);
    runner.set_batch(batch);
    let report = Experiment::Fig10.run(&runner);
    if batch <= 1 {
        println!("{}", report.render());
    }
    let failures = runner.failures();
    assert!(failures.is_empty(), "perf-smoke jobs failed: {failures:?}");
    runner.summary()
}

fn main() {
    let ec = ExperimentConfig::paper(SCALE);
    let scalar = measure(&ec, 1);
    let batched = measure(&ec, BATCH);
    assert!(
        batched.batched_jobs > 0,
        "batched pass planned no batches: {batched:?}"
    );

    let s_uops = scalar.uops_per_sec();
    let b_uops = batched.uops_per_sec();
    let speedup = b_uops / s_uops;
    let base = throughput_json(&scalar);
    let doc = format!(
        "{},\"batch_uops_per_sec\":{:.6},\"batch_width\":{},\"batch_speedup\":{:.6}}}",
        base.strip_suffix('}').expect("throughput_json is an object"),
        b_uops,
        BATCH,
        speedup,
    );

    let out = std::env::var("WISHBRANCH_THROUGHPUT_OUT")
        .unwrap_or_else(|_| "BENCH_sim_throughput.json".into());
    std::fs::write(&out, format!("{doc}\n")).unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
    println!(
        "perf-smoke: {} jobs, scalar {:.0} uops/s (simulate {:.2}s) | \
         batch={BATCH} {:.0} uops/s (simulate {:.2}s, {} lanes batched) | \
         speedup {speedup:.2}x -> {out}",
        scalar.jobs,
        s_uops,
        scalar.simulate_time.as_secs_f64(),
        b_uops,
        batched.simulate_time.as_secs_f64(),
        batched.batched_jobs,
    );

    let baseline = baseline_path();
    if std::env::var("WISHBRANCH_PERF_WRITE_BASELINE").as_deref() == Ok("1") {
        std::fs::write(&baseline, format!("{doc}\n"))
            .unwrap_or_else(|e| panic!("cannot write {}: {e}", baseline.display()));
        println!("perf-smoke: baseline rewritten at {}", baseline.display());
        return;
    }
    let base_doc = std::fs::read_to_string(&baseline)
        .unwrap_or_else(|e| panic!("no committed baseline at {}: {e}", baseline.display()));

    let mut pass = true;
    let mut gate = |label: &str, measured: f64, base_key: &str| {
        let Some(base_rate) = json_number(&base_doc, base_key) else {
            println!("perf-smoke: baseline has no {base_key}; skipping the {label} gate");
            return;
        };
        let floor = base_rate * (1.0 - MAX_REGRESSION);
        println!(
            "perf-smoke: {label} baseline {base_rate:.0} uops/s, floor {floor:.0}, \
             measured {measured:.0}"
        );
        if measured < floor {
            pass = false;
            eprintln!(
                "perf-smoke: {label} throughput regressed >{:.0}%: {measured:.0} uops/s vs \
                 baseline {base_rate:.0} (floor {floor:.0})",
                MAX_REGRESSION * 100.0
            );
        }
    };
    gate("scalar", s_uops, "uops_per_sec");
    gate("batched", b_uops, "batch_uops_per_sec");
    assert!(pass, "perf-smoke throughput gate failed");
    println!("perf-smoke: PASS");
}
