//! Regenerates Fig. 14: the instruction-window sweep (128/256/512).

use criterion::{criterion_group, criterion_main, Criterion};
use wishbranch_bench::{paper_config, register_kernel};
use wishbranch_core::{figure14, sweep_table};

fn bench(c: &mut Criterion) {
    let rows = figure14(&paper_config());
    println!("\n{}", sweep_table("Fig.14: instruction window sweep", "window", &rows));
    register_kernel(c, "fig14");
}

criterion_group!(benches, bench);
criterion_main!(benches);
