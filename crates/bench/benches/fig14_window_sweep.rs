//! Regenerates Fig. 14: the instruction-window sweep (128/256/512).

use criterion::{criterion_group, criterion_main, Criterion};
use wishbranch_bench::{paper_runner, print_sweep_summary, register_kernel};
use wishbranch_core::{figure14_on, sweep_table};

fn bench(c: &mut Criterion) {
    let runner = paper_runner();
    let rows = figure14_on(&runner);
    println!("\n{}", sweep_table("Fig.14: instruction window sweep", "window", &rows));
    print_sweep_summary(&runner);
    register_kernel(c, "fig14");
}

criterion_group!(benches, bench);
criterion_main!(benches);
