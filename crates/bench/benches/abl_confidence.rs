//! Ablation: JRS confidence threshold sweep (§3.5.5 — "an accurate
//! confidence estimator is essential to maximize the benefits of wish
//! branches").

use criterion::{criterion_group, criterion_main, Criterion};
use wishbranch_bench::{emit_report, paper_runner, print_sweep_summary, register_kernel};
use wishbranch_core::Experiment;

fn bench(c: &mut Criterion) {
    let runner = paper_runner();
    emit_report(&Experiment::AblConfidence.run(&runner));
    print_sweep_summary(&runner);
    register_kernel(c, "abl_confidence");
}

criterion_group!(benches, bench);
criterion_main!(benches);
