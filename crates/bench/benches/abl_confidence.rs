//! Ablation: JRS confidence threshold sweep (§3.5.5 — "an accurate
//! confidence estimator is essential to maximize the benefits of wish
//! branches").

use criterion::{criterion_group, criterion_main, Criterion};
use wishbranch_bench::{paper_runner, print_sweep_summary, register_kernel};
use wishbranch_core::confidence_threshold_sweep_on;

fn bench(c: &mut Criterion) {
    let runner = paper_runner();
    let points = confidence_threshold_sweep_on(&runner, &[2, 5, 9, 13, 15]);
    println!("\nAblation: JRS threshold vs avg wish-jjl exec time (normalized to normal)");
    println!("{:>10} {:>14}", "threshold", "avg exec time");
    for p in &points {
        println!("{:>10} {:>14.3}", p.param, p.avg_normalized);
    }
    print_sweep_summary(&runner);
    register_kernel(c, "abl_confidence");
}

criterion_group!(benches, bench);
criterion_main!(benches);
