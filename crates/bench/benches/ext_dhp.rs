//! Extension: dynamic hammock predication (the paper's §6.1 related work)
//! as a hardware-only baseline against wish branches.

use criterion::{criterion_group, criterion_main, Criterion};
use wishbranch_bench::{paper_config, register_kernel};
use wishbranch_core::{figure_dhp, Table};

fn bench(c: &mut Criterion) {
    let fig = figure_dhp(&paper_config());
    println!("\n{}", Table::from(&fig));
    register_kernel(c, "ext_dhp");
}

criterion_group!(benches, bench);
criterion_main!(benches);
