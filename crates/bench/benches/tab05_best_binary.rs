//! Regenerates Table 5: wish jump/join/loop binary vs the per-benchmark
//! best binaries (an unrealistically strong baseline, as the paper notes).

use criterion::{criterion_group, criterion_main, Criterion};
use wishbranch_bench::{emit_report, paper_runner, print_sweep_summary, register_kernel};
use wishbranch_core::Experiment;

fn bench(c: &mut Criterion) {
    let runner = paper_runner();
    emit_report(&Experiment::Tab5.run(&runner));
    print_sweep_summary(&runner);
    register_kernel(c, "tab5");
}

criterion_group!(benches, bench);
criterion_main!(benches);
