//! Regenerates Table 5: wish jump/join/loop binary vs the per-benchmark
//! best binaries (an unrealistically strong baseline, as the paper notes).

use criterion::{criterion_group, criterion_main, Criterion};
use wishbranch_bench::{paper_config, register_kernel};
use wishbranch_core::{table5, table5_table};

fn bench(c: &mut Criterion) {
    let rows = table5(&paper_config());
    println!("\n{}", table5_table(&rows));
    register_kernel(c, "tab05");
}

criterion_group!(benches, bench);
criterion_main!(benches);
