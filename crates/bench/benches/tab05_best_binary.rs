//! Regenerates Table 5: wish jump/join/loop binary vs the per-benchmark
//! best binaries (an unrealistically strong baseline, as the paper notes).

use criterion::{criterion_group, criterion_main, Criterion};
use wishbranch_bench::{paper_runner, print_sweep_summary, register_kernel};
use wishbranch_core::{table5_on, table5_table};

fn bench(c: &mut Criterion) {
    let runner = paper_runner();
    let rows = table5_on(&runner);
    println!("\n{}", table5_table(&rows));
    print_sweep_summary(&runner);
    register_kernel(c, "tab05");
}

criterion_group!(benches, bench);
criterion_main!(benches);
