//! Pure Criterion microbenchmarks of the substrate components: predictor,
//! confidence estimator, cache, and end-to-end simulator throughput.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use wishbranch_bpred::{HybridConfig, HybridPredictor, JrsConfidence, JrsConfig};
use wishbranch_mem::{Cache, CacheConfig};

fn bench(c: &mut Criterion) {
    c.bench_function("hybrid_predict_update", |b| {
        b.iter_batched(
            || HybridPredictor::new(HybridConfig::default()),
            |mut bp| {
                for pc in 0..1000u32 {
                    let (dir, tok) = bp.predict(pc);
                    bp.on_fetch_branch(dir);
                    bp.update(pc, &tok, pc % 3 == 0);
                }
                bp.stats().lookups
            },
            BatchSize::SmallInput,
        )
    });
    c.bench_function("jrs_estimate_update", |b| {
        b.iter_batched(
            || JrsConfidence::new(JrsConfig::default()),
            |mut jrs| {
                for pc in 0..1000u32 {
                    let _ = jrs.estimate(pc, u64::from(pc) >> 2);
                    jrs.update(pc, u64::from(pc) >> 2, pc % 7 != 0);
                }
                jrs.stats().lookups
            },
            BatchSize::SmallInput,
        )
    });
    c.bench_function("cache_access_stream", |b| {
        b.iter_batched(
            || {
                Cache::new(CacheConfig {
                    size_bytes: 64 * 1024,
                    ways: 4,
                    line_bytes: 64,
                    latency: 2,
                })
            },
            |mut cache| {
                let mut hits = 0u64;
                for i in 0..4096u64 {
                    if cache.access(i.wrapping_mul(0x9e37_79b9) % (1 << 20)) {
                        hits += 1;
                    }
                }
                hits
            },
            BatchSize::SmallInput,
        )
    });
    wishbranch_bench::register_kernel(c, "perf");
}

criterion_group!(benches, bench);
criterion_main!(benches);
