//! Regenerates Fig. 10: wish jump/join binaries vs the predicated
//! baselines, with real and perfect confidence estimation.

use criterion::{criterion_group, criterion_main, Criterion};
use wishbranch_bench::{paper_config, register_kernel};
use wishbranch_core::{figure10, Table};

fn bench(c: &mut Criterion) {
    let fig = figure10(&paper_config());
    println!("\n{}", Table::from(&fig));
    register_kernel(c, "fig10");
}

criterion_group!(benches, bench);
criterion_main!(benches);
