//! Regenerates Fig. 10: wish jump/join binaries vs the predicated
//! baselines, with real and perfect confidence estimation.

use criterion::{criterion_group, criterion_main, Criterion};
use wishbranch_bench::{emit_report, paper_runner, print_sweep_summary, register_kernel};
use wishbranch_core::Experiment;

fn bench(c: &mut Criterion) {
    let runner = paper_runner();
    emit_report(&Experiment::Fig10.run(&runner));
    print_sweep_summary(&runner);
    register_kernel(c, "fig10");
}

criterion_group!(benches, bench);
criterion_main!(benches);
