//! Regenerates Fig. 10: wish jump/join binaries vs the predicated
//! baselines, with real and perfect confidence estimation.

use criterion::{criterion_group, criterion_main, Criterion};
use wishbranch_bench::{paper_runner, print_sweep_summary, register_kernel};
use wishbranch_core::{figure10_on, Table};

fn bench(c: &mut Criterion) {
    let runner = paper_runner();
    let fig = figure10_on(&runner);
    println!("\n{}", Table::from(&fig));
    print_sweep_summary(&runner);
    register_kernel(c, "fig10");
}

criterion_group!(benches, bench);
criterion_main!(benches);
