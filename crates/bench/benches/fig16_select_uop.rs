//! Regenerates Fig. 16: wish branches on a machine that implements
//! predication with the select-µop mechanism.

use criterion::{criterion_group, criterion_main, Criterion};
use wishbranch_bench::{emit_report, paper_runner, print_sweep_summary, register_kernel};
use wishbranch_core::Experiment;

fn bench(c: &mut Criterion) {
    let runner = paper_runner();
    emit_report(&Experiment::Fig16.run(&runner));
    print_sweep_summary(&runner);
    register_kernel(c, "fig16");
}

criterion_group!(benches, bench);
criterion_main!(benches);
