//! Regenerates Fig. 16: wish branches on a machine that implements
//! predication with the select-µop mechanism.

use criterion::{criterion_group, criterion_main, Criterion};
use wishbranch_bench::{paper_config, register_kernel};
use wishbranch_core::{figure16, Table};

fn bench(c: &mut Criterion) {
    let fig = figure16(&paper_config());
    println!("\n{}", Table::from(&fig));
    register_kernel(c, "fig16");
}

criterion_group!(benches, bench);
criterion_main!(benches);
