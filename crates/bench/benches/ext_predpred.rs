//! Extension: predicate prediction (the paper's §6.1 related work) as a
//! baseline against wish branches.

use criterion::{criterion_group, criterion_main, Criterion};
use wishbranch_bench::{emit_report, paper_runner, print_sweep_summary, register_kernel};
use wishbranch_core::Experiment;

fn bench(c: &mut Criterion) {
    let runner = paper_runner();
    emit_report(&Experiment::PredPred.run(&runner));
    print_sweep_summary(&runner);
    register_kernel(c, "predpred");
}

criterion_group!(benches, bench);
criterion_main!(benches);
