//! Extension: predicate prediction (the paper's §6.1 related work) as a
//! baseline against wish branches.

use criterion::{criterion_group, criterion_main, Criterion};
use wishbranch_bench::{paper_config, register_kernel};
use wishbranch_core::{figure_predicate_prediction, Table};

fn bench(c: &mut Criterion) {
    let fig = figure_predicate_prediction(&paper_config());
    println!("\n{}", Table::from(&fig));
    register_kernel(c, "ext_predpred");
}

criterion_group!(benches, bench);
criterion_main!(benches);
