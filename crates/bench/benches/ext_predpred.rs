//! Extension: predicate prediction (the paper's §6.1 related work) as a
//! baseline against wish branches.

use criterion::{criterion_group, criterion_main, Criterion};
use wishbranch_bench::{paper_runner, print_sweep_summary, register_kernel};
use wishbranch_core::{figure_predicate_prediction_on, Table};

fn bench(c: &mut Criterion) {
    let runner = paper_runner();
    let fig = figure_predicate_prediction_on(&runner);
    println!("\n{}", Table::from(&fig));
    print_sweep_summary(&runner);
    register_kernel(c, "ext_predpred");
}

criterion_group!(benches, bench);
criterion_main!(benches);
