//! Regenerates Fig. 2: predication overhead under ideal knobs (NO-DEPEND,
//! NO-DEPEND+NO-FETCH) and perfect conditional branch prediction.

use criterion::{criterion_group, criterion_main, Criterion};
use wishbranch_bench::{emit_report, paper_runner, print_sweep_summary, register_kernel};
use wishbranch_core::Experiment;

fn bench(c: &mut Criterion) {
    let runner = paper_runner();
    emit_report(&Experiment::Fig2.run(&runner));
    print_sweep_summary(&runner);
    register_kernel(c, "fig2");
}

criterion_group!(benches, bench);
criterion_main!(benches);
