//! Regenerates Fig. 2: predication overhead under ideal knobs (NO-DEPEND,
//! NO-DEPEND+NO-FETCH) and perfect conditional branch prediction.

use criterion::{criterion_group, criterion_main, Criterion};
use wishbranch_bench::{paper_config, register_kernel};
use wishbranch_core::{figure2, Table};

fn bench(c: &mut Criterion) {
    let fig = figure2(&paper_config());
    println!("\n{}", Table::from(&fig));
    register_kernel(c, "fig02");
}

criterion_group!(benches, bench);
criterion_main!(benches);
