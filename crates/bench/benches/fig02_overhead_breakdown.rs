//! Regenerates Fig. 2: predication overhead under ideal knobs (NO-DEPEND,
//! NO-DEPEND+NO-FETCH) and perfect conditional branch prediction.

use criterion::{criterion_group, criterion_main, Criterion};
use wishbranch_bench::{paper_runner, print_sweep_summary, register_kernel};
use wishbranch_core::{figure2_on, Table};

fn bench(c: &mut Criterion) {
    let runner = paper_runner();
    let fig = figure2_on(&runner);
    println!("\n{}", Table::from(&fig));
    print_sweep_summary(&runner);
    register_kernel(c, "fig02");
}

criterion_group!(benches, bench);
criterion_main!(benches);
