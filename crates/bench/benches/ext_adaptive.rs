//! Extension: the §3.6/§7 input-dependence-aware compiler. The adaptive
//! binary trains on inputs A and C; every binary is then evaluated on all
//! three inputs.

use criterion::{criterion_group, criterion_main, Criterion};
use wishbranch_bench::{paper_config, register_kernel};
use wishbranch_core::{figure_adaptive, Table};

fn bench(c: &mut Criterion) {
    let fig = figure_adaptive(&paper_config());
    println!("\n{}", Table::from(&fig));
    register_kernel(c, "ext_adaptive");
}

criterion_group!(benches, bench);
criterion_main!(benches);
