//! Extension: the §3.6/§7 input-dependence-aware compiler. The adaptive
//! binary trains on inputs A and C; every binary is then evaluated on all
//! three inputs.

use criterion::{criterion_group, criterion_main, Criterion};
use wishbranch_bench::{emit_report, paper_runner, print_sweep_summary, register_kernel};
use wishbranch_core::Experiment;

fn bench(c: &mut Criterion) {
    let runner = paper_runner();
    emit_report(&Experiment::Adaptive.run(&runner));
    print_sweep_summary(&runner);
    register_kernel(c, "adaptive");
}

criterion_group!(benches, bench);
criterion_main!(benches);
