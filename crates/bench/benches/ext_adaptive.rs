//! Extension: the §3.6/§7 input-dependence-aware compiler. The adaptive
//! binary trains on inputs A and C; every binary is then evaluated on all
//! three inputs.

use criterion::{criterion_group, criterion_main, Criterion};
use wishbranch_bench::{paper_runner, print_sweep_summary, register_kernel};
use wishbranch_core::{figure_adaptive_on, Table};

fn bench(c: &mut Criterion) {
    let runner = paper_runner();
    let fig = figure_adaptive_on(&runner);
    println!("\n{}", Table::from(&fig));
    print_sweep_summary(&runner);
    register_kernel(c, "ext_adaptive");
}

criterion_group!(benches, bench);
criterion_main!(benches);
