//! Regenerates Fig. 13: dynamic wish loops per 1M retired µops by
//! confidence and early/late/no-exit class.

use criterion::{criterion_group, criterion_main, Criterion};
use wishbranch_bench::{paper_config, register_kernel};
use wishbranch_core::{fig13_table, figure13};

fn bench(c: &mut Criterion) {
    let rows = figure13(&paper_config());
    println!("\n{}", fig13_table(&rows));
    register_kernel(c, "fig13");
}

criterion_group!(benches, bench);
criterion_main!(benches);
