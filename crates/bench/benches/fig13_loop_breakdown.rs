//! Regenerates Fig. 13: dynamic wish loops per 1M retired µops by
//! confidence and early/late/no-exit class.

use criterion::{criterion_group, criterion_main, Criterion};
use wishbranch_bench::{emit_report, paper_runner, print_sweep_summary, register_kernel};
use wishbranch_core::Experiment;

fn bench(c: &mut Criterion) {
    let runner = paper_runner();
    emit_report(&Experiment::Fig13.run(&runner));
    print_sweep_summary(&runner);
    register_kernel(c, "fig13");
}

criterion_group!(benches, bench);
criterion_main!(benches);
