//! Regenerates Table 4: simulated benchmark characteristics.

use criterion::{criterion_group, criterion_main, Criterion};
use wishbranch_bench::{paper_config, register_kernel};
use wishbranch_core::{table4, table4_table};

fn bench(c: &mut Criterion) {
    let rows = table4(&paper_config());
    println!("\n{}", table4_table(&rows));
    register_kernel(c, "tab04");
}

criterion_group!(benches, bench);
criterion_main!(benches);
