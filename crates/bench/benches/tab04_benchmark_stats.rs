//! Regenerates Table 4: simulated benchmark characteristics.

use criterion::{criterion_group, criterion_main, Criterion};
use wishbranch_bench::{paper_runner, print_sweep_summary, register_kernel};
use wishbranch_core::{table4_on, table4_table};

fn bench(c: &mut Criterion) {
    let runner = paper_runner();
    let rows = table4_on(&runner);
    println!("\n{}", table4_table(&rows));
    print_sweep_summary(&runner);
    register_kernel(c, "tab04");
}

criterion_group!(benches, bench);
criterion_main!(benches);
