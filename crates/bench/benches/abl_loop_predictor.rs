//! Ablation: the specialized wish-loop predictor extension (§3.2): biasing
//! the trip prediction upward converts early exits (flushes) into late
//! exits (predicated NOP iterations).

use criterion::{criterion_group, criterion_main, Criterion};
use wishbranch_bench::{paper_runner, print_sweep_summary, register_kernel};
use wishbranch_core::loop_predictor_comparison;

fn bench(c: &mut Criterion) {
    let runner = paper_runner();
    let cmp = loop_predictor_comparison(&runner, 2);
    println!("\nAblation: specialized wish-loop predictor (bias +2) vs hybrid-only");
    println!("{:<28} {:>12} {:>12}", "", "hybrid-only", "biased trip");
    println!("{:<28} {:>12} {:>12}", "early exits (flush)", cmp.early_unbiased, cmp.early_biased);
    println!("{:<28} {:>12} {:>12}", "late exits (no flush)", cmp.late_unbiased, cmp.late_biased);
    println!("{:<28} {:>12} {:>12}", "total cycles", cmp.cycles_unbiased, cmp.cycles_biased);
    print_sweep_summary(&runner);
    register_kernel(c, "abl_loop_predictor");
}

criterion_group!(benches, bench);
criterion_main!(benches);
