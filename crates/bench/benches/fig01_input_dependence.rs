//! Regenerates Fig. 1: BASE-DEF execution time vs input set, normalized to
//! the normal-branch binary.

use criterion::{criterion_group, criterion_main, Criterion};
use wishbranch_bench::{emit_report, paper_runner, print_sweep_summary, register_kernel};
use wishbranch_core::Experiment;

fn bench(c: &mut Criterion) {
    let runner = paper_runner();
    emit_report(&Experiment::Fig1.run(&runner));
    print_sweep_summary(&runner);
    register_kernel(c, "fig1");
}

criterion_group!(benches, bench);
criterion_main!(benches);
