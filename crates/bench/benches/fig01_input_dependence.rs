//! Regenerates Fig. 1: BASE-DEF execution time vs input set, normalized to
//! the normal-branch binary.

use criterion::{criterion_group, criterion_main, Criterion};
use wishbranch_bench::{paper_runner, print_sweep_summary, register_kernel};
use wishbranch_core::{figure1_on, Table};

fn bench(c: &mut Criterion) {
    let runner = paper_runner();
    let fig = figure1_on(&runner);
    println!("\n{}", Table::from(&fig));
    print_sweep_summary(&runner);
    register_kernel(c, "fig01");
}

criterion_group!(benches, bench);
criterion_main!(benches);
