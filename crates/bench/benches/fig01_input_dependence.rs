//! Regenerates Fig. 1: BASE-DEF execution time vs input set, normalized to
//! the normal-branch binary.

use criterion::{criterion_group, criterion_main, Criterion};
use wishbranch_bench::{paper_config, register_kernel};
use wishbranch_core::{figure1, Table};

fn bench(c: &mut Criterion) {
    let fig = figure1(&paper_config());
    println!("\n{}", Table::from(&fig));
    register_kernel(c, "fig01");
}

criterion_group!(benches, bench);
criterion_main!(benches);
