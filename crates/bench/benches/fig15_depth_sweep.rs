//! Regenerates Fig. 15: the pipeline-depth sweep (10/20/30) at a
//! 256-entry window.

use criterion::{criterion_group, criterion_main, Criterion};
use wishbranch_bench::{emit_report, paper_runner, print_sweep_summary, register_kernel};
use wishbranch_core::Experiment;

fn bench(c: &mut Criterion) {
    let runner = paper_runner();
    emit_report(&Experiment::Fig15.run(&runner));
    print_sweep_summary(&runner);
    register_kernel(c, "fig15");
}

criterion_group!(benches, bench);
criterion_main!(benches);
