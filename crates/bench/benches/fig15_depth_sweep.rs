//! Regenerates Fig. 15: the pipeline-depth sweep (10/20/30) at a
//! 256-entry window.

use criterion::{criterion_group, criterion_main, Criterion};
use wishbranch_bench::{paper_config, register_kernel};
use wishbranch_core::{figure15, sweep_table};

fn bench(c: &mut Criterion) {
    let rows = figure15(&paper_config());
    println!("\n{}", sweep_table("Fig.15: pipeline depth sweep", "depth", &rows));
    register_kernel(c, "fig15");
}

criterion_group!(benches, bench);
criterion_main!(benches);
