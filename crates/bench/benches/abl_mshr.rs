//! Ablation: MSHR count (outstanding-miss limit). The Table 2 machine has
//! effectively unbounded MLP; finite MSHRs shift the balance between
//! branch prediction (which needs MLP to hide flushes) and predication.

use criterion::{criterion_group, criterion_main, Criterion};
use wishbranch_bench::{emit_report, paper_runner, print_sweep_summary, register_kernel};
use wishbranch_core::Experiment;

fn bench(c: &mut Criterion) {
    let runner = paper_runner();
    emit_report(&Experiment::AblMshr.run(&runner));
    print_sweep_summary(&runner);
    register_kernel(c, "abl_mshr");
}

criterion_group!(benches, bench);
criterion_main!(benches);
