//! # wishbranch-bench
//!
//! Criterion benches that regenerate every table and figure of the paper's
//! evaluation. Each bench in `benches/` does two things:
//!
//! 1. regenerates its table/figure at full scale and prints it (this is the
//!    reproduction artifact recorded in `EXPERIMENTS.md`);
//! 2. registers a Criterion measurement over a scaled-down kernel so
//!    `cargo bench` also tracks simulator performance regressions.
//!
//! Scale is controlled with the `WISHBRANCH_SCALE` environment variable
//! (default 4000 outer iterations per benchmark).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use criterion::Criterion;
use wishbranch_compiler::BinaryVariant;
use wishbranch_core::{
    compile_variant, failure_table, simulate, sweep_summary_table, ExperimentConfig, Report,
    SweepRunner,
};
use wishbranch_workloads::{twolf, InputSet};

/// Environment variable naming a directory to drop machine-readable
/// reports into (`<id>.json` + `<id>.csv` per emitted report).
pub const REPORT_DIR_ENV: &str = "WISHBRANCH_REPORT_DIR";

/// Full-regeneration scale (outer iterations per benchmark).
#[must_use]
pub fn paper_scale() -> i32 {
    std::env::var("WISHBRANCH_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(4000)
}

/// The experiment configuration used by all figure benches.
#[must_use]
pub fn paper_config() -> ExperimentConfig {
    ExperimentConfig::paper(paper_scale())
}

/// A parallel [`SweepRunner`] over the full suite at paper scale. Worker
/// count comes from `WISHBRANCH_WORKERS`, defaulting to the machine's
/// available parallelism.
#[must_use]
pub fn paper_runner() -> SweepRunner {
    SweepRunner::new(&paper_config())
}

/// Prints a report's rendered table and, when [`REPORT_DIR_ENV`] is set,
/// also writes `<id>.json` and `<id>.csv` into that directory — the same
/// files `wishbranch-repro --report-dir` produces.
pub fn emit_report(report: &Report) {
    println!("\n{}", report.render());
    if let Ok(dir) = std::env::var(REPORT_DIR_ENV) {
        let dir = std::path::Path::new(&dir);
        std::fs::create_dir_all(dir)
            .unwrap_or_else(|e| panic!("cannot create {}: {e}", dir.display()));
        for (ext, data) in [("json", report.to_json()), ("csv", report.to_csv())] {
            let path = dir.join(format!("{}.{ext}", report.id));
            std::fs::write(&path, data + "\n")
                .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
        }
    }
}

/// Prints the runner's cumulative sweep summary (job count, cache hits,
/// parallel speedup) below a figure's table, plus the failure table when
/// any job failed (failed cells render as explicit gaps in the figure).
pub fn print_sweep_summary(runner: &SweepRunner) {
    println!("\n{}", sweep_summary_table(&runner.summary()));
    let failures = runner.failures();
    if !failures.is_empty() {
        println!("\n{}", failure_table(&failures));
    }
}

/// Registers the standard Criterion measurement: one small wish-branch
/// simulation (twolf kernel, 300 iterations) so every bench also times the
/// simulator.
pub fn register_kernel(c: &mut Criterion, group: &str) {
    let ec = ExperimentConfig::paper(300);
    let bench = twolf(300);
    let bin = compile_variant(&bench, BinaryVariant::WishJumpJoinLoop, &ec)
        .expect("kernel compile");
    let mut g = c.benchmark_group(group);
    g.sample_size(10);
    g.bench_function("sim_twolf300_wish_jjl", |b| {
        b.iter(|| {
            simulate(&bin.program, &bench, InputSet::B, &ec.machine)
                .expect("kernel simulation")
                .stats
                .cycles
        })
    });
    g.finish();
}
