//! # proptest-shim
//!
//! A dependency-free, offline stand-in for the subset of the `proptest`
//! API this workspace uses: the [`proptest!`] macro, [`Strategy`] with
//! `prop_map`/`prop_filter`, [`prop_oneof!`], [`any`], [`Just`], range and
//! tuple strategies, `collection::vec`, `option::of`,
//! [`ProptestConfig::with_cases`], and the `prop_assert*` macros.
//!
//! Differences from the real crate, by design:
//!
//! * no shrinking — a failing case reports its inputs via the standard
//!   assert message and the deterministic per-test seed reproduces it;
//! * the generator is a fixed splitmix64 stream seeded from the test's
//!   module path and case index, so runs are fully deterministic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Deterministic generator handed to strategies (splitmix64).
#[derive(Clone, Debug)]
pub struct TestRng(u64);

impl TestRng {
    /// The RNG for one test case: seeded from the test's identity and the
    /// case index, so every run of the suite sees the same inputs.
    #[must_use]
    pub fn for_case(test_name: &str, case: u32) -> TestRng {
        // FNV-1a over the test name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng(h ^ (u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15)))
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// A value generator (the shim's take on proptest's `Strategy`).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Rejects values failing `f`, regenerating until one passes.
    fn prop_filter<W, F: Fn(&Self::Value) -> bool>(self, _whence: W, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { inner: self, f }
    }

    /// Type-erases the strategy (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(move |rng| self.generate(rng)))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRng) -> T>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 10000 consecutive candidates");
    }
}

/// Always yields a clone of the given value.
#[allow(non_snake_case)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed same-typed strategies ([`prop_oneof!`]).
pub struct OneOf<T> {
    choices: Vec<BoxedStrategy<T>>,
}

impl<T> OneOf<T> {
    /// Builds from at least one choice.
    #[must_use]
    pub fn new(choices: Vec<BoxedStrategy<T>>) -> OneOf<T> {
        assert!(!choices.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { choices }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = (rng.next_u64() % self.choices.len() as u64) as usize;
        self.choices[i].generate(rng)
    }
}

/// Whole-domain strategy for a type; see [`any`].
pub struct Any<T>(PhantomData<T>);

/// Generates arbitrary values of `T` over its whole domain.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Types with a whole-domain generator.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

fn in_span(rng: &mut TestRng, start: i128, span: u128) -> i128 {
    debug_assert!(span > 0);
    start + (rng.next_u64() as u128 % span) as i128
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                in_span(rng, self.start as i128, span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i128 - *self.start() as i128) as u128 + 1;
                in_span(rng, *self.start() as i128, span) as $t
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);
tuple_strategy!(A, B, C, D, E, F, G, H, I);
tuple_strategy!(A, B, C, D, E, F, G, H, I, J);

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Generates `Vec`s of `element` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Option strategies (`proptest::option`).
pub mod option {
    use super::{Strategy, TestRng};

    /// Generates `None` a quarter of the time, `Some(inner)` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() % 4 == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// Per-test configuration; only `cases` is honored.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// The `proptest!` test-definition macro: each `fn name(x in strat, ...)`
/// becomes a `#[test]` running `cases` deterministic iterations.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                for __case in 0..__cfg.cases {
                    let mut __rng = $crate::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)*
                    $body
                }
            }
        )*
    };
}

/// `prop_assert!`: plain `assert!` (no shrinking to report).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// `prop_assert_eq!`: plain `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// `prop_assert_ne!`: plain `assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// One-stop imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };

    /// The `prop` module alias (`prop::collection::vec` style paths).
    pub mod prop {
        pub use crate::{collection, option};
    }
}

/// Uniform choice among several strategies of the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::Strategy as _;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::TestRng::for_case("ranges", 0);
        for _ in 0..2000 {
            let v = (-(1i64 << 43)..(1i64 << 43) - 1).generate(&mut rng);
            assert!((-(1i64 << 43)..(1i64 << 43) - 1).contains(&v));
            let w = (0u32..(1 << 30)).generate(&mut rng);
            assert!(w < 1 << 30);
            let x = (1usize..=4).generate(&mut rng);
            assert!((1..=4).contains(&x));
        }
    }

    #[test]
    fn oneof_covers_all_arms() {
        let s = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut rng = crate::TestRng::for_case("oneof", 0);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn filter_and_map_compose() {
        let s = (0u32..100).prop_filter("even", |v| v % 2 == 0).prop_map(|v| v + 1);
        let mut rng = crate::TestRng::for_case("fm", 0);
        for _ in 0..500 {
            assert_eq!(s.generate(&mut rng) % 2, 1);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The macro itself: bindings, tuples, collections, trailing comma.
        #[test]
        fn macro_binds_arguments(
            xs in crate::collection::vec(any::<bool>(), 1..10),
            pair in (0u8..4, 1i32..5),
        ) {
            prop_assert!(!xs.is_empty() && xs.len() < 10);
            prop_assert!(pair.0 < 4 && pair.1 >= 1);
        }
    }
}
