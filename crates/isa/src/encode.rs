//! 64-bit binary word encoding of µops.
//!
//! Mirrors the wish-branch instruction format the paper sketches in Fig. 7:
//! a branch encodes `OPCODE | btype | wtype | target offset | p`. We extend
//! the same header (opcode, guard predicate, `btype`/`wtype` hint bits) to
//! every µop so whole programs round-trip through a flat `u64` image.
//!
//! Word layout (bit 63 = MSB):
//!
//! ```text
//! [63:58] opcode        [57] guard present   [56:53] guard predicate
//! [52]    btype (wish)  [51:50] wtype (0 jump, 1 join, 2 loop)
//! [49:44] field A (dst gpr / store data / pred dst)
//! [43:38] field B (src1 / base / pred src)
//! [37]    flag   (src2-is-imm / branch sense / pset value)
//! [36:31] field C (src2 register)
//! [30:0]  imm    (signed 31-bit immediate / offset / branch target)
//! MovImm only: [43:0] 44-bit signed immediate
//! ```
//!
//! A decoder that does not understand wish branches can pass
//! `ignore_wish_hints = true` to [`decode_with_options`] and will see plain
//! conditional branches — demonstrating the paper's backward-compatibility
//! claim (§3.4).

use crate::insn::{AluOp, BranchKind, CmpOp, Insn, InsnKind, Operand, PredOp, WishType};
use crate::regs::{Gpr, PredReg, NUM_GPRS, NUM_PREDS};
use std::error::Error;
use std::fmt;

/// Errors produced by [`decode`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DecodeError {
    /// The opcode field does not name a defined operation.
    BadOpcode(u8),
    /// The `wtype` field held the reserved value 3.
    BadWishType,
    /// A register field exceeded the architectural register count.
    BadRegister(u8),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BadOpcode(op) => write!(f, "undefined opcode {op}"),
            DecodeError::BadWishType => write!(f, "reserved wish type encoding"),
            DecodeError::BadRegister(r) => write!(f, "register field {r} out of range"),
        }
    }
}

impl Error for DecodeError {}

/// Errors produced by [`encode`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EncodeError {
    /// Immediate/offset does not fit the 31-bit signed field.
    ImmOutOfRange(i64),
    /// MovImm immediate does not fit the 44-bit signed field.
    MovImmOutOfRange(i64),
    /// Branch target does not fit the 31-bit field.
    TargetOutOfRange(u32),
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::ImmOutOfRange(v) => write!(f, "immediate {v} does not fit 31 bits"),
            EncodeError::MovImmOutOfRange(v) => write!(f, "immediate {v} does not fit 44 bits"),
            EncodeError::TargetOutOfRange(t) => write!(f, "branch target {t} does not fit 31 bits"),
        }
    }
}

impl Error for EncodeError {}

const OP_NOP: u8 = 0;
const OP_HALT: u8 = 1;
const OP_ALU_BASE: u8 = 2; // ..=10, one per AluOp
const OP_MOVIMM: u8 = 11;
const OP_CMP_BASE: u8 = 12; // ..=17, one per CmpOp
const OP_PRR_BASE: u8 = 18; // ..=20, one per PredOp
const OP_PNOT: u8 = 21;
const OP_PSET: u8 = 22;
const OP_LOAD: u8 = 23;
const OP_STORE: u8 = 24;
const OP_CMP2_BASE: u8 = 30; // ..=35, one per CmpOp
const OP_BR_COND: u8 = 25;
const OP_BR_UNCOND: u8 = 26;
const OP_CALL: u8 = 27;
const OP_RET: u8 = 28;
const OP_INDIRECT: u8 = 29;

const IMM_BITS: u32 = 31;
const MOVIMM_BITS: u32 = 44;
/// `cmp2` steals imm[30:27] for its second destination, leaving a 27-bit
/// signed immediate.
const CMP2_IMM_BITS: u32 = 27;

fn alu_index(op: AluOp) -> u8 {
    match op {
        AluOp::Add => 0,
        AluOp::Sub => 1,
        AluOp::And => 2,
        AluOp::Or => 3,
        AluOp::Xor => 4,
        AluOp::Shl => 5,
        AluOp::Shr => 6,
        AluOp::Mul => 7,
        AluOp::Div => 8,
    }
}

fn alu_from_index(i: u8) -> Option<AluOp> {
    Some(match i {
        0 => AluOp::Add,
        1 => AluOp::Sub,
        2 => AluOp::And,
        3 => AluOp::Or,
        4 => AluOp::Xor,
        5 => AluOp::Shl,
        6 => AluOp::Shr,
        7 => AluOp::Mul,
        8 => AluOp::Div,
        _ => return None,
    })
}

fn cmp_index(op: CmpOp) -> u8 {
    match op {
        CmpOp::Eq => 0,
        CmpOp::Ne => 1,
        CmpOp::Lt => 2,
        CmpOp::Le => 3,
        CmpOp::Gt => 4,
        CmpOp::Ge => 5,
    }
}

fn cmp_from_index(i: u8) -> Option<CmpOp> {
    Some(match i {
        0 => CmpOp::Eq,
        1 => CmpOp::Ne,
        2 => CmpOp::Lt,
        3 => CmpOp::Le,
        4 => CmpOp::Gt,
        5 => CmpOp::Ge,
        _ => return None,
    })
}

fn prr_index(op: PredOp) -> u8 {
    match op {
        PredOp::And => 0,
        PredOp::Or => 1,
        PredOp::Xor => 2,
    }
}

fn prr_from_index(i: u8) -> Option<PredOp> {
    Some(match i {
        0 => PredOp::And,
        1 => PredOp::Or,
        2 => PredOp::Xor,
        _ => return None,
    })
}

struct Fields {
    opcode: u8,
    a: u8,
    b: u8,
    c: u8,
    flag: bool,
    imm: i64,
}

impl Fields {
    fn new(opcode: u8) -> Fields {
        Fields {
            opcode,
            a: 0,
            b: 0,
            c: 0,
            flag: false,
            imm: 0,
        }
    }
}

fn check_imm(v: i64) -> Result<i64, EncodeError> {
    let min = -(1i64 << (IMM_BITS - 1));
    let max = (1i64 << (IMM_BITS - 1)) - 1;
    if v < min || v > max {
        Err(EncodeError::ImmOutOfRange(v))
    } else {
        Ok(v)
    }
}

fn operand_fields(src2: Operand, f: &mut Fields) -> Result<(), EncodeError> {
    match src2 {
        Operand::Reg(r) => {
            f.flag = false;
            f.c = r.index() as u8;
        }
        Operand::Imm(i) => {
            f.flag = true;
            f.imm = check_imm(i64::from(i))?;
        }
    }
    Ok(())
}

/// Encodes a µop into its 64-bit binary word.
///
/// # Errors
///
/// Returns [`EncodeError`] when an immediate, offset, or branch target does
/// not fit its field.
pub fn encode(insn: &Insn) -> Result<u64, EncodeError> {
    let f = match insn.kind {
        InsnKind::Nop => Fields::new(OP_NOP),
        InsnKind::Halt => Fields::new(OP_HALT),
        InsnKind::Alu {
            op,
            dst,
            src1,
            src2,
        } => {
            let mut f = Fields::new(OP_ALU_BASE + alu_index(op));
            f.a = dst.index() as u8;
            f.b = src1.index() as u8;
            operand_fields(src2, &mut f)?;
            f
        }
        InsnKind::MovImm { dst, imm } => {
            let min = -(1i64 << (MOVIMM_BITS - 1));
            let max = (1i64 << (MOVIMM_BITS - 1)) - 1;
            if imm < min || imm > max {
                return Err(EncodeError::MovImmOutOfRange(imm));
            }
            let mut f = Fields::new(OP_MOVIMM);
            f.a = dst.index() as u8;
            f.imm = imm;
            f
        }
        InsnKind::Cmp {
            op,
            dst,
            src1,
            src2,
        } => {
            let mut f = Fields::new(OP_CMP_BASE + cmp_index(op));
            f.a = dst.index() as u8;
            f.b = src1.index() as u8;
            operand_fields(src2, &mut f)?;
            f
        }
        InsnKind::Cmp2 {
            op,
            dst_t,
            dst_f,
            src1,
            src2,
        } => {
            let mut f = Fields::new(OP_CMP2_BASE + cmp_index(op));
            f.a = dst_t.index() as u8;
            f.b = src1.index() as u8;
            match src2 {
                Operand::Reg(r) => {
                    f.flag = false;
                    f.c = r.index() as u8;
                }
                Operand::Imm(i) => {
                    let v = i64::from(i);
                    let min = -(1i64 << (CMP2_IMM_BITS - 1));
                    let max = (1i64 << (CMP2_IMM_BITS - 1)) - 1;
                    if v < min || v > max {
                        return Err(EncodeError::ImmOutOfRange(v));
                    }
                    f.flag = true;
                    f.imm = v & ((1i64 << CMP2_IMM_BITS) - 1);
                }
            }
            f.imm |= i64::from(dst_f.index() as u8) << CMP2_IMM_BITS;
            f
        }
        InsnKind::PredRR {
            op,
            dst,
            src1,
            src2,
        } => {
            let mut f = Fields::new(OP_PRR_BASE + prr_index(op));
            f.a = dst.index() as u8;
            f.b = src1.index() as u8;
            f.c = src2.index() as u8;
            f
        }
        InsnKind::PredNot { dst, src } => {
            let mut f = Fields::new(OP_PNOT);
            f.a = dst.index() as u8;
            f.b = src.index() as u8;
            f
        }
        InsnKind::PredSet { dst, value } => {
            let mut f = Fields::new(OP_PSET);
            f.a = dst.index() as u8;
            f.flag = value;
            f
        }
        InsnKind::Load { dst, base, offset } => {
            let mut f = Fields::new(OP_LOAD);
            f.a = dst.index() as u8;
            f.b = base.index() as u8;
            f.imm = check_imm(i64::from(offset))?;
            f
        }
        InsnKind::Store { src, base, offset } => {
            let mut f = Fields::new(OP_STORE);
            f.a = src.index() as u8;
            f.b = base.index() as u8;
            f.imm = check_imm(i64::from(offset))?;
            f
        }
        InsnKind::Branch { kind, target } => {
            if target >= (1 << IMM_BITS) {
                return Err(EncodeError::TargetOutOfRange(target));
            }
            match kind {
                BranchKind::Cond { pred, sense } => {
                    let mut f = Fields::new(OP_BR_COND);
                    f.a = pred.index() as u8;
                    f.flag = sense;
                    f.imm = i64::from(target);
                    f
                }
                BranchKind::Uncond => {
                    let mut f = Fields::new(OP_BR_UNCOND);
                    f.imm = i64::from(target);
                    f
                }
                BranchKind::Call => {
                    let mut f = Fields::new(OP_CALL);
                    f.imm = i64::from(target);
                    f
                }
                BranchKind::Ret => Fields::new(OP_RET),
                BranchKind::Indirect { target: reg } => {
                    let mut f = Fields::new(OP_INDIRECT);
                    f.b = reg.index() as u8;
                    f
                }
            }
        }
    };

    // Common header.
    let mut word: u64 = u64::from(f.opcode) << 58;
    if let Some(g) = insn.guard {
        word |= 1 << 57;
        word |= (g.index() as u64) << 53;
    }
    if let Some(w) = insn.wish {
        word |= 1 << 52;
        let wt = match w {
            WishType::Jump => 0u64,
            WishType::Join => 1,
            WishType::Loop => 2,
        };
        word |= wt << 50;
    }
    word |= u64::from(f.a) << 44;
    if f.opcode == OP_MOVIMM {
        word |= (f.imm as u64) & ((1u64 << MOVIMM_BITS) - 1);
    } else {
        word |= u64::from(f.b) << 38;
        word |= u64::from(f.flag) << 37;
        word |= u64::from(f.c) << 31;
        word |= (f.imm as u64) & ((1u64 << IMM_BITS) - 1);
    }
    Ok(word)
}

fn sign_extend(v: u64, bits: u32) -> i64 {
    let shift = 64 - bits;
    ((v << shift) as i64) >> shift
}

fn gpr(field: u8) -> Result<Gpr, DecodeError> {
    if (field as usize) < NUM_GPRS {
        Ok(Gpr::new(field))
    } else {
        Err(DecodeError::BadRegister(field))
    }
}

fn pred(field: u8) -> Result<PredReg, DecodeError> {
    if (field as usize) < NUM_PREDS {
        Ok(PredReg::new(field))
    } else {
        Err(DecodeError::BadRegister(field))
    }
}

/// Decodes a 64-bit word into a µop.
///
/// # Errors
///
/// Returns [`DecodeError`] for undefined opcodes, reserved wish types, or
/// out-of-range register fields.
pub fn decode(word: u64) -> Result<Insn, DecodeError> {
    decode_with_options(word, false)
}

/// Decodes a 64-bit word, optionally ignoring the wish hint bits.
///
/// Passing `ignore_wish_hints = true` models a processor without wish-branch
/// support running a wish binary: hint bits are dropped and wish branches
/// decode as normal conditional branches (paper §3.4).
///
/// # Errors
///
/// Returns [`DecodeError`] for undefined opcodes, reserved wish types (only
/// when hints are honoured), or out-of-range register fields.
pub fn decode_with_options(word: u64, ignore_wish_hints: bool) -> Result<Insn, DecodeError> {
    let opcode = ((word >> 58) & 0x3f) as u8;
    let guard = if (word >> 57) & 1 == 1 {
        Some(pred(((word >> 53) & 0xf) as u8)?)
    } else {
        None
    };
    let wish = if !ignore_wish_hints && (word >> 52) & 1 == 1 {
        Some(match (word >> 50) & 0x3 {
            0 => WishType::Jump,
            1 => WishType::Join,
            2 => WishType::Loop,
            _ => return Err(DecodeError::BadWishType),
        })
    } else {
        None
    };
    let a = ((word >> 44) & 0x3f) as u8;
    let b = ((word >> 38) & 0x3f) as u8;
    let flag = (word >> 37) & 1 == 1;
    let c = ((word >> 31) & 0x3f) as u8;
    let imm = sign_extend(word & ((1u64 << IMM_BITS) - 1), IMM_BITS);
    // Branch targets occupy the same field but are *unsigned* µop indices.
    let utarget = (word & ((1u64 << IMM_BITS) - 1)) as u32;

    let src2 = |flag: bool, c: u8, imm: i64| -> Result<Operand, DecodeError> {
        if flag {
            Ok(Operand::Imm(imm as i32))
        } else {
            Ok(Operand::Reg(gpr(c)?))
        }
    };

    let kind = match opcode {
        OP_NOP => InsnKind::Nop,
        OP_HALT => InsnKind::Halt,
        op if (OP_ALU_BASE..OP_ALU_BASE + 9).contains(&op) => InsnKind::Alu {
            op: alu_from_index(op - OP_ALU_BASE).ok_or(DecodeError::BadOpcode(op))?,
            dst: gpr(a)?,
            src1: gpr(b)?,
            src2: src2(flag, c, imm)?,
        },
        OP_MOVIMM => InsnKind::MovImm {
            dst: gpr(a)?,
            imm: sign_extend(word & ((1u64 << MOVIMM_BITS) - 1), MOVIMM_BITS),
        },
        op if (OP_CMP_BASE..OP_CMP_BASE + 6).contains(&op) => InsnKind::Cmp {
            op: cmp_from_index(op - OP_CMP_BASE).ok_or(DecodeError::BadOpcode(op))?,
            dst: pred(a)?,
            src1: gpr(b)?,
            src2: src2(flag, c, imm)?,
        },
        op if (OP_CMP2_BASE..OP_CMP2_BASE + 6).contains(&op) => {
            let raw_imm = word & ((1u64 << IMM_BITS) - 1);
            let dst_f = pred(((raw_imm >> CMP2_IMM_BITS) & 0xf) as u8)?;
            let imm27 = sign_extend(raw_imm & ((1u64 << CMP2_IMM_BITS) - 1), CMP2_IMM_BITS);
            InsnKind::Cmp2 {
                op: cmp_from_index(op - OP_CMP2_BASE).ok_or(DecodeError::BadOpcode(op))?,
                dst_t: pred(a)?,
                dst_f,
                src1: gpr(b)?,
                src2: if flag {
                    Operand::Imm(imm27 as i32)
                } else {
                    Operand::Reg(gpr(c)?)
                },
            }
        }
        op if (OP_PRR_BASE..OP_PRR_BASE + 3).contains(&op) => InsnKind::PredRR {
            op: prr_from_index(op - OP_PRR_BASE).ok_or(DecodeError::BadOpcode(op))?,
            dst: pred(a)?,
            src1: pred(b)?,
            src2: pred(c)?,
        },
        OP_PNOT => InsnKind::PredNot {
            dst: pred(a)?,
            src: pred(b)?,
        },
        OP_PSET => InsnKind::PredSet {
            dst: pred(a)?,
            value: flag,
        },
        OP_LOAD => InsnKind::Load {
            dst: gpr(a)?,
            base: gpr(b)?,
            offset: imm as i32,
        },
        OP_STORE => InsnKind::Store {
            src: gpr(a)?,
            base: gpr(b)?,
            offset: imm as i32,
        },
        OP_BR_COND => InsnKind::Branch {
            kind: BranchKind::Cond {
                pred: pred(a)?,
                sense: flag,
            },
            target: utarget,
        },
        OP_BR_UNCOND => InsnKind::Branch {
            kind: BranchKind::Uncond,
            target: utarget,
        },
        OP_CALL => InsnKind::Branch {
            kind: BranchKind::Call,
            target: utarget,
        },
        OP_RET => InsnKind::Branch {
            kind: BranchKind::Ret,
            target: 0,
        },
        OP_INDIRECT => InsnKind::Branch {
            kind: BranchKind::Indirect { target: gpr(b)? },
            target: 0,
        },
        op => return Err(DecodeError::BadOpcode(op)),
    };

    // A wish hint on anything but a conditional branch is silently dropped,
    // matching "hint bits" semantics.
    let wish = if matches!(
        kind,
        InsnKind::Branch {
            kind: BranchKind::Cond { .. },
            ..
        }
    ) {
        wish
    } else {
        None
    };

    Ok(Insn { guard, kind, wish })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Insn, PredReg};

    fn roundtrip(i: Insn) {
        let w = encode(&i).expect("encode");
        let back = decode(w).expect("decode");
        assert_eq!(i, back, "round-trip failed for {i}");
    }

    #[test]
    fn roundtrip_representative_insns() {
        let r = Gpr::new;
        let p = PredReg::new;
        roundtrip(Insn::alu(AluOp::Add, r(3), r(1), Operand::reg(2)).guarded(p(1)));
        roundtrip(Insn::alu(AluOp::Div, r(63), r(62), Operand::imm(-1000)));
        roundtrip(Insn::mov_imm(r(5), -(1i64 << 43)));
        roundtrip(Insn::mov_imm(r(5), (1i64 << 43) - 1));
        roundtrip(Insn::cmp(CmpOp::Ge, p(15), r(0), Operand::imm(i32::from(i16::MAX))));
        roundtrip(Insn::cmp2(CmpOp::Lt, p(1), p(2), r(3), Operand::imm(-12345)));
        roundtrip(Insn::cmp2(CmpOp::Eq, p(15), p(14), r(63), Operand::reg(62)).guarded(p(3)));
        roundtrip(Insn::new(InsnKind::PredRR {
            op: PredOp::Xor,
            dst: p(1),
            src1: p(2),
            src2: p(3),
        }));
        roundtrip(Insn::pred_not(p(4), p(5)).guarded(p(6)));
        roundtrip(Insn::pred_set(p(7), true));
        roundtrip(Insn::load(r(10), r(11), -64).guarded(p(2)));
        roundtrip(Insn::store(r(10), r(11), 4096));
        roundtrip(Insn::branch(BranchKind::cond(p(3), false), 123).with_wish(WishType::Loop));
        roundtrip(Insn::branch(BranchKind::Uncond, 0));
        roundtrip(Insn::branch(BranchKind::Call, 99).guarded(p(1)));
        roundtrip(Insn::branch(BranchKind::Ret, 0));
        roundtrip(Insn::branch(BranchKind::Indirect { target: r(9) }, 0));
        roundtrip(Insn::halt());
        roundtrip(Insn::new(InsnKind::Nop));
    }

    #[test]
    fn encode_rejects_oversized_fields() {
        assert!(matches!(
            encode(&Insn::mov_imm(Gpr::new(1), 1i64 << 43)),
            Err(EncodeError::MovImmOutOfRange(_))
        ));
        assert!(matches!(
            encode(&Insn::branch(BranchKind::Uncond, u32::MAX)),
            Err(EncodeError::TargetOutOfRange(_))
        ));
    }

    #[test]
    fn decode_rejects_bad_opcode() {
        let word = 0x3fu64 << 58;
        assert!(matches!(decode(word), Err(DecodeError::BadOpcode(0x3f))));
    }

    #[test]
    fn wish_hints_can_be_ignored_for_backward_compat() {
        let wb = Insn::branch(BranchKind::cond(PredReg::new(2), true), 17).with_wish(WishType::Jump);
        let w = encode(&wb).unwrap();
        let legacy = decode_with_options(w, true).unwrap();
        assert!(!legacy.is_wish_branch());
        assert!(legacy.is_conditional_branch());
        assert_eq!(legacy.direct_target(), Some(17));
    }

    #[test]
    fn sign_extension_of_offsets() {
        let i = Insn::load(Gpr::new(1), Gpr::new(2), -1);
        let w = encode(&i).unwrap();
        let back = decode(w).unwrap();
        match back.kind {
            InsnKind::Load { offset, .. } => assert_eq!(offset, -1),
            _ => panic!("wrong kind"),
        }
    }
}
