//! # wishbranch-isa
//!
//! The µop instruction set architecture used throughout the wish-branches
//! reproduction.
//!
//! The paper (Kim, Mutlu, Stark, Patt, MICRO-38 2005) evaluates wish branches
//! on IA-64 binaries translated into "generic RISC" µops (§4.1). This crate
//! defines that generic RISC µop ISA directly:
//!
//! * 64 general-purpose registers ([`Gpr`]) and 16 one-bit predicate
//!   registers ([`PredReg`]), with `p0` hardwired to TRUE;
//! * every instruction carries an optional *qualifying (guard) predicate*
//!   ([`Insn::guard`]) — IA-64 style full predication;
//! * conditional branches may carry a *wish hint* ([`WishType`]) marking them
//!   as `wish.jump`, `wish.join` or `wish.loop` (Fig. 7 of the paper);
//! * a 64-bit binary word encoding ([`encode`]) mirroring the paper's
//!   instruction-format sketch, so that "new binaries containing wish
//!   branches run correctly on existing processors" can be demonstrated by
//!   decoding with the hint bits ignored.
//!
//! # Example
//!
//! ```
//! use wishbranch_isa::{Insn, AluOp, Operand, Gpr, PredReg, WishType, BranchKind};
//!
//! // (p1) r3 = r1 + r2
//! let add = Insn::alu(AluOp::Add, Gpr::new(3), Gpr::new(1), Operand::reg(2))
//!     .guarded(PredReg::new(1));
//! assert_eq!(add.to_string(), "(p1) add r3 = r1, r2");
//!
//! // wish.jump p1, 42
//! let wj = Insn::branch(BranchKind::cond(PredReg::new(1), true), 42)
//!     .with_wish(WishType::Jump);
//! assert!(wj.is_wish_branch());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asm;
pub mod encode;
pub mod exec;
mod insn;
pub mod oracle;
mod program;
mod regs;

pub use insn::{AluOp, BranchKind, CmpOp, Insn, InsnKind, Operand, PredOp, WishType};
pub use oracle::{Divergence, LockstepOracle, RetireRecord};
pub use program::{Label, Program, ProgramBuilder, StaticStats, Symbol};
pub use regs::{Gpr, PredReg, NUM_GPRS, NUM_PREDS};

/// Size of one encoded µop in bytes; used to map µop indices to instruction
/// addresses for the I-cache model.
pub const INSN_BYTES: u64 = 8;

/// Converts a µop index within a [`Program`] to its instruction-fetch address.
#[inline]
#[must_use]
pub fn insn_addr(index: u32) -> u64 {
    u64::from(index) * INSN_BYTES
}
