//! Architectural register names.

use std::fmt;

/// Number of general-purpose registers in the ISA.
pub const NUM_GPRS: usize = 64;
/// Number of one-bit predicate registers in the ISA.
pub const NUM_PREDS: usize = 16;

/// A general-purpose register name (`r0` … `r63`).
///
/// Unlike many RISC ISAs, `r0` is an ordinary register (IA-64's `r0` quirk is
/// irrelevant here). By software convention used by the compiler crate,
/// `r63` is the stack pointer and `r62` the link register.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Gpr(u8);

impl Gpr {
    /// Stack-pointer register by software convention.
    pub const SP: Gpr = Gpr(63);
    /// Link register (call return address) by software convention.
    pub const LINK: Gpr = Gpr(62);

    /// Creates a register name.
    ///
    /// # Panics
    ///
    /// Panics if `index >= NUM_GPRS`.
    #[inline]
    #[must_use]
    pub const fn new(index: u8) -> Self {
        assert!((index as usize) < NUM_GPRS, "GPR index out of range");
        Gpr(index)
    }

    /// The register's index, in `0..NUM_GPRS`.
    #[inline]
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Gpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl fmt::Debug for Gpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A one-bit predicate register name (`p0` … `p15`).
///
/// `p0` is hardwired TRUE, exactly as in IA-64: writes to it are ignored and
/// reads always return TRUE. Guarding an instruction with `p0` is equivalent
/// to not guarding it at all.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PredReg(u8);

impl PredReg {
    /// The hardwired-TRUE predicate register `p0`.
    pub const TRUE: PredReg = PredReg(0);

    /// Creates a predicate register name.
    ///
    /// # Panics
    ///
    /// Panics if `index >= NUM_PREDS`.
    #[inline]
    #[must_use]
    pub const fn new(index: u8) -> Self {
        assert!((index as usize) < NUM_PREDS, "predicate register index out of range");
        PredReg(index)
    }

    /// The register's index, in `0..NUM_PREDS`.
    #[inline]
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Whether this is the hardwired-TRUE register `p0`.
    #[inline]
    #[must_use]
    pub fn is_hardwired_true(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for PredReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Debug for PredReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpr_display_and_index() {
        let r = Gpr::new(17);
        assert_eq!(r.to_string(), "r17");
        assert_eq!(r.index(), 17);
        assert_eq!(Gpr::SP.index(), 63);
        assert_eq!(Gpr::LINK.index(), 62);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn gpr_out_of_range_panics() {
        let _ = Gpr::new(64);
    }

    #[test]
    fn pred_hardwired_true() {
        assert!(PredReg::TRUE.is_hardwired_true());
        assert!(!PredReg::new(1).is_hardwired_true());
        assert_eq!(PredReg::new(3).to_string(), "p3");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn pred_out_of_range_panics() {
        let _ = PredReg::new(16);
    }

    #[test]
    fn ordering_follows_index() {
        assert!(Gpr::new(2) < Gpr::new(10));
        assert!(PredReg::new(1) < PredReg::new(2));
    }
}
