//! Functional (architectural) execution of µop programs.
//!
//! [`Machine`] executes a [`crate::Program`] in order with exact
//! architectural semantics — including full predication — but no timing.
//! It is the reference the cycle simulator's retired state is checked
//! against, and the oracle the compiler's binary variants are validated
//! with: every variant of the same IR module must leave identical memory.
//!
//! Guard semantics are the C-style conversion of the paper's §2.1 viewed
//! architecturally: a µop whose qualifying predicate reads FALSE changes no
//! architectural state (registers keep their old values, stores are
//! suppressed, branches fall through).

use crate::insn::{BranchKind, InsnKind};
use crate::program::Program;
use crate::regs::{Gpr, PredReg, NUM_GPRS, NUM_PREDS};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Errors from [`Machine::run`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ExecError {
    /// Control transferred outside the program image.
    PcOutOfRange {
        /// The bad µop index.
        pc: u32,
    },
    /// The step budget was exhausted before `halt`.
    StepLimitExceeded {
        /// The configured limit.
        limit: u64,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::PcOutOfRange { pc } => write!(f, "pc {pc} outside program image"),
            ExecError::StepLimitExceeded { limit } => {
                write!(f, "program did not halt within {limit} µops")
            }
        }
    }
}

impl Error for ExecError {}

/// Architectural state of one functional run.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ExecResult {
    /// Retired µops (guard-false µops count — they are fetched NOPs).
    pub steps: u64,
    /// Retired µops whose guard read FALSE (architectural NOPs).
    pub guard_false_steps: u64,
    /// Final general registers.
    pub regs: [i64; NUM_GPRS],
    /// Final predicate registers.
    pub preds: [bool; NUM_PREDS],
    /// Final memory, sorted.
    pub mem: std::collections::BTreeMap<u64, i64>,
}

/// A simple in-order architectural µop machine.
#[derive(Clone, Debug)]
pub struct Machine {
    /// General registers; pre-set to pass program inputs.
    pub regs: [i64; NUM_GPRS],
    /// Predicate registers (`p0` stays TRUE regardless of writes).
    pub preds: [bool; NUM_PREDS],
    /// Sparse data memory; pre-populate with input arrays.
    pub mem: HashMap<u64, i64>,
}

impl Default for Machine {
    fn default() -> Self {
        Self::new()
    }
}

impl Machine {
    /// Creates a machine with zeroed registers, FALSE predicates (except
    /// `p0`), and empty memory.
    #[must_use]
    pub fn new() -> Machine {
        let mut preds = [false; NUM_PREDS];
        preds[0] = true;
        Machine {
            regs: [0; NUM_GPRS],
            preds,
            mem: HashMap::new(),
        }
    }

    #[inline]
    fn reg(&self, r: Gpr) -> i64 {
        self.regs[r.index()]
    }

    #[inline]
    fn operand(&self, op: crate::Operand) -> i64 {
        match op {
            crate::Operand::Reg(r) => self.reg(r),
            crate::Operand::Imm(i) => i64::from(i),
        }
    }

    #[inline]
    fn set_pred(&mut self, p: PredReg, v: bool) {
        if !p.is_hardwired_true() {
            self.preds[p.index()] = v;
        }
    }

    /// Runs `program` from its entry to `halt`.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError`] if control leaves the image or the step budget
    /// is exhausted.
    pub fn run(&mut self, program: &Program, max_steps: u64) -> Result<ExecResult, ExecError> {
        let mut pc = program.entry();
        let mut steps: u64 = 0;
        let mut guard_false_steps: u64 = 0;
        loop {
            let Some(insn) = program.get(pc) else {
                return Err(ExecError::PcOutOfRange { pc });
            };
            steps += 1;
            if steps > max_steps {
                return Err(ExecError::StepLimitExceeded { limit: max_steps });
            }
            let guard_ok = insn.guard.is_none_or(|g| self.preds[g.index()]);
            if !guard_ok {
                guard_false_steps += 1;
                pc += 1;
                continue;
            }
            let mut next = pc + 1;
            match insn.kind {
                InsnKind::Alu {
                    op,
                    dst,
                    src1,
                    src2,
                } => {
                    self.regs[dst.index()] = op.apply(self.reg(src1), self.operand(src2));
                }
                InsnKind::MovImm { dst, imm } => self.regs[dst.index()] = imm,
                InsnKind::Cmp {
                    op,
                    dst,
                    src1,
                    src2,
                } => {
                    let v = op.apply(self.reg(src1), self.operand(src2));
                    self.set_pred(dst, v);
                }
                InsnKind::Cmp2 {
                    op,
                    dst_t,
                    dst_f,
                    src1,
                    src2,
                } => {
                    let v = op.apply(self.reg(src1), self.operand(src2));
                    self.set_pred(dst_t, v);
                    self.set_pred(dst_f, !v);
                }
                InsnKind::PredRR {
                    op,
                    dst,
                    src1,
                    src2,
                } => {
                    let v = op.apply(self.preds[src1.index()], self.preds[src2.index()]);
                    self.set_pred(dst, v);
                }
                InsnKind::PredNot { dst, src } => {
                    let v = !self.preds[src.index()];
                    self.set_pred(dst, v);
                }
                InsnKind::PredSet { dst, value } => self.set_pred(dst, value),
                InsnKind::Load { dst, base, offset } => {
                    let addr = self.reg(base).wrapping_add(i64::from(offset)) as u64;
                    self.regs[dst.index()] = self.mem.get(&addr).copied().unwrap_or(0);
                }
                InsnKind::Store { src, base, offset } => {
                    let addr = self.reg(base).wrapping_add(i64::from(offset)) as u64;
                    self.mem.insert(addr, self.reg(src));
                }
                InsnKind::Branch { kind, target } => match kind {
                    BranchKind::Cond { pred, sense } => {
                        if self.preds[pred.index()] == sense {
                            next = target;
                        }
                    }
                    BranchKind::Uncond => next = target,
                    BranchKind::Call => {
                        self.regs[Gpr::LINK.index()] = i64::from(pc + 1);
                        next = target;
                    }
                    BranchKind::Ret => {
                        next = self.reg(Gpr::LINK) as u32;
                    }
                    BranchKind::Indirect { target: reg } => {
                        next = self.reg(reg) as u32;
                    }
                },
                InsnKind::Halt => {
                    return Ok(ExecResult {
                        steps,
                        guard_false_steps,
                        regs: self.regs,
                        preds: self.preds,
                        mem: self.mem.iter().map(|(&k, &v)| (k, v)).collect(),
                    });
                }
                InsnKind::Nop => {}
            }
            pc = next;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AluOp, BranchKind, CmpOp, Insn, Operand, ProgramBuilder, WishType};

    fn r(i: u8) -> Gpr {
        Gpr::new(i)
    }
    fn p(i: u8) -> PredReg {
        PredReg::new(i)
    }

    #[test]
    fn guarded_false_is_architectural_nop() {
        let prog = Program::from_insns(vec![
            Insn::mov_imm(r(1), 5),
            Insn::cmp(CmpOp::Lt, p(1), r(1), Operand::imm(0)), // p1 = false
            Insn::mov_imm(r(2), 99).guarded(p(1)),
            Insn::store(r(1), r(1), 0).guarded(p(1)),
            Insn::halt(),
        ]);
        let mut m = Machine::new();
        let res = m.run(&prog, 100).unwrap();
        assert_eq!(res.regs[2], 0);
        assert!(res.mem.is_empty());
        assert_eq!(res.guard_false_steps, 2);
    }

    #[test]
    fn cmp2_writes_both_polarities() {
        let prog = Program::from_insns(vec![
            Insn::mov_imm(r(1), 3),
            Insn::cmp2(CmpOp::Lt, p(1), p(2), r(1), Operand::imm(5)),
            Insn::mov_imm(r(2), 10).guarded(p(1)),
            Insn::mov_imm(r(2), 20).guarded(p(2)),
            Insn::halt(),
        ]);
        let res = Machine::new().run(&prog, 100).unwrap();
        assert_eq!(res.regs[2], 10);
        assert!(res.preds[1]);
        assert!(!res.preds[2]);
    }

    #[test]
    fn wish_branch_executes_as_normal_branch() {
        let mut b = ProgramBuilder::new();
        let target = b.label("T");
        b.push(Insn::mov_imm(r(1), 1));
        b.push(Insn::cmp(CmpOp::Eq, p(1), r(1), Operand::imm(1)));
        b.push_cond_branch(p(1), true, target, Some(WishType::Jump));
        b.push(Insn::mov_imm(r(2), 111)); // skipped
        b.bind(target);
        b.push(Insn::halt());
        let res = Machine::new().run(&b.build(), 100).unwrap();
        assert_eq!(res.regs[2], 0);
    }

    #[test]
    fn call_and_ret() {
        let mut b = ProgramBuilder::new();
        let f = b.label("f");
        b.push_call(f);
        b.push(Insn::halt());
        b.bind(f);
        b.push(Insn::alu(AluOp::Add, r(1), r(1), Operand::imm(7)));
        b.push(Insn::branch(BranchKind::Ret, 0));
        let res = Machine::new().run(&b.build(), 100).unwrap();
        assert_eq!(res.regs[1], 7);
        assert_eq!(res.regs[Gpr::LINK.index()], 1);
    }

    #[test]
    fn p0_writes_are_ignored() {
        let prog = Program::from_insns(vec![
            Insn::pred_set(PredReg::TRUE, false),
            Insn::mov_imm(r(1), 4).guarded(PredReg::TRUE),
            Insn::halt(),
        ]);
        let res = Machine::new().run(&prog, 100).unwrap();
        assert!(res.preds[0]);
        assert_eq!(res.regs[1], 4);
    }

    #[test]
    fn step_limit() {
        let mut b = ProgramBuilder::new();
        let top = b.label("top");
        b.bind(top);
        b.push_jump(top);
        let mut m = Machine::new();
        assert_eq!(
            m.run(&b.build(), 10),
            Err(ExecError::StepLimitExceeded { limit: 10 })
        );
    }

    #[test]
    fn guarded_branch_false_falls_through() {
        let mut b = ProgramBuilder::new();
        let t = b.label("t");
        b.push_branch_to(
            {
                let mut i = Insn::branch(BranchKind::Uncond, 0);
                i.guard = Some(p(1)); // p1 is false initially
                i
            },
            t,
        );
        b.push(Insn::mov_imm(r(1), 1));
        b.bind(t);
        b.push(Insn::halt());
        let res = Machine::new().run(&b.build(), 100).unwrap();
        assert_eq!(res.regs[1], 1);
    }
}
