//! A small assembler for the µop ISA, accepting exactly the syntax the
//! disassembler ([`crate::Insn`]'s `Display`) produces, plus labels.
//!
//! This closes the tooling loop: programs can be written (or machine-
//! edited) as text, and any disassembled program re-assembles to the same
//! image — a property the test suite enforces.
//!
//! # Syntax
//!
//! One instruction per line; `;` starts a comment; `NAME:` on its own line
//! binds a label usable as a branch target (absolute µop indices are also
//! accepted). Examples:
//!
//! ```text
//! ; Fig. 3c, by hand
//!        cmp.ge p1, p2 = r6, 0
//!        wish.jump p1, TARGET
//!        (p2) add r8 = r8, 1
//!        wish.join p2, JOIN
//! TARGET:
//!        (p1) sub r9 = r9, 1
//! JOIN:
//!        halt
//! ```
//!
//! # Example
//!
//! ```
//! use wishbranch_isa::asm::assemble;
//!
//! let program = assemble("
//!     movi r1 = 41
//!     add r1 = r1, 1
//!     halt
//! ").unwrap();
//! assert_eq!(program.len(), 3);
//! ```

use crate::insn::{AluOp, BranchKind, CmpOp, Insn, InsnKind, Operand, PredOp, WishType};
use crate::program::{Label, Program, ProgramBuilder};
use crate::regs::{Gpr, PredReg, NUM_GPRS, NUM_PREDS};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// An assembly error, with the 1-based source line.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AsmError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for AsmError {}

fn err(line: usize, message: impl Into<String>) -> AsmError {
    AsmError {
        line,
        message: message.into(),
    }
}

fn parse_gpr(tok: &str, line: usize) -> Result<Gpr, AsmError> {
    let idx: usize = tok
        .strip_prefix('r')
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| err(line, format!("expected a GPR, got `{tok}`")))?;
    if idx >= NUM_GPRS {
        return Err(err(line, format!("GPR index out of range: `{tok}`")));
    }
    Ok(Gpr::new(idx as u8))
}

fn parse_pred(tok: &str, line: usize) -> Result<PredReg, AsmError> {
    let idx: usize = tok
        .strip_prefix('p')
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| err(line, format!("expected a predicate register, got `{tok}`")))?;
    if idx >= NUM_PREDS {
        return Err(err(line, format!("predicate index out of range: `{tok}`")));
    }
    Ok(PredReg::new(idx as u8))
}

fn parse_operand(tok: &str, line: usize) -> Result<Operand, AsmError> {
    if tok.starts_with('r') {
        return Ok(Operand::Reg(parse_gpr(tok, line)?));
    }
    tok.parse::<i32>()
        .map(Operand::Imm)
        .map_err(|_| err(line, format!("expected a register or immediate, got `{tok}`")))
}

fn alu_op(mn: &str) -> Option<AluOp> {
    Some(match mn {
        "add" => AluOp::Add,
        "sub" => AluOp::Sub,
        "and" => AluOp::And,
        "or" => AluOp::Or,
        "xor" => AluOp::Xor,
        "shl" => AluOp::Shl,
        "shr" => AluOp::Shr,
        "mul" => AluOp::Mul,
        "div" => AluOp::Div,
        _ => return None,
    })
}

fn cmp_op(mn: &str) -> Option<CmpOp> {
    Some(match mn {
        "eq" => CmpOp::Eq,
        "ne" => CmpOp::Ne,
        "lt" => CmpOp::Lt,
        "le" => CmpOp::Le,
        "gt" => CmpOp::Gt,
        "ge" => CmpOp::Ge,
        _ => return None,
    })
}

fn pred_op(mn: &str) -> Option<PredOp> {
    Some(match mn {
        "pand" => PredOp::And,
        "por" => PredOp::Or,
        "pxor" => PredOp::Xor,
        _ => return None,
    })
}

/// A branch target: a label name or an absolute index.
enum Target {
    Label(String),
    Abs(u32),
}

fn parse_target(tok: &str) -> Target {
    match tok.parse::<u32>() {
        Ok(n) => Target::Abs(n),
        Err(_) => Target::Label(tok.to_string()),
    }
}

/// Splits `a = b, c` shapes around `=` and commas, normalizing whitespace.
fn split_assign(rest: &str, line: usize) -> Result<(Vec<&str>, Vec<&str>), AsmError> {
    let (lhs, rhs) = rest
        .split_once('=')
        .ok_or_else(|| err(line, format!("expected `=` in `{rest}`")))?;
    let l: Vec<&str> = lhs.split(',').map(str::trim).filter(|s| !s.is_empty()).collect();
    let r: Vec<&str> = rhs.split(',').map(str::trim).filter(|s| !s.is_empty()).collect();
    Ok((l, r))
}

/// Assembles a text program into a [`Program`].
///
/// # Errors
///
/// Returns [`AsmError`] with the offending line on any syntax problem,
/// out-of-range register, unknown mnemonic, or undefined label.
pub fn assemble(source: &str) -> Result<Program, AsmError> {
    let mut b = ProgramBuilder::new();
    let mut labels: HashMap<String, Label> = HashMap::new();
    let mut pending: Vec<(usize, Insn, Target, Option<WishType>)> = Vec::new();

    // First pass: parse everything, creating labels lazily; branches are
    // pushed through the builder's fixup machinery.
    for (lineno, raw) in source.lines().enumerate() {
        let line = lineno + 1;
        let text = raw.split(';').next().unwrap_or("").trim();
        if text.is_empty() {
            continue;
        }
        // Label binding.
        if let Some(name) = text.strip_suffix(':') {
            let name = name.trim();
            if name.is_empty() || name.contains(char::is_whitespace) {
                return Err(err(line, format!("bad label `{text}`")));
            }
            let l = match labels.get(name) {
                Some(&l) => l,
                None => {
                    let l = b.label(name);
                    labels.insert(name.to_string(), l);
                    l
                }
            };
            b.bind(l);
            continue;
        }

        // Optional guard `(pN)`.
        let (guard, text) = if let Some(rest) = text.strip_prefix('(') {
            let (g, rest) = rest
                .split_once(')')
                .ok_or_else(|| err(line, "unterminated guard"))?;
            (Some(parse_pred(g.trim(), line)?), rest.trim())
        } else {
            (None, text)
        };

        let (mnemonic, rest) = match text.split_once(char::is_whitespace) {
            Some((m, r)) => (m.trim(), r.trim()),
            None => (text, ""),
        };

        let mut push = |insn: Insn| {
            let insn = match guard {
                Some(g) => insn.guarded(g),
                None => insn,
            };
            b.push(insn);
        };

        match mnemonic {
            m if alu_op(m).is_some() => {
                let op = alu_op(m).expect("checked");
                let (l, r) = split_assign(rest, line)?;
                if l.len() != 1 || r.len() != 2 {
                    return Err(err(line, format!("`{m}` needs `dst = src1, src2`")));
                }
                push(Insn::alu(
                    op,
                    parse_gpr(l[0], line)?,
                    parse_gpr(r[0], line)?,
                    parse_operand(r[1], line)?,
                ));
            }
            "movi" => {
                let (l, r) = split_assign(rest, line)?;
                if l.len() != 1 || r.len() != 1 {
                    return Err(err(line, "`movi` needs `dst = imm`"));
                }
                let imm: i64 = r[0]
                    .parse()
                    .map_err(|_| err(line, format!("bad immediate `{}`", r[0])))?;
                push(Insn::mov_imm(parse_gpr(l[0], line)?, imm));
            }
            m if m.starts_with("cmp.") => {
                let op = cmp_op(&m[4..])
                    .ok_or_else(|| err(line, format!("unknown comparison `{m}`")))?;
                let (l, r) = split_assign(rest, line)?;
                if r.len() != 2 {
                    return Err(err(line, "`cmp` needs two sources"));
                }
                let src1 = parse_gpr(r[0], line)?;
                let src2 = parse_operand(r[1], line)?;
                match l.as_slice() {
                    [d] => push(Insn::cmp(op, parse_pred(d, line)?, src1, src2)),
                    [dt, df] => {
                        let (dt, df) = (parse_pred(dt, line)?, parse_pred(df, line)?);
                        if dt == df {
                            return Err(err(line, "cmp2 destinations must differ"));
                        }
                        push(Insn::cmp2(op, dt, df, src1, src2));
                    }
                    _ => return Err(err(line, "`cmp` needs one or two destinations")),
                }
            }
            m if pred_op(m).is_some() => {
                let op = pred_op(m).expect("checked");
                let (l, r) = split_assign(rest, line)?;
                if l.len() != 1 || r.len() != 2 {
                    return Err(err(line, format!("`{m}` needs `dst = src1, src2`")));
                }
                push(Insn::new(InsnKind::PredRR {
                    op,
                    dst: parse_pred(l[0], line)?,
                    src1: parse_pred(r[0], line)?,
                    src2: parse_pred(r[1], line)?,
                }));
            }
            "pnot" => {
                let (l, r) = split_assign(rest, line)?;
                if l.len() != 1 || r.len() != 1 {
                    return Err(err(line, "`pnot` needs `dst = src`"));
                }
                push(Insn::pred_not(parse_pred(l[0], line)?, parse_pred(r[0], line)?));
            }
            "pset" => {
                let (l, r) = split_assign(rest, line)?;
                if l.len() != 1 || r.len() != 1 {
                    return Err(err(line, "`pset` needs `dst = 0|1`"));
                }
                let v = match r[0] {
                    "0" => false,
                    "1" => true,
                    other => return Err(err(line, format!("bad pset value `{other}`"))),
                };
                push(Insn::pred_set(parse_pred(l[0], line)?, v));
            }
            "ld" => {
                // ld rD = [rB+off]
                let (l, r) = split_assign(rest, line)?;
                if l.len() != 1 || r.len() != 1 {
                    return Err(err(line, "`ld` needs `dst = [base+off]`"));
                }
                let (base, off) = parse_mem(r[0], line)?;
                push(Insn::load(parse_gpr(l[0], line)?, base, off));
            }
            "st" => {
                // st [rB+off] = rS
                let (l, r) = split_assign(rest, line)?;
                if l.len() != 1 || r.len() != 1 {
                    return Err(err(line, "`st` needs `[base+off] = src`"));
                }
                let (base, off) = parse_mem(l[0], line)?;
                push(Insn::store(parse_gpr(r[0], line)?, base, off));
            }
            "br" | "wish.jump" | "wish.join" | "wish.loop" => {
                let wish = match mnemonic {
                    "wish.jump" => Some(WishType::Jump),
                    "wish.join" => Some(WishType::Join),
                    "wish.loop" => Some(WishType::Loop),
                    _ => None,
                };
                let parts: Vec<&str> = rest.split(',').map(str::trim).collect();
                if parts.len() != 2 {
                    return Err(err(line, format!("`{mnemonic}` needs `pred, target`")));
                }
                let (sense, ptok) = match parts[0].strip_prefix('!') {
                    Some(p) => (false, p),
                    None => (true, parts[0]),
                };
                let pred = parse_pred(ptok, line)?;
                let insn = Insn::branch(BranchKind::Cond { pred, sense }, 0);
                if guard.is_some() {
                    return Err(err(line, "guards on branches are not supported"));
                }
                pending.push((b.here() as usize, insn, parse_target(parts[1]), wish));
                // Placeholder; patched by the builder below.
                push_pending(&mut b, &mut labels, &mut pending)?;
            }
            "br.uncond" | "call" => {
                if guard.is_some() {
                    return Err(err(line, "guards on branches are not supported"));
                }
                let kind = if mnemonic == "call" {
                    BranchKind::Call
                } else {
                    BranchKind::Uncond
                };
                pending.push((
                    b.here() as usize,
                    Insn::branch(kind, 0),
                    parse_target(rest.trim()),
                    None,
                ));
                push_pending(&mut b, &mut labels, &mut pending)?;
            }
            "ret" => push(Insn::branch(BranchKind::Ret, 0)),
            "jmp" => {
                let reg = parse_gpr(rest.trim(), line)?;
                push(Insn::branch(BranchKind::Indirect { target: reg }, 0));
            }
            "halt" => push(Insn::halt()),
            "nop" => push(Insn::new(InsnKind::Nop)),
            other => return Err(err(line, format!("unknown mnemonic `{other}`"))),
        }
    }
    // The builder panics on unbound labels; convert that into an error by
    // pre-checking (ProgramBuilder has no fallible build).
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || b.build())).map_err(|_| AsmError {
        line: 0,
        message: "undefined label or invalid branch target".into(),
    })
}

fn parse_mem(tok: &str, line: usize) -> Result<(Gpr, i32), AsmError> {
    let inner = tok
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| err(line, format!("expected `[base±off]`, got `{tok}`")))?;
    let split_at = inner
        .char_indices()
        .skip(1)
        .find(|&(_, c)| c == '+' || c == '-')
        .map(|(i, _)| i);
    let (base, off) = match split_at {
        Some(i) => (&inner[..i], &inner[i..]),
        None => (inner, "+0"),
    };
    let offset: i32 = off
        .parse()
        .map_err(|_| err(line, format!("bad offset `{off}`")))?;
    Ok((parse_gpr(base.trim(), line)?, offset))
}

/// Pushes the most recently queued branch through the builder, wiring label
/// targets through the builder's fixups.
fn push_pending(
    b: &mut ProgramBuilder,
    labels: &mut HashMap<String, Label>,
    pending: &mut Vec<(usize, Insn, Target, Option<WishType>)>,
) -> Result<(), AsmError> {
    let (_, mut insn, target, wish) = pending.pop().expect("just pushed");
    insn.wish = wish;
    match target {
        Target::Abs(t) => {
            if let InsnKind::Branch { target, .. } = &mut insn.kind {
                *target = t;
            }
            b.push(insn);
        }
        Target::Label(name) => {
            let l = match labels.get(&name) {
                Some(&l) => l,
                None => {
                    let l = b.label(&name);
                    labels.insert(name, l);
                    l
                }
            };
            b.push_branch_to(insn, l);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::Machine;

    #[test]
    fn assembles_and_runs_fig3c() {
        let prog = assemble(
            "
            ; Fig. 3c by hand
                movi r6 = -3
                cmp.ge p1, p2 = r6, 0
                wish.jump p1, TARGET
                (p2) add r8 = r8, 1
                wish.join p2, JOIN
            TARGET:
                (p1) sub r9 = r9, 1
            JOIN:
                halt
            ",
        )
        .expect("assembles");
        assert_eq!(prog.static_stats().wish_branches, 2);
        let res = Machine::new().run(&prog, 100).unwrap();
        assert_eq!(res.regs[8], 1); // else arm ran
        assert_eq!(res.regs[9], 0); // then arm was a NOP
    }

    #[test]
    fn memory_and_loop_syntax() {
        let prog = assemble(
            "
                movi r1 = 4096
                movi r2 = 0
            LOOP:
                add r2 = r2, 1
                st [r1+8] = r2
                cmp.lt p1 = r2, 3
                br p1, LOOP
                ld r3 = [r1+8]
                halt
            ",
        )
        .unwrap();
        let res = Machine::new().run(&prog, 1000).unwrap();
        assert_eq!(res.regs[3], 3);
        assert_eq!(res.mem.get(&4104), Some(&3));
    }

    #[test]
    fn negated_branch_sense() {
        let prog = assemble(
            "
                cmp.eq p1 = r0, 1   ; false
                br !p1, SKIP
                movi r2 = 99
            SKIP:
                halt
            ",
        )
        .unwrap();
        let res = Machine::new().run(&prog, 100).unwrap();
        assert_eq!(res.regs[2], 0, "negated branch must be taken");
    }

    #[test]
    fn error_reporting_points_at_the_line() {
        let e = assemble("movi r1 = 1\nbogus r2\nhalt").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("bogus"));
        let e = assemble("ld r1 = r2").unwrap_err();
        assert!(e.message.contains("[base"));
        let e = assemble("br p1, NOWHERE\nhalt").unwrap_err();
        assert!(e.message.contains("undefined label"));
    }

    #[test]
    fn calls_ret_and_indirect() {
        let prog = assemble(
            "
                call F
                movi r5 = 1
                halt
            F:
                movi r4 = 7
                ret
            ",
        )
        .unwrap();
        let res = Machine::new().run(&prog, 100).unwrap();
        assert_eq!(res.regs[4], 7);
        assert_eq!(res.regs[5], 1);
    }
}
