//! The lockstep retirement oracle: an in-order reference executor that
//! replays a cycle simulator's *retired-instruction stream* against the
//! architectural semantics of the program, µop by µop.
//!
//! The functional reference machine ([`crate::exec::Machine`]) checks only
//! the *final* architectural state of a run — a commit-path bug whose
//! effects cancel out by the end of the program (a double rollback, a
//! stale forwarded value that is later overwritten, a wrong branch
//! direction inside a predicated region) is invisible to it. The oracle
//! closes that gap: the simulator reports every retired µop as a
//! [`RetireRecord`] (PC, effective guard value, register/predicate/memory
//! writes, branch direction, and whether the retirement was *forced* —
//! i.e. the pipeline deliberately followed a non-architectural direction
//! under wish-branch or dynamic-hammock predication), and the oracle
//! executes the same µop in commit order on its own architectural state,
//! reporting the **first** divergent retirement with full context.
//!
//! What lockstep checking validates that a final-state fingerprint cannot:
//!
//! * the committed PC chain — every retirement must continue from the
//!   previous one (architecturally, or via a legal forced direction);
//! * each µop's effective guard value against the oracle's own predicate
//!   file at that point in commit order;
//! * every register, predicate and memory write value-by-value at the
//!   retirement where it happens, not just whatever survives to the end;
//! * that a branch retired down a non-architectural path only when the
//!   hardware had predication cover for it (a wish hint, or a
//!   hardware-injected hammock guard).
//!
//! Forced directions are the heart of wish-branch semantics (§3.2–3.5 of
//! the paper): a low-confidence wish branch retires down the *predicted*
//! path even when mispredicted, because the guarded instructions on that
//! path are architectural NOPs. The oracle therefore follows the pipeline's
//! committed path — checking that predication actually covers it — and
//! [`LockstepOracle::finish`] anchors the whole stream by comparing the
//! oracle's final state against the simulator's retired state.

use std::collections::BTreeMap;
use std::fmt;

use crate::insn::{BranchKind, Insn, InsnKind, WishType};
use crate::program::Program;
use crate::regs::{Gpr, NUM_GPRS, NUM_PREDS};

/// One retired µop, as reported by the cycle simulator's retire stage.
///
/// The record captures the *committed* effects of the µop: everything here
/// is post-squash (wrong-path µops are never reported) and in commit
/// order, so replaying the records is an in-order walk of the program as
/// the machine architecturally executed it.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RetireRecord {
    /// The µop's fetch sequence number (monotone over the stream).
    pub seq: u64,
    /// Program counter (µop index) of the retired instruction.
    pub pc: u32,
    /// The PC the pipeline followed after this µop — for a forced branch,
    /// the predicted (non-architectural) direction it retired down.
    pub next_pc: u32,
    /// The effective guard value the µop retired with: the architectural
    /// qualifying predicate AND any hardware-injected (DHP) guard.
    pub guard_true: bool,
    /// For conditional branches: the architecturally correct direction.
    pub taken: bool,
    /// The µop retired following a direction other than the architectural
    /// one (legal only under wish-branch or DHP predication cover).
    pub forced: bool,
    /// The wish hint on the instruction, if any.
    pub wish: Option<WishType>,
    /// This branch was dynamically hammock-predicated (DHP): it never
    /// flushes; its arms retire under hardware-injected guards.
    pub dhp: bool,
    /// This µop carries a hardware-injected DHP guard (it sits inside a
    /// dynamically predicated hammock arm).
    pub hw_guard: bool,
    /// GPR written (register index, value), if the guard was TRUE.
    pub reg_write: Option<(u8, i64)>,
    /// Predicate registers written (index, value); `cmp2` fills both.
    pub pred_writes: [Option<(u8, bool)>; 2],
    /// Memory word written (address, value), if a TRUE-guard store.
    pub mem_write: Option<(u64, i64)>,
    /// The µop halts the program (end of the retired stream).
    pub halted: bool,
}

/// The first divergent retirement found by the oracle, with enough context
/// to act on: where in the stream, which instruction, and what differed.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Divergence {
    /// Position of the offending record in the retired stream (0-based).
    pub index: usize,
    /// The record's sequence number.
    pub seq: u64,
    /// The record's program counter.
    pub pc: u32,
    /// Disassembly of the instruction at `pc` (empty if out of range).
    pub disasm: String,
    /// What diverged, with the oracle's and the simulator's view.
    pub detail: String,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "retirement #{} (seq {}, pc {}): {} [{}]",
            self.index, self.seq, self.pc, self.detail, self.disasm
        )
    }
}

/// The lockstep in-order reference executor. Feed it every
/// [`RetireRecord`] of a run via [`step`](LockstepOracle::step), then call
/// [`finish`](LockstepOracle::finish) with the simulator's final
/// architectural state.
#[derive(Clone, Debug)]
pub struct LockstepOracle<'a> {
    program: &'a Program,
    regs: [i64; NUM_GPRS],
    preds: [bool; NUM_PREDS],
    mem: BTreeMap<u64, i64>,
    /// PC the next record must retire at (`None` before the first record).
    expected_pc: Option<u32>,
    /// The previous record carried a hardware DHP guard: the fetch
    /// hardware may skip over an arm boundary without a branch µop, so a
    /// PC-chain discontinuity right after it is legal.
    prev_hw_guard: bool,
    halted: bool,
    index: usize,
}

impl<'a> LockstepOracle<'a> {
    /// A fresh oracle over `program` with zeroed architectural state
    /// (`p0` hardwired TRUE, like every machine in the stack).
    #[must_use]
    pub fn new(program: &'a Program) -> LockstepOracle<'a> {
        let mut preds = [false; NUM_PREDS];
        preds[0] = true;
        LockstepOracle {
            program,
            regs: [0; NUM_GPRS],
            preds,
            mem: BTreeMap::new(),
            expected_pc: None,
            prev_hw_guard: false,
            halted: false,
            index: 0,
        }
    }

    /// Preloads one memory word (benchmark input), like
    /// `Simulator::preload_mem`.
    pub fn preload_mem(&mut self, addr: u64, value: i64) {
        self.mem.insert(addr, value);
    }

    /// Number of records successfully replayed so far.
    #[must_use]
    pub fn retired(&self) -> usize {
        self.index
    }

    /// Whether a halt has retired.
    #[must_use]
    pub fn halted(&self) -> bool {
        self.halted
    }

    fn diverge(&self, rec: &RetireRecord, detail: String) -> Divergence {
        Divergence {
            index: self.index,
            seq: rec.seq,
            pc: rec.pc,
            disasm: self
                .program
                .get(rec.pc)
                .map(Insn::to_string)
                .unwrap_or_default(),
            detail,
        }
    }

    fn operand(&self, op: crate::insn::Operand) -> i64 {
        match op {
            crate::insn::Operand::Reg(r) => self.regs[r.index()],
            crate::insn::Operand::Imm(i) => i64::from(i),
        }
    }

    /// Checks a reported register write against the oracle's expectation
    /// and applies it.
    fn check_reg(
        &mut self,
        rec: &RetireRecord,
        dst: Gpr,
        value: i64,
    ) -> Result<(), Divergence> {
        let want = (dst.index() as u8, value);
        if rec.reg_write != Some(want) {
            return Err(self.diverge(
                rec,
                format!(
                    "register write: oracle expects r{}={}, simulator retired {:?}",
                    want.0, want.1, rec.reg_write
                ),
            ));
        }
        self.regs[dst.index()] = value;
        Ok(())
    }

    /// Checks one reported predicate write slot and applies it.
    fn check_pred(
        &mut self,
        rec: &RetireRecord,
        slot: usize,
        dst: crate::regs::PredReg,
        value: bool,
    ) -> Result<(), Divergence> {
        let want = (dst.index() as u8, value);
        if rec.pred_writes[slot] != Some(want) {
            return Err(self.diverge(
                rec,
                format!(
                    "predicate write: oracle expects p{}={}, simulator retired {:?}",
                    want.0, want.1, rec.pred_writes[slot]
                ),
            ));
        }
        if !dst.is_hardwired_true() {
            self.preds[dst.index()] = value;
        }
        Ok(())
    }

    /// Replays one retired record. On the first inconsistency, returns a
    /// [`Divergence`] naming what the oracle expected and what the
    /// simulator retired; the oracle is then poisoned for further use this
    /// run (state may be partially updated).
    ///
    /// # Errors
    ///
    /// The first divergence between the record and the oracle's in-order
    /// architectural execution.
    pub fn step(&mut self, rec: &RetireRecord) -> Result<(), Divergence> {
        if self.halted {
            return Err(self.diverge(rec, "retirement after halt".to_string()));
        }
        // Committed PC chain. DHP fetch hardware steers over hammock-arm
        // boundaries without a branch µop carrying the redirect, so a
        // discontinuity adjacent to a hardware-guarded µop is legal — the
        // final-state anchor still covers those regions.
        if let Some(expect) = self.expected_pc {
            if rec.pc != expect && !self.prev_hw_guard && !rec.hw_guard {
                return Err(self.diverge(
                    rec,
                    format!("committed PC chain broken: oracle expects pc {expect}"),
                ));
            }
        }
        let Some(insn) = self.program.get(rec.pc) else {
            return Err(self.diverge(rec, "retired µop outside the program".to_string()));
        };
        let insn = *insn;

        // Guard value. With a hardware-injected guard the effective value
        // also depends on the captured (renamed) branch condition, which
        // only the pipeline holds — the oracle checks what is derivable:
        // a TRUE effective guard requires a TRUE architectural guard.
        let arch_guard = insn.guard.is_none_or(|g| self.preds[g.index()]);
        if rec.hw_guard {
            if rec.guard_true && !arch_guard {
                return Err(self.diverge(
                    rec,
                    "guard: retired TRUE but the architectural qualifying predicate is FALSE"
                        .to_string(),
                ));
            }
        } else if rec.guard_true != arch_guard {
            return Err(self.diverge(
                rec,
                format!(
                    "guard: oracle predicate file says {}, simulator retired {}",
                    arch_guard, rec.guard_true
                ),
            ));
        }

        // The architecturally correct next PC, from the oracle's state.
        let fall = rec.pc + 1;
        let arch_next = if !rec.guard_true {
            fall // a guard-false µop, branch or not, is an architectural NOP
        } else {
            match insn.kind {
                InsnKind::Branch { kind, target } => match kind {
                    BranchKind::Cond { pred, sense } => {
                        let taken = self.preds[pred.index()] == sense;
                        if rec.taken != taken {
                            return Err(self.diverge(
                                rec,
                                format!(
                                    "branch direction: oracle says taken={taken}, \
                                     simulator retired taken={}",
                                    rec.taken
                                ),
                            ));
                        }
                        if taken {
                            target
                        } else {
                            fall
                        }
                    }
                    BranchKind::Uncond | BranchKind::Call => target,
                    BranchKind::Ret => self.regs[Gpr::LINK.index()] as u32,
                    BranchKind::Indirect { target: reg } => self.regs[reg.index()] as u32,
                },
                _ => fall,
            }
        };

        // Forced (non-architectural) directions need predication cover.
        if rec.next_pc != arch_next {
            let covered = insn.wish.is_some() || rec.dhp || rec.hw_guard;
            if !covered {
                return Err(self.diverge(
                    rec,
                    format!(
                        "followed pc {} instead of architectural {} with no \
                         wish/DHP predication cover",
                        rec.next_pc, arch_next
                    ),
                ));
            }
            if !rec.forced {
                return Err(self.diverge(
                    rec,
                    format!(
                        "followed pc {} instead of architectural {} but the \
                         retirement was not flagged forced",
                        rec.next_pc, arch_next
                    ),
                ));
            }
        } else if rec.forced {
            return Err(self.diverge(
                rec,
                "flagged forced but followed the architectural direction".to_string(),
            ));
        }

        // Execute (guard TRUE) and compare every architectural write.
        if rec.guard_true {
            match insn.kind {
                InsnKind::Alu {
                    op,
                    dst,
                    src1,
                    src2,
                } => {
                    let v = op.apply(self.regs[src1.index()], self.operand(src2));
                    self.check_reg(rec, dst, v)?;
                }
                InsnKind::MovImm { dst, imm } => self.check_reg(rec, dst, imm)?,
                InsnKind::Cmp {
                    op,
                    dst,
                    src1,
                    src2,
                } => {
                    let v = op.apply(self.regs[src1.index()], self.operand(src2));
                    self.check_pred(rec, 0, dst, v)?;
                }
                InsnKind::Cmp2 {
                    op,
                    dst_t,
                    dst_f,
                    src1,
                    src2,
                } => {
                    let v = op.apply(self.regs[src1.index()], self.operand(src2));
                    self.check_pred(rec, 0, dst_t, v)?;
                    self.check_pred(rec, 1, dst_f, !v)?;
                }
                InsnKind::PredRR {
                    op,
                    dst,
                    src1,
                    src2,
                } => {
                    let v = op.apply(self.preds[src1.index()], self.preds[src2.index()]);
                    self.check_pred(rec, 0, dst, v)?;
                }
                InsnKind::PredNot { dst, src } => {
                    let v = !self.preds[src.index()];
                    self.check_pred(rec, 0, dst, v)?;
                }
                InsnKind::PredSet { dst, value } => self.check_pred(rec, 0, dst, value)?,
                InsnKind::Load { dst, base, offset } => {
                    let addr = self.regs[base.index()].wrapping_add(i64::from(offset)) as u64;
                    let v = self.mem.get(&addr).copied().unwrap_or(0);
                    self.check_reg(rec, dst, v)?;
                }
                InsnKind::Store { src, base, offset } => {
                    let addr = self.regs[base.index()].wrapping_add(i64::from(offset)) as u64;
                    let v = self.regs[src.index()];
                    if rec.mem_write != Some((addr, v)) {
                        return Err(self.diverge(
                            rec,
                            format!(
                                "store: oracle expects mem[{addr:#x}]={v}, simulator \
                                 retired {:?}",
                                rec.mem_write
                            ),
                        ));
                    }
                    self.mem.insert(addr, v);
                }
                InsnKind::Branch { kind, .. } => {
                    if let BranchKind::Call = kind {
                        self.check_reg(rec, Gpr::LINK, i64::from(fall))?;
                    }
                }
                InsnKind::Halt => {
                    if !rec.halted {
                        return Err(
                            self.diverge(rec, "halt retired without the halt flag".to_string())
                        );
                    }
                    self.halted = true;
                }
                InsnKind::Nop => {}
            }
        } else if rec.reg_write.is_some()
            || rec.mem_write.is_some()
            || rec.pred_writes.iter().any(Option::is_some)
        {
            return Err(self.diverge(
                rec,
                format!(
                    "guard-false µop retired architectural writes: reg {:?}, preds {:?}, mem {:?}",
                    rec.reg_write, rec.pred_writes, rec.mem_write
                ),
            ));
        }
        if rec.halted && !self.halted {
            return Err(self.diverge(rec, "halt flag on a non-halt µop".to_string()));
        }

        self.expected_pc = Some(rec.next_pc);
        self.prev_hw_guard = rec.hw_guard;
        self.index += 1;
        Ok(())
    }

    /// Final-state anchor: the stream must have halted, and the oracle's
    /// architectural state must match the simulator's retired state
    /// exactly (registers, predicates, and the memory image).
    ///
    /// # Errors
    ///
    /// A [`Divergence`] (with `index`/`seq`/`pc` of the last retirement)
    /// naming the first differing register, predicate or memory word.
    pub fn finish(
        &self,
        final_regs: &[i64; NUM_GPRS],
        final_preds: &[bool; NUM_PREDS],
        final_mem: &BTreeMap<u64, i64>,
    ) -> Result<(), Divergence> {
        let end = |detail: String| Divergence {
            index: self.index,
            seq: 0,
            pc: self.expected_pc.unwrap_or(0),
            disasm: String::new(),
            detail,
        };
        if !self.halted {
            return Err(end("retired stream ended without a halt".to_string()));
        }
        for (i, (&got, &want)) in final_regs.iter().zip(self.regs.iter()).enumerate() {
            if got != want {
                return Err(end(format!(
                    "final state: r{i} simulator {got}, oracle {want}"
                )));
            }
        }
        for (i, (&got, &want)) in final_preds.iter().zip(self.preds.iter()).enumerate() {
            if got != want {
                return Err(end(format!(
                    "final state: p{i} simulator {got}, oracle {want}"
                )));
            }
        }
        if *final_mem != self.mem {
            let diff = final_mem
                .iter()
                .map(|(&a, &v)| (a, Some(v), self.mem.get(&a).copied()))
                .chain(
                    self.mem
                        .iter()
                        .filter(|(a, _)| !final_mem.contains_key(a))
                        .map(|(&a, &v)| (a, None, Some(v))),
                )
                .find(|&(_, got, want)| got != want);
            let detail = diff.map_or_else(
                || "final state: memory images differ".to_string(),
                |(a, got, want)| {
                    format!("final state: mem[{a:#x}] simulator {got:?}, oracle {want:?}")
                },
            );
            return Err(end(detail));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insn::{AluOp, CmpOp, Operand};
    use crate::program::ProgramBuilder;
    use crate::regs::PredReg;

    fn r(i: u8) -> Gpr {
        Gpr::new(i)
    }
    fn p(i: u8) -> PredReg {
        PredReg::new(i)
    }

    /// A straight-line record with sensible defaults.
    fn rec(seq: u64, pc: u32) -> RetireRecord {
        RetireRecord {
            seq,
            pc,
            next_pc: pc + 1,
            guard_true: true,
            taken: false,
            forced: false,
            wish: None,
            dhp: false,
            hw_guard: false,
            reg_write: None,
            pred_writes: [None, None],
            mem_write: None,
            halted: false,
        }
    }

    /// movi r1,5 ; cmp p1 = r1==5 ; (p1) add r2 = r1+1 ; st r2 -> [r0+8] ; halt
    fn sample_program() -> Program {
        let mut b = ProgramBuilder::new();
        b.push(Insn::mov_imm(r(1), 5));
        b.push(Insn::cmp(CmpOp::Eq, p(1), r(1), Operand::imm(5)));
        b.push(Insn::alu(AluOp::Add, r(2), r(1), Operand::imm(1)).guarded(p(1)));
        b.push(Insn::store(r(2), r(0), 8));
        b.push(Insn::halt());
        b.build()
    }

    fn sample_stream() -> Vec<RetireRecord> {
        let mut s = vec![rec(1, 0), rec(2, 1), rec(3, 2), rec(4, 3), rec(5, 4)];
        s[0].reg_write = Some((1, 5));
        s[1].pred_writes[0] = Some((1, true));
        s[2].reg_write = Some((2, 6));
        s[3].mem_write = Some((8, 6));
        s[4].halted = true;
        s
    }

    #[test]
    fn faithful_stream_replays_clean() {
        let prog = sample_program();
        let mut oracle = LockstepOracle::new(&prog);
        for record in sample_stream() {
            oracle.step(&record).expect("faithful record");
        }
        let mut regs = [0i64; NUM_GPRS];
        regs[1] = 5;
        regs[2] = 6;
        let mut preds = [false; NUM_PREDS];
        preds[0] = true;
        preds[1] = true;
        let mem: BTreeMap<u64, i64> = [(8, 6)].into_iter().collect();
        oracle.finish(&regs, &preds, &mem).expect("final state");
    }

    #[test]
    fn wrong_register_value_is_caught_at_the_retirement() {
        let prog = sample_program();
        let mut oracle = LockstepOracle::new(&prog);
        let mut stream = sample_stream();
        stream[2].reg_write = Some((2, 7)); // should be 6
        oracle.step(&stream[0]).unwrap();
        oracle.step(&stream[1]).unwrap();
        let d = oracle.step(&stream[2]).unwrap_err();
        assert_eq!(d.index, 2);
        assert_eq!(d.pc, 2);
        assert!(d.detail.contains("register write"), "{d}");
    }

    #[test]
    fn broken_pc_chain_is_caught() {
        let prog = sample_program();
        let mut oracle = LockstepOracle::new(&prog);
        let stream = sample_stream();
        oracle.step(&stream[0]).unwrap();
        let d = oracle.step(&stream[2]).unwrap_err(); // skips pc 1
        assert!(d.detail.contains("PC chain"), "{d}");
    }

    #[test]
    fn wrong_guard_value_is_caught() {
        let prog = sample_program();
        let mut oracle = LockstepOracle::new(&prog);
        let mut stream = sample_stream();
        stream[2].guard_true = false; // p1 is architecturally TRUE here
        stream[2].reg_write = None;
        oracle.step(&stream[0]).unwrap();
        oracle.step(&stream[1]).unwrap();
        let d = oracle.step(&stream[2]).unwrap_err();
        assert!(d.detail.contains("guard"), "{d}");
    }

    #[test]
    fn unforced_wrong_direction_is_caught() {
        let mut b = ProgramBuilder::new();
        b.push(Insn::cmp(CmpOp::Eq, p(1), r(1), Operand::imm(0))); // p1 = true
        b.push(Insn::branch(BranchKind::cond(p(1), true), 3));
        b.push(Insn::halt());
        b.push(Insn::halt());
        let prog = b.build();
        let mut oracle = LockstepOracle::new(&prog);
        let mut c = rec(1, 0);
        c.pred_writes[0] = Some((1, true));
        oracle.step(&c).unwrap();
        let mut br = rec(2, 1);
        br.taken = true;
        br.next_pc = 2; // fell through a taken normal branch: illegal
        let d = oracle.step(&br).unwrap_err();
        assert!(d.detail.contains("predication cover"), "{d}");
    }

    #[test]
    fn forced_wish_branch_direction_is_legal() {
        // wish.jump predicted not-taken but actually taken: retires forced
        // down the fall-through, whose instructions are guarded.
        let mut b = ProgramBuilder::new();
        b.push(Insn::cmp2(CmpOp::Eq, p(1), p(2), r(1), Operand::imm(0))); // p1=t, p2=f
        b.push(Insn::branch(BranchKind::cond(p(1), true), 4).with_wish(WishType::Jump));
        b.push(Insn::mov_imm(r(3), 9).guarded(p(2))); // guard-false on this path
        b.push(Insn::halt());
        b.push(Insn::halt());
        let prog = b.build();
        let mut oracle = LockstepOracle::new(&prog);
        let mut c = rec(1, 0);
        c.pred_writes = [Some((1, true)), Some((2, false))];
        oracle.step(&c).unwrap();
        let mut br = rec(2, 1);
        br.taken = true;
        br.forced = true;
        br.next_pc = 2; // predicted fall-through, kept under wish cover
        br.wish = Some(WishType::Jump);
        oracle.step(&br).unwrap();
        let mut nop = rec(3, 2);
        nop.guard_true = false;
        oracle.step(&nop).unwrap();
        let mut h = rec(4, 3);
        h.halted = true;
        oracle.step(&h).unwrap();
        assert!(oracle.halted());
    }

    #[test]
    fn guard_false_write_is_caught() {
        let prog = sample_program();
        let mut oracle = LockstepOracle::new(&prog);
        let mut bad = rec(1, 0);
        bad.guard_true = true;
        bad.reg_write = Some((1, 5));
        oracle.step(&bad).unwrap();
        let mut c = rec(2, 1);
        c.pred_writes[0] = Some((1, true));
        oracle.step(&c).unwrap();
        let mut g = rec(3, 2);
        g.guard_true = false; // wrong: p1 is TRUE — caught as a guard mismatch
        g.reg_write = Some((2, 6));
        let d = oracle.step(&g).unwrap_err();
        assert!(d.detail.contains("guard"), "{d}");
    }

    #[test]
    fn missing_halt_fails_finish() {
        let prog = sample_program();
        let oracle = LockstepOracle::new(&prog);
        let regs = [0i64; NUM_GPRS];
        let mut preds = [false; NUM_PREDS];
        preds[0] = true;
        let d = oracle.finish(&regs, &preds, &BTreeMap::new()).unwrap_err();
        assert!(d.detail.contains("halt"), "{d}");
    }
}
