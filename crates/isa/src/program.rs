//! Program images: linear µop sequences with symbols and label fixups.

use crate::insn::{Insn, InsnKind, WishType};
use std::fmt;

/// A named position in a program, for debugging and disassembly.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Symbol {
    /// Symbol name (e.g. a basic-block or function label).
    pub name: String,
    /// µop index the symbol refers to.
    pub index: u32,
}

/// Static code statistics, used for Table 4 of the paper.
#[derive(Clone, Copy, PartialEq, Eq, Default, Debug)]
pub struct StaticStats {
    /// Total µop count.
    pub insns: usize,
    /// Static conditional branches (wish or normal).
    pub cond_branches: usize,
    /// Static wish branches of any type.
    pub wish_branches: usize,
    /// Static `wish.jump` instructions.
    pub wish_jumps: usize,
    /// Static `wish.join` instructions.
    pub wish_joins: usize,
    /// Static `wish.loop` instructions.
    pub wish_loops: usize,
    /// µops carrying a qualifying predicate other than `p0`.
    pub guarded_insns: usize,
}

/// An immutable program image: the unit loaded into the simulator.
///
/// A program is a flat sequence of µops; control transfers use absolute µop
/// indices. Execution starts at [`Program::entry`] and finishes at a `halt`
/// µop.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Program {
    insns: Vec<Insn>,
    entry: u32,
    symbols: Vec<Symbol>,
}

impl Program {
    /// Wraps a raw instruction sequence (entry at index 0, no symbols).
    ///
    /// # Panics
    ///
    /// Panics if any direct branch targets an index out of range.
    #[must_use]
    pub fn from_insns(insns: Vec<Insn>) -> Program {
        let p = Program {
            insns,
            entry: 0,
            symbols: Vec::new(),
        };
        p.validate();
        p
    }

    fn validate(&self) {
        for (i, insn) in self.insns.iter().enumerate() {
            if let Some(t) = insn.direct_target() {
                assert!(
                    (t as usize) < self.insns.len(),
                    "µop {i} ({insn}) targets out-of-range index {t}"
                );
            }
        }
        assert!(
            (self.entry as usize) < self.insns.len() || self.insns.is_empty(),
            "entry point {} out of range",
            self.entry
        );
    }

    /// The µop at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[inline]
    #[must_use]
    pub fn insn(&self, index: u32) -> &Insn {
        &self.insns[index as usize]
    }

    /// The µop at `index`, or `None` when out of range (used by the
    /// simulator when fetching down a bogus wrong path).
    #[inline]
    #[must_use]
    pub fn get(&self, index: u32) -> Option<&Insn> {
        self.insns.get(index as usize)
    }

    /// Number of µops in the image.
    #[must_use]
    pub fn len(&self) -> usize {
        self.insns.len()
    }

    /// Whether the image contains no µops.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.insns.is_empty()
    }

    /// Entry-point µop index.
    #[must_use]
    pub fn entry(&self) -> u32 {
        self.entry
    }

    /// All µops in index order.
    #[must_use]
    pub fn insns(&self) -> &[Insn] {
        &self.insns
    }

    /// Symbols, sorted by index.
    #[must_use]
    pub fn symbols(&self) -> &[Symbol] {
        &self.symbols
    }

    /// Computes static statistics over the image.
    #[must_use]
    pub fn static_stats(&self) -> StaticStats {
        let mut s = StaticStats {
            insns: self.insns.len(),
            ..StaticStats::default()
        };
        for i in &self.insns {
            if i.is_conditional_branch() {
                s.cond_branches += 1;
            }
            match i.wish {
                Some(WishType::Jump) => s.wish_jumps += 1,
                Some(WishType::Join) => s.wish_joins += 1,
                Some(WishType::Loop) => s.wish_loops += 1,
                None => {}
            }
            if i.is_wish_branch() {
                s.wish_branches += 1;
            }
            if i.guard.is_some_and(|g| !g.is_hardwired_true()) {
                s.guarded_insns += 1;
            }
        }
        s
    }
}

impl fmt::Display for Program {
    /// Disassembles the whole image, interleaving symbols.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut sym_iter = self.symbols.iter().peekable();
        for (i, insn) in self.insns.iter().enumerate() {
            while let Some(s) = sym_iter.peek() {
                if (s.index as usize) <= i {
                    writeln!(f, "{}:", s.name)?;
                    sym_iter.next();
                } else {
                    break;
                }
            }
            writeln!(f, "  {i:5}  {insn}")?;
        }
        Ok(())
    }
}

/// An unresolved label handle issued by [`ProgramBuilder::label`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Label(u32);

/// Incremental builder for [`Program`] images with forward-label fixup.
///
/// # Example
///
/// ```
/// use wishbranch_isa::{ProgramBuilder, Insn, Gpr, PredReg, CmpOp, Operand, BranchKind, AluOp};
///
/// let mut b = ProgramBuilder::new();
/// let exit = b.label("EXIT");
/// b.push(Insn::mov_imm(Gpr::new(1), 0));
/// b.push(Insn::cmp(CmpOp::Ge, PredReg::new(1), Gpr::new(1), Operand::imm(10)));
/// b.push_cond_branch(PredReg::new(1), true, exit, None);
/// b.push(Insn::alu(AluOp::Add, Gpr::new(1), Gpr::new(1), Operand::imm(1)));
/// b.bind(exit);
/// b.push(Insn::halt());
/// let program = b.build();
/// assert_eq!(program.len(), 5);
/// ```
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    insns: Vec<Insn>,
    // For each label id: resolved index (or u32::MAX while unbound) and name.
    labels: Vec<(u32, String)>,
    // (µop index, label id) pairs needing patching at build time.
    fixups: Vec<(u32, Label)>,
    symbols: Vec<Symbol>,
    entry: u32,
}

const UNBOUND: u32 = u32::MAX;

impl ProgramBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> ProgramBuilder {
        ProgramBuilder::default()
    }

    /// Current µop index (where the next pushed instruction will land).
    #[must_use]
    pub fn here(&self) -> u32 {
        self.insns.len() as u32
    }

    /// Creates a fresh, unbound label with a debug name.
    pub fn label(&mut self, name: impl Into<String>) -> Label {
        let id = Label(self.labels.len() as u32);
        self.labels.push((UNBOUND, name.into()));
        id
    }

    /// Binds `label` to the current position and records it as a symbol.
    ///
    /// # Panics
    ///
    /// Panics if the label was already bound.
    pub fn bind(&mut self, label: Label) {
        let (slot, name) = &mut self.labels[label.0 as usize];
        assert!(*slot == UNBOUND, "label {name} bound twice");
        *slot = self.insns.len() as u32;
        self.symbols.push(Symbol {
            name: name.clone(),
            index: self.insns.len() as u32,
        });
    }

    /// Appends a non-branching µop (or a branch whose target is already an
    /// absolute index).
    pub fn push(&mut self, insn: Insn) {
        self.insns.push(insn);
    }

    /// Appends a conditional branch to `target`, optionally wish-hinted.
    pub fn push_cond_branch(
        &mut self,
        pred: crate::PredReg,
        sense: bool,
        target: Label,
        wish: Option<WishType>,
    ) {
        let mut insn = Insn::branch(crate::BranchKind::Cond { pred, sense }, 0);
        insn.wish = wish;
        self.push_branch_to(insn, target);
    }

    /// Appends an unconditional branch to `target`.
    pub fn push_jump(&mut self, target: Label) {
        self.push_branch_to(Insn::branch(crate::BranchKind::Uncond, 0), target);
    }

    /// Appends a call to `target`.
    pub fn push_call(&mut self, target: Label) {
        self.push_branch_to(Insn::branch(crate::BranchKind::Call, 0), target);
    }

    /// Appends any direct-branch µop whose target should be patched to
    /// `label` at build time.
    ///
    /// # Panics
    ///
    /// Panics if `insn` is not a direct branch.
    pub fn push_branch_to(&mut self, insn: Insn, label: Label) {
        assert!(
            matches!(insn.kind, InsnKind::Branch { .. }) && insn.direct_target().is_some(),
            "push_branch_to requires a direct branch, got {insn}"
        );
        self.fixups.push((self.insns.len() as u32, label));
        self.insns.push(insn);
    }

    /// Sets the entry point to the current position.
    pub fn set_entry_here(&mut self) {
        self.entry = self.insns.len() as u32;
    }

    /// Resolves all labels and produces the program image.
    ///
    /// # Panics
    ///
    /// Panics if any referenced label was never bound.
    #[must_use]
    pub fn build(mut self) -> Program {
        for (at, label) in &self.fixups {
            let (idx, name) = &self.labels[label.0 as usize];
            assert!(*idx != UNBOUND, "label {name} referenced but never bound");
            if let InsnKind::Branch { target, .. } = &mut self.insns[*at as usize].kind {
                *target = *idx;
            }
        }
        self.symbols.sort_by_key(|s| s.index);
        let p = Program {
            insns: self.insns,
            entry: self.entry,
            symbols: self.symbols,
        };
        p.validate();
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AluOp, BranchKind, CmpOp, Gpr, Operand, PredReg};

    fn r(i: u8) -> Gpr {
        Gpr::new(i)
    }
    fn p(i: u8) -> PredReg {
        PredReg::new(i)
    }

    #[test]
    fn builder_resolves_forward_and_backward_labels() {
        let mut b = ProgramBuilder::new();
        let top = b.label("TOP");
        let exit = b.label("EXIT");
        b.bind(top);
        b.push(Insn::alu(AluOp::Add, r(1), r(1), Operand::imm(1)));
        b.push(Insn::cmp(CmpOp::Ge, p(1), r(1), Operand::imm(3)));
        b.push_cond_branch(p(1), true, exit, None);
        b.push_jump(top);
        b.bind(exit);
        b.push(Insn::halt());
        let prog = b.build();
        assert_eq!(prog.insn(2).direct_target(), Some(4));
        assert_eq!(prog.insn(3).direct_target(), Some(0));
        assert_eq!(prog.symbols().len(), 2);
    }

    #[test]
    #[should_panic(expected = "never bound")]
    fn unbound_label_panics() {
        let mut b = ProgramBuilder::new();
        let l = b.label("X");
        b.push_jump(l);
        let _ = b.build();
    }

    #[test]
    #[should_panic(expected = "bound twice")]
    fn double_bind_panics() {
        let mut b = ProgramBuilder::new();
        let l = b.label("X");
        b.bind(l);
        b.bind(l);
    }

    #[test]
    fn static_stats_count_wish_branches() {
        let mut b = ProgramBuilder::new();
        let t = b.label("T");
        b.push_cond_branch(p(1), true, t, Some(WishType::Jump));
        b.push(Insn::mov(r(1), r(2)).guarded(p(2)));
        b.push_cond_branch(p(1), false, t, Some(WishType::Join));
        b.push_cond_branch(p(1), true, t, Some(WishType::Loop));
        b.push_cond_branch(p(1), true, t, None);
        b.bind(t);
        b.push(Insn::halt());
        let s = b.build().static_stats();
        assert_eq!(s.insns, 6);
        assert_eq!(s.cond_branches, 4);
        assert_eq!(s.wish_branches, 3);
        assert_eq!(s.wish_jumps, 1);
        assert_eq!(s.wish_joins, 1);
        assert_eq!(s.wish_loops, 1);
        assert_eq!(s.guarded_insns, 1);
    }

    #[test]
    #[should_panic(expected = "out-of-range")]
    fn out_of_range_target_rejected() {
        let _ = Program::from_insns(vec![Insn::branch(BranchKind::Uncond, 5)]);
    }

    #[test]
    fn display_includes_symbols() {
        let mut b = ProgramBuilder::new();
        let l = b.label("LOOP");
        b.bind(l);
        b.push(Insn::halt());
        let text = b.build().to_string();
        assert!(text.contains("LOOP:"));
        assert!(text.contains("halt"));
    }
}
